#!/usr/bin/env python3
"""Footprint-number monitoring, from the worked example to live runs.

Part 1 reproduces the paper's Figure 2b worked example by hand: four
monitored sets with unique-access counters 3, 2, 3, 3 give a
Footprint-number of 11/4 = 2.75.

Part 2 runs a few contrasting benchmarks alone on the simulated platform
with passive monitors attached (exactly how Table 4's Fpn columns were
measured) and shows how the measured Footprint-number maps to Table 1
priority buckets.

Usage:  python examples/footprint_monitoring.py
"""

from repro import SystemConfig
from repro.core.footprint import FootprintSampler
from repro.core.priority import InsertionPriorityPredictor
from repro.sim.single import run_alone


def figure_2b_example() -> None:
    print("== Figure 2b worked example ==")
    # Four monitored sets; feed each one a few (partially repeating)
    # block addresses, as in the paper's diagram.
    sampler = FootprintSampler(llc_num_sets=4, num_monitor_sets=4, entries=16)
    per_set_accesses = {
        0: [0x10, 0x24, 0x10, 0x38],  # 3 unique (0x10 repeats)
        1: [0x41, 0x55],              # 2 unique
        2: [0x62, 0x76, 0x8A],        # 3 unique
        3: [0x9B, 0xAF, 0xC3, 0x9B],  # 3 unique
    }
    for set_idx, tags in per_set_accesses.items():
        for tag in tags:
            # block address = tag * num_sets + set index
            sampler.observe(set_idx, tag * 4 + set_idx)
    fpn = sampler.footprint_number()
    print(f"per-set unique counts -> total 11, sampled sets 4")
    print(f"Footprint-number = {fpn}  (paper: 2.75)\n")
    assert fpn == 2.75


def live_characterisation() -> None:
    print("== live monitoring (Table 4 protocol) ==")
    config = SystemConfig.scaled(num_cores=16)
    predictor = InsertionPriorityPredictor(associativity=16)
    print(f"{'app':<8}{'Fpn(S)':>8}{'L2-MPKI':>9}{'bucket':>8}")
    for app in ("calc", "deal", "mesa", "mcf", "wrf", "lbm"):
        result = run_alone(
            app, config, quota=12_000, warmup=3_000, monitor=True
        )
        fpn = result.footprints["sampled"]
        bucket = predictor.classify(fpn)
        print(f"{app:<8}{fpn:>8.2f}{result.l2_mpki:>9.2f}{bucket.label:>8}")
    print("\nHP inserts at RRPV 0, MP at 1 (1/16 at 2), LP at 2 (1/16 at 1),")
    print("LstP bypasses 31/32 of its fills (Table 1).")


if __name__ == "__main__":
    figure_2b_example()
    live_characterisation()
