#!/usr/bin/env python3
"""Server-consolidation scenario: 24 applications on a 16-way LLC.

The paper's introduction motivates ADAPT with commercial grid/consolidation
systems where the number of co-scheduled applications exceeds the LLC
associativity and the software stack wants *application-level* priorities.
This example builds such a scenario explicitly: a 24-core mix heavy on
memory-intensive batch jobs plus a handful of cache-friendly
latency-sensitive services, then compares how TA-DRRIP and ADAPT treat
the two groups.

Usage:  python examples/consolidation_24core.py
"""

from repro import SystemConfig, run_workload
from repro.trace.benchmarks import BENCHMARKS
from repro.trace.workloads import Workload

#: Latency-sensitive services: small working sets, modest traffic.
SERVICES = ("calc", "deal", "h26", "nam", "swapt", "tont", "craf", "eon")
#: Batch/analytics jobs, including six thrashing applications.
BATCH = (
    "mcf", "lesl", "bzip", "omn", "sopl", "art", "hmm", "mesa",
    "lbm", "milc", "apsi", "wrf", "gzip", "libq", "gap", "twolf",
)


def main() -> None:
    workload = Workload("consolidation-24", SERVICES + BATCH)
    config = SystemConfig.scaled(num_cores=24)
    print(f"platform: {config.describe()}")
    print(f"{len(SERVICES)} services + {len(BATCH)} batch jobs, "
          f"{len(workload.thrashing_cores())} thrashing\n")

    results = {
        policy: run_workload(workload, config, policy, quota=9_000, warmup=4_000)
        for policy in ("tadrrip", "adapt_bp32")
    }

    def group_ipc(result, names):
        by_app = dict(zip(workload.benchmarks, result.snapshots))
        return sum(by_app[n].ipc for n in names) / len(names)

    print(f"{'group':<12}{'tadrrip':>10}{'adapt_bp32':>12}{'change':>9}")
    for label, names in (("services", SERVICES), ("batch", BATCH)):
        base = group_ipc(results["tadrrip"], names)
        ours = group_ipc(results["adapt_bp32"], names)
        print(f"{label:<12}{base:>10.3f}{ours:>12.3f}{(ours / base - 1) * 100:>8.1f}%")

    print("\nper-service detail (the apps a consolidation operator protects):")
    print(f"{'service':<8}{'class':>6}{'tadrrip IPC':>12}{'adapt IPC':>11}{'MPKI delta':>12}")
    base_apps = dict(zip(workload.benchmarks, results["tadrrip"].snapshots))
    ours_apps = dict(zip(workload.benchmarks, results["adapt_bp32"].snapshots))
    for name in SERVICES:
        b, o = base_apps[name], ours_apps[name]
        print(
            f"{name:<8}{BENCHMARKS[name].paper_class:>6}{b.ipc:>12.3f}"
            f"{o.ipc:>11.3f}{o.llc_mpki - b.llc_mpki:>+12.2f}"
        )
    print("\nWho actually holds the cache (mean occupancy share, ADAPT):")
    from repro.analysis import measure_occupancy

    profile = measure_occupancy(
        workload, config, "adapt_bp32", quota=5_000, warmup=2_000
    )
    shares = sorted(profile.by_app().items(), key=lambda kv: -kv[1])
    for name, share in shares[:8]:
        marker = "service" if name in SERVICES else "batch"
        print(f"  {name:<8} {share:6.1%}  ({marker})")

    print("\nADAPT classifies applications by Footprint-number and bypasses")
    print("the thrashing batch jobs' fills, insulating the services without")
    print("any static partitioning (Section 5.4: 24-core, 16-way).")


if __name__ == "__main__":
    main()
