#!/usr/bin/env python3
"""Policy shoot-out: every LLC policy on the same 16-core workload.

Runs the full policy zoo — the DIP lineage, the RRIP family, SHiP, EAF
and both ADAPT variants — on one Table 6 workload and ranks them by
weighted speed-up, with per-policy LLC statistics.  A miniature of the
paper's Figure 3 comparison that also exercises the bypass wrapper.

Usage:  python examples/policy_shootout.py [--quick]
"""

import sys

from repro import AloneCache, SystemConfig, design_suite, run_workload, weighted_speedup

POLICIES = (
    "lru", "lip", "bip", "dip", "random",
    "srrip", "brrip", "drrip", "tadrrip", "tadrrip+bp",
    "ship", "eaf", "eaf+bp",
    "adapt_ins", "adapt_bp32",
)


def main() -> None:
    quick = "--quick" in sys.argv
    quota, warmup = (4_000, 1_500) if quick else (12_000, 5_000)

    config = SystemConfig.scaled(num_cores=16)
    workload = design_suite(16, num_workloads=2)[1]
    print(f"workload {workload.name}: {', '.join(workload.benchmarks)}\n")

    alone = AloneCache(config, quota=quota, warmup=warmup)
    alone_ipcs = alone.ipcs(workload.benchmarks)

    rows = []
    for policy in POLICIES:
        result = run_workload(workload, config, policy, quota=quota, warmup=warmup)
        ws = weighted_speedup(result.ipcs, alone_ipcs)
        total_mpki = sum(result.llc_mpkis)
        rows.append((ws, policy, total_mpki, result.policy_state))

    baseline = next(ws for ws, p, *_ in rows if p == "tadrrip")
    print(f"{'policy':<12}{'WS':>8}{'vs TA-DRRIP':>13}{'sum MPKI':>10}  state")
    for ws, policy, mpki, state in sorted(rows, reverse=True):
        print(f"{policy:<12}{ws:>8.3f}{ws / baseline:>12.3f}x{mpki:>10.1f}  {state[:40]}")


if __name__ == "__main__":
    main()
