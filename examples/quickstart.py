#!/usr/bin/env python3
"""Quickstart: run one 16-core workload under TA-DRRIP and ADAPT.

Builds the scaled Table 3 platform, composes a Table 6-style 16-core
workload, runs it under the baseline and under ADAPT_bp32, and prints the
per-application IPCs plus the weighted speed-up — the paper's headline
comparison, in ~30 seconds.

Usage:  python examples/quickstart.py
"""

from repro import AloneCache, SystemConfig, design_suite, run_workload, weighted_speedup


def main() -> None:
    config = SystemConfig.scaled(num_cores=16)
    print(f"platform: {config.describe()}\n")

    workload = design_suite(16, num_workloads=1)[0]
    print(f"workload {workload.name}: {', '.join(workload.benchmarks)}")
    print(f"thrashing cores: {workload.thrashing_cores()}\n")

    # IPC_alone baselines (each app with the whole LLC to itself).
    alone = AloneCache(config, quota=16_000, warmup=4_000)
    alone_ipcs = alone.ipcs(workload.benchmarks)

    results = {}
    for policy in ("tadrrip", "adapt_bp32"):
        results[policy] = run_workload(
            workload, config, policy, quota=16_000, warmup=6_000
        )

    print(f"{'app':<8}{'alone':>8}" + "".join(f"{p:>14}" for p in results))
    for i, app in enumerate(workload.benchmarks):
        row = f"{app:<8}{alone_ipcs[i]:>8.3f}"
        for result in results.values():
            row += f"{result.snapshots[i].ipc:>14.3f}"
        print(row)

    print()
    ws = {p: weighted_speedup(r.ipcs, alone_ipcs) for p, r in results.items()}
    for policy, value in ws.items():
        print(f"weighted speed-up under {policy:<11}: {value:.3f}")
    gain = (ws["adapt_bp32"] / ws["tadrrip"] - 1) * 100
    print(f"\nADAPT_bp32 vs TA-DRRIP: {gain:+.2f}%  "
          f"(paper, Figure 3: +4.7% average over 60 workloads)")


if __name__ == "__main__":
    main()
