"""Shared fixtures: small geometries that keep unit tests fast."""

from __future__ import annotations

import pytest

from repro.sim.config import CacheLevelConfig, SystemConfig


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A deliberately small platform for integration tests (sub-second runs)."""
    return SystemConfig(
        name="tiny-4core",
        num_cores=4,
        l1=CacheLevelConfig(num_sets=8, ways=4, latency=3.0),
        l2=CacheLevelConfig(num_sets=8, ways=8, latency=14.0),
        llc=CacheLevelConfig(num_sets=64, ways=16, latency=24.0),
        monitor_sets=16,
        # Short interval so miniature runs complete several classification
        # intervals (the production ratio would need ~16k misses each).
        interval_misses=2_000,
    )


@pytest.fixture
def small_llc_geometry() -> tuple[int, int]:
    """(num_sets, ways) for standalone cache tests."""
    return 16, 4
