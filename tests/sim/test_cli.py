"""Tests for the `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table4" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "ADAPT" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "system configuration" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        assert "workload design" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
