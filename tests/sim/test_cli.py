"""Tests for the `python -m repro.experiments` CLI."""

import dataclasses

import pytest

import repro.experiments.tournament
from repro.experiments.__main__ import main
from repro.experiments.cli import COMMANDS, build_parser, register_command


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table4" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "ADAPT" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "system configuration" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        assert "workload design" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "command" in capsys.readouterr().err

    def test_table6_honours_seed(self, capsys):
        assert main(["table6", "--seed", "2"]) == 0
        assert "workload design" in capsys.readouterr().out


#: Minimal extra argv for commands with required positionals.
POSITIONALS = {"profile": ["fig3"], "traces": ["gc"], "targets": ["list"]}


def _stub_command(monkeypatch, name, rc=0):
    """Replace *name*'s handler, recording the namespaces it receives."""
    calls = []

    def run(args):
        calls.append(args)
        return rc

    monkeypatch.setitem(
        COMMANDS, name, dataclasses.replace(COMMANDS[name], run=run)
    )
    return calls


class TestRegistry:
    def test_every_command_parses_its_minimal_argv(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name, *POSITIONALS.get(name, [])])
            assert args.command == name

    def test_expected_roster_is_registered(self):
        for name in ("fig3", "table2", "tournament", "report", "golden",
                     "profile", "traces", "list"):
            assert name in COMMANDS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_command("list")(lambda args: 0)

    def test_dispatch_uses_the_live_registry(self, monkeypatch):
        calls = _stub_command(monkeypatch, "fig3", rc=7)
        assert main(["fig3", "--seed", "3", "--jobs", "2"]) == 7
        assert calls[0].seed == 3 and calls[0].jobs == 2

    def test_legacy_spellings_dispatch(self, monkeypatch):
        for argv in (["fig3"], ["golden", "--regen"], ["profile", "fig3"],
                     ["traces", "gc", "--dry-run"]):
            calls = _stub_command(monkeypatch, argv[0])
            assert main(argv) == 0
            assert len(calls) == 1

    def test_per_command_flags_are_not_global(self, capsys):
        # Each of these flags exists on exactly one other command; using it
        # elsewhere is a usage error instead of being silently ignored —
        # and the error names the offending subcommand.
        for argv in (
            ["fig3", "--regen"],
            ["golden", "--dry-run"],
            ["table2", "--seed", "1"],
            ["fig3", "--top", "10"],
            ["report", "--regen"],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert f"{argv[0]}: unrecognized arguments:" in err

    def test_simulated_commands_expose_seed_and_store_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig3", "--seed", "4", "--results-dir", "", "--no-cache"]
        )
        assert args.seed == 4 and args.no_cache and args.results_dir == ""


class TestTournamentCommand:
    def test_unknown_policy_is_a_usage_error(self, capsys, tmp_path):
        rc = main([
            "tournament", "--policies", "not-a-policy",
            "--results-dir", str(tmp_path),
        ])
        assert rc == 2
        assert "not-a-policy" in capsys.readouterr().err

    def test_seeds_must_be_positive(self, capsys):
        assert main(["tournament", "--seeds", "0"]) == 2

    def test_seed_offsets_the_swept_range(self, monkeypatch, capsys, tmp_path):
        seen = {}

        def fake_run_tournament(**kwargs):
            seen.update(kwargs)
            return repro.experiments.tournament.TournamentRun(
                policies=("tadrrip",), cores=(4,), seeds=kwargs["seeds"]
            )

        monkeypatch.setattr(
            repro.experiments.tournament, "run_tournament", fake_run_tournament
        )
        rc = main([
            "tournament", "--seed", "5", "--seeds", "2",
            "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        assert seen["seeds"] == (5, 6)


class TestReportCommand:
    def test_empty_store_exits_2(self, capsys, tmp_path):
        rc = main(["report", "--results-dir", str(tmp_path / "results")])
        assert rc == 2
        assert "no tournament cells" in capsys.readouterr().err

    def test_no_store_exits_2(self, capsys):
        assert main(["report", "--results-dir", ""]) == 2
