"""Tests for the experiments layer: Runner memoisation and renderers.

Simulation-heavy experiment paths run at miniature budgets; the analytic
tables run at full fidelity.
"""

import pytest

from repro.experiments.common import ExperimentSettings, Runner, scale_factor
from repro.experiments.fig1 import forced_tadrrip
from repro.experiments.tables import render_table2, render_table3, render_table6
from repro.trace.workloads import Workload


@pytest.fixture
def tiny_runner(tiny_config):
    settings = ExperimentSettings(
        quota=1200,
        warmup=300,
        alone_quota=1200,
        alone_warmup=300,
        workloads={4: 2, 8: 2, 16: 2, 20: 2, 24: 2},
    )
    return Runner(tiny_config.with_cores(4), settings)


class TestScaleFactor:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert scale_factor() == 1.0

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scale_factor() == 0.1

    def test_from_env_caps_at_paper_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1000")
        settings = ExperimentSettings.from_env()
        assert settings.workloads[16] == 60  # Table 6 count
        assert settings.workloads[4] == 120


class TestRunner:
    def test_run_is_memoised(self, tiny_runner):
        workload = tiny_runner.settings.suite(4)[0]
        first = tiny_runner.run(workload, "lru")
        second = tiny_runner.run(workload, "lru")
        assert first is second

    def test_distinct_policies_distinct_runs(self, tiny_runner):
        workload = tiny_runner.settings.suite(4)[0]
        assert tiny_runner.run(workload, "lru") is not tiny_runner.run(
            workload, "srrip"
        )

    def test_weighted_speedup_positive(self, tiny_runner):
        workload = tiny_runner.settings.suite(4)[0]
        ws = tiny_runner.weighted_speedup(workload, "lru")
        assert 0 < ws <= workload.cores

    def test_relative_ws_baseline_is_one(self, tiny_runner):
        workload = tiny_runner.settings.suite(4)[0]
        assert tiny_runner.relative_ws(workload, "tadrrip") == pytest.approx(1.0)

    def test_all_metrics_keys(self, tiny_runner):
        workload = tiny_runner.settings.suite(4)[0]
        metrics = tiny_runner.all_metrics(workload, "lru")
        assert set(metrics) == {"ws", "hm_norm", "gm_ipc", "hm_ipc", "am_ipc"}


class TestForcedTadrrip:
    def test_forces_thrashing_cores(self):
        workload = Workload("t", ("lbm", "calc", "milc", "deal"))
        policy = forced_tadrrip(workload)
        assert policy.forced_brrip_cores == frozenset({0, 2})


class TestRenderers:
    def test_table2_mentions_all_policies(self):
        text = render_table2()
        for name in ("TA-DRRIP", "EAF-RRIP", "SHiP", "ADAPT"):
            assert name in text

    def test_table3_shows_paper_and_run(self, tiny_config):
        text = render_table3(tiny_config)
        assert "16MB" in text  # the paper column
        assert "monitor interval" in text

    def test_table6_lists_all_suites(self):
        text = render_table6()
        for cores in (4, 8, 16, 20, 24):
            assert f"{cores}-core" in text
