"""Miniature end-to-end runs of each simulation-backed experiment module."""

import pytest

from repro.experiments.common import ExperimentSettings, Runner
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.perapp import run_perapp
from repro.experiments.scurves import run_scurve
from repro.experiments.table4 import characterise
from repro.experiments.table7 import run_table7


@pytest.fixture(scope="module")
def mini_runner(request):
    from repro.sim.config import CacheLevelConfig, SystemConfig

    config = SystemConfig(
        name="mini-4core",
        num_cores=4,
        l1=CacheLevelConfig(8, 4, 3.0),
        l2=CacheLevelConfig(8, 8, 14.0),
        llc=CacheLevelConfig(64, 16, 24.0),
        monitor_sets=16,
        interval_misses=2_000,
    )
    settings = ExperimentSettings(
        quota=1500,
        warmup=400,
        alone_quota=1500,
        alone_warmup=300,
        workloads={4: 2, 8: 2, 16: 2, 20: 2, 24: 2},
    )
    return Runner(config, settings)


class TestScurve:
    def test_shapes_and_rendering(self, mini_runner):
        result = run_scurve(mini_runner, 4, policies=("adapt_bp32", "lru"))
        assert result.cores == 4
        assert len(result.ratios["lru"]) == 2
        assert result.s_curve("lru") == sorted(result.ratios["lru"])
        text = result.render()
        assert "4-core" in text and "lru" in text

    def test_mean_and_max_gains_consistent(self, mini_runner):
        result = run_scurve(mini_runner, 4, policies=("lru",))
        assert result.max_gain_percent("lru") >= result.mean_gain_percent("lru") - 1e-9


class TestFig6:
    def test_pairs_present(self, mini_runner):
        result = run_fig6(mini_runner, cores=4)
        assert set(result.bars) == {"TA-DRRIP", "SHiP", "EAF", "ADAPT"}
        for ins, byp in result.bars.values():
            assert ins > 0 and byp > 0
        assert "bypass" in result.render()


class TestFig7:
    def test_gains_for_each_point(self, mini_runner):
        result = run_fig7(
            mini_runner, core_counts=(4,), way_factors=(1.5,), max_workloads=1
        )
        assert list(result.gains) == [("24-way", 4)]
        assert "24-way" in result.render()


class TestFig1:
    def test_bars_and_mpki_rows(self, mini_runner):
        result = run_fig1(mini_runner, cores=4)
        assert set(result.bars) == {
            "TA-DRRIP(SD=64)", "TA-DRRIP(SD=128)", "TA-DRRIP(forced)",
        }
        # Every 4-core workload has >= 1 thrashing app, so both row groups
        # are populated.
        assert result.thrashing_rows()
        assert result.other_rows()
        assert "Fig. 1a" in result.render()


class TestPerApp:
    def test_per_app_tables(self, mini_runner):
        result = run_perapp(mini_runner, cores=4, policies=("adapt_bp32",))
        reductions = result.mpki_reduction["adapt_bp32"]
        assert reductions  # at least the apps in the two mini workloads
        text = result.render(thrashing=False)
        assert "Fig. 5" in text


class TestTable4Characterise:
    def test_single_row(self, mini_runner):
        row = characterise("calc", mini_runner.config, mini_runner.settings)
        assert row.name == "calc"
        assert row.fpn_sampled >= 0
        assert row.measured_class in ("VL", "L", "M", "H", "VH")


class TestTable7:
    def test_all_metrics_all_cores(self, mini_runner):
        result = run_table7(mini_runner, core_counts=(4,))
        assert set(result.gains) == {"ws", "hm_norm", "gm_ipc", "hm_ipc", "am_ipc"}
        for per_cores in result.gains.values():
            assert 4 in per_cores
        text = result.render()
        assert "Wt.Speed-up" in text
