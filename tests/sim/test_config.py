"""Unit tests for system configurations."""

import pytest

from repro.sim.config import CacheLevelConfig, SystemConfig


class TestPaperConfig:
    def test_table3_values(self):
        cfg = SystemConfig.paper(16)
        assert cfg.l1.capacity_bytes() == 32 * 1024
        assert cfg.l2.capacity_bytes() == 256 * 1024
        assert cfg.llc.capacity_bytes() == 16 * 1024 * 1024
        assert cfg.llc.ways == 16
        assert cfg.llc_banks == 4
        assert cfg.dram_row_hit == 180.0
        assert cfg.dram_row_conflict == 340.0
        assert cfg.l1_next_line_prefetch
        assert cfg.effective_interval == 1_000_000

    def test_paper_interval_is_about_4x_blocks(self):
        cfg = SystemConfig.paper(16)
        ratio = cfg.effective_interval / cfg.llc.num_blocks
        assert 3.5 < ratio < 4.5


class TestScaledConfig:
    def test_ratios_preserved(self):
        cfg = SystemConfig.scaled(16)
        assert cfg.llc.ways == 16
        assert cfg.effective_interval == cfg.interval_blocks_multiplier * cfg.llc.num_blocks
        assert cfg.monitor_sets == 40
        assert cfg.partial_tag_bits == 10

    def test_describe_mentions_interval(self):
        assert "misses" in SystemConfig.scaled(8).describe()


class TestVariants:
    def test_with_llc_changes_ways_only(self):
        base = SystemConfig.scaled(16)
        wider = base.with_llc(ways=24)
        assert wider.llc.ways == 24
        assert wider.llc.num_sets == base.llc.num_sets
        assert wider.name != base.name

    def test_with_cores(self):
        cfg = SystemConfig.scaled(16).with_cores(24)
        assert cfg.num_cores == 24
        assert "24core" in cfg.name

    def test_configs_are_frozen(self):
        cfg = SystemConfig.scaled(16)
        with pytest.raises(Exception):
            cfg.num_cores = 8

    def test_cache_level_blocks(self):
        level = CacheLevelConfig(num_sets=64, ways=8, latency=3.0)
        assert level.num_blocks == 512
        assert level.capacity_bytes(64) == 32 * 1024
