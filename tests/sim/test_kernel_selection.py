"""Kill-switch precedence: every env combination picks one documented kernel.

The four kernel-family switches — ``REPRO_NO_FASTPATH``,
``REPRO_NO_REPLAY``, ``REPRO_REPLAY_VEC`` and ``REPRO_NO_SHARED_TRACES``
— must resolve deterministically in the documented precedence order
(generic beats fused beats array-native replay beats scalar replay;
shared-trace materialisation is orthogonal).  This suite enumerates all
sixteen combinations against :func:`repro.sim.multi.kernel_selection`,
pins the value semantics of ``REPRO_REPLAY_VEC`` (off / auto / forced
backend), and checks end to end that a replay-registered
``run_workload`` produces identical results whichever kernel the
switches resolve to.
"""

from __future__ import annotations

from itertools import product

import pytest

from repro.cpu import capture_vec, replay, replay_vec
from repro.cpu.fastpath import fastpath_enabled
from repro.golden import golden_config
from repro.runner.replaystore import (
    ReplayStore,
    clear_replay_manifest,
    install_replay_manifest,
)
from repro.sim.multi import capture_kernel, kernel_selection, run_workload
from repro.trace.workloads import Workload

FLAGS = (
    "REPRO_NO_FASTPATH",
    "REPRO_NO_REPLAY",
    "REPRO_REPLAY_VEC",
    "REPRO_NO_SHARED_TRACES",
)

CAPTURE_FLAGS = ("REPRO_NO_FASTPATH", "REPRO_NO_REPLAY", "REPRO_CAPTURE_VEC")

COMBOS = list(product((False, True), repeat=len(FLAGS)))
COMBO_IDS = [
    "+".join(flag.replace("REPRO_", "") for flag, on in zip(FLAGS, combo) if on)
    or "none"
    for combo in COMBOS
]


def _expected(no_fastpath, no_replay, vec, _no_shared_traces):
    if no_fastpath:
        return "generic"
    if no_replay:
        return "fast"
    if vec:
        return "replay_vec"
    return "replay"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for flag in FLAGS + ("REPRO_CAPTURE_VEC",):
        monkeypatch.delenv(flag, raising=False)


@pytest.mark.parametrize("combo", COMBOS, ids=COMBO_IDS)
def test_every_combination_resolves_deterministically(combo, monkeypatch):
    for flag, on in zip(FLAGS, combo):
        if on:
            monkeypatch.setenv(flag, "1")
    assert kernel_selection() == _expected(*combo)
    # The predicates agree with the resolution.
    selected = kernel_selection()
    assert fastpath_enabled() == (selected != "generic")
    assert replay.replay_enabled() == (selected in ("replay", "replay_vec"))
    assert replay_vec.replay_vec_enabled() == (selected == "replay_vec")


def test_shared_traces_switch_never_changes_the_kernel(monkeypatch):
    for combo in COMBOS:
        for flag, on in zip(FLAGS, combo):
            monkeypatch.setenv(flag, "1") if on else monkeypatch.delenv(
                flag, raising=False
            )
        without = kernel_selection()
        monkeypatch.setenv("REPRO_NO_SHARED_TRACES", "1")
        assert kernel_selection() == without


class TestReplayVecValueSemantics:
    @pytest.mark.parametrize("value", ["", "0"])
    def test_off_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", value)
        assert not replay_vec.replay_vec_requested()
        assert kernel_selection() == "replay"

    @pytest.mark.parametrize("value", ["1", "numpy", "numba", "on"])
    def test_on_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", value)
        assert replay_vec.replay_vec_requested()
        assert kernel_selection() == "replay_vec"

    def test_numpy_value_forces_the_fallback_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", "numpy")
        assert replay_vec.vec_backend() == "numpy"

    def test_stronger_switches_still_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        assert not replay_vec.replay_vec_enabled()
        assert kernel_selection() == "fast"
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert kernel_selection() == "generic"


class TestCaptureKernelSelection:
    """``capture_kernel()`` resolves its own switch with the same value
    semantics as ``REPRO_REPLAY_VEC`` — and never changes which replay
    kernel a swept job selects."""

    CAPTURE_COMBOS = list(product((False, True), repeat=len(CAPTURE_FLAGS)))

    @staticmethod
    def _expected_capture(no_fastpath, no_replay, vec):
        if no_fastpath or no_replay:
            return "none"
        return "capture_vec" if vec else "capture"

    @pytest.mark.parametrize(
        "combo",
        CAPTURE_COMBOS,
        ids=[
            "+".join(f.replace("REPRO_", "") for f, on in zip(CAPTURE_FLAGS, c) if on)
            or "none"
            for c in CAPTURE_COMBOS
        ],
    )
    def test_every_combination_resolves_deterministically(self, combo, monkeypatch):
        for flag, on in zip(CAPTURE_FLAGS, combo):
            if on:
                monkeypatch.setenv(flag, "1")
        assert capture_kernel() == self._expected_capture(*combo)
        # The predicate agrees with the resolution.
        assert capture_vec.capture_vec_enabled() == (capture_kernel() == "capture_vec")

    @pytest.mark.parametrize("value", ["", "0"])
    def test_off_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_VEC", value)
        assert not capture_vec.capture_vec_requested()
        assert capture_kernel() == "capture"

    @pytest.mark.parametrize("value", ["1", "numpy", "numba", "on"])
    def test_on_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_VEC", value)
        assert capture_vec.capture_vec_requested()
        assert capture_kernel() == "capture_vec"

    def test_numpy_value_forces_the_fallback_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_VEC", "numpy")
        assert capture_vec.vec_backend() == "numpy"

    def test_backend_resolves_on_any_container(self, monkeypatch):
        # "1" means "numba when importable": on a container without the
        # [jit] extra the backend must quietly resolve to numpy, never
        # raise — this is the degradation the nightly/local split relies on.
        monkeypatch.setenv("REPRO_CAPTURE_VEC", "1")
        backend = capture_vec.vec_backend()
        assert backend in ("numpy", "numba")
        try:
            import numba  # noqa: F401
        except ImportError:
            assert backend == "numpy"

    def test_capture_switch_never_changes_the_replay_kernel(self, monkeypatch):
        for combo in COMBOS:
            for flag, on in zip(FLAGS, combo):
                monkeypatch.setenv(flag, "1") if on else monkeypatch.delenv(
                    flag, raising=False
                )
            without = kernel_selection()
            monkeypatch.setenv("REPRO_CAPTURE_VEC", "1")
            assert kernel_selection() == without
            monkeypatch.delenv("REPRO_CAPTURE_VEC")


class TestRunWorkloadRouting:
    """The resolved kernel actually drives a replay-registered run — and
    every resolution produces the identical result."""

    BENCHMARKS = ("mcf", "libq")
    QUOTA, WARMUP = 300, 100

    def _run(self, config):
        return run_workload(
            Workload("sel", self.BENCHMARKS),
            config,
            "tadrrip",
            quota=self.QUOTA,
            warmup=self.WARMUP,
            master_seed=0,
        ).to_dict()

    def test_all_kernels_agree_end_to_end(self, tmp_path, monkeypatch):
        config = golden_config()
        store = ReplayStore(tmp_path)
        entry = store.materialise(
            self.BENCHMARKS, config, self.QUOTA, self.WARMUP, 0
        )
        install_replay_manifest([entry])
        try:
            baseline = self._run(config)  # scalar replay
            monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
            vec = self._run(config)
            # Observable proof the vec kernel ran: its decode-plane cache
            # attached to the registered bundle during the run.
            from repro.runner.replaystore import active_replay_bundle

            bundle = active_replay_bundle(
                self.BENCHMARKS, config, self.QUOTA, self.WARMUP, 0
            )
            assert bundle is not None and bundle.vec_cache is not None
            monkeypatch.setenv("REPRO_NO_REPLAY", "1")
            fused = self._run(config)
            monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
            generic = self._run(config)
        finally:
            clear_replay_manifest()
        assert vec == baseline
        assert fused == baseline
        assert generic == baseline
