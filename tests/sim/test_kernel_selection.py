"""Kill-switch precedence: every env combination picks one documented kernel.

The four kernel-family switches — ``REPRO_NO_FASTPATH``,
``REPRO_NO_REPLAY``, ``REPRO_REPLAY_VEC`` and ``REPRO_NO_SHARED_TRACES``
— must resolve deterministically in the documented precedence order
(generic beats fused beats array-native replay beats scalar replay;
shared-trace materialisation is orthogonal).  This suite enumerates all
sixteen combinations against :func:`repro.sim.multi.kernel_selection`,
pins the value semantics of ``REPRO_REPLAY_VEC`` (off / auto / forced
backend), and checks end to end that a replay-registered
``run_workload`` produces identical results whichever kernel the
switches resolve to.
"""

from __future__ import annotations

from itertools import product

import pytest

from repro.cpu import replay, replay_vec
from repro.cpu.fastpath import fastpath_enabled
from repro.golden import golden_config
from repro.runner.replaystore import (
    ReplayStore,
    clear_replay_manifest,
    install_replay_manifest,
)
from repro.sim.multi import kernel_selection, run_workload
from repro.trace.workloads import Workload

FLAGS = (
    "REPRO_NO_FASTPATH",
    "REPRO_NO_REPLAY",
    "REPRO_REPLAY_VEC",
    "REPRO_NO_SHARED_TRACES",
)

COMBOS = list(product((False, True), repeat=len(FLAGS)))
COMBO_IDS = [
    "+".join(flag.replace("REPRO_", "") for flag, on in zip(FLAGS, combo) if on)
    or "none"
    for combo in COMBOS
]


def _expected(no_fastpath, no_replay, vec, _no_shared_traces):
    if no_fastpath:
        return "generic"
    if no_replay:
        return "fast"
    if vec:
        return "replay_vec"
    return "replay"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for flag in FLAGS:
        monkeypatch.delenv(flag, raising=False)


@pytest.mark.parametrize("combo", COMBOS, ids=COMBO_IDS)
def test_every_combination_resolves_deterministically(combo, monkeypatch):
    for flag, on in zip(FLAGS, combo):
        if on:
            monkeypatch.setenv(flag, "1")
    assert kernel_selection() == _expected(*combo)
    # The predicates agree with the resolution.
    selected = kernel_selection()
    assert fastpath_enabled() == (selected != "generic")
    assert replay.replay_enabled() == (selected in ("replay", "replay_vec"))
    assert replay_vec.replay_vec_enabled() == (selected == "replay_vec")


def test_shared_traces_switch_never_changes_the_kernel(monkeypatch):
    for combo in COMBOS:
        for flag, on in zip(FLAGS, combo):
            monkeypatch.setenv(flag, "1") if on else monkeypatch.delenv(
                flag, raising=False
            )
        without = kernel_selection()
        monkeypatch.setenv("REPRO_NO_SHARED_TRACES", "1")
        assert kernel_selection() == without


class TestReplayVecValueSemantics:
    @pytest.mark.parametrize("value", ["", "0"])
    def test_off_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", value)
        assert not replay_vec.replay_vec_requested()
        assert kernel_selection() == "replay"

    @pytest.mark.parametrize("value", ["1", "numpy", "numba", "on"])
    def test_on_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", value)
        assert replay_vec.replay_vec_requested()
        assert kernel_selection() == "replay_vec"

    def test_numpy_value_forces_the_fallback_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", "numpy")
        assert replay_vec.vec_backend() == "numpy"

    def test_stronger_switches_still_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        assert not replay_vec.replay_vec_enabled()
        assert kernel_selection() == "fast"
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert kernel_selection() == "generic"


class TestRunWorkloadRouting:
    """The resolved kernel actually drives a replay-registered run — and
    every resolution produces the identical result."""

    BENCHMARKS = ("mcf", "libq")
    QUOTA, WARMUP = 300, 100

    def _run(self, config):
        return run_workload(
            Workload("sel", self.BENCHMARKS),
            config,
            "tadrrip",
            quota=self.QUOTA,
            warmup=self.WARMUP,
            master_seed=0,
        ).to_dict()

    def test_all_kernels_agree_end_to_end(self, tmp_path, monkeypatch):
        config = golden_config()
        store = ReplayStore(tmp_path)
        entry = store.materialise(
            self.BENCHMARKS, config, self.QUOTA, self.WARMUP, 0
        )
        install_replay_manifest([entry])
        try:
            baseline = self._run(config)  # scalar replay
            monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
            vec = self._run(config)
            # Observable proof the vec kernel ran: its decode-plane cache
            # attached to the registered bundle during the run.
            from repro.runner.replaystore import active_replay_bundle

            bundle = active_replay_bundle(
                self.BENCHMARKS, config, self.QUOTA, self.WARMUP, 0
            )
            assert bundle is not None and bundle.vec_cache is not None
            monkeypatch.setenv("REPRO_NO_REPLAY", "1")
            fused = self._run(config)
            monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
            generic = self._run(config)
        finally:
            clear_replay_manifest()
        assert vec == baseline
        assert fused == baseline
        assert generic == baseline
