"""Tests for the single- and multi-programmed simulation drivers."""

import pytest

from repro.core.adapt import AdaptPolicy
from repro.sim.build import build_hierarchy, resolve_policy
from repro.sim.multi import run_workload
from repro.sim.single import AloneCache, run_alone
from repro.trace.workloads import Workload


class TestResolvePolicy:
    def test_adapt_gets_config_knobs(self, tiny_config):
        policy = resolve_policy("adapt_bp32", tiny_config)
        policy.bind(tiny_config.llc.num_sets, 16, 2)
        assert policy.samplers[0].num_monitor_sets == tiny_config.monitor_sets

    def test_instance_passthrough(self, tiny_config):
        instance = AdaptPolicy()
        assert resolve_policy(instance, tiny_config) is instance

    def test_plain_names(self, tiny_config):
        assert resolve_policy("lru", tiny_config).name == "lru"


class TestBuildHierarchy:
    def test_structure(self, tiny_config):
        h = build_hierarchy(tiny_config, "tadrrip")
        assert h.num_cores == tiny_config.num_cores
        assert len(h.l1s) == len(h.l2s) == 4
        assert h.llc.num_sets == tiny_config.llc.num_sets
        assert h.llc.policy.name == "tadrrip"

    def test_l2_runs_drrip(self, tiny_config):
        h = build_hierarchy(tiny_config, "lru")
        assert h.l2s[0].policy.name == "drrip"


class TestRunAlone:
    def test_returns_sane_snapshot(self, tiny_config):
        result = run_alone("mcf", tiny_config, quota=1200, warmup=300)
        assert result.benchmark == "mcf"
        assert 0 < result.ipc <= 4.0
        assert result.snapshot.accesses == 1200

    def test_monitor_measures_footprint(self, tiny_config):
        result = run_alone(
            "mcf", tiny_config, quota=1500, warmup=0, monitor=True,
            monitor_all_sets=True,
        )
        assert set(result.footprints) == {"sampled", "all"}
        assert result.footprints["all"] > 0

    def test_thrashing_app_measures_high_footprint(self, tiny_config):
        lbm = run_alone("lbm", tiny_config, quota=2500, warmup=0, monitor=True)
        calc = run_alone("calc", tiny_config, quota=2500, warmup=0, monitor=True)
        assert lbm.footprints["sampled"] > calc.footprints["sampled"]

    def test_unknown_benchmark(self, tiny_config):
        with pytest.raises(ValueError):
            run_alone("nosuch", tiny_config)


class TestAloneCache:
    def test_memoises(self, tiny_config):
        cache = AloneCache(tiny_config, quota=800, warmup=100)
        first = cache.result("deal")
        second = cache.result("deal")
        assert first is second

    def test_ipcs_order(self, tiny_config):
        cache = AloneCache(tiny_config, quota=800, warmup=100)
        ipcs = cache.ipcs(("deal", "lbm"))
        assert ipcs[0] == cache.ipc("deal")
        assert ipcs[1] == cache.ipc("lbm")
        assert ipcs[0] > ipcs[1]


class TestRunWorkload:
    def test_shapes(self, tiny_config):
        workload = Workload("t", ("calc", "lbm", "mcf", "deal"))
        result = run_workload(workload, tiny_config, "adapt_bp32", quota=1000, warmup=200)
        assert len(result.snapshots) == 4
        assert result.benchmarks == workload.benchmarks
        assert result.policy == "adapt_bp32"
        assert "adapt" in result.policy_state

    def test_core_count_adapts_to_workload(self, tiny_config):
        workload = Workload("t", ("calc", "lbm"))
        result = run_workload(workload, tiny_config, "lru", quota=500, warmup=0)
        assert len(result.snapshots) == 2

    def test_interference_reduces_ipc(self, tiny_config):
        alone = run_alone("bzip", tiny_config, quota=1200, warmup=300)
        shared = run_workload(
            Workload("t", ("bzip", "lbm", "milc", "STRM")),
            tiny_config,
            "lru",
            quota=1200,
            warmup=300,
        )
        assert shared.snapshots[0].ipc < alone.ipc

    def test_per_app_mapping(self, tiny_config):
        workload = Workload("t", ("calc", "lbm", "mcf", "deal"))
        result = run_workload(workload, tiny_config, "lru", quota=400, warmup=0)
        per_app = result.per_app()
        assert set(per_app) == set(workload.benchmarks)
