"""Unit tests for result records."""

import pytest

from repro.cpu.core import CoreSnapshot
from repro.sim.results import SingleRunResult, WorkloadResult


def snap(ipc_cycles=(1000.0, 2000.0), llc_misses=10):
    instructions, cycles = ipc_cycles
    return CoreSnapshot(
        instructions=instructions,
        cycles=cycles,
        accesses=100,
        l1_misses=50,
        l2_misses=30,
        llc_accesses=30,
        llc_misses=llc_misses,
        llc_bypasses=2,
    )


class TestSingleRunResult:
    def test_ipc_and_mpki_delegate(self):
        result = SingleRunResult("mcf", "cfg", "tadrrip", snap())
        assert result.ipc == pytest.approx(0.5)
        assert result.l2_mpki == pytest.approx(30.0)

    def test_footprints_default_empty(self):
        result = SingleRunResult("mcf", "cfg", "tadrrip", snap())
        assert result.footprints == {}


class TestWorkloadResult:
    def _result(self):
        return WorkloadResult(
            workload_name="w",
            benchmarks=("a", "b", "a"),
            config_name="cfg",
            policy="lru",
            snapshots=[snap(), snap((500.0, 2000.0)), snap(llc_misses=99)],
        )

    def test_ipcs(self):
        assert self._result().ipcs == [0.5, 0.25, 0.5]

    def test_llc_mpkis(self):
        result = self._result()
        assert result.llc_mpkis[0] == pytest.approx(10.0)

    def test_per_app_first_instance_wins(self):
        per_app = self._result().per_app()
        assert set(per_app) == {"a", "b"}
        assert per_app["a"].llc_misses == 10  # core 0's, not core 2's
