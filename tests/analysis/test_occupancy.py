"""Tests for LLC occupancy profiling."""


from repro.analysis.occupancy import measure_occupancy
from repro.trace.workloads import Workload

MIX = Workload("occ", ("lbm", "bzip", "deal", "omn"))


class TestOccupancy:
    def test_shares_are_fractions_summing_at_most_one(self, tiny_config):
        profile = measure_occupancy(
            MIX, tiny_config, "lru", quota=3000, warmup=500, sample_every=500
        )
        assert profile.samples > 0
        assert all(0.0 <= s <= 1.0 for s in profile.mean_share)
        assert sum(profile.mean_share) <= 1.0 + 1e-9

    def test_lru_lets_the_thrasher_dominate(self, tiny_config):
        profile = measure_occupancy(
            MIX, tiny_config, "lru", quota=3000, warmup=500, sample_every=500
        )
        shares = profile.by_app()
        # Under LRU the thrasher's MRU insertions appropriate the cache.
        assert shares["lbm"] > shares["deal"]

    def test_adapt_shrinks_the_thrasher_share(self, tiny_config):
        lru = measure_occupancy(
            MIX, tiny_config, "lru", quota=4000, warmup=1000, sample_every=500
        ).by_app()
        adapt = measure_occupancy(
            MIX, tiny_config, "adapt_bp32", quota=4000, warmup=1000, sample_every=500
        ).by_app()
        assert adapt["lbm"] < lru["lbm"]

    def test_render(self, tiny_config):
        profile = measure_occupancy(
            MIX, tiny_config, "lru", quota=1500, warmup=0, sample_every=500
        )
        text = profile.render()
        assert "occupancy" in text and "lbm" in text
