"""Unit tests for the Table 5 classifier."""

import pytest

from repro.analysis.classification import ClassifiedBenchmark, classify, is_thrashing
from repro.trace.benchmarks import BENCHMARKS


class TestTable5Rules:
    @pytest.mark.parametrize(
        "fpn,mpki,expected",
        [
            (2.0, 0.5, "VL"),
            (10.0, 0.99, "VL"),
            (10.0, 1.0, "L"),
            (10.0, 4.99, "L"),
            (10.0, 5.01, "M"),
            (15.99, 40.0, "M"),
            (16.0, 4.99, "M"),
            (16.0, 5.0, "H"),
            (32.0, 24.99, "H"),
            (32.0, 25.01, "VH"),
            (32.0, 48.0, "VH"),
        ],
    )
    def test_boundaries(self, fpn, mpki, expected):
        assert classify(fpn, mpki) == expected

    def test_reproduces_every_table4_row(self):
        """The classifier applied to Table 4's published numbers must give
        Table 4's published class.

        Two known paper-internal inconsistencies, where Table 4's label
        contradicts Table 5's own rule applied to Table 4's numbers:
        `hmm` (Fpn 7.15, MPKI 2.75 -> rule says L, table says M) and
        `astar` (Fpn 32, MPKI 4.44 -> rule says M, table says H).  We
        reproduce Table 5's rule and keep Table 4's labels, so those two
        are pinned separately.
        """
        expected_rule_label = {"hmm": "L", "astar": "M"}
        for name, spec in BENCHMARKS.items():
            rule = classify(spec.fpn, spec.l2_mpki)
            assert rule == expected_rule_label.get(name, spec.paper_class), name

    def test_thrashing_threshold(self):
        assert not is_thrashing(15.9)
        assert is_thrashing(16.0)


class TestClassifiedBenchmark:
    def test_match_flag(self):
        row = ClassifiedBenchmark("x", 3.0, 3.1, 0.5, "VL", "VL")
        assert row.matches_paper
        assert "VL" in row.render()

    def test_mismatch_annotated(self):
        row = ClassifiedBenchmark("x", 3.0, 3.1, 0.5, "VL", "L")
        assert not row.matches_paper
        assert "paper: L" in row.render()
