"""Byte-identity and state-equivalence proofs for the array-native capture pass.

The contract of :mod:`repro.cpu.capture_vec` is absolute: the artifact it
produces — meta, step streams, event records, checkpoints, markers — is
**byte-for-byte identical** to the scalar capture pass, on every golden
platform and on randomly drawn ones.  Three layers check it:

* **golden artifact differential** — every golden fixture's capture
  identity is captured on both kernels and compared component for
  component (42 cases dedupe to four distinct identities, so each pair is
  captured once and asserted per case);
* **golden record differential** — the replay kernels, fed a vec-captured
  bundle, must still reproduce the committed golden fixtures exactly;
* **property suite** — hypothesis-drawn platforms/budgets/seeds compare
  the full bundles (checkpoints embed the complete private-level state,
  so this is state-for-state equivalence), and the numpy hit walker is
  differentially tested against the scalar walker on synthetic state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import capture as cap
from repro.cpu import capture_vec
from repro.golden import (
    GOLDEN_WORKLOADS,
    MASTER_SEED,
    QUOTA,
    WARMUP,
    golden_config,
    iter_cases,
    run_case,
)
from repro.sim.config import CacheLevelConfig, SystemConfig
from tests.golden.test_golden_master import CASE_IDS, CASES, _load

BENCH_POOL = ("mcf", "libq", "gcc", "calc", "astar")


def _config(num_cores: int, prefetch: bool) -> SystemConfig:
    return SystemConfig(
        name="capture-vec-prop",
        num_cores=num_cores,
        l1=CacheLevelConfig(num_sets=8, ways=4, latency=3.0),
        l2=CacheLevelConfig(num_sets=8, ways=8, latency=14.0),
        llc=CacheLevelConfig(num_sets=64, ways=16, latency=24.0),
        monitor_sets=16,
        interval_misses=2_000,
        l1_next_line_prefetch=prefetch,
        l2_stride_prefetch=prefetch,
    )


def _bundle_blob(bundle: cap.CaptureBundle) -> dict:
    """Every byte the artifact serialises, in comparable form."""
    return {
        "meta": json.dumps(bundle.meta, sort_keys=True),
        "tapes": [
            {
                "steps": bytes(tape.steps),
                "events": tape.events_array().tobytes(),
                "checkpoints": json.dumps(tape.checkpoints, sort_keys=True),
                "baseline": tape.baseline,
                "finish": tape.finish,
                "length": tape.length,
            }
            for tape in bundle.tapes
        ],
    }


def _assert_identical(scalar: cap.CaptureBundle, vec: cap.CaptureBundle) -> None:
    a, b = _bundle_blob(scalar), _bundle_blob(vec)
    assert a["meta"] == b["meta"]
    assert len(a["tapes"]) == len(b["tapes"])
    for core, (ta, tb) in enumerate(zip(a["tapes"], b["tapes"])):
        for field in ("length", "baseline", "finish", "steps", "events", "checkpoints"):
            assert ta[field] == tb[field], f"core {core}: {field} differs"


# -- golden artifact differential ----------------------------------------------

#: The 42 golden cases collapse onto these capture identities (capture is
#: policy-independent); each pair of kernels runs once per identity.
_PAIR_CACHE: dict[tuple, tuple[cap.CaptureBundle, cap.CaptureBundle]] = {}


def _golden_pair(benchmarks: tuple[str, ...], platform: str):
    key = (benchmarks, platform)
    if key not in _PAIR_CACHE:
        from dataclasses import replace

        from repro.golden import GOLDEN_PLATFORMS

        config = replace(golden_config(), **GOLDEN_PLATFORMS[platform])
        scalar = cap.capture_workload(benchmarks, config, QUOTA, WARMUP, MASTER_SEED)
        vec = capture_vec.capture_workload_vec(
            benchmarks, config, QUOTA, WARMUP, MASTER_SEED
        )
        _PAIR_CACHE[key] = (scalar, vec)
    return _PAIR_CACHE[key]


class TestGoldenArtifactDifferential:
    """Scalar and vec captures are byte-identical on every golden case."""

    @pytest.mark.parametrize("policy,workload,benchmarks,platform", CASES, ids=CASE_IDS)
    def test_capture_identical(self, policy, workload, benchmarks, platform):
        scalar, vec = _golden_pair(tuple(benchmarks), platform)
        _assert_identical(scalar, vec)


# -- golden record differential ------------------------------------------------

#: One policy per platform family is enough: the capture is policy-blind,
#: so these pin that a vec-captured bundle drives both replay kernels to
#: the committed fixture exactly.
_RECORD_CASES = [
    ("adapt", "thrash-mix", "base"),
    ("lru", "friendly-mix", "base"),
    ("ship", "thrash-mix", "prefetch"),
    ("tadrrip", "friendly-mix", "prefetch"),
]


class TestGoldenRecordDifferential:
    @pytest.mark.parametrize("kernel", ["replay", "replay_vec"])
    @pytest.mark.parametrize("policy,workload,platform", _RECORD_CASES)
    def test_replay_of_vec_capture_matches_fixture(
        self, policy, workload, platform, kernel, monkeypatch
    ):
        # run_case's replay branches resolve the capture simulator from
        # the capture module's namespace, so swapping the name routes the
        # whole capture (including any live continuation) through the
        # array-native kernel.
        monkeypatch.setattr(cap, "PrivateCoreSim", capture_vec.VecPrivateCoreSim)
        from repro.golden import compare_records

        expected = _load(policy, workload, platform)
        actual = run_case(
            policy, GOLDEN_WORKLOADS[workload], platform=platform, kernel=kernel
        )
        assert compare_records(expected, actual) == []


# -- property suite ------------------------------------------------------------


class TestCaptureStateEquivalence:
    """Randomly drawn runs: full-bundle equality, checkpoints included.

    Checkpoints are complete private-level snapshots (L1 rows/stamps/
    dirty/reused/MRU clocks, L2 contents + DRRIP PSEL/ticker, prefetcher
    tables, instruction counts), so bundle equality *is* state-for-state
    equivalence at every boundary the capture pass crosses.
    """

    @settings(max_examples=6, deadline=None)
    @given(
        benchmarks=st.lists(
            st.sampled_from(BENCH_POOL), min_size=1, max_size=2, unique=True
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        quota=st.integers(min_value=150, max_value=600),
        warmup=st.integers(min_value=0, max_value=200),
        prefetch=st.booleans(),
        slack=st.sampled_from([0.0, 0.05, 1.0]),
    )
    def test_bundles_identical(self, benchmarks, seed, quota, warmup, prefetch, slack):
        benchmarks = tuple(benchmarks)
        config = _config(len(benchmarks), prefetch)
        scalar = cap.capture_workload(
            benchmarks, config, quota, warmup, seed, slack
        )
        vec = capture_vec.capture_workload_vec(
            benchmarks, config, quota, warmup, seed, slack
        )
        _assert_identical(scalar, vec)


class TestHitWalker:
    """The numpy window walker against the scalar walker on synthetic state."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_walkers_agree(self, data):
        num_sets = data.draw(st.sampled_from([2, 4, 8]))
        ways = data.draw(st.integers(min_value=1, max_value=4))
        n = data.draw(st.integers(min_value=1, max_value=80))
        rng_seed = data.draw(st.integers(min_value=0, max_value=2**16))
        rng = np.random.default_rng(rng_seed)

        # Mostly-resident rows: a dense address universe so draws hit often.
        universe = num_sets * 4
        rows = np.full((num_sets, ways), -1, dtype=np.int64)
        for s in range(num_sets):
            # Addresses mapping to set s (addr & mask == s), some slots empty.
            candidates = s + num_sets * rng.permutation(4)
            fill = rng.integers(0, ways + 1)
            rows[s, :fill] = candidates[:fill]
        a = rng.integers(0, universe, size=n).astype(np.int64)
        s = a & (num_sets - 1)
        w = rng.random(n) < 0.3

        def state():
            return (
                rows.copy(),
                rng.integers(1, 50, size=(num_sets, ways)).astype(np.int64),
                (rng.random((num_sets, ways)) < 0.5),
                (rng.random((num_sets, ways)) < 0.5),
                rng.integers(50, 100, size=num_sets).astype(np.int64),
            )

        base = state()
        py = tuple(arr.copy() for arr in base)
        vec = tuple(arr.copy() for arr in base)
        k_py = capture_vec._hits_py(a, s, w, 0, n, *py)
        k_vec = capture_vec._walk_hits_numpy(a, s, w, 0, n, *vec)
        assert k_py == k_vec
        for name, pa, va in zip(("rows", "stamp", "dirty", "reused", "nmru"), py, vec):
            assert np.array_equal(pa, va), f"{name} diverged after {k_py} hits"

    def test_window_doubles_across_long_runs(self):
        # One set, one resident address, a run far beyond the first window:
        # every access hits, and the stamps advance as one progression.
        rows = np.array([[7]], dtype=np.int64)
        n = 100
        a = np.full(n, 7, dtype=np.int64)
        s = np.zeros(n, dtype=np.int64)
        w = np.zeros(n, dtype=bool)
        stamp = np.array([[3]], dtype=np.int64)
        dirty = np.zeros((1, 1), dtype=bool)
        reused = np.zeros((1, 1), dtype=bool)
        nmru = np.array([10], dtype=np.int64)
        k = capture_vec._walk_hits_numpy(a, s, w, 0, n, rows, stamp, dirty, reused, nmru)
        assert k == n
        assert stamp[0, 0] == 10 + n - 1
        assert nmru[0] == 10 + n
        assert reused[0, 0] and not dirty[0, 0]


class TestEligibility:
    def test_backend_resolves_without_numba(self):
        # Never raises, whatever the container ships; numpy is the floor.
        assert capture_vec.warm_backend() in ("numpy", "numba")

    def test_forced_numpy_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_VEC", "numpy")
        assert capture_vec.vec_backend() == "numpy"
        assert capture_vec.warm_backend() == "numpy"

    def test_fresh_bundle_has_no_content_key(self):
        scalar, vec = _golden_pair(("mcf", "libq"), "base")
        assert vec.content_key is None and scalar.content_key is None
