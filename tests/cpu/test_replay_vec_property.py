"""Property-based equivalence: array-native replay vs the scalar replay.

Hypothesis draws random run parameters — workload mix, master seed,
budgets, prefetch shape, capture slack — captures the platform once, and
replays the *same bundle* through the scalar kernel and through
``replay_vec``.  State must match element for element at the run's cut
point: per-set residency (addrs/dirty/owner/reused/occupancy), the
dispatch-plan state (RRPV and stack rows, duelling PSELs, SHCT and
signature/outcome arrays, EAF Bloom bits, monitor samplers), the per-core
snapshots, the full LLC stats block and the engine clock.  Random budgets
move the warm-up baseline, the interval clock and the completion cut
across every checkpoint shape the fixtures never pin; ``slack=0.0``
forces the live-tail extension (and therefore the vec kernel's decode-
plane invalidation) on every example, and sharing one bundle between the
two kernels exercises the sweep-shaped plan cache.

A second suite drives the speculate-and-verify trajectory walker
directly against the scalar clock recurrence on adversarial step/constant
combinations — including the non-converged ``None`` outcome, which the
kernel must treat as "fall back", never as "approximate".
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import replay_vec
from repro.cpu.capture import capture_workload
from repro.cpu.engine import MulticoreEngine
from repro.cpu.replay import run_replay
from repro.cpu.replay_vec import _trajectory, run_replay_vec
from repro.golden import golden_config
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload
from tests.policies.test_fastops_property import _policy_state

#: Every inline family plus a wrapper composition (pure ``_CALL`` dispatch).
REPLAY_POLICIES = ("lru", "dip", "tadrrip", "ship", "eaf", "adapt_bp32", "tadrrip+bp")

BENCH_POOL = ("mcf", "libq", "gcc", "calc", "astar")


def _config(prefetch):
    config = golden_config()
    if prefetch:
        config = replace(config, l1_next_line_prefetch=True, l2_stride_prefetch=True)
    return config


def _engine(policy_name, benchmarks, seed, quota, warmup, prefetch):
    config = _config(prefetch)
    hierarchy = build_hierarchy(config, policy_name)
    sources = build_sources(Workload("prop", benchmarks), config, seed)
    return MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )


def _observe(engine, snapshots):
    llc = engine.hierarchy.llc
    return (
        [s.to_dict() for s in snapshots],
        llc.stats.snapshot(),
        # Per-set residency, element for element.
        llc.addrs,
        llc.dirty,
        llc.owner,
        llc.reused,
        list(llc.occupancy),
        _policy_state(llc.policy),
        engine.intervals_completed,
        engine.now,
    )


@pytest.mark.parametrize("policy_name", REPLAY_POLICIES)
@settings(max_examples=6, deadline=None)
@given(
    bench_a=st.sampled_from(BENCH_POOL),
    bench_b=st.sampled_from(BENCH_POOL),
    seed=st.integers(min_value=0, max_value=2**16),
    quota=st.integers(min_value=150, max_value=600),
    warmup=st.integers(min_value=0, max_value=200),
    prefetch=st.booleans(),
    slack=st.sampled_from((0.0, 0.05, 1.0)),
)
def test_replay_vec_matches_scalar_replay_state(
    policy_name, bench_a, bench_b, seed, quota, warmup, prefetch, slack
):
    benchmarks = (bench_a, bench_b)
    bundle = capture_workload(
        benchmarks, _config(prefetch), quota, warmup, seed, slack=slack
    )

    scalar = _engine(policy_name, benchmarks, seed, quota, warmup, prefetch)
    expected_snaps = run_replay(scalar, bundle)
    assert expected_snaps is not None, "platform must be replay eligible"
    expected = _observe(scalar, expected_snaps)

    engine = _engine(policy_name, benchmarks, seed, quota, warmup, prefetch)
    vec_snaps = run_replay_vec(engine, bundle)
    assert vec_snaps is not None, "platform must be replay-vec eligible"
    assert _observe(engine, vec_snaps) == expected


class TestEligibility:
    def test_mismatched_bundle_returns_none(self):
        bundle = capture_workload(("mcf", "libq"), golden_config(), 200, 50, 0)
        other = _engine("lru", ("mcf", "libq"), 0, 300, 50, False)  # quota differs
        assert run_replay_vec(other, bundle) is None

    def test_plan_cache_attaches_to_bundle(self):
        bundle = capture_workload(("mcf", "libq"), golden_config(), 200, 50, 0)
        assert bundle.vec_cache is None
        engine = _engine("ship", ("mcf", "libq"), 0, 200, 50, False)
        assert run_replay_vec(engine, bundle) is not None
        cache = bundle.vec_cache
        assert set(cache["cores"]) == {0, 1}
        assert cache["sigs"], "SHiP runs must cache the folded signatures"
        # A second policy over the same bundle reuses the decode planes.
        again = _engine("lru", ("mcf", "libq"), 0, 200, 50, False)
        assert run_replay_vec(again, bundle) is not None
        assert bundle.vec_cache is cache


# -- the clock walker, in isolation --------------------------------------------


def _serial_walk(codes, t0, comp, imlp, l1, l2):
    t = t0
    out = [t]
    for code in codes:
        if code:
            t_l2 = t + l1
            done = t_l2 + l2
            latency = done - t
            stall = latency - l1
            if stall < 0.0:
                stall = 0.0
            t = t + comp + stall * imlp
        else:
            t = t + comp
        out.append(t)
    return out


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    m=st.integers(min_value=0, max_value=700),
    comp=st.sampled_from((1.33, 2.2, 2.48, 3.4, 8.61, 11.2, 0.7315)),
    mlp=st.sampled_from((1.5, 2.0, 3.0)),
    t0=st.sampled_from((0.0, 123.456, 70_000.25, 3.1e6)),
    latencies=st.sampled_from(((3.0, 14.0), (4.0, 12.0), (1.0, 10.0))),
    density=st.sampled_from((0.0, 0.05, 0.3, 0.7, 1.0)),
)
def test_trajectory_walker_is_bit_exact(data, m, comp, mlp, t0, latencies, density):
    l1, l2 = latencies
    codes = np.asarray(
        data.draw(
            st.lists(
                st.booleans().map(int) if density not in (0.0, 1.0) else st.just(int(density)),
                min_size=m,
                max_size=m,
            )
        ),
        dtype=np.uint8,
    )
    expected = _serial_walk(codes, t0, comp, 1.0 / mlp, l1, l2)
    traj = _trajectory(codes, t0, comp, 1.0 / mlp, l1, l2)
    if traj is None:
        return  # non-convergence is a legal outcome: the kernel walks serially
    assert traj.shape[0] == m + 1
    assert traj.tolist() == expected


def test_trajectory_walker_handles_empty_segment():
    traj = _trajectory(np.empty(0, dtype=np.uint8), 42.5, 1.33, 1 / 1.5, 3.0, 14.0)
    assert traj.tolist() == [42.5]


def test_backend_resolution_without_numba(monkeypatch):
    """In an environment without numba the backend must resolve to numpy —
    for the auto value *and* for an explicit ``numba`` request."""
    try:
        import numba  # noqa: F401

        has_numba = True
    except ImportError:
        has_numba = False
    monkeypatch.setenv("REPRO_REPLAY_VEC", "numpy")
    assert replay_vec.vec_backend() == "numpy"
    monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
    assert replay_vec.vec_backend() == ("numba" if has_numba else "numpy")
    monkeypatch.setenv("REPRO_REPLAY_VEC", "numba")
    assert replay_vec.vec_backend() == ("numba" if has_numba else "numpy")
    # warm_backend resolves identically and is safe to call repeatedly.
    assert replay_vec.warm_backend() == replay_vec.vec_backend()
