"""Unit tests for the LLC-filtered replay engine: capture artifacts,
eligibility/fallback behaviour, live-tail continuation, the kill switch,
and the runner's capture-job scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu import replay as replay_mod
from repro.cpu.capture import CoreTape, capture_workload
from repro.cpu.engine import MulticoreEngine
from repro.cpu.replay import run_replay
from repro.golden import QUOTA, WARMUP, golden_config
from repro.runner import ParallelRunner, ResultStore, WorkloadJob
from repro.runner.replaystore import (
    ReplayStore,
    active_replay_bundle,
    clear_replay_manifest,
    install_replay_manifest,
    load_bundle,
    replay_key,
    save_bundle,
)
from repro.sim.build import build_hierarchy, build_sources, capture_identity
from repro.trace.workloads import Workload

BENCHMARKS = ("mcf", "libq")
WORKLOAD = Workload("g", BENCHMARKS)


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_replay_manifest()
    yield
    clear_replay_manifest()


def _engine(policy="tadrrip", config=None, quota=QUOTA, warmup=WARMUP):
    config = config or golden_config()
    hierarchy = build_hierarchy(config, policy)
    sources = build_sources(WORKLOAD, config, 0)
    return MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )


@pytest.fixture(scope="module")
def bundle():
    return capture_workload(BENCHMARKS, golden_config(), QUOTA, WARMUP, 0)


class TestCapture:
    def test_tape_shape(self, bundle):
        meta = bundle.meta
        assert meta["length"] >= QUOTA + WARMUP
        for tape in bundle.tapes:
            assert tape.length == meta["length"]
            assert len(tape.steps) == meta["length"]
            # Events are emitted in nondecreasing access order.
            assert all(
                a <= b for a, b in zip(tape.ev_step, tape.ev_step[1:])
            )
            # Exactly one baseline and one completion marker per core.
            assert tape.ev_kind.count(4) == 1
            assert tape.ev_kind.count(5) == 1
            assert tape.baseline is not None and tape.finish is not None
            # Checkpoints start at the pristine state and end at the tape end.
            assert tape.checkpoints[0]["index"] == 0
            assert tape.checkpoints[-1]["index"] == meta["length"]

    def test_replay_matches_fused_snapshots(self, bundle):
        fused = _engine("ship")
        expected = fused.run()
        engine = _engine("ship")
        got = run_replay(engine, bundle)
        assert got == expected
        assert engine.intervals_completed == fused.intervals_completed
        assert engine.now == fused.now

    def test_finalize_false_skips_private_reconstruction(self, bundle):
        fused = _engine("lru")
        expected = fused.run()
        engine = _engine("lru")
        got = run_replay(engine, bundle, finalize=False)
        assert got == expected
        # LLC-side state is exact; the discarded private levels stay pristine.
        assert engine.hierarchy.llc.stats.snapshot() == fused.hierarchy.llc.stats.snapshot()
        assert engine.hierarchy.l1s[0].stats.demand_hits[0] == 0


class TestEligibility:
    def test_quota_mismatch_falls_back(self, bundle):
        engine = _engine(quota=QUOTA + 1)
        assert run_replay(engine, bundle) is None

    def test_seed_mismatch_falls_back(self, bundle):
        config = golden_config()
        hierarchy = build_hierarchy(config, "lru")
        sources = build_sources(WORKLOAD, config, master_seed=7)
        engine = MulticoreEngine(
            hierarchy, sources, quota_per_core=QUOTA, warmup_accesses=WARMUP
        )
        assert run_replay(engine, bundle) is None

    def test_benchmark_mismatch_falls_back(self, bundle):
        config = golden_config()
        hierarchy = build_hierarchy(config, "lru")
        sources = build_sources(Workload("g", ("gcc", "calc")), config, 0)
        engine = MulticoreEngine(
            hierarchy, sources, quota_per_core=QUOTA, warmup_accesses=WARMUP
        )
        assert run_replay(engine, bundle) is None

    def test_duck_typed_source_falls_back(self, bundle):
        class _NextAccessOnly:
            def __init__(self, inner):
                self._inner = inner

            def next_access(self):
                return self._inner.next_access()

            def __getattr__(self, name):
                if name == "next_chunk":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        engine = _engine()
        engine.sources = [_NextAccessOnly(s) for s in engine.sources]
        assert run_replay(engine, bundle) is None

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        assert not replay_mod.replay_enabled()
        monkeypatch.delenv("REPRO_NO_REPLAY")
        # Replay is morally part of the fast path: the fast-path kill
        # switch disables it too (differential runs stay generic).
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert not replay_mod.replay_enabled()
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert replay_mod.replay_enabled()


class TestLiveTail:
    def test_zero_slack_run_extends_tape_and_stays_exact(self):
        expected = _engine("dip").run()
        lean = capture_workload(BENCHMARKS, golden_config(), QUOTA, WARMUP, 0, slack=0.0)
        assert lean.meta["length"] == QUOTA + WARMUP
        engine = _engine("dip")
        got = run_replay(engine, lean)
        assert got == expected
        # At least one core outran the captured stream and was extended.
        assert any(tape.length > lean.meta["length"] for tape in lean.tapes)
        # The extension persists in the bundle: a second replay reuses it.
        lengths = [tape.length for tape in lean.tapes]
        assert run_replay(_engine("dip"), lean) == expected
        assert [tape.length for tape in lean.tapes] == lengths


class TestLlcSilentCore:
    def test_silent_overrunning_core_cannot_stall_the_run(self):
        """A core whose working set fits its private levels emits no LLC
        events while it overruns; replay must keep making bounded progress
        (provisional wake-ups) instead of extending its tape forever."""
        from dataclasses import replace

        from repro.sim.config import CacheLevelConfig

        # An L2 large enough to hold twolf's whole working set: after
        # warm-up the core goes LLC-silent and overruns at L2-hit speed
        # while mcf (slow, miss-heavy) finishes last.
        config = replace(
            golden_config(), l2=CacheLevelConfig(num_sets=64, ways=8, latency=14.0)
        )
        workload = Workload("g", ("twolf", "mcf"))

        def engine(policy):
            hierarchy = build_hierarchy(config, policy)
            sources = build_sources(workload, config, 0)
            return MulticoreEngine(
                hierarchy,
                sources,
                quota_per_core=1200,
                interval_misses=config.effective_interval,
                warmup_accesses=300,
            )

        expected = engine("ship").run()
        bundle = capture_workload(
            ("twolf", "mcf"), config, 1200, 300, 0, slack=0.0
        )
        assert run_replay(engine("ship"), bundle) == expected
        tape = bundle.tapes[0]
        extension = tape.length - bundle.meta["length"]
        tail_events = sum(1 for s in tape.ev_step if s >= bundle.meta["length"])
        assert extension >= 4096 and tail_events == 0


class TestArtifactStore:
    def test_save_load_round_trip(self, bundle, tmp_path):
        path = tmp_path / "replay-x.npz"
        save_bundle(bundle, path)
        loaded = load_bundle(path)
        assert loaded is not None
        assert loaded.meta == bundle.meta
        for a, b in zip(loaded.tapes, bundle.tapes):
            assert a.steps == b.steps
            assert a.ev_step == b.ev_step
            assert a.ev_kind == b.ev_kind
            assert a.ev_addr == b.ev_addr
            assert a.ev_pc == b.ev_pc
            assert a.checkpoints == b.checkpoints
            assert a.baseline == b.baseline and a.finish == b.finish
        # A loaded bundle drives the replay kernel identically.
        expected = _engine("eaf").run()
        assert run_replay(_engine("eaf"), loaded) == expected

    def test_corrupt_artifact_loads_as_none(self, tmp_path):
        path = tmp_path / "replay-bad.npz"
        path.write_bytes(b"not an npz")
        assert load_bundle(path) is None
        missing = tmp_path / "replay-missing.npz"
        assert load_bundle(missing) is None

    def test_materialise_is_content_addressed_and_reused(self, tmp_path):
        store = ReplayStore(tmp_path)
        config = golden_config()
        entry = store.materialise(BENCHMARKS, config, 200, 50, 0)
        ident = capture_identity(BENCHMARKS, config, 200, 50, 0)
        from repro.cpu.capture import replay_slack

        assert entry["path"] == str(
            tmp_path / f"replay-{replay_key(ident, replay_slack())}.npz"
        )
        assert store.stats == {"captured": 1, "reused": 0}
        store.materialise(BENCHMARKS, config, 200, 50, 0)
        assert store.stats == {"captured": 1, "reused": 1}

    def test_manifest_registry_round_trip(self, tmp_path):
        store = ReplayStore(tmp_path)
        config = golden_config()
        entry = store.materialise(BENCHMARKS, config, 200, 50, 0)
        install_replay_manifest([entry])
        assert active_replay_bundle(BENCHMARKS, config, 200, 50, 0) is not None
        assert active_replay_bundle(BENCHMARKS, config, 200, 51, 0) is None
        clear_replay_manifest()
        assert active_replay_bundle(BENCHMARKS, config, 200, 50, 0) is None


class TestRunnerIntegration:
    POLICIES = ("lru", "srrip", "ship")

    def _jobs(self, config, quota=400, warmup=100):
        return [
            WorkloadJob.for_workload(
                WORKLOAD, config, p, quota=quota, warmup=warmup, master_seed=0
            )
            for p in self.POLICIES
        ]

    def test_sweep_results_identical_with_and_without_replay(
        self, tmp_path, monkeypatch
    ):
        config = golden_config()
        store = ResultStore(tmp_path / "results")
        replayed = ParallelRunner(jobs=1, store=store, use_cache=False).run(
            self._jobs(config)
        )
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        fused = ParallelRunner(jobs=1, store=store, use_cache=False).run(
            self._jobs(config)
        )
        assert [r.to_dict() for r in replayed] == [r.to_dict() for r in fused]

    def test_sweep_materialises_one_artifact(self, tmp_path):
        config = golden_config()
        store = ResultStore(tmp_path / "results")
        runner = ParallelRunner(jobs=1, store=store)
        runner.run(self._jobs(config))
        artifacts = list((tmp_path / "results" / "traces").glob("replay-*.npz"))
        assert len(artifacts) == 1

    def test_single_job_batches_skip_capture(self, tmp_path):
        config = golden_config()
        store = ResultStore(tmp_path / "results")
        runner = ParallelRunner(jobs=1, store=store)
        runner.run(self._jobs(config)[:1])
        assert not list((tmp_path / "results" / "traces").glob("replay-*.npz"))


class TestTapeArrays:
    def test_arrays_round_trip_native_types(self):
        tape = CoreTape()
        tape.steps.extend([0, 1, 2])
        tape.ev_step.extend([2, 2])
        tape.ev_kind.extend([3, 5])
        tape.ev_addr.extend([123, 0])
        tape.ev_pc.extend([7, 0])
        events = tape.events_array()
        assert events["step"].tolist() == [2, 2]
        assert events["kind"].tolist() == [3, 5]
        steps = tape.steps_array()
        assert steps.dtype == np.uint8
        assert steps.tolist() == [0, 1, 2]
