"""Unit tests for the multi-core engine and core model."""

import pytest

from repro.cpu.core import CoreSnapshot
from repro.cpu.engine import MulticoreEngine
from repro.sim.build import build_hierarchy, build_sources, geometry_of
from repro.trace.benchmarks import BENCHMARKS, TraceSource
from repro.trace.workloads import Workload


def run_engine(tiny_config, benchmarks, quota=1500, warmup=0, **kw):
    workload = Workload("t", benchmarks)
    config = tiny_config.with_cores(len(benchmarks))
    hierarchy = build_hierarchy(config, "lru")
    sources = build_sources(workload, config)
    engine = MulticoreEngine(
        hierarchy, sources, quota_per_core=quota, warmup_accesses=warmup, **kw
    )
    return engine, engine.run()


class TestCompletion:
    def test_all_cores_reach_quota(self, tiny_config):
        _, snaps = run_engine(tiny_config, ("calc", "lbm", "mcf", "deal"))
        assert all(s.accesses == 1500 for s in snaps)

    def test_instructions_scale_with_apki(self, tiny_config):
        _, snaps = run_engine(tiny_config, ("calc", "lbm", "mcf", "deal"))
        geo = geometry_of(tiny_config)
        for snap, name in zip(snaps, ("calc", "lbm", "mcf", "deal")):
            src = TraceSource(BENCHMARKS[name], geo, 0)
            expected = 1500 * src.instructions_per_access
            assert snap.instructions == pytest.approx(expected, rel=0.01)

    def test_cycles_positive_and_finite(self, tiny_config):
        _, snaps = run_engine(tiny_config, ("calc", "lbm", "mcf", "deal"))
        assert all(0 < s.cycles < 1e9 for s in snaps)

    def test_light_app_has_higher_ipc_than_heavy(self, tiny_config):
        _, snaps = run_engine(tiny_config, ("calc", "lbm", "mcf", "deal"))
        assert snaps[0].ipc > snaps[1].ipc


class TestIntervalClock:
    def test_intervals_fire_on_miss_count(self, tiny_config):
        engine, _ = run_engine(
            tiny_config, ("lbm", "milc", "libq", "STRM"), interval_misses=500
        )
        assert engine.intervals_completed >= 2

    def test_first_interval_divisor(self, tiny_config):
        e1, _ = run_engine(
            tiny_config, ("lbm", "milc", "libq", "STRM"),
            interval_misses=100_000, first_interval_divisor=100,
        )
        e2, _ = run_engine(
            tiny_config, ("lbm", "milc", "libq", "STRM"),
            interval_misses=100_000,
        )
        assert e1.intervals_completed >= 1
        assert e2.intervals_completed == 0

    def test_default_interval_from_llc_blocks(self, tiny_config):
        workload = Workload("t", ("calc", "deal", "eon", "h26"))
        hierarchy = build_hierarchy(tiny_config, "lru")
        sources = build_sources(workload, tiny_config)
        engine = MulticoreEngine(hierarchy, sources, quota_per_core=10)
        assert engine.interval_misses == 4 * hierarchy.llc.num_blocks


class TestWarmup:
    def test_warmup_excluded_from_snapshot(self, tiny_config):
        _, cold = run_engine(tiny_config, ("mcf", "lbm", "deal", "calc"), quota=1000)
        _, warm = run_engine(
            tiny_config, ("mcf", "lbm", "deal", "calc"), quota=1000, warmup=1000
        )
        # Warmed runs must report no more misses than cold runs (cold-start
        # misses are excluded from the measured window).
        assert warm[0].llc_misses <= cold[0].llc_misses
        assert all(s.accesses == 1000 for s in warm)

    def test_warmup_does_not_change_measured_quota(self, tiny_config):
        _, snaps = run_engine(
            tiny_config, ("calc", "deal", "eon", "h26"), quota=500, warmup=200
        )
        assert all(s.accesses == 500 for s in snaps)


class TestValidation:
    def test_source_count_mismatch_rejected(self, tiny_config):
        workload = Workload("t", ("calc", "deal", "eon", "h26"))
        hierarchy = build_hierarchy(tiny_config, "lru")
        sources = build_sources(workload, tiny_config)[:2]
        with pytest.raises(ValueError):
            MulticoreEngine(hierarchy, sources, quota_per_core=10)

    def test_zero_quota_rejected(self, tiny_config):
        workload = Workload("t", ("calc", "deal", "eon", "h26"))
        hierarchy = build_hierarchy(tiny_config, "lru")
        sources = build_sources(workload, tiny_config)
        with pytest.raises(ValueError):
            MulticoreEngine(hierarchy, sources, quota_per_core=0)


class TestSnapshotMetrics:
    def test_mpki_definitions(self):
        snap = CoreSnapshot(
            instructions=10_000,
            cycles=20_000,
            accesses=500,
            l1_misses=100,
            l2_misses=50,
            llc_accesses=50,
            llc_misses=20,
            llc_bypasses=5,
        )
        assert snap.ipc == pytest.approx(0.5)
        assert snap.l2_mpki == pytest.approx(5.0)
        assert snap.llc_mpki == pytest.approx(2.0)

    def test_zero_cycles_ipc(self):
        snap = CoreSnapshot(0, 0, 0, 0, 0, 0, 0, 0)
        assert snap.ipc == 0.0
