"""Snapshot build/load round-trips and the regression detector."""

import copy
import math

import pytest

from repro.report.regress import Movement
from repro.report import (
    build_snapshot,
    compare,
    config_hash,
    load_snapshot,
    report_from_store,
    write_snapshot,
)


@pytest.fixture
def report(synth):
    synth.put_suite(
        policy_ipcs={
            "tadrrip": (1.0,) * 4,
            "lru": (0.9,) * 4,
            "ship": (1.1,) * 4,
        },
        workloads=("mix-0", "mix-1"),
        seeds=(0, 1),
    )
    return report_from_store(synth.store, n_resamples=100)


@pytest.fixture
def snapshot(report):
    return build_snapshot(report)


class TestSnapshot:
    def test_shape(self, report, snapshot):
        assert snapshot["schema"] == 1
        assert snapshot["baseline"] == "tadrrip"
        assert snapshot["seeds"] == [0, 1]
        assert snapshot["workload_slots"] == ["mix-0", "mix-1"]
        assert snapshot["cells"] == 12
        assert snapshot["config_hash"] == config_hash(report)
        assert snapshot["run_id"].startswith("tournament-")
        assert snapshot["kernel"] is None

    def test_policy_rows_follow_ranking(self, report, snapshot):
        rows = snapshot["policies"]
        assert set(rows) == {"tadrrip", "lru", "ship"}
        assert rows["ship"]["rank"] == 1
        assert rows["lru"]["rank"] == 3
        assert rows["ship"]["rel_ws_geomean"] == pytest.approx(1.1)
        lo, hi = rows["ship"]["rel_ws_ci"]
        assert lo <= 1.1 <= hi

    def test_write_load_round_trip(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, tmp_path / "BENCH_tournament.json")
        assert load_snapshot(path) == snapshot
        assert path.read_text().endswith("\n")

    def test_load_rejects_unknown_schema(self, snapshot, tmp_path):
        snapshot["schema"] = 99
        path = write_snapshot(snapshot, tmp_path / "bad.json")
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_config_hash_ignores_metric_values(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4, "lru": (0.9,) * 4})
        first = config_hash(report_from_store(synth.store, n_resamples=50))
        # Overwrite lru with different IPCs: same identities, new numbers.
        synth.put_workload(policy="lru", ipcs=(0.7,) * 4)
        second = config_hash(report_from_store(synth.store, n_resamples=50))
        assert first == second

    def test_config_hash_tracks_the_grid(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4})
        first = config_hash(report_from_store(synth.store, n_resamples=50))
        synth.put_suite(policy_ipcs={"lru": (0.9,) * 4})
        second = config_hash(report_from_store(synth.store, n_resamples=50))
        assert first != second


class TestCompare:
    def test_identical_snapshots_stay_silent(self, snapshot):
        diff = compare(snapshot, copy.deepcopy(snapshot))
        assert diff.comparable
        assert not diff.has_regressions
        assert not diff.improvements
        assert len(diff.movements) == 3
        assert "no significant movement" in diff.render()

    def test_injected_regression_is_flagged(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["policies"]["ship"]["rel_ws_geomean"] *= 1.05
        diff = compare(snapshot, baseline)
        assert diff.has_regressions
        assert [m.policy for m in diff.regressions] == ["ship"]
        assert "REGRESSION: ship" in diff.render()

    def test_improvement_is_significant_but_not_a_regression(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["policies"]["ship"]["rel_ws_geomean"] *= 0.95
        diff = compare(snapshot, baseline)
        assert not diff.has_regressions
        assert [m.policy for m in diff.improvements] == ["ship"]
        assert "improvement: ship" in diff.render()

    def test_sub_threshold_movement_ignored(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["policies"]["ship"]["rel_ws_geomean"] *= 1.005
        diff = compare(snapshot, baseline)
        assert not diff.has_regressions

    def test_movement_inside_ci_ignored(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        row = baseline["policies"]["ship"]
        row["rel_ws_geomean"] *= 1.05
        # Widen the *current* CI so the moved baseline still falls inside.
        snapshot["policies"]["ship"]["rel_ws_ci"] = [0.5, 2.0]
        diff = compare(snapshot, baseline)
        assert not diff.has_regressions

    def test_threshold_is_tunable(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["policies"]["ship"]["rel_ws_geomean"] *= 1.05
        diff = compare(snapshot, baseline, threshold=0.10)
        assert not diff.has_regressions

    def test_config_hash_mismatch_is_not_comparable(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["config_hash"] = "0" * 64
        baseline["policies"]["ship"]["rel_ws_geomean"] *= 2.0
        diff = compare(snapshot, baseline)
        assert not diff.comparable
        assert not diff.has_regressions
        assert diff.movements == []
        assert "NOT comparable" in diff.render()

    def test_zero_baseline_value_does_not_crash(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        baseline["policies"]["ship"]["rel_ws_geomean"] = 0.0
        diff = compare(snapshot, baseline)
        assert [m.policy for m in diff.improvements] == ["ship"]
        assert math.isinf(diff.improvements[0].delta_rel)
        assert "improvement: ship" in diff.render()

    def test_zero_to_zero_baseline_is_no_movement(self):
        movement = Movement(
            policy="p",
            baseline_value=0.0,
            current_value=0.0,
            current_ci=(0.0, 0.0),
            threshold=0.01,
        )
        assert movement.delta_rel == 0.0
        assert not movement.significant

    def test_roster_changes_are_noted(self, snapshot):
        baseline = copy.deepcopy(snapshot)
        del baseline["policies"]["lru"]
        baseline["policies"]["belady"] = baseline["policies"]["ship"]
        diff = compare(snapshot, baseline)
        assert diff.added_policies == ["lru"]
        assert diff.removed_policies == ["belady"]
        assert any("lru" in note for note in diff.notes)
