"""Bootstrap-interval maths on hand-known inputs."""

import math

import pytest

from repro.report.stats import bootstrap_ci, cluster_bootstrap_ci, outside_interval
from repro.util.stats import arithmetic_mean, geometric_mean


class TestBootstrapCi:
    def test_constant_values_collapse_to_a_point(self):
        lo, hi = bootstrap_ci([2.0, 2.0, 2.0, 2.0])
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(2.0)

    def test_single_observation_degenerates(self):
        lo, hi = bootstrap_ci([3.0])
        assert lo == hi == pytest.approx(3.0)

    def test_interval_brackets_the_point_estimate(self):
        values = [0.9, 1.0, 1.05, 1.1, 1.2, 0.95]
        lo, hi = bootstrap_ci(values)
        point = geometric_mean(values)
        assert lo <= point <= hi
        assert lo < hi

    def test_deterministic_across_calls(self):
        values = [1.0, 1.1, 0.9, 1.3]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_seed_changes_the_resampling(self):
        values = [1.0, 1.1, 0.9, 1.3, 1.05, 0.87]
        assert bootstrap_ci(values, seed=0) != bootstrap_ci(values, seed=1)

    def test_wider_confidence_widens_the_interval(self):
        values = [1.0, 1.1, 0.9, 1.3, 1.05, 0.87]
        lo99, hi99 = bootstrap_ci(values, confidence=0.99)
        lo80, hi80 = bootstrap_ci(values, confidence=0.80)
        assert lo99 <= lo80 and hi80 <= hi99

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0]
        lo, hi = bootstrap_ci(values, stat=arithmetic_mean)
        assert lo <= arithmetic_mean(values) <= hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)


class TestClusterBootstrap:
    def test_two_identical_clusters_collapse(self):
        lo, hi = cluster_bootstrap_ci([[1.5, 1.5], [1.5, 1.5]])
        assert lo == pytest.approx(1.5)
        assert hi == pytest.approx(1.5)

    def test_cluster_spread_dominates_interval(self):
        """Between-cluster variance must show up even when each cluster is
        internally constant (the whole point of clustering by seed)."""
        tight = cluster_bootstrap_ci([[1.0, 1.0], [1.0, 1.0]])
        spread = cluster_bootstrap_ci([[0.8, 0.8], [1.25, 1.25]])
        assert (spread[1] - spread[0]) > (tight[1] - tight[0])

    def test_single_cluster_falls_back_to_per_value_resampling(self):
        values = [0.9, 1.0, 1.1, 1.2]
        assert cluster_bootstrap_ci([values]) == bootstrap_ci(values)

    def test_point_estimate_is_pooled_geomean(self):
        groups = [[1.0, 4.0], [2.0]]
        lo, hi = cluster_bootstrap_ci(groups)
        assert lo <= geometric_mean([1.0, 4.0, 2.0]) <= hi

    def test_empty_groups_dropped(self):
        assert cluster_bootstrap_ci([[], [2.0], []]) == (2.0, 2.0)

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            cluster_bootstrap_ci([[], []])


class TestOutsideInterval:
    def test_boundaries_are_inside(self):
        assert not outside_interval(1.0, (1.0, 2.0))
        assert not outside_interval(2.0, (1.0, 2.0))
        assert not outside_interval(1.5, (1.0, 2.0))

    def test_outside_both_sides(self):
        assert outside_interval(0.99, (1.0, 2.0))
        assert outside_interval(2.01, (1.0, 2.0))

    def test_nan_is_not_outside(self):
        # NaN comparisons are all False: treated as "cannot conclude".
        assert not outside_interval(math.nan, (1.0, 2.0))
