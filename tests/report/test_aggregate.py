"""Report aggregation against synthetic stores with hand-known metrics.

Solo IPCs are pinned to 1.0 by the conftest helpers, so every workload
cell's weighted speed-up is just the sum of the shared IPCs the test
chose, and the relative numbers below are exact.
"""

import pytest

from repro.policies.spec import PolicySpec
from repro.report.aggregate import gather, report_from_store
from repro.report.tables import render_report, render_win_matrix
from repro.util.stats import geometric_mean


class TestGather:
    def test_cell_metrics_are_exact(self, synth):
        synth.put_suite(
            policy_ipcs={"tadrrip": (1.0, 1.0, 1.0, 1.0), "lru": (0.9, 0.9, 0.9, 0.9)}
        )
        data = gather(synth.store)
        assert data.policies == ["lru", "tadrrip"]
        lru = next(c for c in data.cells if c.policy == "lru")
        base = next(c for c in data.cells if c.policy == "tadrrip")
        assert base.ws == pytest.approx(4.0)
        assert base.rel_ws == pytest.approx(1.0)
        assert lru.ws == pytest.approx(3.6)
        assert lru.rel_ws == pytest.approx(0.9)

    def test_llc_mpki_mean(self, synth):
        synth.put_suite(
            policy_ipcs={"tadrrip": (1.0,) * 4}, llc_misses={"tadrrip": 25}
        )
        data = gather(synth.store)
        # instructions=1000 per core, so mpki == the injected miss count.
        assert data.cells[0].llc_mpki == pytest.approx(25.0)

    def test_missing_alone_baseline_skips_and_counts(self, synth):
        synth.put_workload(policy="tadrrip")  # no put_alone at all
        data = gather(synth.store)
        assert data.cells == []
        assert data.skipped_no_alone == 1

    def test_missing_baseline_policy_skips_the_group(self, synth):
        for benchmark in synth.pool:
            synth.put_alone(benchmark)
        synth.put_workload(policy="lru")
        synth.put_workload(policy="ship")
        data = gather(synth.store)
        assert data.cells == []
        assert data.skipped_no_baseline == 2

    def test_parameterised_policies_skipped(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4})
        synth.put_workload(policy=PolicySpec.of("adapt_bp32", bypass_prob=0.125))
        data = gather(synth.store)
        assert data.skipped_parameterised == 1
        assert data.policies == ["tadrrip"]

    def test_identities_are_sorted_and_cover_budgets(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4, "lru": (0.9,) * 4})
        data = gather(synth.store)
        assert data.identities == sorted(data.identities)
        assert len(data.identities) == 2
        assert all("q800" in i and "w200" in i for i in data.identities)

    def test_seeds_and_workloads_enumerated(self, synth):
        synth.put_suite(
            policy_ipcs={"tadrrip": (1.0,) * 4},
            workloads=("mix-0", "mix-1"),
            seeds=(0, 3),
        )
        data = gather(synth.store)
        assert data.seeds == [0, 3]
        assert data.workloads == ["mix-0", "mix-1"]
        assert len(data.cells) == 4


class TestAggregate:
    def test_ranking_is_best_first(self, synth):
        synth.put_suite(
            policy_ipcs={
                "tadrrip": (1.0,) * 4,
                "lru": (0.9,) * 4,
                "ship": (1.1,) * 4,
            }
        )
        report = report_from_store(synth.store, n_resamples=50)
        assert [s.policy for s in report.summaries] == ["ship", "tadrrip", "lru"]

    def test_geomean_over_workloads(self, synth):
        # Two workloads with different rel-WS: geomean of 1.2 and 0.9.
        for benchmark in synth.pool:
            synth.put_alone(benchmark)
        synth.put_workload(workload="mix-0", policy="tadrrip", ipcs=(1.0,) * 4)
        synth.put_workload(workload="mix-1", policy="tadrrip", ipcs=(1.0,) * 4)
        synth.put_workload(workload="mix-0", policy="ship", ipcs=(1.2,) * 4)
        synth.put_workload(workload="mix-1", policy="ship", ipcs=(0.9,) * 4)
        report = report_from_store(synth.store, n_resamples=50)
        ship = report.summary_for("ship")
        assert ship.cells == 2
        assert ship.rel_ws_geomean == pytest.approx(geometric_mean([1.2, 0.9]))

    def test_ci_brackets_the_geomean(self, synth):
        synth.put_suite(
            policy_ipcs={"tadrrip": (1.0,) * 4, "ship": (1.05,) * 4},
            workloads=("mix-0", "mix-1", "mix-2"),
            seeds=(0, 1),
        )
        report = report_from_store(synth.store, n_resamples=200)
        ship = report.summary_for("ship")
        lo, hi = ship.rel_ws_ci
        assert lo <= ship.rel_ws_geomean <= hi

    def test_win_matrix_total_order(self, synth):
        synth.put_suite(
            policy_ipcs={
                "tadrrip": (1.0,) * 4,
                "lru": (0.9,) * 4,
                "ship": (1.1,) * 4,
            },
            workloads=("mix-0", "mix-1"),
        )
        report = report_from_store(synth.store, n_resamples=50)
        assert report.win_matrix["ship"]["lru"] == pytest.approx(1.0)
        assert report.win_matrix["ship"]["tadrrip"] == pytest.approx(1.0)
        assert report.win_matrix["lru"]["ship"] == pytest.approx(0.0)
        assert report.summary_for("ship").win_rate == pytest.approx(1.0)
        assert report.summary_for("tadrrip").win_rate == pytest.approx(0.5)
        assert report.summary_for("lru").win_rate == pytest.approx(0.0)

    def test_ties_count_half(self, synth):
        synth.put_suite(
            policy_ipcs={"tadrrip": (1.0,) * 4, "drrip": (1.0,) * 4}
        )
        report = report_from_store(synth.store, n_resamples=50)
        assert report.win_matrix["drrip"]["tadrrip"] == pytest.approx(0.5)

    def test_disjoint_pair_scores_none_and_skips_win_rate(self, synth):
        # lru and ship never appear in the same group: no head-to-head
        # score exists, which must not read as a 50% tie.
        for benchmark in synth.pool:
            synth.put_alone(benchmark)
        synth.put_workload(workload="mix-0", policy="tadrrip", ipcs=(1.0,) * 4)
        synth.put_workload(workload="mix-0", policy="lru", ipcs=(0.9,) * 4)
        synth.put_workload(workload="mix-1", policy="tadrrip", ipcs=(1.0,) * 4)
        synth.put_workload(workload="mix-1", policy="ship", ipcs=(1.1,) * 4)
        report = report_from_store(synth.store, n_resamples=50)
        assert report.win_matrix["lru"]["ship"] is None
        assert report.win_matrix["ship"]["lru"] is None
        assert report.win_matrix["lru"]["tadrrip"] == pytest.approx(0.0)
        # The mean excludes the never-met pair instead of averaging in 0.5.
        assert report.summary_for("lru").win_rate == pytest.approx(0.0)
        assert report.summary_for("ship").win_rate == pytest.approx(1.0)
        rendered = render_win_matrix(report)
        lru_row = next(
            line for line in rendered.splitlines() if line.startswith("lru")
        )
        assert lru_row.split().count("-") == 2  # the diagonal + ship

    def test_single_policy_has_no_win_rate(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4})
        report = report_from_store(synth.store, n_resamples=50)
        assert report.summary_for("tadrrip").win_rate is None
        assert "-" in render_report(report)

    def test_summary_for_unknown_policy(self, synth):
        synth.put_suite(policy_ipcs={"tadrrip": (1.0,) * 4})
        report = report_from_store(synth.store, n_resamples=50)
        assert report.summary_for("nope") is None

    def test_empty_store_yields_empty_report(self, store):
        report = report_from_store(store, n_resamples=50)
        assert report.summaries == []
        assert report.data.cells == []
