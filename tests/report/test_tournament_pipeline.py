"""End-to-end: tournament driver -> store -> report -> snapshot -> diff.

Miniature budgets, two policies, two seeds — the full pipeline the
acceptance flow exercises, on a test-sized grid.
"""

import copy
import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.common import ExperimentSettings
from repro.experiments.tournament import run_tournament
from repro.report import (
    build_snapshot,
    compare,
    report_from_store,
)
from repro.runner import ResultStore
from repro.sim.config import SystemConfig

TINY = ExperimentSettings(
    quota=800,
    warmup=200,
    alone_quota=900,
    alone_warmup=100,
    workloads={4: 2},
)


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("tournament")
    run = run_tournament(
        SystemConfig.scaled(4),
        policies=("lru", "tadrrip"),
        cores=(4,),
        seeds=(0, 1),
        jobs=1,
        results_dir=out,
        settings=TINY,
    )
    assert run.scheduled == 2 * 2 * 2  # policies x workloads x seeds
    assert run.executed > 0
    return out


def test_rerun_is_fully_cached(results_dir):
    again = run_tournament(
        SystemConfig.scaled(4),
        policies=("lru", "tadrrip"),
        cores=(4,),
        seeds=(0, 1),
        jobs=1,
        results_dir=results_dir,
        settings=TINY,
    )
    assert again.executed == 0
    # Hits cover the workload grid plus the shared IPC_alone baselines.
    assert again.store_hits >= again.scheduled


def test_report_covers_the_grid(results_dir):
    report = report_from_store(ResultStore(results_dir), n_resamples=100)
    assert len(report.data.cells) == 8
    assert report.data.seeds == [0, 1]
    assert report.data.policies == ["lru", "tadrrip"]
    base = report.summary_for("tadrrip")
    assert base.rel_ws_geomean == pytest.approx(1.0)
    assert base.rel_ws_ci == pytest.approx((1.0, 1.0))
    lru = report.summary_for("lru")
    assert lru.cells == 4
    assert lru.ws_geomean > 0
    lo, hi = lru.rel_ws_ci
    assert lo <= lru.rel_ws_geomean <= hi


def _report_cli(results_dir, *extra):
    return main(
        ["report", "--results-dir", str(results_dir), "--no-kernel", *extra]
    )


@pytest.fixture
def committed(results_dir, tmp_path):
    """A committed-baseline snapshot written by the CLI itself."""
    path = tmp_path / "BENCH_tournament.json"
    assert _report_cli(results_dir, "--out", str(path)) == 0
    return path


class TestReportCliBaseline:
    def test_unchanged_store_matches_the_baseline(
        self, results_dir, committed, capsys
    ):
        original = committed.read_text()
        rc = _report_cli(
            results_dir, "--out", str(committed), "--baseline", str(committed)
        )
        assert rc == 0
        assert "no significant movement" in capsys.readouterr().out
        assert committed.read_text() == original  # clobber guard held

    def test_baseline_is_read_before_out_clobbers_it(
        self, results_dir, committed, capsys
    ):
        # Inject a regression into the committed baseline, then run the
        # README invocation where --out defaults onto the same file: the
        # regression must be detected (the doctored baseline read first,
        # not the freshly written snapshot) and the file left untouched.
        doctored = json.loads(committed.read_text())
        doctored["policies"]["lru"]["rel_ws_geomean"] *= 1.10
        committed.write_text(json.dumps(doctored))
        rc = _report_cli(
            results_dir, "--out", str(committed), "--baseline", str(committed)
        )
        assert rc == 1
        assert "REGRESSION: lru" in capsys.readouterr().out
        assert json.loads(committed.read_text()) == doctored

    def test_distinct_out_still_written(self, results_dir, committed, tmp_path):
        fresh = tmp_path / "fresh.json"
        rc = _report_cli(
            results_dir, "--out", str(fresh), "--baseline", str(committed)
        )
        assert rc == 0
        fresh_data = json.loads(fresh.read_text())
        base_data = json.loads(committed.read_text())
        fresh_data.pop("generated_utc")
        base_data.pop("generated_utc")
        assert fresh_data == base_data

    def test_incomparable_snapshots_exit_3(self, results_dir, committed, capsys):
        doctored = json.loads(committed.read_text())
        doctored["config_hash"] = "0" * 64
        committed.write_text(json.dumps(doctored))
        rc = _report_cli(results_dir, "--out", "", "--baseline", str(committed))
        assert rc == 3
        assert "NOT comparable" in capsys.readouterr().out

    def test_unreadable_baseline_exits_2(self, results_dir, tmp_path):
        rc = _report_cli(
            results_dir, "--out", "", "--baseline", str(tmp_path / "missing.json")
        )
        assert rc == 2


def test_config_hash_unaffected_by_kernel_selection(
    results_dir, tmp_path, monkeypatch
):
    """Kernel selection is invisible to the snapshot identity: a sweep
    executed through the array-native replay kernel produces the same
    ``config_hash`` — and, the kernels being bit-identical, the same
    policy rows — as the committed default-kernel run.  The committed
    ``BENCH_tournament.json`` therefore stays comparable whichever
    kernel ran it, and must *not* be regenerated for a kernel change."""
    baseline = build_snapshot(
        report_from_store(ResultStore(results_dir), n_resamples=100)
    )
    monkeypatch.setenv("REPRO_REPLAY_VEC", "1")
    out = tmp_path / "vec-store"
    run = run_tournament(
        SystemConfig.scaled(4),
        policies=("lru", "tadrrip"),
        cores=(4,),
        seeds=(0, 1),
        jobs=1,
        results_dir=out,
        settings=TINY,
    )
    assert run.executed > 0  # a fresh store: nothing came from cache
    vec = build_snapshot(report_from_store(ResultStore(out), n_resamples=100))
    assert vec["config_hash"] == baseline["config_hash"]
    assert vec["run_id"] == baseline["run_id"]
    assert vec["policies"] == baseline["policies"]


def test_snapshot_round_trip_and_regression(results_dir):
    report = report_from_store(ResultStore(results_dir), n_resamples=100)
    snapshot = build_snapshot(report)
    assert snapshot["cells"] == 8
    assert set(snapshot["policies"]) == {"lru", "tadrrip"}

    # A deterministic rerun reproduces the snapshot: the diff is silent.
    clean = compare(snapshot, copy.deepcopy(snapshot))
    assert clean.comparable and not clean.has_regressions

    # Inflate lru's recorded baseline: the detector must flag the drop.
    doctored = copy.deepcopy(snapshot)
    doctored["policies"]["lru"]["rel_ws_geomean"] *= 1.10
    diff = compare(snapshot, doctored)
    assert diff.comparable
    assert [m.policy for m in diff.regressions] == ["lru"]
