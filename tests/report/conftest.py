"""Synthetic result stores with exactly-known metrics.

The report maths (geomeans, bootstrap intervals, win matrices) is tested
against hand-constructed stores: every benchmark's solo IPC is pinned to
1.0, so a workload record's weighted speed-up is simply the sum of the
shared-mode IPCs the test chose.  Snapshots are built with
``instructions=1000`` so ``llc_mpki`` equals the chosen miss count.
"""

from __future__ import annotations

import pytest

from repro.cpu.core import CoreSnapshot
from repro.runner import SCHEMA_VERSION, AloneJob, ResultStore, WorkloadJob
from repro.sim.config import SystemConfig
from repro.sim.results import SingleRunResult, WorkloadResult
from repro.trace.workloads import Workload

BASE_CONFIG = SystemConfig.scaled(4)

#: Benchmarks every synthetic workload draws from (must exist in the
#: registry so ``Workload`` accepts them).
BENCH_POOL = ("lbm", "bzip", "deal", "omn")


def snapshot_for(ipc: float, llc_misses: int = 10) -> CoreSnapshot:
    return CoreSnapshot(
        instructions=1000.0,
        cycles=1000.0 / ipc,
        accesses=1000,
        l1_misses=100,
        l2_misses=50,
        llc_accesses=50,
        llc_misses=llc_misses,
        llc_bypasses=0,
    )


def put_result(store: ResultStore, job, result) -> str:
    key = job.cache_key()
    store.put(
        key,
        {
            "schema": SCHEMA_VERSION,
            "kind": job.kind,
            "job": job.to_dict(),
            "result": result.to_dict(),
        },
    )
    return key


def put_alone(
    store: ResultStore,
    benchmark: str,
    *,
    seed: int = 0,
    ipc: float = 1.0,
    config: SystemConfig = BASE_CONFIG,
    quota: int = 900,
    monitor: bool = False,
) -> str:
    job = AloneJob(
        benchmark=benchmark,
        config=config.with_cores(1),
        policy="tadrrip",
        quota=quota,
        warmup=100,
        master_seed=seed,
        monitor=monitor,
    )
    result = SingleRunResult(
        benchmark=benchmark,
        config_name=job.config.name,
        policy="tadrrip",
        snapshot=snapshot_for(ipc),
    )
    return put_result(store, job, result)


def put_workload(
    store: ResultStore,
    *,
    workload: str = "mix-0",
    benchmarks: tuple[str, ...] = BENCH_POOL,
    policy="tadrrip",
    seed: int = 0,
    ipcs: tuple[float, ...] = (1.0, 1.0, 1.0, 1.0),
    llc_misses: int = 10,
    config: SystemConfig = BASE_CONFIG,
) -> str:
    job = WorkloadJob.for_workload(
        Workload(workload, benchmarks),
        config.with_cores(len(benchmarks)),
        policy,
        quota=800,
        warmup=200,
        master_seed=seed,
    )
    result = WorkloadResult(
        workload_name=workload,
        benchmarks=benchmarks,
        config_name=job.config.name,
        policy=str(policy),
        snapshots=[snapshot_for(ipc, llc_misses) for ipc in ipcs],
    )
    return put_result(store, job, result)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results")


class SyntheticStore:
    """A result store plus bound helpers for populating it."""

    pool = BENCH_POOL

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    def put_alone(self, benchmark: str, **kwargs) -> str:
        return put_alone(self.store, benchmark, **kwargs)

    def put_workload(self, **kwargs) -> str:
        return put_workload(self.store, **kwargs)

    def put_suite(
        self,
        *,
        policy_ipcs: dict[str, tuple[float, ...]],
        workloads: tuple[str, ...] = ("mix-0",),
        seeds: tuple[int, ...] = (0,),
        llc_misses: dict[str, int] | None = None,
    ) -> None:
        """A full grid: every policy on every (workload, seed) + baselines."""
        for seed in seeds:
            for benchmark in BENCH_POOL:
                self.put_alone(benchmark, seed=seed)
            for workload in workloads:
                for policy, ipcs in policy_ipcs.items():
                    self.put_workload(
                        workload=workload,
                        policy=policy,
                        seed=seed,
                        ipcs=ipcs,
                        llc_misses=(llc_misses or {}).get(policy, 10),
                    )


@pytest.fixture
def synth(store) -> SyntheticStore:
    return SyntheticStore(store)
