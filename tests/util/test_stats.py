"""Unit tests for the mean helpers."""


import pytest

from repro.util.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    normalize_series,
)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_geometric(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_harmonic(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)

    def test_mean_inequality(self):
        # HM <= GM <= AM for positive, non-constant data.
        values = [0.5, 1.0, 2.5, 4.0]
        assert harmonic_mean(values) < geometric_mean(values) < arithmetic_mean(values)

    def test_single_value_all_equal(self):
        for mean in (arithmetic_mean, geometric_mean, harmonic_mean):
            assert mean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        for mean in (arithmetic_mean, geometric_mean, harmonic_mean):
            with pytest.raises(ValueError):
                mean([])

    def test_nonpositive_rejected_for_gm_hm(self):
        for mean in (geometric_mean, harmonic_mean):
            with pytest.raises(ValueError):
                mean([1.0, 0.0])
            with pytest.raises(ValueError):
                mean([1.0, -2.0])


class TestNormalizeSeries:
    def test_elementwise_ratio(self):
        assert normalize_series([2, 9], [4, 3]) == [0.5, 3.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalize_series([1], [1, 2])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize_series([1.0], [0.0])
