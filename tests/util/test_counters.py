"""Unit tests for saturating counters and deterministic tickers."""

import pytest

from repro.util.counters import FractionTicker, PselCounter, SaturatingCounter


class TestSaturatingCounter:
    def test_increments_and_saturates_high(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 0
        for expected in (1, 2, 3, 3, 3):
            assert c.increment() == expected
        assert c.saturated_high

    def test_decrements_and_saturates_low(self):
        c = SaturatingCounter(bits=3, initial=2)
        assert c.decrement() == 1
        assert c.decrement() == 0
        assert c.decrement() == 0
        assert c.saturated_low

    def test_bulk_amounts_clamp(self):
        c = SaturatingCounter(bits=4)
        c.increment(100)
        assert c.value == 15
        c.decrement(100)
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(bits=4, initial=5)
        c.reset(9)
        assert c.value == 9
        with pytest.raises(ValueError):
            c.reset(16)

    @pytest.mark.parametrize("bits", [0, -1])
    def test_rejects_bad_bits(self, bits):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=bits)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)


class TestPselCounter:
    def test_starts_just_below_threshold(self):
        psel = PselCounter(bits=10)
        assert psel.value == 511
        assert psel.threshold == 512

    def test_initial_state_selects_first_policy(self):
        # DIP convention: MSB 0 until the duel produces evidence.
        assert not PselCounter(bits=10).selects_second

    def test_crossing_threshold_selects_second(self):
        psel = PselCounter(bits=10)
        psel.increment()
        assert psel.selects_second
        psel.decrement()
        assert not psel.selects_second

    def test_ten_bit_range(self):
        psel = PselCounter(bits=10)
        psel.increment(10_000)
        assert psel.value == 1023
        psel.decrement(10_000)
        assert psel.value == 0


class TestFractionTicker:
    def test_fires_exactly_once_per_window(self):
        t = FractionTicker(16)
        fires = [t.tick() for _ in range(160)]
        assert sum(fires) == 10
        # Once per window of 16, always the same phase.
        for start in range(0, 160, 16):
            assert sum(fires[start : start + 16]) == 1

    def test_phase_controls_fire_position(self):
        t = FractionTicker(4, phase=2)
        assert [t.tick() for t_ in range(4)] == [False, False, True, False]

    def test_denominator_one_always_fires(self):
        t = FractionTicker(1)
        assert all(t.tick() for _ in range(5))

    def test_reset_restarts_window(self):
        t = FractionTicker(8)
        t.tick()
        t.tick()
        t.reset()
        assert t.tick() is True

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FractionTicker(0)
        with pytest.raises(ValueError):
            FractionTicker(4, phase=4)
