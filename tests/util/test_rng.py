"""Unit tests for named deterministic RNG streams."""

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_in_63_bit_range(self):
        for seed in (0, 1, 2**40):
            for name in ("x", "trace/mcf/core3"):
                assert 0 <= derive_seed(seed, name) < (1 << 63)


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.get("a").integers(0, 1 << 30, 16).tolist()
        b = streams.get("b").integers(0, 1 << 30, 16).tolist()
        assert a != b

    def test_reproducible_across_instances(self):
        x = RngStreams(5).get("t").integers(0, 1000, 8).tolist()
        y = RngStreams(5).get("t").integers(0, 1000, 8).tolist()
        assert x == y

    def test_fresh_resets_state(self):
        streams = RngStreams(5)
        first = streams.get("t").integers(0, 1000, 8).tolist()
        streams.get("t").integers(0, 1000, 8)  # advance
        again = streams.fresh("t").integers(0, 1000, 8).tolist()
        assert first == again

    def test_adding_consumer_does_not_perturb_others(self):
        s1 = RngStreams(9)
        a_only = s1.get("a").integers(0, 1000, 8).tolist()
        s2 = RngStreams(9)
        s2.get("zzz")  # a new consumer created first
        a_with_other = s2.get("a").integers(0, 1000, 8).tolist()
        assert a_only == a_with_other
