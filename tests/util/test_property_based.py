"""Property-based tests (hypothesis) for the substrate utility modules.

These pin algebraic contracts the simulator leans on everywhere:
address-split round-trips (any violation silently aliases cache sets),
seed-derivation determinism and isolation (any violation makes experiments
non-reproducible or lets one component's RNG consumption perturb
another's), and saturating-counter bounds (any violation breaks every
set-duelling policy at once).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.util.bitops import (  # noqa: E402
    block_align,
    ilog2,
    is_pow2,
    split_address,
    xor_bank_index,
    xor_fold,
)
from repro.util.counters import FractionTicker, SaturatingCounter  # noqa: E402
from repro.util.rng import RngStreams, derive_seed  # noqa: E402

#: Keep CI wall-clock bounded; these properties are cheap but numerous.
COMMON = settings(max_examples=200, deadline=None)

pow2 = st.integers(min_value=0, max_value=20).map(lambda e: 1 << e)
addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestBitops:
    @COMMON
    @given(e=st.integers(min_value=0, max_value=62))
    def test_ilog2_inverts_shift(self, e):
        assert ilog2(1 << e) == e

    @COMMON
    @given(value=st.integers(min_value=1, max_value=1 << 62))
    def test_is_pow2_agrees_with_bit_count(self, value):
        assert is_pow2(value) == (bin(value).count("1") == 1)

    @COMMON
    @given(addr=addresses, num_sets=pow2.filter(lambda v: v >= 1))
    def test_split_address_round_trips(self, addr, num_sets):
        tag, set_idx = split_address(addr, num_sets)
        assert 0 <= set_idx < num_sets
        assert tag * num_sets + set_idx == addr

    @COMMON
    @given(byte_addr=addresses, block=pow2.filter(lambda v: v >= 1))
    def test_block_align_is_floor_division(self, byte_addr, block):
        assert block_align(byte_addr, block) == byte_addr // block

    @COMMON
    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
           width=st.integers(min_value=1, max_value=24))
    def test_xor_fold_stays_in_width(self, value, width):
        folded = xor_fold(value, width)
        assert 0 <= folded < (1 << width)

    @COMMON
    @given(value=st.integers(min_value=0, max_value=(1 << 20) - 1),
           width=st.integers(min_value=21, max_value=32))
    def test_xor_fold_identity_below_width(self, value, width):
        # A value narrower than the fold width has nothing to fold in.
        assert xor_fold(value, width) == value

    @COMMON
    @given(addr=addresses, num_banks=pow2.filter(lambda v: v >= 1))
    def test_bank_index_in_range(self, addr, num_banks):
        assert 0 <= xor_bank_index(addr, num_banks) < num_banks

    @COMMON
    @given(addr=addresses, num_banks=pow2.filter(lambda v: v >= 2))
    def test_bank_index_mixes_only_low_and_shifted_bits(self, addr, num_banks):
        low = addr & (num_banks - 1)
        high = (addr >> 8) & (num_banks - 1)
        assert xor_bank_index(addr, num_banks) == low ^ high


class TestSeedDerivation:
    @COMMON
    @given(seed=st.integers(min_value=0, max_value=(1 << 63) - 1),
           name=st.text(min_size=0, max_size=40))
    def test_deterministic_and_in_range(self, seed, name):
        first = derive_seed(seed, name)
        assert derive_seed(seed, name) == first
        assert 0 <= first < (1 << 63)

    @COMMON
    @given(seed=st.integers(min_value=0, max_value=(1 << 63) - 1),
           name=st.text(min_size=0, max_size=40))
    def test_stream_isolation_from_consumption(self, seed, name):
        """Drawing from one named stream never perturbs a sibling stream.

        This is the distribution-independence property the docstring
        promises: adding a new randomness consumer must not shift what any
        other component sees.
        """
        lone = RngStreams(seed).get(name).random(4).tolist()
        streams = RngStreams(seed)
        streams.get(name + "/sibling").random(1000)  # heavy sibling traffic
        assert streams.get(name).random(4).tolist() == lone

    @COMMON
    @given(seed=st.integers(min_value=0, max_value=(1 << 63) - 1),
           name=st.text(min_size=0, max_size=40))
    def test_fresh_restarts_the_stream(self, seed, name):
        streams = RngStreams(seed)
        first = streams.get(name).random(4).tolist()
        assert streams.fresh(name).random(4).tolist() == first


class TestSaturatingCounters:
    @COMMON
    @given(bits=st.integers(min_value=1, max_value=12),
           ops=st.lists(st.sampled_from(["inc", "dec"]), max_size=200))
    def test_value_always_within_bounds(self, bits, ops):
        counter = SaturatingCounter(bits)
        top = (1 << bits) - 1
        for op in ops:
            if op == "inc":
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= top

    @COMMON
    @given(bits=st.integers(min_value=1, max_value=12),
           initial=st.integers(min_value=0, max_value=(1 << 12) - 1),
           amount=st.integers(min_value=0, max_value=1 << 14))
    def test_saturation_clamps_exactly(self, bits, initial, amount):
        top = (1 << bits) - 1
        initial = min(initial, top)
        counter = SaturatingCounter(bits, initial)
        assert counter.increment(amount) == min(top, initial + amount)
        counter.reset(initial)
        assert counter.decrement(amount) == max(0, initial - amount)

    @COMMON
    @given(bits=st.integers(min_value=1, max_value=12),
           ops=st.lists(st.sampled_from(["inc", "dec"]), max_size=100))
    def test_counter_matches_clamped_model(self, bits, ops):
        counter = SaturatingCounter(bits)
        model = 0
        top = (1 << bits) - 1
        for op in ops:
            if op == "inc":
                counter.increment()
                model = min(top, model + 1)
            else:
                counter.decrement()
                model = max(0, model - 1)
        assert counter.value == model

    @COMMON
    @given(denominator=st.integers(min_value=1, max_value=64),
           phase=st.integers(min_value=0, max_value=63),
           draws=st.integers(min_value=0, max_value=400))
    def test_ticker_fires_exactly_once_per_window(self, denominator, phase, draws):
        phase %= denominator
        ticker = FractionTicker(denominator, phase=phase)
        fired = [i for i in range(draws) if ticker.tick()]
        assert fired == [i for i in range(draws) if i % denominator == phase]
