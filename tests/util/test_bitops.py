"""Unit tests for bit/geometry helpers."""

import pytest

from repro.util.bitops import (
    block_align,
    ilog2,
    is_pow2,
    split_address,
    xor_bank_index,
    xor_fold,
)


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for v in (0, -1, -4, 3, 5, 6, 7, 9, 12, 1000):
            assert not is_pow2(v)


class TestIlog2:
    def test_values(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(1024) == 10
        assert ilog2(1 << 31) == 31

    @pytest.mark.parametrize("bad", [0, -2, 3, 12, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestBlockAlign:
    def test_64_byte_blocks(self):
        assert block_align(0, 64) == 0
        assert block_align(63, 64) == 0
        assert block_align(64, 64) == 1
        assert block_align(0x1234567, 64) == 0x1234567 >> 6


class TestSplitAddress:
    def test_round_trip(self):
        num_sets = 256
        for addr in (0, 1, 255, 256, 0xDEADBEEF):
            tag, set_idx = split_address(addr, num_sets)
            assert tag * num_sets + set_idx == addr
            assert 0 <= set_idx < num_sets

    def test_set_index_is_low_bits(self):
        assert split_address(0x12345, 16) == (0x1234, 5)


class TestXorFold:
    def test_small_values_identity(self):
        assert xor_fold(5, 10) == 5
        assert xor_fold(1023, 10) == 1023

    def test_folds_high_bits(self):
        # 1 << 10 folds onto bit 0 of the second chunk.
        assert xor_fold(1 << 10, 10) == 1

    def test_width_bound(self):
        for v in (0, 1, 12345, 0xFFFF_FFFF_FFFF):
            assert 0 <= xor_fold(v, 14) < (1 << 14)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            xor_fold(1, 0)


class TestXorBankIndex:
    def test_in_range(self):
        for addr in range(0, 100_000, 137):
            assert 0 <= xor_bank_index(addr, 8) < 8

    def test_spreads_power_of_two_strides(self):
        # A stride-256 stream maps to a single bank under naive low-bit
        # indexing; the XOR permutation must spread it.
        banks = {xor_bank_index(i * 256, 8) for i in range(64)}
        assert len(banks) == 8

    def test_rejects_non_pow2_banks(self):
        with pytest.raises(ValueError):
            xor_bank_index(0, 6)
