"""Unit tests for the address-pattern primitives."""

import numpy as np
import pytest

from repro.trace.patterns import (
    CyclicPattern,
    MixedPattern,
    RandomPattern,
    ShuffledCyclicPattern,
    StridedPattern,
    make_pattern,
)

RNG = np.random.default_rng(0)


class TestCyclic:
    def test_sequential_wraparound(self):
        p = CyclicPattern(span=8)
        out = p.chunk(12, RNG)
        assert out.tolist() == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3]

    def test_state_persists_across_chunks(self):
        p = CyclicPattern(span=8)
        a = p.chunk(5, RNG).tolist()
        b = p.chunk(5, RNG).tolist()
        assert a + b == [(i % 8) for i in range(10)]

    def test_stride(self):
        p = CyclicPattern(span=8, stride=2)
        assert p.chunk(4, RNG).tolist() == [0, 2, 4, 6]

    def test_reset(self):
        p = CyclicPattern(span=8)
        p.chunk(5, RNG)
        p.reset()
        assert p.chunk(1, RNG).tolist() == [0]


class TestShuffledCyclic:
    def test_is_a_permutation_cycle(self):
        p = ShuffledCyclicPattern(span=16, seed=3)
        out = p.chunk(16, RNG)
        assert sorted(out.tolist()) == list(range(16))

    def test_not_sequential(self):
        p = ShuffledCyclicPattern(span=64, seed=3)
        out = p.chunk(64, RNG).tolist()
        assert out != list(range(64))

    def test_same_seed_same_order(self):
        a = ShuffledCyclicPattern(16, seed=5).chunk(16, RNG).tolist()
        b = ShuffledCyclicPattern(16, seed=5).chunk(16, RNG).tolist()
        assert a == b


class TestRandom:
    def test_within_span(self):
        p = RandomPattern(span=100)
        out = p.chunk(1000, np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < 100

    def test_covers_span(self):
        p = RandomPattern(span=16)
        out = p.chunk(600, np.random.default_rng(1))
        assert len(set(out.tolist())) == 16


class TestMixed:
    def test_hot_scan_interleave(self):
        p = MixedPattern(hot_blocks=4, k=3, scan_blocks=100, d=2)
        out = p.chunk(10, np.random.default_rng(1)).tolist()
        # Period 5: positions 0-2 hot (< 4), 3-4 scan (>= 4).
        for i, v in enumerate(out):
            if i % 5 < 3:
                assert v < 4
            else:
                assert v >= 4

    def test_scan_advances_monotonically(self):
        p = MixedPattern(hot_blocks=2, k=1, scan_blocks=50, d=3)
        out = p.chunk(16, np.random.default_rng(1))
        scans = [v - 2 for i, v in enumerate(out.tolist()) if i % 4 >= 1]
        assert scans == sorted(scans)

    def test_span(self):
        p = MixedPattern(hot_blocks=4, k=3, scan_blocks=100, d=2)
        assert p.span == 104

    def test_validation(self):
        with pytest.raises(ValueError):
            MixedPattern(0, 1, 1, 1)


class TestStrided:
    def test_touches_strided_blocks_only(self):
        p = StridedPattern(span=64, stride=4)
        out = p.chunk(32, RNG)
        assert all(v % 4 == 0 for v in out.tolist())

    def test_wraps(self):
        p = StridedPattern(span=16, stride=4)
        out = p.chunk(8, RNG).tolist()
        assert out == [0, 4, 8, 12, 0, 4, 8, 12]


class TestFactory:
    @pytest.mark.parametrize("kind", ["cyclic", "shuffled", "random", "mixed", "strided"])
    def test_all_kinds_construct(self, kind):
        p = make_pattern(kind, span=64)
        out = p.chunk(16, np.random.default_rng(2))
        assert len(out) == 16

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_pattern("zigzag", span=8)
