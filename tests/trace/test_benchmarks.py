"""Unit tests for the 36 synthetic benchmarks and their generator."""

import pytest

from repro.trace.benchmarks import (
    BENCHMARKS,
    CLASSES,
    THRASHING_BENCHMARKS,
    Geometry,
    TraceSource,
    benchmarks_by_class,
)

GEO = Geometry(llc_num_sets=64, l2_blocks=128, l1_blocks=64)


class TestTable4Catalogue:
    def test_table4_row_count(self):
        # The paper's text says "36 benchmarks" but its Table 4 lists 38
        # rows; we reproduce the table.
        assert len(BENCHMARKS) == 38

    def test_class_partition(self):
        assert sum(len(benchmarks_by_class(c)) for c in CLASSES) == len(BENCHMARKS)

    def test_paper_class_counts(self):
        # Table 4 row counts per type column.
        counts = {c: len(benchmarks_by_class(c)) for c in CLASSES}
        assert counts == {"VL": 11, "L": 7, "M": 11, "H": 6, "VH": 3}

    def test_thrashing_matches_fig1b_plus_strm(self):
        expected = {
            "apsi", "astar", "cact", "gap", "gob", "gzip",
            "lbm", "libq", "milc", "wrf", "wup", "STRM",
        }
        assert set(THRASHING_BENCHMARKS) == expected

    def test_footprint_targets_match_table4(self):
        assert BENCHMARKS["mcf"].fpn == 11.9
        assert BENCHMARKS["calc"].fpn == 1.33
        assert BENCHMARKS["libq"].fpn == 29.7

    def test_mpki_targets_match_table4(self):
        assert BENCHMARKS["lbm"].l2_mpki == 48.46
        assert BENCHMARKS["eon"].l2_mpki == 0.02

    def test_working_set_scales_with_llc(self):
        spec = BENCHMARKS["black"]
        assert spec.working_set_blocks(64) == round(7.0 * 64)
        assert spec.working_set_blocks(512) == round(7.0 * 512)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            benchmarks_by_class("XL")


class TestTraceSource:
    def test_produces_triples(self):
        src = TraceSource(BENCHMARKS["mcf"], GEO, core_id=0)
        addr, pc, is_write = src.next_access()
        assert isinstance(addr, int) and isinstance(pc, int)
        assert isinstance(is_write, bool)

    def test_address_space_per_core_disjoint(self):
        a = TraceSource(BENCHMARKS["mcf"], GEO, core_id=0)
        b = TraceSource(BENCHMARKS["mcf"], GEO, core_id=1)
        addrs_a = {a.next_access()[0] for _ in range(500)}
        addrs_b = {b.next_access()[0] for _ in range(500)}
        assert not addrs_a & addrs_b

    def test_deterministic_for_seed(self):
        a = TraceSource(BENCHMARKS["lbm"], GEO, 0, master_seed=5)
        b = TraceSource(BENCHMARKS["lbm"], GEO, 0, master_seed=5)
        assert [a.next_access() for _ in range(100)] == [
            b.next_access() for _ in range(100)
        ]

    def test_different_seeds_differ(self):
        a = TraceSource(BENCHMARKS["lbm"], GEO, 0, master_seed=1)
        b = TraceSource(BENCHMARKS["lbm"], GEO, 0, master_seed=2)
        assert [a.next_access() for _ in range(50)] != [
            b.next_access() for _ in range(50)
        ]

    def test_footprint_stream_covers_working_set(self):
        src = TraceSource(BENCHMARKS["deal"], GEO, 0)
        ws = src.working_set_blocks
        seen = set()
        for _ in range(ws * 40):
            addr, _, _ = src.next_access()
            seen.add(addr - src.address_offset)
        footprint_blocks = {a for a in seen if a < ws}
        assert len(footprint_blocks) > 0.9 * ws

    def test_write_fraction_roughly_honoured(self):
        src = TraceSource(BENCHMARKS["STRM"], GEO, 0)  # write_fraction 0.5
        writes = sum(src.next_access()[2] for _ in range(4000))
        assert 0.4 < writes / 4000 < 0.6

    def test_apki_between_streams(self):
        src = TraceSource(BENCHMARKS["lbm"], GEO, 0)
        assert src.apki == src.footprint_apki + src.hot_apki
        assert src.instructions_per_access == pytest.approx(1000.0 / src.apki)

    def test_intense_benchmarks_have_higher_apki(self):
        lbm = TraceSource(BENCHMARKS["lbm"], GEO, 0)
        eon = TraceSource(BENCHMARKS["eon"], GEO, 0)
        assert lbm.footprint_apki > eon.footprint_apki

    def test_restart_replays_pattern(self):
        src = TraceSource(BENCHMARKS["swapt"], GEO, 0)
        src.next_access()
        src.restart()
        # After restart the cyclic pattern begins at position 0 again.
        assert src.pattern._pos == 0

    def test_echo_reuses_recent_footprint_addresses(self):
        spec = BENCHMARKS["astar"]  # echo_fraction 0.3
        src = TraceSource(spec, GEO, 0)
        addrs = [src.next_access()[0] for _ in range(20_000)]
        hot_base = src.working_set_blocks
        footprint = [
            a - src.address_offset
            for a in addrs
            if a - src.address_offset < hot_base
        ]
        # A shuffled cycle without echo repeats only once per full sweep
        # (span ~ 32*64 = 2048); with 30% echo, repeats appear much closer.
        repeats = len(footprint) - len(set(footprint))
        assert repeats > 0.1 * len(footprint)


class TestLibraryPcs:
    def test_library_pcs_shared_across_benchmarks(self):
        a = TraceSource(BENCHMARKS["lbm"], GEO, 0)
        b = TraceSource(BENCHMARKS["STRM"], GEO, 1)
        lib = range(
            TraceSource.LIBRARY_PC_BASE, TraceSource.LIBRARY_PC_BASE + 16, 4
        )
        pcs_a = {a.next_access()[1] for _ in range(2000)}
        pcs_b = {b.next_access()[1] for _ in range(2000)}
        shared = pcs_a & pcs_b
        assert shared and shared <= set(lib)

    def test_private_pcs_distinct(self):
        a = TraceSource(BENCHMARKS["mcf"], GEO, 0)
        b = TraceSource(BENCHMARKS["art"], GEO, 1)
        assert a._private_pc_base != b._private_pc_base
