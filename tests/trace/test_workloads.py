"""Unit tests for the Table 6 workload composer."""

import pytest

from repro.trace.workloads import (
    TABLE6,
    Workload,
    design_suite,
    validate_workload,
)


class TestTable6:
    def test_suite_counts_match_paper(self):
        assert TABLE6[4].num_workloads == 120
        assert TABLE6[8].num_workloads == 80
        assert TABLE6[16].num_workloads == 60
        assert TABLE6[20].num_workloads == 40
        assert TABLE6[24].num_workloads == 40

    @pytest.mark.parametrize("cores", [4, 8, 16, 20, 24])
    def test_every_workload_satisfies_composition(self, cores):
        for workload in design_suite(cores):
            validate_workload(workload)

    def test_subsample_is_prefix(self):
        full = design_suite(16, 10)
        sub = design_suite(16, 4)
        assert [w.benchmarks for w in sub] == [w.benchmarks for w in full[:4]]

    def test_deterministic_in_seed(self):
        a = design_suite(8, 5, master_seed=3)
        b = design_suite(8, 5, master_seed=3)
        assert [w.benchmarks for w in a] == [w.benchmarks for w in b]

    def test_different_seeds_differ(self):
        a = design_suite(8, 5, master_seed=1)
        b = design_suite(8, 5, master_seed=2)
        assert [w.benchmarks for w in a] != [w.benchmarks for w in b]

    def test_no_duplicates_within_workload(self):
        for workload in design_suite(24, 10):
            assert len(set(workload.benchmarks)) == workload.cores

    def test_unknown_core_count_rejected(self):
        with pytest.raises(ValueError):
            design_suite(12)

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            design_suite(16, 61)


class TestWorkload:
    def test_thrashing_cores(self):
        workload = Workload("t", ("lbm", "calc", "milc", "deal"))
        assert workload.thrashing_cores() == [0, 2]

    def test_class_counts(self):
        workload = Workload("t", ("lbm", "calc", "milc", "deal"))
        counts = workload.class_counts()
        assert counts["VH"] == 1 and counts["VL"] == 2 and counts["H"] == 1

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Workload("t", ("lbm", "nosuch"))

    def test_validate_flags_bad_composition(self):
        # A 4-core workload with no thrashing app violates Table 6.
        bad = Workload("4core-bad", ("calc", "deal", "eon", "h26"))
        with pytest.raises(AssertionError):
            validate_workload(bad)

    def test_validate_flags_missing_class(self):
        # 8-core needs one of each class; build one without any VH.
        bad = Workload(
            "8core-bad",
            ("calc", "deal", "eon", "h26", "gcc", "mesa", "art", "bzip"),
        )
        with pytest.raises(AssertionError):
            validate_workload(bad)
