"""Zero-copy shared trace buffers: equivalence, lifecycle, exactly-once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runner.jobs import AloneJob, WorkloadJob
from repro.runner.parallel import ParallelRunner
from repro.runner.store import ResultStore
from repro.sim.config import SystemConfig
from repro.trace import shared
from repro.trace.benchmarks import BENCHMARKS, Geometry, TraceSource
from repro.trace.workloads import Workload

GEOM = Geometry(llc_num_sets=64, l2_blocks=128, l1_blocks=32)
SPEC = BENCHMARKS["mcf"]


@pytest.fixture(autouse=True)
def _clean_registry():
    shared.clear_manifest()
    yield
    shared.clear_manifest()


class TestSharedTraceStore:
    def test_materialise_writes_content_addressed_file(self, tmp_path):
        store = shared.SharedTraceStore(tmp_path)
        entry = store.materialise(SPEC, GEOM, 0, 3, n_chunks=2)
        key = shared.trace_key(SPEC.name, GEOM, 0, 3, 2)
        assert entry["path"] == str(tmp_path / f"{key}.npy")
        arr = np.load(entry["path"], mmap_mode="r")
        assert arr.dtype == shared.TRACE_DTYPE
        assert len(arr) == 2 * TraceSource.CHUNK
        assert store.stats == {"materialised": 1, "reused": 0}

    def test_rematerialise_reuses_existing_file(self, tmp_path):
        store = shared.SharedTraceStore(tmp_path)
        store.materialise(SPEC, GEOM, 0, 3, n_chunks=2)
        again = shared.SharedTraceStore(tmp_path)
        again.materialise(SPEC, GEOM, 0, 3, n_chunks=2)
        assert again.stats == {"materialised": 0, "reused": 1}

    def test_distinct_parameters_get_distinct_keys(self):
        base = shared.trace_key("mcf", GEOM, 0, 3, 2)
        assert shared.trace_key("gcc", GEOM, 0, 3, 2) != base
        assert shared.trace_key("mcf", GEOM, 1, 3, 2) != base
        assert shared.trace_key("mcf", GEOM, 0, 4, 2) != base
        assert shared.trace_key("mcf", GEOM, 0, 3, 3) != base
        other_geom = Geometry(128, 128, 32)
        assert shared.trace_key("mcf", other_geom, 0, 3, 2) != base

    def test_buffer_content_matches_generator(self, tmp_path):
        store = shared.SharedTraceStore(tmp_path)
        entry = store.materialise(SPEC, GEOM, 1, 9, n_chunks=2)
        arr = np.load(entry["path"], mmap_mode="r")
        src = TraceSource(SPEC, GEOM, 1, 9)
        for i in range(2 * TraceSource.CHUNK):
            addr, pc, write = src.next_access()
            assert (arr["addr"][i], arr["pc"][i], arr["write"][i]) == (
                addr,
                pc,
                write,
            )


class TestSharedTraceSource:
    def _shared_source(self, tmp_path, n_chunks=2, core_id=0, seed=5):
        store = shared.SharedTraceStore(tmp_path)
        entry = store.materialise(SPEC, GEOM, core_id, seed, n_chunks=n_chunks)
        shared.install_manifest([entry])
        source = shared.make_source(SPEC, GEOM, core_id, seed)
        assert isinstance(source, shared.SharedTraceSource)
        return source

    def test_replay_then_live_stream_is_bit_identical(self, tmp_path):
        source = self._shared_source(tmp_path, n_chunks=2)
        plain = TraceSource(SPEC, GEOM, 0, 5)
        n = 4 * TraceSource.CHUNK + 99  # 2 replayed + fallback + live
        for _ in range(n):
            assert source.next_access() == plain.next_access()
        assert source.chunks_generated == plain.chunks_generated
        assert (
            source._rng.bit_generator.state == plain._rng.bit_generator.state
        )

    def test_replay_does_not_draw_rng(self, tmp_path):
        source = self._shared_source(tmp_path, n_chunks=2)
        state_before = repr(source._rng.bit_generator.state)
        for _ in range(2 * TraceSource.CHUNK):
            source.next_access()
        assert repr(source._rng.bit_generator.state) == state_before

    def test_restart_fast_forwards_generator_state(self, tmp_path):
        source = self._shared_source(tmp_path, n_chunks=2)
        plain = TraceSource(SPEC, GEOM, 0, 5)
        for _ in range(TraceSource.CHUNK + 7):
            source.next_access()
            plain.next_access()
        source.restart()
        plain.restart()
        for _ in range(2 * TraceSource.CHUNK):
            assert source.next_access() == plain.next_access()

    def test_unregistered_identity_gets_plain_source(self):
        source = shared.make_source(SPEC, GEOM, 0, 5)
        assert type(source) is TraceSource

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHARED_TRACES", "1")
        assert not shared.shared_traces_enabled()
        monkeypatch.delenv("REPRO_NO_SHARED_TRACES")
        assert shared.shared_traces_enabled()

    def test_corrupt_buffer_is_skipped(self, tmp_path):
        path = tmp_path / "bad.npy"
        path.write_bytes(b"not a numpy file")
        shared.install_manifest(
            [
                {
                    "benchmark": SPEC.name,
                    "geometry": [GEOM.llc_num_sets, GEOM.l2_blocks, GEOM.l1_blocks],
                    "core_id": 0,
                    "master_seed": 5,
                    "n_chunks": 2,
                    "path": str(path),
                }
            ]
        )
        assert shared.lookup(SPEC.name, GEOM, 0, 5) is None
        assert type(shared.make_source(SPEC, GEOM, 0, 5)) is TraceSource


class TestRunnerIntegration:
    CONFIG = SystemConfig.scaled(2, llc_sets=64)
    WORKLOAD = Workload("mix", ("mcf", "gcc"))

    def _jobs(self):
        return [
            WorkloadJob.for_workload(
                self.WORKLOAD,
                self.CONFIG,
                policy,
                quota=800,
                warmup=200,
                master_seed=0,
            )
            for policy in ("tadrrip", "ship", "eaf")
        ] + [
            AloneJob("mcf", self.CONFIG.with_cores(1), "tadrrip", 800, 200, 0)
        ]

    def test_shared_traces_generate_each_buffer_exactly_once(
        self, tmp_path, monkeypatch
    ):
        generated: list[tuple] = []
        original = TraceSource._generate_chunk

        def counting(self):
            generated.append((self.spec.name, self.core_id))
            return original(self)

        monkeypatch.setattr(TraceSource, "_generate_chunk", counting)
        runner = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        results = runner.run(self._jobs())
        assert len(results) == 4
        # Both workload traces (mcf core 0, gcc core 1) are shared by the
        # three policy jobs and the alone job; each was materialised once
        # and only replayed afterwards, so every generation event belongs
        # to the two materialisation passes.
        assert runner.trace_store().stats["materialised"] == 2
        per_trace = {t: generated.count(t) for t in set(generated)}
        n_chunks = shared.chunks_for(800, 200)
        assert per_trace == {("mcf", 0): n_chunks, ("gcc", 1): n_chunks}

    def test_results_identical_with_and_without_sharing(self, tmp_path):
        plain = ParallelRunner(jobs=1, share_traces=False)
        reference = [r.to_dict() for r in plain.run(self._jobs())]
        sharing = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        assert [r.to_dict() for r in sharing.run(self._jobs())] == reference

    def test_buffers_live_under_store_root(self, tmp_path):
        runner = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        runner.run(self._jobs())
        buffers = list((tmp_path / "traces").glob("*.npy"))
        assert len(buffers) == 2

    def test_warm_store_rematerialises_nothing(self, tmp_path):
        first = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        first.run(self._jobs())
        # A later batch of *different* jobs over the same workload misses
        # the result store but reuses the first batch's trace buffers.
        second = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        second.run(
            [
                WorkloadJob.for_workload(
                    self.WORKLOAD,
                    self.CONFIG,
                    policy,
                    quota=800,
                    warmup=200,
                    master_seed=0,
                )
                for policy in ("drrip", "srrip")
            ]
        )
        assert second.trace_store().stats == {"materialised": 0, "reused": 2}

    def test_no_cache_keeps_buffers_out_of_the_store(self, tmp_path):
        # ``--no-cache`` promises the store is neither read nor written;
        # trace buffers then live in a runner-lifetime tempdir instead.
        runner = ParallelRunner(
            jobs=1, store=ResultStore(tmp_path), use_cache=False
        )
        runner.run(self._jobs())
        assert runner.trace_store().stats["materialised"] == 2
        assert not (tmp_path / "traces").exists()
        assert runner._trace_tmpdir is not None

    def test_single_job_batches_share_nothing(self, tmp_path):
        runner = ParallelRunner(jobs=1, store=ResultStore(tmp_path))
        runner.run(
            [
                WorkloadJob.for_workload(
                    self.WORKLOAD,
                    self.CONFIG,
                    "tadrrip",
                    quota=800,
                    warmup=200,
                    master_seed=0,
                )
            ]
        )
        assert runner._traces is None
