"""Unit tests for the Evicted-Address Filter policy and its Bloom filter."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.policies.eaf import BloomFilter, EafPolicy


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=256)
        values = list(range(0, 2560, 10))
        for v in values:
            bloom.insert(v)
        assert all(v in bloom for v in values)

    def test_low_false_positive_rate(self):
        bloom = BloomFilter(capacity=1024, bits_per_element=8)
        for v in range(1024):
            bloom.insert(v)
        false_hits = sum(1 for v in range(10_000, 20_000) if v in bloom)
        assert false_hits / 10_000 < 0.10  # 8 bits/elem, 4 hashes: ~2-3%

    def test_clear_resets(self):
        bloom = BloomFilter(capacity=16)
        bloom.insert(5)
        bloom.clear()
        assert 5 not in bloom
        assert bloom.inserted == 0
        assert bloom.resets == 1

    def test_full_flag(self):
        bloom = BloomFilter(capacity=4)
        for v in range(4):
            assert not bloom.full
            bloom.insert(v)
        assert bloom.full

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(4, num_hashes=0)


class TestEafPolicy:
    def test_filter_sized_to_cache_blocks(self):
        policy = EafPolicy()
        policy.bind(64, 16, 2)
        assert policy.filter.capacity == 64 * 16

    def test_absent_address_inserts_distant(self):
        policy = EafPolicy()
        policy.bind(16, 4, 1)
        assert policy.decide_insertion(0, 0, 0, 12345, True) == 3

    def test_recently_evicted_address_inserts_near(self):
        policy = EafPolicy()
        cache = SetAssociativeCache("t", 16, 1, policy, num_cores=1)
        cache.access(0, 0)
        cache.access(0, 16)  # evicts 0 -> EAF
        assert 0 in policy.filter
        assert policy.decide_insertion(0, 0, 0, 0, True) == 2

    def test_filter_resets_after_one_cache_worth(self):
        policy = EafPolicy()
        cache = SetAssociativeCache("t", 4, 1, policy, num_cores=1)
        # 4-block cache: 4 evictions fill the filter and trigger a reset.
        for addr in range(12):
            cache.access(0, addr)
        assert policy.filter.resets >= 1

    def test_pollution_recovery_behaviour(self):
        """Any recently evicted line gets a second chance (RRPV 2)."""
        policy = EafPolicy()
        cache = SetAssociativeCache("t", 4, 2, policy, num_cores=1)
        inserted = list(range(0, 28, 4))  # 7 lines, all map to set 0
        for addr in inserted:
            cache.access(0, addr)
        evicted = [a for a in inserted if not cache.probe(a)]
        assert evicted, "a 2-way set fed 7 lines must have evicted some"
        # Fewer evictions than the filter capacity (8): no reset yet, so
        # every victim is remembered and re-admitted at RRPV 2.
        assert policy.filter.resets == 0
        for addr in evicted:
            assert policy.decide_insertion(0, 0, 0, addr, True) == 2

    def test_writeback_fills_distant(self):
        policy = EafPolicy()
        policy.bind(16, 4, 1)
        assert policy.decide_insertion(0, 0, 0, 1, False) == 3
