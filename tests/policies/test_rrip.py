"""Unit tests for RRIP state machinery, SRRIP and BRRIP."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.policies.rrip import BrripPolicy, SrripPolicy


class TestRripState:
    def test_srrip_inserts_at_long(self):
        policy = SrripPolicy()
        cache = SetAssociativeCache("t", 2, 4, policy, num_cores=1)
        cache.access(0, 0)
        way = cache.addrs[0].index(0)
        assert policy.rrpv[0][way] == 2

    def test_hit_promotes_to_zero(self):
        policy = SrripPolicy()
        cache = SetAssociativeCache("t", 2, 4, policy, num_cores=1)
        cache.access(0, 0)
        cache.access(0, 0)
        way = cache.addrs[0].index(0)
        assert policy.rrpv[0][way] == 0

    def test_non_demand_hit_does_not_promote(self):
        policy = SrripPolicy()
        cache = SetAssociativeCache("t", 2, 4, policy, num_cores=1)
        cache.access(0, 0)
        cache.access(0, 0, is_write=True, is_demand=False)
        way = cache.addrs[0].index(0)
        assert policy.rrpv[0][way] == 2

    def test_victim_ages_set_until_distant(self):
        policy = SrripPolicy()
        policy.bind(1, 4, 1)
        policy.rrpv[0] = [0, 1, 2, 1]
        victim = policy.victim(0, 0)
        assert victim == 2  # the max-RRPV line after aging by +1
        assert policy.rrpv[0] == [1, 2, 3, 2]

    def test_victim_prefers_existing_distant(self):
        policy = SrripPolicy()
        policy.bind(1, 4, 1)
        policy.rrpv[0] = [2, 3, 1, 3]
        assert policy.victim(0, 0) == 1  # leftmost RRPV-3 line, no aging
        assert policy.rrpv[0] == [2, 3, 1, 3]

    def test_writeback_fills_distant(self):
        policy = SrripPolicy()
        cache = SetAssociativeCache("t", 2, 4, policy, num_cores=1)
        cache.access(0, 0, is_write=True, is_demand=False)
        way = cache.addrs[0].index(0)
        assert policy.rrpv[0][way] == 3

    def test_rejects_zero_rrpv_bits(self):
        with pytest.raises(ValueError):
            SrripPolicy(rrpv_bits=0)


class TestSrripScanResistance:
    def test_reused_lines_survive_a_scan(self):
        """SRRIP's raison d'être: a scan cannot flush promoted lines."""
        policy = SrripPolicy()
        cache = SetAssociativeCache("t", 1, 4, policy, num_cores=1)
        for _ in range(3):  # establish and promote two hot lines
            cache.access(0, 0)
            cache.access(0, 1)
        for scan in range(100, 104):  # a short scan burst
            cache.access(0, scan)
        assert cache.probe(0) and cache.probe(1)

    def test_lru_would_have_flushed(self):
        from repro.policies.lru import LruPolicy

        cache = SetAssociativeCache("t", 1, 4, LruPolicy(), num_cores=1)
        for _ in range(3):
            cache.access(0, 0)
            cache.access(0, 1)
        for scan in range(100, 104):
            cache.access(0, scan)
        assert not (cache.probe(0) or cache.probe(1))


class TestBrrip:
    def test_mostly_distant_insertions(self):
        policy = BrripPolicy(epsilon_denominator=32)
        decisions = [policy.decide_insertion(0, 0, 0, i, True) for i in range(64)]
        assert decisions.count(3) == 62
        assert decisions.count(2) == 2

    def test_retains_fraction_of_thrashing_ws(self):
        policy = BrripPolicy()
        cache = SetAssociativeCache("t", 4, 4, policy, num_cores=1)
        # ws = 2x cache, swept repeatedly: SRRIP/LRU would get 0 hits.
        for _ in range(30):
            for addr in range(32):
                cache.access(0, addr)
        assert cache.stats.hits() > 0
