"""Unit tests for the deterministic pseudo-random baseline policy."""

from repro.cache.cache import SetAssociativeCache
from repro.policies.random_ import RandomPolicy


class TestRandomPolicy:
    def test_victims_in_range(self):
        policy = RandomPolicy(seed=3)
        policy.bind(4, 8, 1)
        assert all(0 <= policy.victim(0, 0) < 8 for _ in range(200))

    def test_deterministic_sequence(self):
        a = RandomPolicy(seed=3)
        b = RandomPolicy(seed=3)
        a.bind(4, 8, 1)
        b.bind(4, 8, 1)
        assert [a.victim(0, 0) for _ in range(50)] == [
            b.victim(0, 0) for _ in range(50)
        ]

    def test_covers_all_ways(self):
        policy = RandomPolicy(seed=1)
        policy.bind(4, 8, 1)
        assert {policy.victim(0, 0) for _ in range(400)} == set(range(8))

    def test_zero_seed_does_not_degenerate(self):
        policy = RandomPolicy(seed=0)
        policy.bind(4, 4, 1)
        assert len({policy.victim(0, 0) for _ in range(100)}) > 1

    def test_usable_in_cache(self):
        cache = SetAssociativeCache("t", 8, 4, RandomPolicy(), num_cores=1)
        for i in range(500):
            cache.access(0, i % 64)
        assert cache.stats.hits() > 0
