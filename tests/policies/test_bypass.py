"""Unit tests for the Figure 6 bypass wrapper."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.policies.base import BYPASS
from repro.policies.bypass import BypassWrapper
from repro.policies.lru import LruPolicy
from repro.policies.rrip import BrripPolicy, SrripPolicy


class TestBypassWrapper:
    def test_distant_insertions_become_bypasses(self):
        wrapper = BypassWrapper(BrripPolicy(), insert_denominator=32)
        wrapper.bind(16, 4, 1)
        decisions = [wrapper.decide_insertion(0, 0, 0, i, True) for i in range(64)]
        bypasses = sum(1 for d in decisions if d is BYPASS)
        # BRRIP yields 62 distant of 64; the wrapper keeps 1/32 of those.
        assert bypasses == 60
        assert decisions.count(3) == 2
        assert decisions.count(2) == 2

    def test_non_distant_decisions_untouched(self):
        wrapper = BypassWrapper(SrripPolicy())
        wrapper.bind(16, 4, 1)
        assert wrapper.decide_insertion(0, 0, 0, 1, True) == 2

    def test_writebacks_never_bypassed(self):
        wrapper = BypassWrapper(BrripPolicy())
        wrapper.bind(16, 4, 1)
        for i in range(40):
            assert wrapper.decide_insertion(0, 0, 0, i, False) == 3

    def test_rejects_non_rrip_policies(self):
        with pytest.raises(TypeError):
            BypassWrapper(LruPolicy())

    def test_cache_records_bypasses(self):
        wrapper = BypassWrapper(BrripPolicy())
        cache = SetAssociativeCache("t", 4, 2, wrapper, num_cores=1)
        for addr in range(64):
            cache.access(0, addr)
        assert sum(cache.stats.bypasses) > 0
        assert sum(cache.stats.bypasses) == wrapper.bypassed_distant

    def test_bypassed_lines_not_resident(self):
        wrapper = BypassWrapper(BrripPolicy(epsilon_denominator=1 << 30))
        cache = SetAssociativeCache("t", 4, 2, wrapper, num_cores=1)
        # Defeat both tickers' first-fire so every fill is distant->bypassed.
        wrapper._ticker.tick()
        cache.access(0, 100)
        cache.access(0, 200)
        assert not cache.probe(200)

    def test_delegation_of_interval_and_hits(self):
        inner = BrripPolicy()
        wrapper = BypassWrapper(inner)
        cache = SetAssociativeCache("t", 4, 2, wrapper, num_cores=1)
        cache.access(0, 0)
        if cache.probe(0):
            cache.access(0, 0)
            way = cache.addrs[0].index(0)
            assert inner.rrpv[0][way] == 0  # hit promotion reached the inner policy
        wrapper.end_interval()  # must not raise
