"""Unit tests for DRRIP and TA-DRRIP set-duelling behaviour."""

from repro.cache.cache import SetAssociativeCache
from repro.policies.drrip import DrripPolicy
from repro.policies.tadrrip import TaDrripPolicy


def thrash(cache, core, span, reps, offset=0):
    for _ in range(reps):
        for addr in range(offset, offset + span):
            cache.access(core, addr)


class TestDrrip:
    def test_learns_brrip_under_thrash(self):
        policy = DrripPolicy(leader_sets=8)
        cache = SetAssociativeCache("t", 64, 4, policy, num_cores=1)
        thrash(cache, 0, span=1024, reps=4)
        assert policy.current_winner == "brrip"

    def test_learns_srrip_when_ws_fits(self):
        policy = DrripPolicy(leader_sets=8)
        cache = SetAssociativeCache("t", 64, 4, policy, num_cores=1)
        thrash(cache, 0, span=128, reps=30)
        assert policy.current_winner == "srrip"

    def test_leader_sets_pinned_to_their_policy(self):
        policy = DrripPolicy(leader_sets=8)
        policy.bind(64, 4, 1)
        a_set = policy._duel.leader_sets(0, 0)[0]
        b_set = policy._duel.leader_sets(0, 1)[0]
        assert policy.decide_insertion(a_set, 0, 0, 1, True) == 2
        # BRRIP leader: distant except the epsilon tick.
        decisions = {policy.decide_insertion(b_set, 0, 0, i, True) for i in range(40)}
        assert 3 in decisions

    def test_writeback_insertions_distant_and_unlearned(self):
        policy = DrripPolicy(leader_sets=8)
        policy.bind(64, 4, 1)
        psel_before = policy._psel.value
        a_set = policy._duel.leader_sets(0, 0)[0]
        assert policy.decide_insertion(a_set, 0, 0, 1, False) == 3
        policy.on_miss(a_set, 0, False)
        assert policy._psel.value == psel_before


class TestTaDrrip:
    def test_per_thread_learning(self):
        """A thrashing thread flips to BRRIP while a reusing thread keeps SRRIP."""
        policy = TaDrripPolicy(leader_sets=8)
        cache = SetAssociativeCache("t", 64, 4, policy, num_cores=2)
        base = 1 << 20
        for rep in range(30):
            for i in range(1024):  # core 0 thrashes
                cache.access(0, i)
            for i in range(96):  # core 1's ws fits comfortably
                cache.access(1, base + i)
        assert policy.uses_brrip(0)
        assert not policy.uses_brrip(1)

    def test_forced_cores_always_brrip(self):
        policy = TaDrripPolicy(forced_brrip_cores=(1,))
        policy.bind(64, 4, 2)
        assert policy.uses_brrip(1)
        decisions = [policy.decide_insertion(5, 1, 0, i, True) for i in range(40)]
        assert decisions.count(3) >= 35

    def test_forced_does_not_affect_other_cores(self):
        policy = TaDrripPolicy(forced_brrip_cores=(1,))
        policy.bind(64, 4, 2)
        # Core 0 in one of its SRRIP leader sets inserts long.
        a_set = policy._duel.leader_sets(0, 0)[0]
        assert policy.decide_insertion(a_set, 0, 0, 1, True) == 2

    def test_describe_shows_winners(self):
        policy = TaDrripPolicy()
        policy.bind(64, 4, 3)
        text = policy.describe()
        assert text.startswith("tadrrip[") and len(text.split("[")[1]) >= 3
