"""Unit tests for SHiP-PC."""

from repro.cache.cache import SetAssociativeCache
from repro.policies.ship import ShipPolicy

DEAD_PC = 0x100
LIVE_PC = 0x200


class TestShipLearning:
    def test_dead_signature_learns_distant(self):
        policy = ShipPolicy(shct_entries=64)
        cache = SetAssociativeCache("t", 4, 2, policy, num_cores=1)
        # Stream never-reused lines from one PC until its counter hits 0.
        for i in range(64):
            cache.access(0, i, pc=DEAD_PC)
        sig = policy.signature(0, DEAD_PC)
        assert policy.shct[sig] == 0
        assert policy.decide_insertion(0, 0, DEAD_PC, 999, True) == 3

    def test_reused_signature_stays_intermediate(self):
        policy = ShipPolicy(shct_entries=64)
        cache = SetAssociativeCache("t", 4, 2, policy, num_cores=1)
        for _ in range(10):
            for i in range(4):
                cache.access(0, i, pc=LIVE_PC)
        assert policy.decide_insertion(0, 0, LIVE_PC, 999, True) == 2

    def test_never_inserts_at_zero(self):
        policy = ShipPolicy()
        policy.bind(16, 4, 1)
        decisions = {
            policy.decide_insertion(0, 0, pc, pc, True) for pc in range(100)
        }
        assert decisions <= {2, 3}

    def test_shct_recovers_when_reuse_returns(self):
        policy = ShipPolicy(shct_entries=64)
        cache = SetAssociativeCache("t", 4, 2, policy, num_cores=1)
        for i in range(64):
            cache.access(0, i, pc=DEAD_PC)  # drive to 0
        sig = policy.signature(0, DEAD_PC)
        assert policy.shct[sig] == 0
        for _ in range(6):
            for i in range(4):
                cache.access(0, i, pc=DEAD_PC)  # reuse from same PC
        assert policy.shct[sig] > 0


class TestShipSignatures:
    def test_shared_table_aliases_threads(self):
        policy = ShipPolicy(thread_aware_signatures=False)
        policy.bind(16, 4, 4)
        assert policy.signature(0, 0x1234) == policy.signature(3, 0x1234)

    def test_thread_aware_salting_separates(self):
        policy = ShipPolicy(thread_aware_signatures=True)
        policy.bind(16, 4, 4)
        assert policy.signature(0, 0x1234) != policy.signature(3, 0x1234)

    def test_signature_in_table_range(self):
        policy = ShipPolicy(shct_entries=128)
        policy.bind(16, 4, 1)
        for pc in range(0, 1 << 20, 4097):
            assert 0 <= policy.signature(0, pc) < 128


class TestShipAccounting:
    def test_distant_fraction(self):
        policy = ShipPolicy(shct_entries=8)
        policy.bind(16, 4, 1)
        policy.shct = [0] * 8
        policy.decide_insertion(0, 0, 0, 1, True)
        policy.shct = [1] * 8
        policy.decide_insertion(0, 0, 0, 2, True)
        assert policy.distant_fraction() == 0.5

    def test_writeback_fill_does_not_train(self):
        policy = ShipPolicy(shct_entries=64)
        cache = SetAssociativeCache("t", 4, 1, policy, num_cores=1)
        cache.access(0, 0, pc=DEAD_PC, is_write=True, is_demand=False)
        sig_values = list(policy.shct)
        cache.access(0, 4, pc=DEAD_PC, is_write=True, is_demand=False)  # evicts 0
        assert policy.shct == sig_values  # dead WB eviction did not decrement
