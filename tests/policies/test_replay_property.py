"""Property-based equivalence: LLC-filtered replay vs the fused kernel.

Hypothesis draws random run parameters — workload mix, master seed,
budgets, prefetch shape, capture slack — and the same platform is
executed once on the fused kernel and once as capture + replay.  The
*internal LLC policy state* must match element for element (SHCT
counters, signature/outcome arrays, Bloom-filter bits, Footprint sampler
arrays, PSEL values, epsilon-ticker phases, RRPV/stamp rows), along with
the per-core snapshots and the full LLC stats block.

This is a sharper check than the golden differential alone: random
budgets move the warm-up boundary, the completion skew and the interval
clock across event-group shapes the committed fixtures never pin, and a
tiny random slack forces the live-tail continuation path.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import fastpath
from repro.cpu.capture import capture_workload
from repro.cpu.engine import MulticoreEngine
from repro.cpu.replay import run_replay
from repro.golden import golden_config
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload
from tests.policies.test_fastops_property import _policy_state

#: Every inline family plus a wrapper composition (pure ``_CALL`` dispatch).
REPLAY_POLICIES = ("lru", "dip", "tadrrip", "ship", "eaf", "adapt_bp32", "tadrrip+bp")

BENCH_POOL = ("mcf", "libq", "gcc", "calc", "astar")


def _config(prefetch):
    config = golden_config()
    if prefetch:
        config = replace(config, l1_next_line_prefetch=True, l2_stride_prefetch=True)
    return config


def _engine(policy_name, benchmarks, seed, quota, warmup, prefetch):
    config = _config(prefetch)
    hierarchy = build_hierarchy(config, policy_name)
    sources = build_sources(Workload("prop", benchmarks), config, seed)
    return MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )


def _observe(engine, snapshots):
    return (
        [s.to_dict() for s in snapshots],
        engine.hierarchy.llc.stats.snapshot(),
        _policy_state(engine.hierarchy.llc.policy),
        engine.intervals_completed,
        engine.now,
    )


@pytest.mark.parametrize("policy_name", REPLAY_POLICIES)
@settings(max_examples=6, deadline=None)
@given(
    bench_a=st.sampled_from(BENCH_POOL),
    bench_b=st.sampled_from(BENCH_POOL),
    seed=st.integers(min_value=0, max_value=2**16),
    quota=st.integers(min_value=150, max_value=600),
    warmup=st.integers(min_value=0, max_value=200),
    prefetch=st.booleans(),
    slack=st.sampled_from((0.0, 0.05, 1.0)),
)
def test_replay_matches_fused_policy_state(
    policy_name, bench_a, bench_b, seed, quota, warmup, prefetch, slack
):
    benchmarks = (bench_a, bench_b)
    fused = _engine(policy_name, benchmarks, seed, quota, warmup, prefetch)
    snapshots = fastpath.run_fast(fused)
    assert snapshots is not None, "platform must be fast-path eligible"
    expected = _observe(fused, snapshots)

    bundle = capture_workload(
        benchmarks, _config(prefetch), quota, warmup, seed, slack=slack
    )
    engine = _engine(policy_name, benchmarks, seed, quota, warmup, prefetch)
    replayed = run_replay(engine, bundle)
    assert replayed is not None, "platform must be replay eligible"
    assert _observe(engine, replayed) == expected
