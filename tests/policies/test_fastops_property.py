"""Property-based equivalence: inlined fast-ops vs method-call hooks.

For every policy exposing a native fast-op kind (SHiP, EAF, ADAPT, the
duelling DIP/DRRIP/TA-DRRIP family), hypothesis draws random run
parameters — workload mix, master seed, budgets, prefetch shape — and the
same platform is executed once on the fused kernel (inlined fast-ops) and
once on the generic loop (method-call hooks).  The *internal policy
state* must match element for element: SHCT counters, signature and
outcome arrays, Bloom-filter bits and reset counts, Footprint sampler
arrays, PSEL values, epsilon-ticker phases and RRPV/stamp rows.

This is a sharper check than output equivalence alone: a dispatch-mode
bug that happens not to change IPC in a short run (say, a missed SHCT
decrement) still flips a counter here.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import fastpath
from repro.cpu.engine import MulticoreEngine
from repro.golden import golden_config
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload

#: Policies whose fast-op kinds PR 3 promoted from ``_CALL`` dispatch.
FASTOP_POLICIES = ("ship", "eaf", "adapt_bp32", "adapt_ins", "tadrrip", "drrip", "dip")

BENCH_POOL = ("mcf", "libq", "gcc", "calc", "astar")


def _policy_state(policy) -> dict:
    """JSON-able snapshot of every piece of replacement/training state."""
    state: dict = {"describe": policy.describe()}
    if hasattr(policy, "rrpv"):
        state["rrpv"] = [list(row) for row in policy.rrpv]
    if hasattr(policy, "_stamp"):
        state["stamp"] = [list(row) for row in policy._stamp]
        state["next_mru"] = list(policy._next_mru)
        state["next_lru"] = list(policy._next_lru)
    if hasattr(policy, "shct"):  # SHiP
        state["shct"] = list(policy.shct)
        state["sigs"] = [list(row) for row in policy._line_sig]
        state["outcomes"] = [list(row) for row in policy._outcome]
        state["predictions"] = (
            policy.distant_predictions,
            policy.intermediate_predictions,
        )
    if getattr(policy, "filter", None) is not None:  # EAF
        fltr = policy.filter
        state["bloom"] = (bytes(fltr._bits).hex(), fltr.inserted, fltr.resets)
        state["predictions"] = (
            policy.present_predictions,
            policy.distant_predictions,
        )
    if hasattr(policy, "samplers") and policy.samplers:  # ADAPT
        state["samplers"] = [
            [
                (list(arr.tags), list(arr.rrpv), arr.unique_count)
                for arr in sampler._arrays
            ]
            + [sampler.samples]
            for sampler in policy.samplers
        ]
        state["buckets"] = [b.name for b in policy.buckets]
        state["footprints"] = list(policy.footprints)
    psel = getattr(policy, "_psel", None)
    if psel is not None:  # duelling families
        psels = psel if isinstance(psel, list) else [psel]
        state["psel"] = [p.value for p in psels]
    tickers = getattr(policy, "_tickers", None)
    ticker = getattr(policy, "_ticker", None)
    if tickers:
        state["tickers"] = [t._count for t in tickers]
    elif ticker is not None:
        state["ticker"] = ticker._count
    return state


def _run(policy_name, benchmarks, seed, quota, warmup, prefetch, force_generic):
    config = golden_config()
    if prefetch:
        config = replace(
            config, l1_next_line_prefetch=True, l2_stride_prefetch=True
        )
    hierarchy = build_hierarchy(config, policy_name)
    sources = build_sources(Workload("prop", benchmarks), config, seed)
    engine = MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )
    if force_generic:
        snapshots = engine._run_generic()
    else:
        snapshots = fastpath.run_fast(engine)
        assert snapshots is not None, "platform must be fast-path eligible"
    return (
        [s.to_dict() for s in snapshots],
        hierarchy.llc.stats.snapshot(),
        _policy_state(hierarchy.llc.policy),
    )


@pytest.mark.parametrize("policy_name", FASTOP_POLICIES)
@settings(max_examples=8, deadline=None)
@given(
    bench_a=st.sampled_from(BENCH_POOL),
    bench_b=st.sampled_from(BENCH_POOL),
    seed=st.integers(min_value=0, max_value=2**16),
    quota=st.integers(min_value=150, max_value=600),
    prefetch=st.booleans(),
)
def test_inlined_fastops_match_hook_calls(
    policy_name, bench_a, bench_b, seed, quota, prefetch
):
    warmup = quota // 4
    args = (policy_name, (bench_a, bench_b), seed, quota, warmup, prefetch)
    fast_snaps, fast_stats, fast_state = _run(*args, force_generic=False)
    gen_snaps, gen_stats, gen_state = _run(*args, force_generic=True)
    assert fast_snaps == gen_snaps
    assert fast_stats == gen_stats
    assert fast_state == gen_state
