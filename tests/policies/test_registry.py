"""Unit tests for the policy registry."""

import pytest

from repro.core.adapt import AdaptPolicy
from repro.policies.bypass import BypassWrapper
from repro.policies.registry import PAPER_POLICIES, available_policies, make_policy


class TestRegistry:
    def test_all_registered_names_construct(self):
        for name in available_policies():
            policy = make_policy(name)
            policy.bind(64, 16, 4)

    def test_paper_policies_subset(self):
        names = set(available_policies())
        for policy in PAPER_POLICIES:
            assert policy in names

    def test_fresh_instances(self):
        assert make_policy("lru") is not make_policy("lru")

    def test_adapt_variants(self):
        assert make_policy("adapt_bp32").bypass_least is True
        assert make_policy("adapt_ins").bypass_least is False
        assert isinstance(make_policy("adapt"), AdaptPolicy)

    def test_bp_suffix_wraps(self):
        policy = make_policy("tadrrip+bp")
        assert isinstance(policy, BypassWrapper)
        assert policy.inner.name == "tadrrip"

    def test_kwargs_forwarded(self):
        policy = make_policy("adapt_bp32", num_monitor_sets=8)
        policy.bind(256, 16, 2)
        assert policy.samplers[0].num_monitor_sets == 8

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("plru")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ValueError, match="modifier"):
            make_policy("lru+fast")
