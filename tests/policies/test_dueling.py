"""Unit tests for set-duelling leader assignment."""

import pytest

from repro.policies.dueling import DuelMap


class TestDuelMap:
    def test_exact_leader_counts(self):
        duel = DuelMap(1024, leader_sets_per_policy=32)
        assert len(duel.leader_sets(0, DuelMap.POLICY_A)) == 32
        assert len(duel.leader_sets(0, DuelMap.POLICY_B)) == 32

    def test_leader_pools_disjoint(self):
        duel = DuelMap(256, 16)
        a = set(duel.leader_sets(0, DuelMap.POLICY_A))
        b = set(duel.leader_sets(0, DuelMap.POLICY_B))
        assert not a & b

    def test_majority_followers(self):
        duel = DuelMap(256, 16)
        followers = sum(
            1 for s in range(256) if duel.owner(s, 0) == DuelMap.FOLLOWER
        )
        assert followers == 256 - 32

    def test_threads_get_different_pools(self):
        duel = DuelMap(1024, 32)
        pools = [set(duel.leader_sets(t, DuelMap.POLICY_A)) for t in range(4)]
        # Pseudo-random per-thread pools; identical pools would defeat TA duelling.
        assert len({frozenset(p) for p in pools}) == 4

    def test_deterministic(self):
        a = DuelMap(512, 32).leader_sets(3, DuelMap.POLICY_A)
        b = DuelMap(512, 32).leader_sets(3, DuelMap.POLICY_A)
        assert a == b

    def test_no_stride_resonance(self):
        """A strided reference stream must not land wholly in one pool.

        Regression test: an arithmetic (set % period) mapping lets
        ``set = k*i mod num_sets`` streams fall entirely into one
        constituency, corrupting the duel.
        """
        duel = DuelMap(64, 16)
        for stride, thread in ((7, 0), (4, 1), (16, 2), (3, 3)):
            owners = {duel.owner((stride * i) % 64, thread) for i in range(64)}
            assert DuelMap.FOLLOWER in owners

    def test_clamps_tiny_caches(self):
        duel = DuelMap(8, leader_sets_per_policy=32)
        assert duel.leader_sets_per_policy == 2
        assert len(duel.leader_sets(0, DuelMap.POLICY_A)) == 2

    def test_rejects_tiny_set_count(self):
        with pytest.raises(ValueError):
            DuelMap(2)
