"""Unit tests for the recency-stack family: LRU, LIP, BIP, DIP."""


from repro.cache.cache import SetAssociativeCache
from repro.policies.lru import BipPolicy, DipPolicy, LipPolicy, LruPolicy


def drive(policy, accesses, num_sets=4, ways=4, cores=1):
    cache = SetAssociativeCache("t", num_sets, ways, policy, num_cores=cores)
    for addr in accesses:
        cache.access(0, addr)
    return cache


class TestLru:
    def test_mru_insertion_recency_order(self):
        policy = LruPolicy()
        cache = drive(policy, [0, 4, 8], num_sets=4, ways=4)
        # All map to set 0; most recent first.
        order = policy.recency_order(0)
        resident = [cache.addrs[0][w] for w in order if cache.addrs[0][w] != -1]
        assert resident == [8, 4, 0]

    def test_cyclic_thrash_gets_zero_hits(self):
        # The DIP paper's motivating pathology: ws = ways+1 under LRU.
        policy = LruPolicy()
        cache = drive(policy, [i * 4 for i in range(5)] * 20, num_sets=4, ways=4)
        assert cache.stats.hits() == 0

    def test_hit_promotes_to_mru(self):
        policy = LruPolicy()
        cache = drive(policy, [0, 4, 0, 8], num_sets=4, ways=2)
        # 0 was promoted before 8's insertion, so 4 was the victim.
        assert cache.probe(0) and cache.probe(8) and not cache.probe(4)

    def test_writeback_hit_does_not_promote(self):
        policy = LruPolicy()
        cache = SetAssociativeCache("t", 4, 2, policy, num_cores=1)
        cache.access(0, 0)
        cache.access(0, 4)
        cache.access(0, 0, is_write=True, is_demand=False)  # WB hit on 0
        cache.access(0, 8)  # victim should still be 0 (LRU by demand order)
        assert not cache.probe(0)


class TestLip:
    def test_lru_insertion_protects_incumbents(self):
        policy = LipPolicy()
        cache = SetAssociativeCache("t", 1, 3, policy, num_cores=1)
        cache.access(0, 0)
        cache.access(0, 1)
        cache.access(0, 0)
        cache.access(0, 1)  # both promoted to top of stack
        cache.access(0, 2)  # fills the remaining way at LRU position
        cache.access(0, 3)  # must evict 2, not the reused lines
        assert cache.probe(0) and cache.probe(1)
        assert not cache.probe(2)

    def test_retains_part_of_thrashing_ws_after_warmup(self):
        policy = LipPolicy()
        # ws 8 blocks over one 4-way set: LIP churns a single way and
        # freezes the rest, so later sweeps hit the retained blocks
        # (LRU would get exactly zero hits here).
        cache = drive(policy, list(range(8)) * 10, num_sets=1, ways=4)
        assert cache.stats.hits() > 0


class TestBip:
    def test_epsilon_mru_insertions(self):
        policy = BipPolicy(epsilon_denominator=4)
        decisions = [
            policy.decide_insertion(0, 0, 0, i, True) for i in range(16)
        ]
        from repro.policies.lru import MRU_INSERT

        assert decisions.count(MRU_INSERT) == 4

    def test_writebacks_never_mru(self):
        from repro.policies.lru import LRU_INSERT

        policy = BipPolicy(epsilon_denominator=1)
        assert policy.decide_insertion(0, 0, 0, 1, False) == LRU_INSERT


class TestDip:
    def test_learns_bip_under_thrash(self):
        policy = DipPolicy(leader_sets=8)
        # Thrashing sweep larger than the cache.
        drive(policy, list(range(512)) * 6, num_sets=32, ways=4)
        assert policy._psel.selects_second, "DIP should pick BIP under thrash"

    def test_learns_lru_under_reuse(self):
        policy = DipPolicy(leader_sets=8)
        drive(policy, list(range(64)) * 40, num_sets=32, ways=4)
        assert not policy._psel.selects_second, "DIP should pick LRU when WS fits"

    def test_describe_names_winner(self):
        policy = DipPolicy()
        policy.bind(64, 4, 1)
        assert "dip(" in policy.describe()
