"""Unit tests for MPKI/IPC effect helpers."""

import pytest

from repro.metrics.cachestats import (
    average_by_app,
    ipc_speedup,
    mpki_reduction_percent,
    s_curve,
)


class TestMpkiReduction:
    def test_reduction_positive_when_better(self):
        assert mpki_reduction_percent(5.0, 10.0) == pytest.approx(50.0)

    def test_negative_when_worse(self):
        assert mpki_reduction_percent(12.0, 10.0) == pytest.approx(-20.0)

    def test_zero_baseline(self):
        assert mpki_reduction_percent(1.0, 0.0) == 0.0


class TestIpcSpeedup:
    def test_ratio(self):
        assert ipc_speedup(1.2, 1.0) == pytest.approx(1.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            ipc_speedup(1.0, 0.0)


class TestScurve:
    def test_sorted_ascending(self):
        assert s_curve([1.05, 0.99, 1.01]) == [0.99, 1.01, 1.05]


class TestAverageByApp:
    def test_averages_across_workloads(self):
        rows = [{"mcf": 10.0, "lbm": 0.0}, {"mcf": 20.0}]
        out = average_by_app(rows)
        assert out["mcf"] == pytest.approx(15.0)
        assert out["lbm"] == pytest.approx(0.0)

    def test_empty(self):
        assert average_by_app([]) == {}
