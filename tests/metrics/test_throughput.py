"""Unit tests for the Table 7 throughput metrics."""

import pytest

from repro.metrics.throughput import (
    METRIC_LABELS,
    METRIC_NAMES,
    compute_all_metrics,
    harmonic_mean_of_normalized_ipcs,
    mean_gain_percent,
    relative_gain,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_no_interference_equals_core_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_halved_ipcs(self):
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_mixed(self):
        assert weighted_speedup([0.5, 2.0], [1.0, 2.0]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])


class TestHarmonicNormalized:
    def test_uniform_slowdown(self):
        assert harmonic_mean_of_normalized_ipcs([0.5, 1.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_penalises_imbalance(self):
        balanced = harmonic_mean_of_normalized_ipcs([0.5, 0.5], [1.0, 1.0])
        skewed = harmonic_mean_of_normalized_ipcs([0.9, 0.1], [1.0, 1.0])
        assert skewed < balanced


class TestAllMetrics:
    def test_contains_all_table7_rows(self):
        metrics = compute_all_metrics([1.0, 2.0], [2.0, 4.0])
        assert set(metrics) == set(METRIC_NAMES)
        assert set(METRIC_LABELS) == set(METRIC_NAMES)

    def test_values(self):
        metrics = compute_all_metrics([1.0, 4.0], [2.0, 4.0])
        assert metrics["ws"] == pytest.approx(1.5)
        assert metrics["gm_ipc"] == pytest.approx(2.0)
        assert metrics["am_ipc"] == pytest.approx(2.5)
        assert metrics["hm_ipc"] == pytest.approx(1.6)


class TestGains:
    def test_relative_gain(self):
        assert relative_gain(1.047, 1.0) == pytest.approx(1.047)
        with pytest.raises(ValueError):
            relative_gain(1.0, 0.0)

    def test_mean_gain_percent(self):
        assert mean_gain_percent([1.1, 1.1]) == pytest.approx(10.0)
        assert mean_gain_percent([1.0]) == pytest.approx(0.0)
