"""Scenario-level integration tests: the paper's claims at miniature scale."""

import pytest

from repro.core.priority import PriorityBucket
from repro.cpu.engine import MulticoreEngine
from repro.metrics.throughput import weighted_speedup
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.multi import run_workload
from repro.sim.single import AloneCache
from repro.trace.workloads import Workload

pytestmark = [pytest.mark.integration, pytest.mark.slow]

#: A miniature 4-core mix: one heavy thrasher vs three friendly apps.
MIX = Workload("mini", ("lbm", "bzip", "deal", "omn"))


def run(tiny_config, policy, quota=6000, warmup=2000):
    return run_workload(MIX, tiny_config, policy, quota=quota, warmup=warmup)


class TestAdaptClassifiesLive:
    def test_thrasher_reaches_least_priority(self, tiny_config):
        hierarchy = build_hierarchy(tiny_config, "adapt_bp32")
        sources = build_sources(MIX, tiny_config)
        engine = MulticoreEngine(
            hierarchy, sources, quota_per_core=6000,
            interval_misses=tiny_config.effective_interval,
        )
        engine.run()
        policy = hierarchy.llc.policy
        assert policy.bucket_of(0) == PriorityBucket.LEAST  # lbm
        assert policy.bucket_of(2) in (PriorityBucket.HIGH, PriorityBucket.MEDIUM)  # deal
        assert sum(hierarchy.llc.stats.bypasses) > 0

    def test_interval_recomputation_happened(self, tiny_config):
        hierarchy = build_hierarchy(tiny_config, "adapt_bp32")
        sources = build_sources(MIX, tiny_config)
        engine = MulticoreEngine(
            hierarchy, sources, quota_per_core=6000,
            interval_misses=tiny_config.effective_interval,
        )
        engine.run()
        assert engine.intervals_completed >= 1
        assert hierarchy.llc.policy.samplers[0].intervals_completed >= 1


class TestPolicyOrdering:
    def test_adapt_beats_lru_on_mixed_workload(self, tiny_config):
        alone = AloneCache(tiny_config, quota=6000, warmup=1500)
        baselines = alone.ipcs(MIX.benchmarks)
        ws = {
            policy: weighted_speedup(run(tiny_config, policy).ipcs, baselines)
            for policy in ("lru", "adapt_bp32")
        }
        assert ws["adapt_bp32"] > ws["lru"]

    def test_friendly_apps_protected_by_adapt(self, tiny_config):
        lru = run(tiny_config, "lru").per_app()
        adapt = run(tiny_config, "adapt_bp32").per_app()
        # The friendly apps' combined LLC MPKI must improve under ADAPT.
        friendly = ("bzip", "deal", "omn")
        lru_mpki = sum(lru[a].llc_mpki for a in friendly)
        adapt_mpki = sum(adapt[a].llc_mpki for a in friendly)
        assert adapt_mpki < lru_mpki

    def test_bypass_does_not_destroy_thrasher(self, tiny_config):
        """Fig. 4's claim: bypassing barely slows the thrashing app."""
        ins = run(tiny_config, "adapt_ins").per_app()["lbm"]
        byp = run(tiny_config, "adapt_bp32").per_app()["lbm"]
        assert byp.ipc > 0.85 * ins.ipc


class TestDeterminism:
    def test_identical_runs_are_bitwise_equal(self, tiny_config):
        a = run(tiny_config, "adapt_bp32", quota=2500, warmup=500)
        b = run(tiny_config, "adapt_bp32", quota=2500, warmup=500)
        assert a.ipcs == b.ipcs
        assert [s.llc_misses for s in a.snapshots] == [
            s.llc_misses for s in b.snapshots
        ]

    def test_seed_changes_results(self, tiny_config):
        a = run_workload(MIX, tiny_config, "lru", quota=2500, warmup=500, master_seed=0)
        b = run_workload(MIX, tiny_config, "lru", quota=2500, warmup=500, master_seed=9)
        assert a.ipcs != b.ipcs


class TestBypassPlumbing:
    def test_bypassed_lines_still_reach_private_l2(self, tiny_config):
        """A bypassed fill must still deliver data upward (to L1/L2)."""
        hierarchy = build_hierarchy(tiny_config, "adapt_bp32")
        sources = build_sources(MIX, tiny_config)
        engine = MulticoreEngine(
            hierarchy, sources, quota_per_core=6000,
            interval_misses=tiny_config.effective_interval,
        )
        snaps = engine.run()
        bypasses = sum(hierarchy.llc.stats.bypasses)
        assert bypasses > 0
        # The thrasher still made forward progress (instructions retired).
        assert snaps[0].instructions > 0
        # And L2 content for core 0 is non-empty despite LLC bypassing.
        assert sum(hierarchy.l2s[0].occupancy) > 0
