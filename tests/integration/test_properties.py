"""Property-based tests (hypothesis) on core data structures and invariants."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.core.footprint import FootprintSampler
from repro.core.priority import InsertionPriorityPredictor, PriorityBucket
from repro.policies.base import BYPASS
from repro.policies.eaf import BloomFilter
from repro.policies.registry import make_policy
from repro.util.bitops import split_address, xor_fold
from repro.util.counters import FractionTicker, SaturatingCounter

pytestmark = pytest.mark.integration

addresses = st.integers(min_value=0, max_value=(1 << 44) - 1)


class TestCacheInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), addresses, st.booleans()),
            min_size=1,
            max_size=300,
        ),
        st.sampled_from(["lru", "srrip", "brrip", "dip", "ship", "eaf", "adapt_bp32"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_structural_invariants_hold_under_any_stream(self, stream, policy_name):
        """After any access stream: no duplicate lines, set mapping correct,
        occupancy equals valid-line count, stats balance."""
        cache = SetAssociativeCache("t", 8, 4, make_policy(policy_name), num_cores=4)
        for core, addr, is_write in stream:
            cache.access(core, addr, pc=addr & 0xFFF, is_write=is_write)

        valid = 0
        for set_idx in range(cache.num_sets):
            resident = cache.resident_blocks(set_idx)
            # No duplicates within a set.
            assert len(resident) == len(set(resident))
            # Every resident block maps to its set.
            for block in resident:
                assert block & cache.set_mask == set_idx
            valid += len(resident)

        assert sum(cache.occupancy) == valid
        stats = cache.stats
        # Fills + bypasses == misses (every miss either allocates or bypasses).
        assert sum(stats.fills) + sum(stats.bypasses) == stats.misses()
        # A line can only be evicted after being filled.
        assert sum(stats.evictions) <= sum(stats.fills)

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_immediate_rereference_always_hits(self, stream):
        """Under a non-bypassing policy, accessing an address twice in a row
        must hit the second time."""
        cache = SetAssociativeCache("t", 8, 4, make_policy("lru"), num_cores=1)
        for addr in stream:
            cache.access(0, addr)
            assert cache.access(0, addr).hit


class TestFootprintProperties:
    @given(st.lists(addresses, min_size=1, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_footprint_bounded_by_unique_blocks(self, stream):
        sampler = FootprintSampler(llc_num_sets=16, num_monitor_sets=16)
        for addr in stream:
            sampler.observe(addr % 16, addr)
        unique = len(set(stream))
        # Average unique-per-set can never exceed total unique blocks.
        assert sampler.footprint_number() <= unique
        assert sampler.footprint_number() >= 0

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_duplicate_stream_does_not_inflate(self, stream):
        """Observing the same stream twice gives the same Footprint-number
        as observing it once (uniqueness, not volume, is counted) — as long
        as the per-set arrays have not overflowed."""
        small = [a % 128 for a in stream][:40]  # <= 40 blocks over 16 sets
        s1 = FootprintSampler(llc_num_sets=16, num_monitor_sets=16)
        s2 = FootprintSampler(llc_num_sets=16, num_monitor_sets=16)
        for addr in small:
            s1.observe(addr % 16, addr)
        for addr in small + small:
            s2.observe(addr % 16, addr)
        assert s2.footprint_number() == s1.footprint_number()

    @given(st.floats(min_value=0.0, max_value=64.0, allow_nan=False))
    @settings(max_examples=100)
    def test_classification_total_and_monotone(self, fpn):
        predictor = InsertionPriorityPredictor(associativity=16)
        bucket = predictor.classify(fpn)
        assert bucket in PriorityBucket
        # Monotone: a larger footprint never gets a better bucket.
        assert predictor.classify(fpn + 1.0) >= bucket


class TestPriorityProperties:
    @given(st.sampled_from(list(PriorityBucket)), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_insertion_values_always_legal(self, bucket, n):
        predictor = InsertionPriorityPredictor(associativity=16)
        for _ in range(n):
            value = predictor.insertion_rrpv(bucket)
            assert value is BYPASS or 0 <= value <= 3


class TestBloomFilterProperties:
    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_ever(self, values):
        bloom = BloomFilter(capacity=256)
        for v in values:
            bloom.insert(v)
        assert all(v in bloom for v in values)


class TestCounterProperties:
    @given(st.integers(1, 12), st.lists(st.sampled_from(["inc", "dec"]), max_size=200))
    @settings(max_examples=40)
    def test_saturating_counter_stays_in_range(self, bits, ops):
        c = SaturatingCounter(bits)
        for op in ops:
            c.increment() if op == "inc" else c.decrement()
            assert 0 <= c.value <= c.max_value

    @given(st.integers(1, 64), st.integers(1, 1000))
    @settings(max_examples=40)
    def test_ticker_fires_exactly_n_over_kn(self, denom, windows):
        t = FractionTicker(denom)
        fires = sum(t.tick() for _ in range(denom * windows))
        assert fires == windows


class TestBitopsProperties:
    @given(addresses, st.sampled_from([16, 64, 256, 1024]))
    @settings(max_examples=60)
    def test_split_address_roundtrip(self, addr, num_sets):
        tag, set_idx = split_address(addr, num_sets)
        assert tag * num_sets + set_idx == addr

    @given(addresses, st.integers(1, 20))
    @settings(max_examples=60)
    def test_xor_fold_in_range(self, value, width):
        assert 0 <= xor_fold(value, width) < (1 << width)
