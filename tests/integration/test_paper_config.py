"""The verbatim Table 3 platform must be constructible and runnable.

The full paper-scale experiment is out of Python's reach, but the
configuration itself has to work: a short smoke run on the 16MB/16-way
LLC with prefetch enabled, exercising the exact interval arithmetic the
paper states (1M misses, 40 monitored sets of 16384).
"""

import pytest

from repro.cpu.engine import MulticoreEngine
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload

pytestmark = pytest.mark.integration


class TestPaperPlatform:
    def test_short_run_on_paper_config(self):
        config = SystemConfig.paper(num_cores=4)
        workload = Workload("t", ("lbm", "calc", "mcf", "deal"))
        hierarchy = build_hierarchy(config, "adapt_bp32")
        sources = build_sources(workload, config)
        engine = MulticoreEngine(
            hierarchy,
            sources,
            quota_per_core=1500,
            interval_misses=config.effective_interval,
        )
        snapshots = engine.run()
        assert all(s.instructions > 0 for s in snapshots)
        # Next-line prefetch is on in the paper config and must have fired.
        assert hierarchy.prefetches_issued > 0

    def test_paper_monitor_geometry(self):
        config = SystemConfig.paper()
        policy = build_hierarchy(config, "adapt_bp32").llc.policy
        sampler = policy.samplers[0]
        assert sampler.num_monitor_sets == 40
        assert sampler.llc_num_sets == 16384
        # Section 3.3's per-application budget holds at paper scale.
        assert sampler.storage_bits() == 8200

    def test_working_sets_scale_to_paper_llc(self):
        from repro.sim.build import geometry_of
        from repro.trace.benchmarks import BENCHMARKS, TraceSource

        config = SystemConfig.paper()
        src = TraceSource(BENCHMARKS["lbm"], geometry_of(config), 0)
        # fpn 32 on 16384 sets: a 32MB working set over a 16MB cache.
        assert src.working_set_blocks == 32 * 16384
