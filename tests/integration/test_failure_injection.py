"""Failure-injection and edge-condition tests.

The substrate must degrade predictably under hostile inputs: adversarial
address streams, pathological policy states, exhausted structures.
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.adapt import AdaptPolicy
from repro.core.priority import PriorityBucket
from repro.cpu.engine import MulticoreEngine
from repro.policies.base import BYPASS, ReplacementPolicy
from repro.policies.registry import make_policy
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload

pytestmark = pytest.mark.integration


class TestAdversarialStreams:
    def test_single_set_hammering(self):
        """Every access to one set: no overflow, stats stay consistent."""
        for name in ("lru", "tadrrip", "ship", "eaf", "adapt_bp32"):
            cache = SetAssociativeCache("t", 16, 4, make_policy(name), num_cores=2)
            for i in range(5000):
                cache.access(i % 2, i * 16)  # always set 0
            assert cache.stats.misses() > 0
            assert len(cache.resident_blocks(0)) <= 4
            for s in range(1, 16):
                assert cache.resident_blocks(s) == []

    def test_all_writes_stream(self):
        cache = SetAssociativeCache("t", 8, 2, make_policy("srrip"), num_cores=1)
        for i in range(200):
            cache.access(0, i, is_write=True)
        dirty = sum(
            cache.dirty[s][w]
            for s in range(8)
            for w in range(2)
            if cache.addrs[s][w] != -1
        )
        assert dirty == 16  # every resident line dirty

    def test_negative_looking_huge_addresses(self):
        cache = SetAssociativeCache("t", 8, 2, make_policy("lru"), num_cores=1)
        huge = (1 << 62) + 12345
        cache.access(0, huge)
        assert cache.probe(huge)


class TestPolicyStateEdges:
    def test_adapt_with_every_bucket_forced(self):
        """Force each bucket on a live cache and keep it consistent."""
        policy = AdaptPolicy(num_monitor_sets=8)
        cache = SetAssociativeCache("t", 16, 4, policy, num_cores=1)
        for bucket in PriorityBucket:
            policy.buckets[0] = bucket
            for i in range(200):
                cache.access(0, (int(bucket) << 20) + i)
        assert sum(cache.stats.fills) + sum(cache.stats.bypasses) == cache.stats.misses()

    def test_end_interval_with_no_traffic(self):
        policy = AdaptPolicy()
        policy.bind(64, 16, 4)
        policy.end_interval()
        assert policy.footprints == [0.0] * 4
        assert all(b == PriorityBucket.HIGH for b in policy.buckets)

    def test_interval_storm(self):
        """Thousands of interval boundaries without traffic must be safe."""
        policy = AdaptPolicy()
        policy.bind(64, 16, 2)
        for _ in range(2000):
            policy.end_interval()
        assert len(policy.history[0]) == 2000

    def test_bypass_everything_policy_still_progresses(self):
        """A policy that bypasses all demand fills must not wedge the engine."""

        class AlwaysBypass(ReplacementPolicy):
            name = "always-bypass"

            def decide_insertion(self, s, c, pc, addr, demand):
                return BYPASS if demand else 3

            def victim(self, s, c):
                return 0

            def on_fill(self, s, w, ins, c, pc, addr, demand):
                pass

            def on_hit(self, s, w, c, demand, addr=-1):
                pass

        from repro.sim.config import CacheLevelConfig, SystemConfig

        config = SystemConfig(
            name="bypass-all",
            num_cores=2,
            l1=CacheLevelConfig(8, 4, 3.0),
            l2=CacheLevelConfig(8, 8, 14.0),
            llc=CacheLevelConfig(32, 4, 24.0),
        )
        hierarchy = build_hierarchy(config, AlwaysBypass())
        workload = Workload("t", ("lbm", "calc"))
        engine = MulticoreEngine(
            hierarchy, build_sources(workload, config), quota_per_core=800
        )
        snaps = engine.run()
        assert all(s.accesses == 800 for s in snaps)
        assert sum(hierarchy.llc.stats.fills) == sum(
            hierarchy.llc.stats.writeback_arrivals
        ) - sum(hierarchy.llc.stats.other_hits)


class TestStructureExhaustion:
    def test_mshr_saturation_is_bounded(self):
        from repro.cache.mshr import Mshr

        mshr = Mshr(entries=2)
        t = 0.0
        for block in range(100):
            start = mshr.reserve(block, t)
            mshr.complete_at(block, start + 50.0)
        # Time marched forward monotonically under permanent saturation.
        assert mshr.stalls > 0
        assert mshr.outstanding(1e9) == 0

    def test_wb_buffer_saturation_is_bounded(self):
        from repro.cache.writeback import WriteBackBuffer

        wb = WriteBackBuffer(entries=2, retire_at=1, drain_cycles=10.0)
        starts = [wb.admit(0.0) for _ in range(50)]
        assert starts == sorted(starts)
        assert wb.stalls > 0

    def test_sampler_counter_saturation(self):
        from repro.core.footprint import SamplerSet

        s = SamplerSet(entries=4, counter_bits=4)
        for tag in range(1000):
            s.observe(tag)
        assert s.unique_count == 15  # saturated, no wraparound
