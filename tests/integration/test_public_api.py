"""Public-API surface tests: imports, exports, example importability."""

import importlib
from pathlib import Path

import pytest

import repro

pytestmark = pytest.mark.integration

EXAMPLES = Path(repro.__file__).resolve().parents[2] / "examples"


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.policies",
            "repro.cache",
            "repro.mem",
            "repro.cpu",
            "repro.trace",
            "repro.sim",
            "repro.metrics",
            "repro.analysis",
            "repro.experiments",
            "repro.util",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_docstring_example_runs(self):
        """The __init__ docstring's usage example must stay true."""
        from repro import SystemConfig, design_suite, run_workload

        config = SystemConfig.scaled(num_cores=16)
        workload = design_suite(16, num_workloads=1)[0]
        result = run_workload(workload, config, "adapt_bp32", quota=400, warmup=100)
        assert len(result.ipcs) == 16


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "footprint_monitoring.py",
            "policy_shootout.py",
            "consolidation_24core.py",
        ],
    )
    def test_examples_exist_with_main_guard(self, script):
        path = EXAMPLES / script
        text = path.read_text()
        assert '__name__ == "__main__"' in text
        compile(text, str(path), "exec")  # syntax-checked, not executed
