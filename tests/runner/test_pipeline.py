"""End-to-end tests of the barrier-free capture→replay pipeline.

The load-bearing properties: pipelined, barrier and replay-disabled runs
are bit-identical; a failed capture costs only its sweep's replay kernel
(never a result); and the worker-affinity caches make a sweep decode each
artifact once, observably via ``runner.stats``.
"""

from __future__ import annotations

import pytest

from repro.cpu import replay_vec
from repro.runner import ParallelRunner, WorkloadJob
from repro.runner import replaystore
from repro.runner.parallel import pipelining_enabled
from repro.runner.supervisor import RetryPolicy
from repro.trace.workloads import Workload

QUOTA = 400
WARMUP = 100
MIXES = {"thrash": ("mcf", "libq"), "friendly": ("gcc", "calc")}


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Per-test isolation for the process-local replay caches.

    The plane cache is keyed by artifact *content* (not path), so a
    previous test capturing the same identity would otherwise pre-warm it
    and skew the hit/miss assertions.
    """
    replay_vec._PLANE_CACHE.clear()
    replaystore._BUNDLES.clear()
    replaystore.clear_replay_manifest()
    yield
    replay_vec._PLANE_CACHE.clear()
    replaystore._BUNDLES.clear()
    replaystore.clear_replay_manifest()


def _sweep(config, policies, mixes=("thrash",), seed=0):
    return [
        WorkloadJob.for_workload(
            Workload(name, MIXES[name]),
            config.with_cores(len(MIXES[name])),
            policy,
            quota=QUOTA,
            warmup=WARMUP,
            master_seed=seed,
        )
        for name in mixes
        for policy in policies
    ]


def _run(jobs, *, n=1, retry=None):
    with ParallelRunner(jobs=n, retry=retry) as runner:
        results = runner.run(jobs)
    return results, runner


class TestPipelineSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_PIPELINE", raising=False)
        assert pipelining_enabled()
        monkeypatch.setenv("REPRO_NO_PIPELINE", "0")
        assert pipelining_enabled()

    def test_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PIPELINE", "1")
        assert not pipelining_enabled()


class TestPipelinedEquivalence:
    def test_pipelined_matches_barrier_and_fused(self, tiny_config, monkeypatch):
        jobs = _sweep(tiny_config, ("lru", "adapt"), mixes=("thrash", "friendly"))

        monkeypatch.delenv("REPRO_NO_PIPELINE", raising=False)
        pipelined, runner = _run(jobs)
        assert runner.stats["executed"] == len(jobs)
        assert runner.stats["failed"] == 0

        monkeypatch.setenv("REPRO_NO_PIPELINE", "1")
        barrier, _ = _run(jobs)

        monkeypatch.delenv("REPRO_NO_PIPELINE", raising=False)
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        fused, _ = _run(jobs)

        assert pipelined == barrier == fused

    @pytest.mark.slow
    def test_pool_run_matches_inline(self, tiny_config):
        jobs = _sweep(tiny_config, ("lru", "ship", "adapt"), mixes=("thrash", "friendly"))
        inline, _ = _run(jobs, n=1)
        pooled, runner = _run(jobs, n=2)
        assert pooled == inline
        assert runner.stats["failed"] == 0
        # Both job families carry the artifact path as affinity token, so
        # the sticky router was exercised (captures home the tokens, the
        # staggered replays stick to them).
        assert runner.stats["sticky_hits"] + runner.stats["sticky_misses"] > 0


class TestCaptureFailureDegradation:
    def test_poisoned_capture_costs_only_the_replay_kernel(
        self, tiny_config, monkeypatch
    ):
        from repro.cpu.capture import replay_slack
        from repro.runner.replaystore import replay_key
        from repro.sim.build import capture_identity

        jobs = _sweep(tiny_config, ("lru", "adapt"), mixes=("thrash", "friendly"))
        thrash = next(job for job in jobs if job.workload_name == "thrash")
        identity = capture_identity(
            thrash.benchmarks, thrash.config, QUOTA, WARMUP, thrash.master_seed
        )
        # The fault grammar splits on ":", so match on the hex key alone —
        # it only ever appears in the capture job's "capture:<key>" key.
        ckey = replay_key(identity, replay_slack())

        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        fused, _ = _run(jobs)
        monkeypatch.delenv("REPRO_NO_REPLAY")

        # Poison exactly the thrash sweep's capture job: it quarantines,
        # its replays degrade to the fused kernel, and the friendly sweep
        # pipelines normally.  Zero lost cells, bit-identical results.
        monkeypatch.setenv("REPRO_FAULT", "poison:" + ckey[:24])
        poisoned, runner = _run(
            jobs, retry=RetryPolicy(max_retries=0, backoff_base=0.001)
        )
        assert poisoned == fused
        assert all(result is not None for result in poisoned)
        # Capture failures are folded away, never surfaced as job failures.
        assert runner.stats["failed"] == 0
        assert runner.last_failures == []


class TestAffinityCaches:
    def test_sweep_decodes_each_artifact_once(self, tiny_config, monkeypatch):
        # Inline run of an 8-policy sweep on the array-native replay
        # kernel: one artifact, so one bundle load and one plane decode;
        # every other policy hits the content-keyed caches.
        monkeypatch.setenv("REPRO_REPLAY_VEC", "numpy")
        policies = ("lru", "ship", "adapt", "srrip", "brrip", "dip", "eaf", "lip")
        jobs = _sweep(tiny_config, policies)
        results, runner = _run(jobs)
        assert all(result is not None for result in results)
        assert runner.stats["executed"] == len(jobs)
        assert runner.stats["bundle_loads"] == 1
        assert runner.stats["plane_misses"] == 1
        assert runner.stats["plane_hits"] == len(jobs) - 1

    def test_two_sweeps_two_decodes(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_VEC", "numpy")
        jobs = _sweep(tiny_config, ("lru", "ship"), mixes=("thrash", "friendly"))
        results, runner = _run(jobs)
        assert all(result is not None for result in results)
        assert runner.stats["bundle_loads"] == 2
        assert runner.stats["plane_misses"] == 2
        assert runner.stats["plane_hits"] == 2

    def test_plane_cache_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANE_CACHE", "2")
        assert replay_vec.plane_cache_limit() == 2
        monkeypatch.setenv("REPRO_PLANE_CACHE", "garbage")
        assert replay_vec.plane_cache_limit() == 8
        monkeypatch.delenv("REPRO_PLANE_CACHE")
        assert replay_vec.plane_cache_limit() == 8
