"""Result-store and serialisation round-trip tests."""

import json
import os

import pytest

from repro.runner import (
    AloneJob,
    ParallelRunner,
    PolicySpec,
    ResultStore,
    WorkloadJob,
    job_from_dict,
    policy_key,
)
from repro.sim.config import SystemConfig
from repro.sim.multi import run_workload
from repro.sim.results import SingleRunResult, WorkloadResult
from repro.sim.single import run_alone
from repro.trace.workloads import Workload

MIX = Workload("mini", ("lbm", "bzip", "deal", "omn"))


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results")


class TestResultStore:
    def test_miss_returns_none(self, store):
        assert store.get("deadbeef") is None
        assert "deadbeef" not in store

    def test_put_get_round_trip(self, store):
        payload = {"schema": 1, "result": {"x": [1.5, 2.0]}}
        path = store.put("deadbeef", payload)
        assert path.is_file()
        assert store.get("deadbeef") == payload
        assert "deadbeef" in store
        assert list(store.keys()) == ["deadbeef"]
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, store):
        store.put("deadbeef", {"ok": True})
        store.path_for("deadbeef").write_text("{truncated")
        assert store.get("deadbeef") is None

    def test_keys_fan_out_by_prefix(self, store):
        store.put("aa111", {})
        store.put("bb222", {})
        assert store.path_for("aa111").parent.name == "aa"
        assert sorted(store.keys()) == ["aa111", "bb222"]


class TestStoreEdgeCases:
    """Corruption, schema drift and crash-safety behave as cache misses."""

    def _workload_job(self, tiny_config) -> WorkloadJob:
        return WorkloadJob(
            workload_name=MIX.name,
            benchmarks=MIX.benchmarks,
            config=tiny_config,
            policy="lru",
            quota=200,
            warmup=0,
            master_seed=0,
        )

    @pytest.mark.parametrize(
        "blob",
        ["", "{truncated", "\x00\x01binary", "[1, 2", "null"],
        ids=["empty", "truncated", "binary", "half-array", "json-null"],
    )
    def test_damaged_entries_are_misses(self, store, blob):
        store.put("deadbeef", {"schema": 1})
        store.path_for("deadbeef").write_text(blob, errors="ignore")
        assert store.get("deadbeef") is None

    def test_unreadable_entry_is_a_miss(self, store, monkeypatch):
        store.put("deadbeef", {"schema": 1})

        def boom(*args, **kwargs):
            raise OSError("I/O error")

        monkeypatch.setattr("pathlib.Path.open", boom)
        assert store.get("deadbeef") is None

    def test_runner_treats_schema_mismatch_as_miss(self, store, tiny_config):
        """A payload from an older (or newer) encoding is re-simulated."""
        job = self._workload_job(tiny_config)
        key = job.cache_key()
        runner = ParallelRunner(jobs=1, store=store)
        result = runner.run_one(job)
        assert (runner.stats["store_hits"], runner.stats["executed"]) == (0, 1)
        # Warm hit with the current schema.
        assert ParallelRunner(jobs=1, store=store).run_one(job) == result
        # Now age the stored schema: the entry must be ignored, the job
        # re-simulated and the entry rewritten at the current version.
        payload = store.get(key)
        payload["schema"] = payload["schema"] + 1
        store.put(key, payload)
        rerun_runner = ParallelRunner(jobs=1, store=store)
        rerun = rerun_runner.run_one(job)
        assert (
            rerun_runner.stats["store_hits"],
            rerun_runner.stats["executed"],
        ) == (0, 1)
        assert rerun == result
        assert store.get(key)["schema"] == payload["schema"] - 1

    def test_runner_treats_result_shape_drift_as_miss(self, store, tiny_config):
        job = self._workload_job(tiny_config)
        key = job.cache_key()
        ParallelRunner(jobs=1, store=store).run_one(job)
        payload = store.get(key)
        del payload["result"]
        store.put(key, payload)
        runner = ParallelRunner(jobs=1, store=store)
        runner.run_one(job)
        assert runner.stats["executed"] == 1

    def test_crashed_write_leaves_no_partial_entry(self, store, monkeypatch):
        """A crash mid-serialisation must leave neither the entry nor tmp
        litter behind — the atomic-write contract."""
        store.put("deadbeef", {"schema": 1, "result": "old"})
        original = json.dump

        def crashing_dump(obj, fh, **kwargs):
            fh.write('{"schema": 1, "result": "par')  # partial bytes land
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr("repro.runner.store.json.dump", crashing_dump)
        with pytest.raises(RuntimeError, match="simulated crash"):
            store.put("deadbeef", {"schema": 1, "result": "new"})
        monkeypatch.setattr("repro.runner.store.json.dump", original)
        # The previous entry survives intact and no temp files linger.
        assert store.get("deadbeef") == {"schema": 1, "result": "old"}
        leftovers = [
            name
            for name in os.listdir(store.path_for("deadbeef").parent)
            if name != "deadbeef.json"
        ]
        assert leftovers == []

    def test_crashed_first_write_is_still_a_miss(self, store, monkeypatch):
        def crashing_dump(obj, fh, **kwargs):
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr("repro.runner.store.json.dump", crashing_dump)
        with pytest.raises(RuntimeError):
            store.put("cafebabe", {"schema": 1})
        monkeypatch.undo()
        assert store.get("cafebabe") is None
        assert "cafebabe" not in store
        assert list(store.keys()) == []


class TestConfigSerialisation:
    def test_round_trip(self, tiny_config):
        clone = SystemConfig.from_dict(tiny_config.to_dict())
        assert clone == tiny_config

    def test_json_safe(self, tiny_config):
        json.dumps(tiny_config.to_dict())


class TestResultSerialisation:
    def test_workload_result_round_trip(self, tiny_config):
        result = run_workload(MIX, tiny_config, "lru", quota=800, warmup=200)
        clone = WorkloadResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.ipcs == result.ipcs

    def test_single_result_round_trip(self, tiny_config):
        result = run_alone("lbm", tiny_config, quota=800, warmup=200, monitor=True)
        clone = SingleRunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result


class TestPolicySpec:
    def test_canonical_kwargs(self):
        a = PolicySpec.of("tadrrip", forced_brrip_cores=[2, 0], leader_sets=64)
        b = PolicySpec.of("tadrrip", leader_sets=64, forced_brrip_cores=(0, 2))
        assert a == b
        assert a.key() == b.key()

    def test_round_trip(self):
        spec = PolicySpec.of("tadrrip", leader_sets=128, forced_brrip_cores=[1])
        clone = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_build(self, tiny_config):
        policy = PolicySpec.of("tadrrip", leader_sets=64).build(tiny_config)
        assert policy.name == "tadrrip"

    def test_policy_key_plain_string(self):
        assert policy_key("lru") == "lru"
        assert "leader_sets" in policy_key(PolicySpec.of("tadrrip", leader_sets=64))


class TestJobs:
    def _job(self, tiny_config, **overrides) -> WorkloadJob:
        kwargs = dict(
            workload_name=MIX.name,
            benchmarks=MIX.benchmarks,
            config=tiny_config,
            policy="lru",
            quota=800,
            warmup=200,
            master_seed=0,
        )
        kwargs.update(overrides)
        return WorkloadJob(**kwargs)

    def test_workload_job_round_trip(self, tiny_config):
        job = self._job(tiny_config, policy=PolicySpec.of("tadrrip", leader_sets=64))
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.cache_key() == job.cache_key()

    def test_alone_job_round_trip(self, tiny_config):
        job = AloneJob(
            benchmark="lbm",
            config=tiny_config,
            policy="tadrrip",
            quota=800,
            warmup=200,
            master_seed=3,
            monitor=True,
            monitor_all_sets=True,
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.cache_key() == job.cache_key()

    def test_cache_key_sensitivity(self, tiny_config):
        base = self._job(tiny_config)
        assert base.cache_key() == self._job(tiny_config).cache_key()
        assert base.cache_key() != self._job(tiny_config, master_seed=1).cache_key()
        assert base.cache_key() != self._job(tiny_config, policy="srrip").cache_key()
        assert base.cache_key() != self._job(tiny_config, quota=801).cache_key()
        other_config = tiny_config.with_llc(num_sets=32)
        assert base.cache_key() != self._job(other_config).cache_key()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_dict({"kind": "quantum"})

    def test_execute_matches_direct_run(self, tiny_config):
        job = self._job(tiny_config)
        direct = run_workload(MIX, tiny_config, "lru", quota=800, warmup=200)
        assert job.execute() == direct


class TestQueryApi:
    """The typed records()/query() layer the report + tracegc consume."""

    def _persist(self, store, job):
        result = job.execute()
        store.put(
            job.cache_key(),
            {
                "schema": 1,
                "kind": job.kind,
                "job": job.to_dict(),
                "result": result.to_dict(),
            },
        )
        return result

    def _workload_job(self, tiny_config, **overrides) -> WorkloadJob:
        kwargs = dict(
            workload_name=MIX.name,
            benchmarks=MIX.benchmarks,
            config=tiny_config,
            policy="lru",
            quota=200,
            warmup=0,
            master_seed=0,
        )
        kwargs.update(overrides)
        return WorkloadJob(**kwargs)

    def test_records_decode_jobs_and_results(self, store, tiny_config):
        job = self._workload_job(tiny_config)
        stored = self._persist(store, job)
        records = list(store.records())
        assert len(records) == 1
        record = records[0]
        assert record.key == job.cache_key()
        assert record.kind == "workload"
        assert record.policy == "lru"
        assert record.workload == MIX.name
        assert record.benchmarks == MIX.benchmarks
        assert record.seed == 0
        assert record.cores == tiny_config.num_cores
        assert record.result() == stored

    def test_records_skip_schema_drift_and_junk(self, store, tiny_config):
        self._persist(store, self._workload_job(tiny_config))
        store.put("aa001", {"schema": 999, "kind": "workload", "job": {}})
        store.put("bb002", {"schema": 1, "kind": "quantum", "job": {"kind": "quantum"}})
        store.put("cc003", {"no": "schema"})
        assert len(store) == 4
        assert len(list(store.records())) == 1

    def test_query_filters(self, store, tiny_config):
        self._persist(store, self._workload_job(tiny_config))
        self._persist(store, self._workload_job(tiny_config, policy="srrip"))
        self._persist(store, self._workload_job(tiny_config, master_seed=1))
        alone = AloneJob(
            benchmark="lbm",
            config=tiny_config.with_cores(1),
            policy="lru",
            quota=200,
            warmup=0,
            master_seed=0,
        )
        self._persist(store, alone)

        assert len(list(store.query())) == 4
        assert len(list(store.query(kind="workload"))) == 3
        assert len(list(store.query(kind="alone"))) == 1
        assert len(list(store.query(policy="srrip"))) == 1
        assert len(list(store.query(policy="lru", seed=0))) == 2
        assert len(list(store.query(cores=1))) == 1
        by_name = list(store.query(config_name=tiny_config.name))
        assert len(by_name) == 3
        # Alone records expose their benchmark as the workload name.
        assert next(store.query(kind="alone")).workload == "lbm"
        assert list(store.query(workload="nope")) == []

    def test_query_labels_parameterised_policies(self, store, tiny_config):
        spec = PolicySpec.of("tadrrip", leader_sets=64)
        self._persist(store, self._workload_job(tiny_config, policy=spec))
        record = next(store.query(kind="workload"))
        assert record.policy == policy_key(spec)
        assert record.job.policy == spec
