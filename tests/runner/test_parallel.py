"""Parallel execution and cross-invocation caching tests.

The load-bearing properties: a parallel run is bit-identical to the
sequential run with the same master seed, and a second runner pointed at
a warm ``results/`` store performs zero simulations.
"""

import pytest

from repro.experiments.common import ExperimentSettings, Runner
from repro.runner import (
    SCHEMA_VERSION,
    AloneJob,
    ParallelRunner,
    ResultStore,
    WorkloadJob,
    default_jobs,
)
from repro.sim.single import AloneCache, run_alone

SETTINGS = ExperimentSettings(
    quota=1000,
    warmup=300,
    alone_quota=1000,
    alone_warmup=300,
    workloads={4: 2, 8: 2, 16: 2, 20: 2, 24: 2},
)


@pytest.fixture
def suite():
    return SETTINGS.suite(4)


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_garbage_and_unset_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() >= 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1

    def test_non_positive_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert default_jobs() >= 1


class TestParallelMatchesSequential:
    @pytest.mark.slow
    def test_bit_identical_workload_results(self, tiny_config, suite):
        parallel = Runner(tiny_config, SETTINGS, jobs=4)
        sequential = Runner(tiny_config, SETTINGS, jobs=1)
        parallel.prefetch(suite, ("lru", "tadrrip"))
        for workload in suite:
            for policy in ("lru", "tadrrip"):
                assert parallel.run(workload, policy) == sequential.run(
                    workload, policy
                )

    @pytest.mark.slow
    def test_alone_cache_pooled_matches_direct(self, tiny_config):
        pooled = AloneCache(
            tiny_config, quota=1000, warmup=300, pool=ParallelRunner(jobs=2)
        )
        pooled.prefetch(["lbm", "bzip"])
        for benchmark in ("lbm", "bzip"):
            direct = run_alone(benchmark, tiny_config, quota=1000, warmup=300)
            assert pooled.result(benchmark) == direct

    def test_alone_baselines_shared_across_core_counts(self, tiny_config):
        # run_alone always simulates one core, so suites that differ only
        # in core count must derive the same baseline cache keys.
        caches = [
            AloneCache(tiny_config.with_cores(n), quota=1000, warmup=300)
            for n in (4, 16)
        ]
        keys = {c.job_for("lbm").cache_key() for c in caches}
        assert len(keys) == 1


class TestPersistentStore:
    def test_warm_store_runs_zero_simulations(self, tiny_config, suite, tmp_path, monkeypatch):
        first = Runner(tiny_config, SETTINGS, jobs=1, results_dir=tmp_path)
        first.prefetch(suite, ("lru",))
        executed = first.pool.stats["executed"]
        assert executed > 0

        # A fresh invocation against the warm store must not simulate at
        # all — make any attempt explode.
        def boom(*args, **kwargs):
            raise AssertionError("simulated despite a warm result store")

        monkeypatch.setattr(WorkloadJob, "execute", boom)
        monkeypatch.setattr(AloneJob, "execute", boom)
        second = Runner(tiny_config, SETTINGS, jobs=1, results_dir=tmp_path)
        second.prefetch(suite, ("lru",))
        assert second.pool.stats["executed"] == 0
        assert second.pool.stats["store_hits"] == executed
        for workload in suite:
            assert second.run(workload, "lru") == first.run(workload, "lru")
            assert second.weighted_speedup(workload, "lru") == first.weighted_speedup(
                workload, "lru"
            )

    def test_no_cache_bypasses_store(self, tiny_config, suite, tmp_path):
        store_dir = tmp_path / "results"
        warm = Runner(tiny_config, SETTINGS, jobs=1, results_dir=store_dir)
        warm.run(suite[0], "lru")
        assert len(ResultStore(store_dir)) > 0

        fresh = Runner(
            tiny_config, SETTINGS, jobs=1, results_dir=store_dir, use_cache=False
        )
        fresh.run(suite[0], "lru")
        assert fresh.pool.stats["store_hits"] == 0
        assert fresh.pool.stats["executed"] > 0

    def test_stale_schema_is_a_miss(self, tiny_config, suite, tmp_path):
        runner = Runner(tiny_config, SETTINGS, jobs=1, results_dir=tmp_path)
        result = runner.run(suite[0], "lru")
        key = runner._job(suite[0], "lru", tiny_config).cache_key()
        payload = runner.store.get(key)
        assert payload is not None and payload["schema"] == SCHEMA_VERSION

        payload["schema"] = -1
        runner.store.put(key, payload)
        rerun = Runner(tiny_config, SETTINGS, jobs=1, results_dir=tmp_path)
        assert rerun.run(suite[0], "lru") == result
        assert rerun.pool.stats["executed"] == 1


class TestRunnerMemo:
    def test_prefetch_fills_l1(self, tiny_config, suite):
        runner = Runner(tiny_config, SETTINGS, jobs=1)
        runner.prefetch(suite, ("lru",))
        executed = runner.pool.stats["executed"]
        first = runner.run(suite[0], "lru")
        assert runner.run(suite[0], "lru") is first
        assert runner.pool.stats["executed"] == executed

    def test_duplicate_jobs_in_one_batch_run_once(self, tiny_config, suite):
        runner = Runner(tiny_config, SETTINGS, jobs=1)
        pairs = [(suite[0], "lru"), (suite[0], "lru")]
        runner.prefetch_pairs(pairs, alone=False)
        assert runner.pool.stats["executed"] == 1
