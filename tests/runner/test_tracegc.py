"""``repro-experiments traces gc``: prune unreferenced shared buffers."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main
from repro.runner import ParallelRunner, ResultStore, WorkloadJob
from repro.runner.tracegc import collect_garbage
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload


@pytest.fixture
def populated_store(tmp_path):
    config = SystemConfig.scaled(16).with_cores(2)
    workload = Workload("g", ("mcf", "libq"))
    jobs = [
        WorkloadJob.for_workload(
            workload, config, policy, quota=300, warmup=80, master_seed=0
        )
        for policy in ("lru", "srrip", "ship")
    ]
    root = tmp_path / "results"
    ParallelRunner(jobs=1, store=ResultStore(root)).run(jobs)
    return root


class TestCollectGarbage:
    def test_referenced_buffers_survive(self, populated_store):
        traces = populated_store / "traces"
        before = sorted(p.name for p in traces.iterdir())
        # The sweep materialised shared traces and one replay artifact.
        assert any(name.endswith(".npy") for name in before)
        assert any(name.startswith("replay-") for name in before)
        report = collect_garbage(populated_store)
        assert report.removed == []
        assert sorted(p.name for p in traces.iterdir()) == before

    def test_orphans_are_pruned(self, populated_store):
        traces = populated_store / "traces"
        orphan_trace = traces / ("ab" * 20 + ".npy")
        orphan_trace.write_bytes(b"x" * 64)
        orphan_replay = traces / ("replay-" + "cd" * 20 + ".npz")
        orphan_replay.write_bytes(b"y" * 64)
        report = collect_garbage(populated_store)
        assert sorted(report.removed) == sorted(
            [orphan_trace.name, orphan_replay.name]
        )
        assert report.freed_bytes == 128
        assert not orphan_trace.exists() and not orphan_replay.exists()

    def test_replay_artifacts_survive_a_slack_change(
        self, populated_store, monkeypatch
    ):
        """Artifacts are matched by their embedded capture identity, so a
        gc run under a different REPRO_REPLAY_SLACK (which changes the
        content address) must not delete still-referenced captures."""
        traces = populated_store / "traces"
        before = {p.name for p in traces.glob("replay-*.npz")}
        assert before
        monkeypatch.setenv("REPRO_REPLAY_SLACK", "0.9")
        report = collect_garbage(populated_store)
        assert report.removed == []
        assert {p.name for p in traces.glob("replay-*.npz")} == before

    def test_stale_tmp_files_are_pruned_after_grace(self, populated_store):
        import os
        import time

        traces = populated_store / "traces"
        stale = traces / "tmpabc123.tmp"
        stale.write_bytes(b"partial write")
        old = time.time() - 2 * 3600
        os.utime(stale, (old, old))
        fresh = traces / "tmpdef456.tmp"
        fresh.write_bytes(b"live writer")
        report = collect_garbage(populated_store)
        assert stale.name in report.removed and not stale.exists()
        # A young .tmp may belong to a writer that is still running.
        assert fresh.exists() and fresh.name in report.kept

    def test_dry_run_deletes_nothing(self, populated_store):
        traces = populated_store / "traces"
        orphan = traces / ("ef" * 20 + ".npy")
        orphan.write_bytes(b"z" * 32)
        report = collect_garbage(populated_store, dry_run=True)
        assert report.dry_run and orphan.name in report.removed
        assert orphan.exists()

    def test_results_without_traces_dir(self, tmp_path):
        report = collect_garbage(tmp_path / "empty")
        assert report.removed == [] and report.kept == []


class TestCorruptDetection:
    def _damage_one(self, populated_store, pattern):
        from repro.runner.faults import corrupt_file

        target = next(iter(sorted((populated_store / "traces").glob(pattern))))
        corrupt_file(target)
        return target

    def test_corrupt_referenced_trace_is_reported_not_deleted(
        self, populated_store
    ):
        target = self._damage_one(populated_store, "*.npy")
        report = collect_garbage(populated_store)
        assert target.name in report.corrupt
        # Without --fix the evidence stays put (and is never "removed").
        assert target.exists()
        assert target.name not in report.removed

    def test_fix_quarantines_corrupt_artifacts(self, populated_store):
        trace = self._damage_one(populated_store, "*.npy")
        replay = self._damage_one(populated_store, "replay-*.npz")
        report = collect_garbage(populated_store, fix=True)
        assert {trace.name, replay.name} <= set(report.corrupt)
        quarantine = populated_store / "traces" / "quarantine"
        assert not trace.exists() and (quarantine / trace.name).exists()
        assert not replay.exists() and (quarantine / replay.name).exists()
        # A later pass reports what the quarantine holds.
        again = collect_garbage(populated_store)
        assert {trace.name, replay.name} <= set(again.quarantined)
        assert again.corrupt == []

    def test_dry_run_never_quarantines(self, populated_store):
        target = self._damage_one(populated_store, "*.npy")
        report = collect_garbage(populated_store, dry_run=True, fix=True)
        assert target.name in report.corrupt and target.exists()

    def test_orphan_sidecars_are_swept_with_their_artifact(
        self, populated_store
    ):
        traces = populated_store / "traces"
        orphan = traces / ("ab" * 20 + ".npy")
        orphan.write_bytes(b"x" * 64)
        sidecar = traces / (orphan.name + ".sha256")
        sidecar.write_text("0" * 64 + "\n")
        report = collect_garbage(populated_store)
        assert orphan.name in report.removed and sidecar.name in report.removed
        assert not orphan.exists() and not sidecar.exists()
        # Sidecars of kept artifacts survive.
        assert list(traces.glob("*.sha256"))


class TestCli:
    def test_traces_gc_subcommand(self, populated_store, capsys):
        orphan = populated_store / "traces" / ("0f" * 20 + ".npy")
        orphan.write_bytes(b"o")
        assert main(["traces", "gc", "--results-dir", str(populated_store)]) == 0
        out = capsys.readouterr().out
        assert "removed" in out and orphan.name in out
        assert not orphan.exists()

    def test_traces_gc_fix_flag(self, populated_store, capsys):
        from repro.runner.faults import corrupt_file

        target = next(iter(sorted((populated_store / "traces").glob("*.npy"))))
        corrupt_file(target)
        assert (
            main(["traces", "gc", "--fix", "--results-dir", str(populated_store)])
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantined" in out and target.name in out
        assert not target.exists()
        assert (populated_store / "traces" / "quarantine" / target.name).exists()

    def test_traces_requires_gc_action(self):
        with pytest.raises(SystemExit):
            main(["traces", "prune"])

    def test_gc_requires_store(self, capsys):
        assert main(["traces", "gc", "--results-dir", ""]) == 2
