"""End-to-end fault matrix for the supervised runner.

Drives real simulation jobs through :class:`ParallelRunner` with the
``REPRO_FAULT`` harness injecting crashes, worker deaths, hangs and
artifact corruption — asserting the two load-bearing properties: a run
that survives injected noise is **bit-identical** to a fault-free run,
and a failed run leaves a **resumable** store (quarantined jobs recorded,
re-invocation executes only the holes).
"""

from __future__ import annotations

import pytest

from repro.runner import (
    AloneJob,
    ParallelRunner,
    ResultStore,
    RetryPolicy,
    WorkloadJob,
)
from repro.runner import faults
from repro.runner.integrity import quarantined_artifacts
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload

#: Fast-retry policy so no test waits on real backoff.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_cap=0.01)

BENCHMARKS = ("mcf", "libq", "lbm", "bzip")


def _alone_jobs(tiny_config):
    return [
        AloneJob(
            benchmark=benchmark,
            config=tiny_config.with_cores(1),
            policy="lru",
            quota=400,
            warmup=100,
            master_seed=0,
        )
        for benchmark in BENCHMARKS
    ]


def _sweep_jobs(tiny_config):
    config = SystemConfig.scaled(16).with_cores(2)
    workload = Workload("g", ("mcf", "libq"))
    return [
        WorkloadJob.for_workload(
            workload, config, policy, quota=300, warmup=80, master_seed=0
        )
        for policy in ("lru", "srrip", "ship")
    ]


@pytest.fixture
def reference(tiny_config, monkeypatch):
    """Fault-free results for the alone batch (no store, inline)."""
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    return ParallelRunner(jobs=1).run(_alone_jobs(tiny_config))


class TestParsePlan:
    @pytest.mark.parametrize(
        "raw",
        [
            "explode:0.5",       # unknown kind
            "crash",             # missing trigger
            "crash:many",        # non-numeric trigger
            "crash:1.5",         # probability out of range
            "crash:@x",          # bad attempt limit
            "poison:",           # empty substring
            "hang:@0:soon",      # bad duration
            "corrupt-artifact:foo",  # unknown artifact kind
        ],
    )
    def test_malformed_directives_fail_loudly(self, raw):
        with pytest.raises(ValueError):
            faults.parse_plan(raw)

    def test_grammar(self):
        plan = faults.parse_plan("crash:0.1,kill:@0,hang:@1:2.5,poison:abc")
        kinds = [d.kind for d in plan]
        assert kinds == ["crash", "kill", "hang", "poison"]
        assert plan[0].prob == 0.1
        assert plan[1].max_attempt == 0
        assert plan[1].fires("anything", 0) and not plan[1].fires("anything", 1)
        assert plan[2].arg == "2.5"
        assert plan[3].fires("xxabcxx", 7) and not plan[3].fires("xyz", 0)

    def test_draws_are_deterministic(self):
        assert faults.unit_draw("crash", "key", 0) == faults.unit_draw(
            "crash", "key", 0
        )
        assert 0.0 <= faults.unit_draw("crash", "key", 0) < 1.0


class TestCrashRecovery:
    def test_transient_crashes_yield_bit_identical_results(
        self, tiny_config, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "crash:@0")
        runner = ParallelRunner(jobs=2, retry=FAST)
        assert runner.run(_alone_jobs(tiny_config)) == reference
        assert runner.stats["failed"] == 0
        assert runner.stats["retried"] == len(BENCHMARKS)

    def test_probabilistic_noise_yields_bit_identical_results(
        self, tiny_config, reference, monkeypatch
    ):
        # Deterministic hash draws: this "random" plan replays exactly,
        # and max_retries=8 makes survival certain (0.5^9 per-job paths
        # are never all taken by the fixed draws).
        monkeypatch.setenv("REPRO_FAULT", "crash:0.5")
        runner = ParallelRunner(
            jobs=2, retry=RetryPolicy(max_retries=8, backoff_base=0.001)
        )
        assert runner.run(_alone_jobs(tiny_config)) == reference
        assert runner.stats["failed"] == 0


class TestPoisonAndResume:
    def test_poison_job_quarantined_then_resumed(
        self, tiny_config, reference, tmp_path, monkeypatch
    ):
        jobs = _alone_jobs(tiny_config)
        poisoned = jobs[1].cache_key()
        store = ResultStore(tmp_path / "results")
        monkeypatch.setenv("REPRO_FAULT", f"poison:{poisoned}")

        runner = ParallelRunner(
            jobs=2, store=store, retry=RetryPolicy(max_retries=1, backoff_base=0.001)
        )
        results = runner.run(jobs)
        # Partial results: one hole, everything else completed and saved.
        assert results[1] is None
        assert [r for i, r in enumerate(results) if i != 1] == [
            r for i, r in enumerate(reference) if i != 1
        ]
        assert runner.stats["executed"] == len(jobs) - 1
        assert runner.stats["failed"] == 1
        assert len(runner.last_failures) == 1
        assert runner.last_failures[0].key == poisoned
        assert runner.last_failures[0].attempts == 2

        # The quarantine is persisted and enumerable — never silently dropped.
        failures = list(store.failures())
        assert len(failures) == 1
        assert failures[0]["key"] == poisoned
        assert failures[0]["kind"] == "crash"
        # ... but invisible to the result-record API.
        assert all(r.key != poisoned for r in store.records())

        # Resume: same batch, fault lifted — only the hole is executed.
        monkeypatch.delenv("REPRO_FAULT")
        resumed = ParallelRunner(jobs=2, store=store, retry=FAST)
        assert resumed.run(jobs) == reference
        assert resumed.stats["executed"] == 1
        assert resumed.stats["store_hits"] == len(jobs) - 1
        # Success overwrote the failure record.
        assert list(store.failures()) == []


class TestWorkerDeath:
    def test_broken_pool_recovers_bit_identically(
        self, tiny_config, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "kill:@0")
        runner = ParallelRunner(
            jobs=2, retry=RetryPolicy(max_retries=4, backoff_base=0.001)
        )
        assert runner.run(_alone_jobs(tiny_config)) == reference
        assert runner.stats["failed"] == 0
        assert runner.stats["pool_rebuilds"] >= 1

    @pytest.mark.slow
    def test_hang_is_timed_out_and_retried(
        self, tiny_config, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "hang:@0:1.5")
        runner = ParallelRunner(
            jobs=2,
            retry=RetryPolicy(max_retries=1, job_timeout=0.3, backoff_base=0.001),
        )
        assert runner.run(_alone_jobs(tiny_config)) == reference
        assert runner.stats["timeouts"] >= 1
        assert runner.stats["failed"] == 0


class TestArtifactCorruption:
    def _run_sweep(self, root, fault, monkeypatch):
        if fault:
            monkeypatch.setenv("REPRO_FAULT", fault)
        else:
            monkeypatch.delenv("REPRO_FAULT", raising=False)
        runner = ParallelRunner(jobs=1, store=ResultStore(root), retry=FAST)
        try:
            return runner.run(_sweep_jobs(SystemConfig.scaled(16)))
        finally:
            runner.close()

    def test_corrupt_replay_artifact_is_quarantined(self, tmp_path, monkeypatch):
        clean = self._run_sweep(tmp_path / "clean", None, monkeypatch)
        faulted = self._run_sweep(
            tmp_path / "faulted", "corrupt-artifact:replay", monkeypatch
        )
        # The damaged capture was never trusted: results fell back to the
        # fused kernel, which is bit-identical.
        assert faulted == clean
        held = quarantined_artifacts(tmp_path / "faulted" / "traces")
        assert any(p.name.startswith("replay-") for p in held)

    def test_corrupt_trace_buffer_is_quarantined(self, tmp_path, monkeypatch):
        clean = self._run_sweep(tmp_path / "clean", None, monkeypatch)
        faulted = self._run_sweep(
            tmp_path / "faulted", "corrupt-artifact:trace", monkeypatch
        )
        # Sources fell back to private generation — bit-identical.
        assert faulted == clean
        held = quarantined_artifacts(tmp_path / "faulted" / "traces")
        assert any(p.suffix == ".npy" for p in held)

    def test_recapture_after_quarantine(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        self._run_sweep(root, "corrupt-artifact:replay", monkeypatch)
        # Fault lifted: a fresh sweep re-captures past the quarantined
        # artifact and the new artifact verifies clean.  (Drop the stored
        # results so the sweep re-executes instead of hitting the store.)
        from repro.runner.integrity import verify_artifact

        for result_file in root.glob("*/*.json"):
            result_file.unlink()
        self._run_sweep(root, None, monkeypatch)
        fresh = list((root / "traces").glob("replay-*.npz"))
        assert fresh and all(verify_artifact(p) is True for p in fresh)


class TestRunnerLifecycle:
    def test_close_reclaims_temporary_trace_dir(self, tiny_config):
        import os

        runner = ParallelRunner(jobs=1)
        runner.trace_store()  # force the tmpdir into existence
        tmpdir = runner._trace_tmpdir.name
        assert os.path.isdir(tmpdir)
        runner.close()
        assert not os.path.isdir(tmpdir)
        # Idempotent, and usable as a context manager.
        runner.close()
        with ParallelRunner(jobs=1) as ctx:
            assert ctx is not None
