"""Unit tests for the supervised future-per-job scheduler.

Toy jobs (integers doubled by picklable module-level workers) isolate the
scheduling semantics — retry, quarantine, pool-crash recovery, timeouts,
inline degradation — from the simulation stack.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner.supervisor import FailureRecord, RetryPolicy, Supervisor

#: Fast-retry policy so tests never wait on real backoff.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_cap=0.01)


# -- picklable worker entry points (pool workers re-import this module) --------


def _echo(task):
    key, job, attempt = task
    return {"value": job * 2}


def _fail_first(task):
    key, job, attempt = task
    if attempt == 0:
        raise RuntimeError("transient")
    return {"value": job * 2}


def _always_fail(task):
    raise RuntimeError("poison")


def _die_first(task):
    key, job, attempt = task
    if attempt == 0:
        os._exit(3)
    return {"value": job * 2}


def _die_always(task):
    os._exit(3)


def _sleep_first(task):
    key, job, attempt = task
    if attempt == 0:
        time.sleep(1.5)
    return {"value": job * 2}


def _run(supervisor, misses, worker_fn):
    """Drive run_jobs to completion; returns {key: outcome}."""
    outcomes = {}
    try:
        for key, job, outcome in supervisor.run_jobs(
            misses,
            worker_fn=worker_fn,
            task_for=lambda key, job, attempt: (key, job, attempt),
            inline_fn=lambda key, job: job * 2,
            decode=lambda job, data: data["value"],
        ):
            outcomes[key] = outcome
    finally:
        supervisor.shutdown(cancel=True)
    return outcomes


MISSES = [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
EXPECTED = {"a": 2, "b": 4, "c": 6, "d": 8}


class TestPoolScheduling:
    def test_completion_ordered_collection(self):
        outcomes = _run(Supervisor(workers=2, policy=FAST), MISSES, _echo)
        assert outcomes == EXPECTED

    def test_transient_failures_are_retried(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        outcomes = _run(supervisor, MISSES, _fail_first)
        assert outcomes == EXPECTED
        assert supervisor.stats["retried"] == len(MISSES)

    def test_poison_jobs_are_quarantined_not_raised(self):
        supervisor = Supervisor(
            workers=2, policy=RetryPolicy(max_retries=1, backoff_base=0.001)
        )
        outcomes = _run(supervisor, MISSES, _always_fail)
        assert set(outcomes) == set(EXPECTED)
        for key, outcome in outcomes.items():
            assert isinstance(outcome, FailureRecord)
            assert outcome.key == key
            assert outcome.kind == "crash"
            assert outcome.attempts == 2  # 1 try + 1 retry
            assert "poison" in outcome.error

    def test_broken_pool_is_rebuilt_and_jobs_requeued(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        outcomes = _run(supervisor, MISSES, _die_first)
        assert outcomes == EXPECTED
        assert supervisor.stats["pool_rebuilds"] >= 1

    def test_degrades_to_inline_when_pool_keeps_dying(self):
        supervisor = Supervisor(
            workers=2,
            policy=RetryPolicy(
                max_retries=8, backoff_base=0.001, max_pool_rebuilds=1
            ),
        )
        # The pool worker always dies; the inline fallback in the parent
        # cannot, so the batch still completes.
        outcomes = _run(supervisor, MISSES, _die_always)
        assert outcomes == EXPECTED
        assert supervisor.stats["pool_rebuilds"] == 2  # 1 tolerated + the last straw

    @pytest.mark.slow
    def test_wall_clock_timeout_fails_the_hung_job(self):
        supervisor = Supervisor(
            workers=2,
            policy=RetryPolicy(
                max_retries=1, job_timeout=0.3, backoff_base=0.001
            ),
        )
        outcomes = _run(supervisor, [("a", 1), ("b", 2)], _sleep_first)
        assert outcomes == {"a": 2, "b": 4}
        assert supervisor.stats["timeouts"] >= 1
        # A hung worker is unreclaimable: the pool was abandoned.
        assert supervisor.stats["pool_rebuilds"] >= 1


class TestInlineScheduling:
    def test_single_worker_runs_inline(self):
        supervisor = Supervisor(workers=1, policy=FAST)
        assert supervisor.pool is None
        assert _run(supervisor, MISSES, _echo) == EXPECTED

    def test_inline_faults_retry_then_succeed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:@0")
        supervisor = Supervisor(workers=1, policy=FAST)
        outcomes = _run(supervisor, MISSES, _echo)
        assert outcomes == EXPECTED
        assert supervisor.stats["retried"] == len(MISSES)

    def test_inline_poison_quarantines(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "poison:a")
        supervisor = Supervisor(workers=1, policy=RetryPolicy(max_retries=0))
        outcomes = _run(supervisor, MISSES, _echo)
        assert isinstance(outcomes["a"], FailureRecord)
        assert outcomes["a"].attempts == 1
        assert {k: v for k, v in outcomes.items() if k != "a"} == {
            "b": 4, "c": 6, "d": 8,
        }


class TestMapResilient:
    def test_exceptions_cost_one_none_entry(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        try:
            results = supervisor.map_resilient(
                _map_probe, ["ok-1", "bad", "ok-2"]
            )
        finally:
            supervisor.shutdown(cancel=True)
        assert results == ["OK-1", None, "OK-2"]

    def test_small_batches_run_inline(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        try:
            assert supervisor.map_resilient(_map_probe, ["solo"]) == ["SOLO"]
        finally:
            supervisor.shutdown(cancel=True)

    def test_degraded_supervisor_runs_inline(self):
        supervisor = Supervisor(workers=1, policy=FAST)
        assert supervisor.map_resilient(_map_probe, ["x", "y"]) == ["X", "Y"]


def _map_probe(task):
    if task == "bad":
        raise ValueError("injected")
    return task.upper()


class TestRetryPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.job_timeout == 1.5

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 2
        assert policy.job_timeout is None

    def test_overrides_layer_on_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        policy = RetryPolicy.from_env().with_overrides(job_timeout=2.0)
        assert policy.max_retries == 5 and policy.job_timeout == 2.0
        # Explicit 0 disables the timeout rather than meaning "instant".
        assert policy.with_overrides(job_timeout=0).job_timeout is None

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=2.0)
        assert policy.backoff("key", 1) == policy.backoff("key", 1)
        assert policy.backoff("key", 1) != policy.backoff("other", 1)
        assert all(policy.backoff("key", a) <= 2.0 for a in range(12))

    def test_failure_record_roundtrip(self):
        record = FailureRecord(key="k", kind="timeout", attempts=3, error="e")
        assert FailureRecord.from_dict(record.to_dict()) == record
