"""Unit tests for the supervised future-per-job scheduler.

Toy jobs (integers doubled by picklable module-level workers) isolate the
scheduling semantics — retry, quarantine, pool-crash recovery, timeouts,
inline degradation — from the simulation stack.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runner.supervisor import FailureRecord, RetryPolicy, Supervisor

#: Fast-retry policy so tests never wait on real backoff.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_cap=0.01)


# -- picklable worker entry points (pool workers re-import this module) --------


def _echo(task):
    key, job, attempt = task
    return {"value": job * 2}


def _fail_first(task):
    key, job, attempt = task
    if attempt == 0:
        raise RuntimeError("transient")
    return {"value": job * 2}


def _always_fail(task):
    raise RuntimeError("poison")


def _die_first(task):
    key, job, attempt = task
    if attempt == 0:
        os._exit(3)
    return {"value": job * 2}


def _die_always(task):
    os._exit(3)


def _sleep_first(task):
    key, job, attempt = task
    if attempt == 0:
        time.sleep(1.5)
    return {"value": job * 2}


def _run(supervisor, misses, worker_fn):
    """Drive run_jobs to completion; returns {key: outcome}."""
    outcomes = {}
    try:
        for key, job, outcome in supervisor.run_jobs(
            misses,
            worker_fn=worker_fn,
            task_for=lambda key, job, attempt: (key, job, attempt),
            inline_fn=lambda key, job: job * 2,
            decode=lambda job, data: data["value"],
        ):
            outcomes[key] = outcome
    finally:
        supervisor.shutdown(cancel=True)
    return outcomes


MISSES = [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
EXPECTED = {"a": 2, "b": 4, "c": 6, "d": 8}


class TestPoolScheduling:
    def test_completion_ordered_collection(self):
        outcomes = _run(Supervisor(workers=2, policy=FAST), MISSES, _echo)
        assert outcomes == EXPECTED

    def test_transient_failures_are_retried(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        outcomes = _run(supervisor, MISSES, _fail_first)
        assert outcomes == EXPECTED
        assert supervisor.stats["retried"] == len(MISSES)

    def test_poison_jobs_are_quarantined_not_raised(self):
        supervisor = Supervisor(
            workers=2, policy=RetryPolicy(max_retries=1, backoff_base=0.001)
        )
        outcomes = _run(supervisor, MISSES, _always_fail)
        assert set(outcomes) == set(EXPECTED)
        for key, outcome in outcomes.items():
            assert isinstance(outcome, FailureRecord)
            assert outcome.key == key
            assert outcome.kind == "crash"
            assert outcome.attempts == 2  # 1 try + 1 retry
            assert "poison" in outcome.error

    def test_broken_pool_is_rebuilt_and_jobs_requeued(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        outcomes = _run(supervisor, MISSES, _die_first)
        assert outcomes == EXPECTED
        assert supervisor.stats["pool_rebuilds"] >= 1

    def test_degrades_to_inline_when_pool_keeps_dying(self):
        supervisor = Supervisor(
            workers=2,
            policy=RetryPolicy(
                max_retries=8, backoff_base=0.001, max_pool_rebuilds=1
            ),
        )
        # The pool worker always dies; the inline fallback in the parent
        # cannot, so the batch still completes.
        outcomes = _run(supervisor, MISSES, _die_always)
        assert outcomes == EXPECTED
        assert supervisor.stats["pool_rebuilds"] == 2  # 1 tolerated + the last straw

    @pytest.mark.slow
    def test_wall_clock_timeout_fails_the_hung_job(self):
        supervisor = Supervisor(
            workers=2,
            policy=RetryPolicy(
                max_retries=1, job_timeout=0.3, backoff_base=0.001
            ),
        )
        outcomes = _run(supervisor, [("a", 1), ("b", 2)], _sleep_first)
        assert outcomes == {"a": 2, "b": 4}
        assert supervisor.stats["timeouts"] >= 1
        # A hung worker is unreclaimable: the pool was abandoned.
        assert supervisor.stats["pool_rebuilds"] >= 1


class TestInlineScheduling:
    def test_single_worker_runs_inline(self):
        supervisor = Supervisor(workers=1, policy=FAST)
        assert supervisor.pool is None
        assert _run(supervisor, MISSES, _echo) == EXPECTED

    def test_inline_faults_retry_then_succeed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:@0")
        supervisor = Supervisor(workers=1, policy=FAST)
        outcomes = _run(supervisor, MISSES, _echo)
        assert outcomes == EXPECTED
        assert supervisor.stats["retried"] == len(MISSES)

    def test_inline_poison_quarantines(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "poison:a")
        supervisor = Supervisor(workers=1, policy=RetryPolicy(max_retries=0))
        outcomes = _run(supervisor, MISSES, _echo)
        assert isinstance(outcomes["a"], FailureRecord)
        assert outcomes["a"].attempts == 1
        assert {k: v for k, v in outcomes.items() if k != "a"} == {
            "b": 4, "c": 6, "d": 8,
        }


class TestMapResilient:
    def test_exceptions_cost_one_none_entry(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        try:
            results = supervisor.map_resilient(
                _map_probe, ["ok-1", "bad", "ok-2"]
            )
        finally:
            supervisor.shutdown(cancel=True)
        assert results == ["OK-1", None, "OK-2"]

    def test_small_batches_run_inline(self):
        supervisor = Supervisor(workers=2, policy=FAST)
        try:
            assert supervisor.map_resilient(_map_probe, ["solo"]) == ["SOLO"]
        finally:
            supervisor.shutdown(cancel=True)

    def test_degraded_supervisor_runs_inline(self):
        supervisor = Supervisor(workers=1, policy=FAST)
        assert supervisor.map_resilient(_map_probe, ["x", "y"]) == ["X", "Y"]


def _map_probe(task):
    if task == "bad":
        raise ValueError("injected")
    return task.upper()


def _pid_echo(task):
    key, job, attempt = task
    return {"value": os.getpid()}


def _slow_cap(task):
    key, job, attempt = task
    if key == "cap-slow":
        time.sleep(0.8)
    return {"value": job * 2}


def _hang_dep(task):
    key, job, attempt = task
    if key == "dep":
        time.sleep(10.0)
    return {"value": job * 2}


def _run_ordered(supervisor, misses, worker_fn, **kwargs):
    """Like :func:`_run`, but preserves yield order."""
    ordered = []
    try:
        for key, job, outcome in supervisor.run_jobs(
            misses,
            worker_fn=worker_fn,
            task_for=lambda key, job, attempt: (key, job, attempt),
            inline_fn=lambda key, job: job * 2,
            decode=lambda job, data: data["value"],
            **kwargs,
        ):
            ordered.append((key, outcome))
    finally:
        supervisor.shutdown(cancel=True)
    return ordered


class TestDependencyEdges:
    def test_dependent_yields_after_dependency(self):
        # Inline scheduling is deterministic: "a" is withheld until its
        # dependency "d" has been *yielded*, so it drains last.
        ordered = _run_ordered(
            Supervisor(workers=1, policy=FAST),
            MISSES,
            _echo,
            dependencies={"a": "d"},
        )
        assert dict(ordered) == EXPECTED
        assert [key for key, _ in ordered] == ["b", "c", "d", "a"]

    def test_pool_withholds_dependents(self):
        ordered = _run_ordered(
            Supervisor(workers=2, policy=FAST),
            MISSES,
            _echo,
            dependencies={"b": "a", "c": "a"},
        )
        assert dict(ordered) == EXPECTED
        keys = [key for key, _ in ordered]
        assert keys.index("a") < keys.index("b")
        assert keys.index("a") < keys.index("c")

    def test_slow_dependency_stalls_only_its_dependents(self):
        # The pipelined-sweep shape: one slow capture, one fast capture,
        # two replays behind each.  The fast sweep must fully complete
        # before the slow capture even finishes — no barrier.
        misses = [
            ("cap-slow", 10),
            ("cap-fast", 20),
            ("a1", 1),
            ("a2", 2),
            ("b1", 3),
            ("b2", 4),
        ]
        deps = {"a1": "cap-slow", "a2": "cap-slow", "b1": "cap-fast", "b2": "cap-fast"}
        ordered = _run_ordered(
            Supervisor(workers=2, policy=FAST), misses, _slow_cap, dependencies=deps
        )
        assert dict(ordered) == {k: v * 2 for k, v in misses}
        keys = [key for key, _ in ordered]
        assert keys.index("b1") < keys.index("cap-slow")
        assert keys.index("b2") < keys.index("cap-slow")
        assert keys.index("cap-slow") < keys.index("a1")
        assert keys.index("cap-slow") < keys.index("a2")

    def test_failed_dependency_still_releases(self, monkeypatch):
        # Edges order work, they never veto it: a quarantined dependency
        # releases its dependents (they just run without its product).
        monkeypatch.setenv("REPRO_FAULT", "poison:d")
        ordered = _run_ordered(
            Supervisor(workers=1, policy=RetryPolicy(max_retries=0)),
            MISSES,
            _echo,
            dependencies={"a": "d"},
        )
        outcomes = dict(ordered)
        assert isinstance(outcomes["d"], FailureRecord)
        assert outcomes["a"] == 2
        keys = [key for key, _ in ordered]
        assert keys.index("d") < keys.index("a")

    @pytest.mark.slow
    def test_hung_dependency_times_out_and_releases(self):
        supervisor = Supervisor(
            workers=2,
            policy=RetryPolicy(max_retries=0, job_timeout=0.4, backoff_base=0.001),
        )
        ordered = _run_ordered(
            supervisor,
            [("dep", 1), ("x", 2), ("y", 3)],
            _hang_dep,
            dependencies={"x": "dep", "y": "dep"},
        )
        outcomes = dict(ordered)
        assert isinstance(outcomes["dep"], FailureRecord)
        assert outcomes["dep"].kind == "timeout"
        assert outcomes["x"] == 4 and outcomes["y"] == 6
        assert supervisor.stats["timeouts"] >= 1

    def test_edges_outside_the_batch_are_ignored(self):
        outcomes = _run_ordered(
            Supervisor(workers=1, policy=FAST),
            MISSES,
            _echo,
            dependencies={"a": "no-such-job", "b": "b"},
        )
        assert dict(outcomes) == EXPECTED

    def test_dependency_cycle_fails_open(self):
        # A cycle can only come from a caller bug; it must degrade to
        # unordered execution, never deadlock the batch.
        outcomes = _run_ordered(
            Supervisor(workers=1, policy=FAST),
            MISSES,
            _echo,
            dependencies={"a": "b", "b": "a"},
        )
        assert dict(outcomes) == EXPECTED


class TestStickyRouting:
    def test_same_token_lands_on_one_worker(self):
        # The capture→replay shape: dependency chains stagger each token's
        # submissions, so the home slot is never overloaded and the whole
        # chain sticks to the worker that ran its first link.
        supervisor = Supervisor(workers=2, policy=FAST)
        misses = [("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5), ("f", 6)]
        affinity = {"a": "t1", "b": "t1", "c": "t1", "d": "t2", "e": "t2", "f": "t2"}
        deps = {"b": "a", "c": "b", "e": "d", "f": "e"}
        outcomes = dict(
            _run_ordered(
                supervisor, misses, _pid_echo, affinity=affinity, dependencies=deps
            )
        )
        t1_pids = {outcomes[k] for k in ("a", "b", "c")}
        t2_pids = {outcomes[k] for k in ("d", "e", "f")}
        assert len(t1_pids) == 1 and len(t2_pids) == 1
        assert t1_pids != t2_pids
        # First job of each token homes it (miss); the rest stick (hit).
        assert supervisor.stats["sticky_misses"] == 2
        assert supervisor.stats["sticky_hits"] == 4

    def test_overloaded_home_migrates(self):
        # One token for the whole batch would idle the second slot; the
        # load guard re-homes the token instead.
        supervisor = Supervisor(workers=2, policy=FAST)
        misses = [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
        affinity = {key: "t1" for key, _ in misses}
        outcomes = dict(
            _run_ordered(supervisor, misses, _pid_echo, affinity=affinity)
        )
        assert len(set(outcomes.values())) == 2  # both slots did work
        assert supervisor.stats["sticky_misses"] >= 2

    def test_affinity_is_inert_inline(self):
        supervisor = Supervisor(workers=1, policy=FAST)
        outcomes = _run_ordered(
            supervisor, MISSES, _echo, affinity={"a": "t1", "b": "t1"}
        )
        assert dict(outcomes) == EXPECTED
        assert supervisor.stats["sticky_hits"] == 0
        assert supervisor.stats["sticky_misses"] == 0

    def test_broken_sticky_slot_only_requeues_its_own(self):
        # A worker death in one single-worker pool must not disturb the
        # other slots' in-flight jobs.
        supervisor = Supervisor(workers=2, policy=FAST)
        misses = [("die-a", 1), ("b", 2), ("c", 3), ("d", 4)]
        affinity = {"die-a": "t1", "b": "t2", "c": "t2", "d": "t2"}
        outcomes = dict(
            _run_ordered(supervisor, misses, _die_key_a, affinity=affinity)
        )
        assert outcomes == {"die-a": 2, "b": 4, "c": 6, "d": 8}
        assert supervisor.stats["pool_rebuilds"] >= 1


def _die_key_a(task):
    key, job, attempt = task
    if key == "die-a" and attempt == 0:
        os._exit(3)
    return {"value": job * 2}


class TestRetryPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.job_timeout == 1.5

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 2
        assert policy.job_timeout is None

    def test_overrides_layer_on_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        policy = RetryPolicy.from_env().with_overrides(job_timeout=2.0)
        assert policy.max_retries == 5 and policy.job_timeout == 2.0
        # Explicit 0 disables the timeout rather than meaning "instant".
        assert policy.with_overrides(job_timeout=0).job_timeout is None

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=2.0)
        assert policy.backoff("key", 1) == policy.backoff("key", 1)
        assert policy.backoff("key", 1) != policy.backoff("other", 1)
        assert all(policy.backoff("key", a) <= 2.0 for a in range(12))

    def test_failure_record_roundtrip(self):
        record = FailureRecord(key="k", kind="timeout", attempts=3, error="e")
        assert FailureRecord.from_dict(record.to_dict()) == record
