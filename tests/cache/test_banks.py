"""Unit tests for the banked LLC latency model."""

import pytest

from repro.cache.banks import BankedLatencyModel


class TestBankedLatencyModel:
    def test_uncontended_access_pays_fixed_latency(self):
        banks = BankedLatencyModel(num_banks=4, latency=24.0)
        assert banks.access(0x100, now=10.0) == 34.0

    def test_same_bank_back_to_back_queues(self):
        banks = BankedLatencyModel(num_banks=4, latency=24.0, occupancy=4.0)
        addr = 0x40
        first = banks.access(addr, 0.0)
        second = banks.access(addr, 0.0)
        assert second == first + 4.0
        assert banks.conflicts == 1

    def test_different_banks_do_not_conflict(self):
        banks = BankedLatencyModel(num_banks=4, latency=24.0)
        a, b = 0, 1
        assert banks.bank_of(a) != banks.bank_of(b)
        banks.access(a, 0.0)
        done = banks.access(b, 0.0)
        assert done == 24.0
        assert banks.conflicts == 0

    def test_conflict_rate(self):
        banks = BankedLatencyModel(num_banks=2, latency=1.0)
        banks.access(0, 0.0)
        banks.access(0, 0.0)
        assert banks.conflict_rate() == pytest.approx(0.5)

    def test_bank_frees_after_occupancy(self):
        banks = BankedLatencyModel(num_banks=4, latency=24.0, occupancy=4.0)
        banks.access(0x40, 0.0)
        done = banks.access(0x40, 100.0)
        assert done == 124.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BankedLatencyModel(3, 1.0)
        with pytest.raises(ValueError):
            BankedLatencyModel(4, 1.0, occupancy=0.0)
