"""Unit tests for the CacheStats counter bundle."""

import pytest

from repro.cache.stats import CacheStats


@pytest.fixture
def stats():
    s = CacheStats(num_cores=3)
    s.demand_hits[0] = 10
    s.demand_misses[0] = 5
    s.other_hits[1] = 2
    s.other_misses[1] = 3
    s.demand_hits[2] = 1
    return s


class TestAggregation:
    def test_per_core(self, stats):
        assert stats.hits(0) == 10
        assert stats.misses(0) == 5
        assert stats.accesses(0) == 15
        assert stats.demand_accesses(0) == 15

    def test_global(self, stats):
        assert stats.hits() == 13
        assert stats.misses() == 8

    def test_other_traffic_excluded_from_demand(self, stats):
        assert stats.demand_accesses(1) == 0
        assert stats.accesses(1) == 5

    def test_miss_rate(self, stats):
        assert stats.miss_rate(0) == pytest.approx(5 / 15)
        assert stats.miss_rate(1) == 0.0  # no demand traffic

    def test_global_miss_rate(self, stats):
        assert stats.miss_rate() == pytest.approx(5 / 16)


class TestLifecycle:
    def test_reset(self, stats):
        stats.reset()
        assert stats.hits() == 0
        assert stats.misses() == 0

    def test_snapshot_is_a_copy(self, stats):
        snap = stats.snapshot()
        stats.demand_hits[0] += 100
        assert snap["demand_hits"][0] == 10

    def test_snapshot_keys(self, stats):
        snap = stats.snapshot()
        assert {"demand_hits", "demand_misses", "bypasses", "evictions"} <= set(snap)
