"""Unit and integration tests for the L2 stride prefetcher (future work)."""

import pytest

from repro.cache.prefetch import StridePrefetcher
from repro.sim.build import build_hierarchy


class TestStrideDetection:
    def test_constant_stride_detected(self):
        pf = StridePrefetcher(degree=2, confidence_threshold=2)
        pc = 0x400
        out = []
        for i in range(6):
            out = pf.train(pc, 100 + 4 * i)
        assert out == [100 + 4 * 6, 100 + 4 * 7]

    def test_no_prefetch_before_confidence(self):
        pf = StridePrefetcher(confidence_threshold=2)
        assert pf.train(1, 0) == []
        assert pf.train(1, 4) == []   # first stride observation
        assert pf.train(1, 8) == []   # confidence 1 < 2

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        for i in range(5):
            pf.train(1, 4 * i)
        assert pf.train(1, 100) == []  # broken stride
        assert pf.train(1, 104) == []  # rebuilding
        assert pf.train(1, 108) == []
        assert pf.train(1, 112) == [116]

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher(confidence_threshold=1)
        for _ in range(10):
            out = pf.train(1, 64)
        assert out == []

    def test_negative_stride_supported(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        out = []
        for i in range(6):
            out = pf.train(1, 1000 - 8 * i)
        assert out == [1000 - 8 * 6]

    def test_pcs_tracked_independently(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=1)
        for i in range(4):
            pf.train(1, 10 * i)
            pf.train(2, 3 * i)
        assert pf.train(1, 40) == [50]
        assert pf.train(2, 12) == [15]

    def test_table_capacity_bounded(self):
        pf = StridePrefetcher(table_entries=4)
        for pc in range(100):
            pf.train(pc, pc)
        assert len(pf._table) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestHierarchyIntegration:
    def _config(self, tiny_config, enabled):
        from dataclasses import replace

        return replace(tiny_config, l2_stride_prefetch=enabled)

    def test_prefetches_issue_on_strided_stream(self, tiny_config):
        h = build_hierarchy(self._config(tiny_config, True), "lru")
        base = 1 << 20
        for i in range(64):
            h.access(0, base + 32 * i, pc=0x99, is_write=False, now=float(i * 10))
        assert h.prefetches_issued > 0
        assert h.l2_prefetchers[0].issued > 0

    def test_prefetched_lines_land_in_l2(self, tiny_config):
        h = build_hierarchy(self._config(tiny_config, True), "lru")
        base = 1 << 20
        demanded = set()
        # L1-set-conflicting stride keeps L1 from filtering the stream.
        for i in range(16):
            addr = base + 8 * i
            demanded.add(addr)
            h.access(0, addr, pc=0x99, is_write=False, now=float(i * 10))
        # Some L2-resident block was never demanded: it was prefetched.
        resident = {
            a
            for s in range(h.l2s[0].num_sets)
            for a in h.l2s[0].resident_blocks(s)
        }
        assert resident - demanded

    def test_prefetch_traffic_is_non_demand_at_llc(self, tiny_config):
        h = build_hierarchy(self._config(tiny_config, True), "lru")
        base = 1 << 20
        for i in range(64):
            h.access(0, base + 32 * i, pc=0x99, is_write=False, now=float(i * 10))
        assert h.llc.stats.other_misses[0] > 0  # prefetch fills
        # Demand misses strictly fewer than total L2-side misses.
        assert h.llc.stats.demand_misses[0] <= 64

    def test_disabled_by_default(self, tiny_config):
        h = build_hierarchy(tiny_config, "lru")
        assert h.l2_prefetchers is None

    def test_strided_stream_latency_improves(self, tiny_config):
        def mean_latency(enabled):
            h = build_hierarchy(self._config(tiny_config, enabled), "lru")
            base = 1 << 20
            total = 0.0
            for i in range(128):
                out = h.access(0, base + 32 * i, pc=0x9, is_write=False, now=i * 600.0)
                total += out.latency
            return total / 128

        assert mean_latency(True) < mean_latency(False)
