"""Unit tests for the write-back buffer model."""

import pytest

from repro.cache.writeback import WriteBackBuffer


class TestWriteBackBuffer:
    def test_admits_immediately_with_space(self):
        wb = WriteBackBuffer(entries=4, retire_at=2, drain_cycles=10.0)
        assert wb.admit(5.0) == 5.0
        assert wb.admitted == 1

    def test_occupancy_decays_as_writes_retire(self):
        wb = WriteBackBuffer(entries=4, retire_at=4, drain_cycles=10.0)
        wb.admit(0.0)
        assert wb.occupancy(5.0) == 1
        assert wb.occupancy(10.0) == 0

    def test_full_buffer_stalls_admission(self):
        wb = WriteBackBuffer(entries=2, retire_at=2, drain_cycles=100.0)
        wb.admit(0.0)
        wb.admit(0.0)
        start = wb.admit(0.0)
        assert start > 0.0
        assert wb.stalls == 1

    def test_drain_serialises_beyond_threshold(self):
        wb = WriteBackBuffer(entries=8, retire_at=2, drain_cycles=10.0)
        wb.admit(0.0)
        wb.admit(0.0)
        wb.admit(0.0)  # third write: beyond threshold, retires behind the 2nd
        # Occupancy at t=21 should still include the serialised third write.
        assert wb.occupancy(19.0) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBackBuffer(0, 1, 1.0)
        with pytest.raises(ValueError):
            WriteBackBuffer(4, 0, 1.0)
        with pytest.raises(ValueError):
            WriteBackBuffer(4, 5, 1.0)
