"""Integration-style tests for the three-level hierarchy."""

import pytest

from repro.sim.build import build_hierarchy


@pytest.fixture
def hierarchy(tiny_config):
    return build_hierarchy(tiny_config, "lru")


class TestLatencies:
    def test_l1_hit_latency(self, hierarchy):
        hierarchy.access(0, 0x1000, 0, False, 0.0)
        outcome = hierarchy.access(0, 0x1000, 0, False, 100.0)
        assert outcome.l1_hit
        assert outcome.latency == hierarchy.l1_latency

    def test_miss_latency_ordering(self, hierarchy):
        cold = hierarchy.access(0, 0x2000, 0, False, 0.0)
        assert not cold.l1_hit and not cold.l2_hit and not cold.llc_hit
        assert cold.llc_demand_miss
        # A cold miss pays at least DRAM row-conflict latency.
        assert cold.latency >= 340.0

    def test_l2_hit_between(self, hierarchy):
        hierarchy.access(0, 0x3000, 0, False, 0.0)
        # Evict from tiny L1 by filling its set with conflicting lines.
        l1_sets = hierarchy.l1s[0].num_sets
        for i in range(1, 10):
            hierarchy.access(0, 0x3000 + i * l1_sets, 0, False, float(i))
        outcome = hierarchy.access(0, 0x3000, 0, False, 100.0)
        assert outcome.l2_hit or outcome.llc_hit
        assert outcome.latency < 340.0


class TestContentCorrectness:
    def test_fill_propagates_to_all_levels(self, hierarchy):
        hierarchy.access(0, 0x4000, 0, False, 0.0)
        assert hierarchy.l1s[0].probe(0x4000)
        assert hierarchy.l2s[0].probe(0x4000)
        assert hierarchy.llc.probe(0x4000)

    def test_private_caches_are_private(self, hierarchy):
        hierarchy.access(0, 0x5000, 0, False, 0.0)
        assert not hierarchy.l1s[1].probe(0x5000)
        assert not hierarchy.l2s[1].probe(0x5000)

    def test_llc_shared_across_cores(self, hierarchy):
        hierarchy.access(0, 0x6000, 0, False, 0.0)
        outcome = hierarchy.access(1, 0x6000, 0, False, 10.0)
        # Core 1 misses L1/L2 but hits the shared LLC.
        assert outcome.llc_hit

    def test_dirty_data_survives_l1_eviction(self, hierarchy):
        hierarchy.access(0, 0x7000, 0, True, 0.0)
        l1_sets = hierarchy.l1s[0].num_sets
        # Push the dirty line out of L1.
        for i in range(1, 12):
            hierarchy.access(0, 0x7000 + i * l1_sets, 0, False, float(i))
        assert not hierarchy.l1s[0].probe(0x7000)
        # The write-back landed in L2 (or below) as dirty content.
        assert hierarchy.l2s[0].probe(0x7000) or hierarchy.llc.probe(0x7000)


class TestWritebackTraffic:
    def test_dirty_llc_eviction_reaches_dram(self, tiny_config):
        h = build_hierarchy(tiny_config, "lru")
        # Write a lot of distinct lines so dirty LLC victims appear.
        span = h.llc.num_blocks * 3
        for i in range(span):
            h.access(i % 4, i, 0, True, float(i))
        assert h.dram.writes > 0

    def test_demand_misses_counted_per_core(self, hierarchy):
        hierarchy.access(2, 0x9000, 0, False, 0.0)
        assert hierarchy.llc_demand_misses(2) == 1
        assert hierarchy.total_llc_demand_misses() == 1


class TestPrefetch:
    def test_next_line_prefetch_installs_neighbour(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, l1_next_line_prefetch=True)
        h = build_hierarchy(config, "lru")
        h.access(0, 0x800, 0, False, 0.0)
        assert h.prefetches_issued == 1
        assert h.l1s[0].probe(0x801)

    def test_prefetches_are_not_demand(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, l1_next_line_prefetch=True)
        h = build_hierarchy(config, "lru")
        h.access(0, 0x800, 0, False, 0.0)
        # Exactly one demand miss at the LLC despite two fills.
        assert h.llc.stats.demand_misses[0] == 1
        assert h.llc.stats.other_misses[0] == 1
