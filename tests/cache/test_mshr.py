"""Unit tests for the MSHR capacity model."""

from repro.cache.mshr import Mshr


class TestMshr:
    def test_reserve_when_free_starts_now(self):
        mshr = Mshr(entries=2)
        assert mshr.reserve(0x1, now=10.0) == 10.0

    def test_full_mshr_delays_to_oldest_completion(self):
        mshr = Mshr(entries=2)
        for block, done in ((1, 100.0), (2, 150.0)):
            start = mshr.reserve(block, 0.0)
            mshr.complete_at(block, done)
        start = mshr.reserve(3, now=0.0)
        assert start == 100.0
        assert mshr.stalls == 1

    def test_entries_expire(self):
        mshr = Mshr(entries=1)
        mshr.reserve(1, 0.0)
        mshr.complete_at(1, 50.0)
        assert mshr.outstanding(49.0) == 1
        assert mshr.outstanding(50.0) == 0
        # After expiry a new reservation is immediate.
        assert mshr.reserve(2, 60.0) == 60.0
        assert mshr.stalls == 0

    def test_secondary_miss_merges(self):
        mshr = Mshr(entries=4)
        mshr.reserve(7, 0.0)
        mshr.complete_at(7, 200.0)
        assert mshr.lookup(7, now=10.0) == 200.0
        assert mshr.merged == 1

    def test_lookup_after_completion_misses(self):
        mshr = Mshr(entries=4)
        mshr.reserve(7, 0.0)
        mshr.complete_at(7, 200.0)
        assert mshr.lookup(7, now=250.0) is None

    def test_lookup_unknown_block(self):
        assert Mshr(4).lookup(99, 0.0) is None

    def test_rejects_zero_entries(self):
        import pytest

        with pytest.raises(ValueError):
            Mshr(0)
