"""Unit tests for the set-associative cache against the LRU policy."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.policies.lru import LruPolicy


def make_cache(num_sets=4, ways=2, cores=2):
    return SetAssociativeCache("test", num_sets, ways, LruPolicy(), num_cores=cores)


class TestBasicAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0, 0x100)
        assert not first.hit
        second = cache.access(0, 0x100)
        assert second.hit

    def test_fills_invalid_ways_before_evicting(self):
        cache = make_cache(num_sets=1, ways=4, cores=1)
        for i in range(4):
            result = cache.access(0, i)
            assert result.victim_addr == -1
        assert sorted(cache.resident_blocks(0)) == [0, 1, 2, 3]

    def test_lru_eviction_order(self):
        cache = make_cache(num_sets=1, ways=2, cores=1)
        cache.access(0, 0)
        cache.access(0, 1)
        cache.access(0, 0)  # 0 is now MRU
        result = cache.access(0, 2)  # must evict 1
        assert result.victim_addr == 1
        assert cache.probe(0) and cache.probe(2) and not cache.probe(1)

    def test_set_mapping_low_bits(self):
        cache = make_cache(num_sets=4, ways=1, cores=1)
        cache.access(0, 0b101)  # set 1
        assert cache.resident_blocks(1) == [0b101]
        assert cache.resident_blocks(0) == []

    def test_same_set_distinct_tags_coexist(self):
        cache = make_cache(num_sets=4, ways=2, cores=1)
        cache.access(0, 4 + 1)  # set 1, tag 1
        cache.access(0, 8 + 1)  # set 1, tag 2
        assert cache.probe(5) and cache.probe(9)


class TestDirtyAndWriteback:
    def test_write_marks_dirty_and_eviction_reports_it(self):
        cache = make_cache(num_sets=1, ways=1, cores=1)
        cache.access(0, 0, is_write=True)
        result = cache.access(0, 1)
        assert result.victim_addr == 0
        assert result.victim_dirty

    def test_clean_eviction_not_dirty(self):
        cache = make_cache(num_sets=1, ways=1, cores=1)
        cache.access(0, 0, is_write=False)
        result = cache.access(0, 1)
        assert not result.victim_dirty

    def test_write_hit_dirties_existing_line(self):
        cache = make_cache(num_sets=1, ways=1, cores=1)
        cache.access(0, 0)
        cache.access(0, 0, is_write=True)
        result = cache.access(0, 1)
        assert result.victim_dirty


class TestStats:
    def test_per_core_attribution(self):
        cache = make_cache(num_sets=4, ways=2, cores=2)
        cache.access(0, 0x10)
        cache.access(1, 0x20)
        cache.access(1, 0x20)
        assert cache.stats.demand_misses[0] == 1
        assert cache.stats.demand_misses[1] == 1
        assert cache.stats.demand_hits[1] == 1
        assert cache.stats.demand_hits[0] == 0

    def test_occupancy_tracks_owners(self):
        cache = make_cache(num_sets=1, ways=2, cores=2)
        cache.access(0, 0)
        cache.access(1, 1)
        assert cache.occupancy == [1, 1]
        cache.access(1, 2)  # evicts core 0's line (LRU)
        assert cache.occupancy == [0, 2]

    def test_eviction_counts_victim_owner(self):
        cache = make_cache(num_sets=1, ways=1, cores=2)
        cache.access(0, 0)
        cache.access(1, 1)
        assert cache.stats.evictions[0] == 1
        assert cache.stats.evictions[1] == 0

    def test_writeback_arrival_counter(self):
        cache = make_cache()
        cache.access(0, 0x40, is_write=True, is_demand=False)
        assert cache.stats.writeback_arrivals[0] == 1
        assert cache.stats.demand_accesses(0) == 0

    def test_miss_rate(self):
        cache = make_cache(num_sets=1, ways=2, cores=1)
        cache.access(0, 0)
        cache.access(0, 0)
        assert cache.stats.miss_rate(0) == pytest.approx(0.5)


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = make_cache()
        cache.access(0, 0x30)
        assert cache.invalidate(0x30)
        assert not cache.probe(0x30)
        assert not cache.invalidate(0x30)

    def test_invalidate_updates_occupancy(self):
        cache = make_cache()
        cache.access(0, 0x30)
        cache.invalidate(0x30)
        assert cache.occupancy[0] == 0


class TestGeometryValidation:
    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            make_cache(num_sets=3)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            make_cache(ways=0)

    def test_capacity(self):
        cache = make_cache(num_sets=4, ways=2)
        assert cache.num_blocks == 8
        assert cache.capacity_bytes(64) == 512
