"""Shared fixtures for the targets subsystem tests.

Targets resolve through ``REPRO_TARGETS_DIR`` and a couple of budget
variables; the autouse fixture strips them all so every test starts from
a clean environment and nothing leaks between tests (or in from the CI
job that sets ``REPRO_SCALE``).
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(autouse=True)
def _clean_targets_env(monkeypatch):
    for var in ("REPRO_TARGETS_DIR", "REPRO_TRACE_BUDGET", "REPRO_SCALE"):
        monkeypatch.delenv(var, raising=False)


@pytest.fixture
def traces_dir(tmp_path) -> Path:
    return tmp_path / "traces"
