"""Registry, the memmapped trace source, suite composition, and the
kernel differential over an ingested workload."""

from __future__ import annotations

import numpy as np
import pytest
from make_fixtures import FIXTURE_DIR

from repro.sim.multi import run_workload
from repro.sim.single import run_alone
from repro.targets import (
    TargetSpec,
    activate,
    ingest_file,
    is_target,
    load_registry,
    lookup_target,
    make_target_source,
    real_suite,
    require_target,
)
from repro.targets.registry import (
    ENV_TARGETS_DIR,
    IngestedTraceSource,
    buffer_path,
    save_registry,
)
from repro.trace.benchmarks import TraceSource
from repro.trace.shared import make_source
from repro.trace.workloads import Workload

CHAMPSIM_FIXTURE = FIXTURE_DIR / "toy-champsim.trace.gz"
DRCACHESIM_FIXTURE = FIXTURE_DIR / "toy.drcachesim.txt"
LACKEY_FIXTURE = FIXTURE_DIR / "toy.lackey.out"


@pytest.fixture
def ingested(traces_dir):
    """All three fixtures ingested; returns name -> spec."""
    specs = {}
    for path in (CHAMPSIM_FIXTURE, DRCACHESIM_FIXTURE, LACKEY_FIXTURE):
        spec, _ = ingest_file(path, directory=traces_dir)
        specs[spec.name] = spec
    return specs


@pytest.fixture
def active(ingested, traces_dir, monkeypatch):
    monkeypatch.setenv(ENV_TARGETS_DIR, str(traces_dir))
    return ingested


GEOMETRY = None  # targets never sample geometry; any placeholder works


class TestRegistry:
    def test_is_target(self):
        assert is_target("tgt:milc")
        assert not is_target("milc")
        assert not is_target(None)

    def test_round_trip(self, traces_dir, ingested):
        assert load_registry(traces_dir) == ingested
        spec = lookup_target("toy-champsim", traces_dir)
        assert spec is not None and spec.fmt == "champsim"
        assert lookup_target("tgt:toy-champsim", traces_dir) == spec

    def test_registry_bytes_are_deterministic(self, traces_dir, ingested):
        path = traces_dir / "targets.json"
        blob = path.read_bytes()
        save_registry(traces_dir, load_registry(traces_dir))
        assert path.read_bytes() == blob

    def test_require_unknown_names_the_ingest_command(self, traces_dir):
        with pytest.raises(ValueError, match="targets ingest"):
            require_target("tgt:absent", traces_dir)

    def test_spec_serialisation_round_trips(self, ingested):
        for spec in ingested.values():
            assert TargetSpec.from_dict(spec.to_dict()) == spec

    def test_activate_prefers_existing_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_TARGETS_DIR, str(tmp_path / "pinned"))
        assert activate(tmp_path / "results") == tmp_path / "pinned"
        monkeypatch.delenv(ENV_TARGETS_DIR)
        assert activate(tmp_path / "results") == tmp_path / "results" / "traces"


class TestIngestedTraceSource:
    def test_chunk_matches_trace_source(self):
        assert IngestedTraceSource.CHUNK == TraceSource.CHUNK

    def test_core_offset_keeps_streams_disjoint(self, active, traces_dir):
        spec = active["tgt:toy-champsim"]
        sources = [
            make_target_source(spec, GEOMETRY, core_id, directory=traces_dir)
            for core_id in range(3)
        ]
        windows = set()
        for core_id, source in enumerate(sources):
            addr, _pc, _w = source.next_access()
            assert addr >> 36 == core_id + 1
            windows.add(addr >> 36)
        assert len(windows) == 3

    def test_serves_the_ingested_bytes(self, active, traces_dir):
        spec = active["tgt:toy.lackey"]
        buf = np.load(buffer_path(traces_dir, spec.key))
        source = make_target_source(spec, GEOMETRY, 0, directory=traces_dir)
        addrs, pcs, writes, pos = source.next_chunk()
        assert pos == 0 and len(addrs) == TraceSource.CHUNK
        np.testing.assert_array_equal(addrs, buf["addr"] + (1 << 36))
        np.testing.assert_array_equal(pcs, buf["pc"])
        np.testing.assert_array_equal(writes, buf["write"])

    def test_cycles_and_restarts(self, active, traces_dir):
        spec = active["tgt:toy-champsim"]
        assert spec.n_chunks == 1
        source = make_target_source(spec, GEOMETRY, 0, directory=traces_dir)
        first = [source.next_access() for _ in range(TraceSource.CHUNK)]
        wrapped = [source.next_access() for _ in range(4)]
        assert wrapped == first[:4]  # cyclic continuation
        assert source.chunks_generated == 2
        source.restart()
        assert [source.next_access() for _ in range(4)] == first[:4]

    def test_commit_advances_the_cursor(self, active, traces_dir):
        spec = active["tgt:toy.drcachesim"]
        source = make_target_source(spec, GEOMETRY, 0, directory=traces_dir)
        addrs, _pcs, _writes, pos = source.next_chunk()
        source.commit(pos + 10)
        assert source.next_access()[0] == int(addrs[10])

    def test_core_parameters_come_from_the_spec(self, active, traces_dir):
        spec = active["tgt:toy-champsim"]
        source = make_target_source(spec, GEOMETRY, 0, directory=traces_dir)
        assert source.instructions_per_access == spec.instructions_per_access
        assert source.spec.base_cpi == spec.base_cpi
        assert source.spec.mlp == spec.mlp

    def test_unresolvable_without_active_directory(self, ingested):
        with pytest.raises(ValueError, match=ENV_TARGETS_DIR):
            make_target_source("tgt:toy-champsim", GEOMETRY, 0)


class TestMakeSourceDispatch:
    def test_name_dispatch(self, active):
        source = make_source("tgt:toy-champsim", GEOMETRY, 1)
        assert isinstance(source, IngestedTraceSource)
        assert source.core_id == 1

    def test_spec_dispatch(self, active):
        source = make_source(active["tgt:toy.lackey"], GEOMETRY, 0)
        assert isinstance(source, IngestedTraceSource)

    def test_synthetic_names_still_resolve(self):
        from repro.sim.build import geometry_of
        from repro.sim.config import SystemConfig

        geometry = geometry_of(SystemConfig.scaled(4))
        source = make_source("milc", geometry, 0)
        assert not isinstance(source, IngestedTraceSource)


class TestWorkloadsAcceptTargets:
    def test_mixed_workload_validates(self):
        w = Workload("mix", ("milc", "tgt:toy-champsim"))
        assert w.cores == 2
        # milc thrashes; the target core must never be counted.
        assert w.thrashing_cores() == [0]
        assert "tgt:toy-champsim" not in w.class_counts()

    def test_unknown_synthetic_name_still_rejected(self):
        with pytest.raises(ValueError):
            Workload("bad", ("milc", "nonesuch"))


class TestRealSuite:
    def test_empty_registry_raises_with_guidance(self, traces_dir):
        with pytest.raises(ValueError, match="targets ingest"):
            real_suite(4, 3, directory=traces_dir)

    def test_composition_rotates_and_is_deterministic(self, active, traces_dir):
        suite = real_suite(4, 8, master_seed=0, directory=traces_dir)
        assert len(suite) == 3  # capped at the registry size
        assert [w.name for w in suite] == [
            "4core-real-000",
            "4core-real-001",
            "4core-real-002",
        ]
        for workload in suite:
            assert workload.cores == 4
            assert all(is_target(b) for b in workload.benchmarks)
            # Rotation: every registered target appears in every mix.
            assert set(workload.benchmarks) == set(active)
        again = real_suite(4, 8, master_seed=0, directory=traces_dir)
        assert [w.benchmarks for w in again] == [w.benchmarks for w in suite]

    def test_seed_changes_core_placement(self, active, traces_dir):
        a = real_suite(16, 2, master_seed=0, directory=traces_dir)
        b = real_suite(16, 2, master_seed=1, directory=traces_dir)
        assert {w.benchmarks for w in a} != {w.benchmarks for w in b}


class TestSimulationOverTargets:
    def test_run_alone_resolves_targets(self, active, tiny_config):
        result = run_alone(
            "tgt:toy-champsim", tiny_config, quota=1500, warmup=300
        )
        assert result.snapshot.accesses >= 1500

    def test_generic_and_fused_kernels_are_bit_identical(
        self, active, tiny_config, monkeypatch
    ):
        workload = Workload(
            "real-diff",
            (
                "tgt:toy-champsim",
                "tgt:toy.drcachesim",
                "tgt:toy.lackey",
                "tgt:toy-champsim",
            ),
        )
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        generic = run_workload(
            workload, tiny_config, "lru", quota=1200, warmup=300
        )
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        fused = run_workload(workload, tiny_config, "lru", quota=1200, warmup=300)
        assert fused.snapshots == generic.snapshots
        assert fused.intervals == generic.intervals

    def test_deterministic_across_runs(self, active, tiny_config):
        workload = Workload("real-det", ("tgt:toy.lackey", "tgt:toy.lackey"))
        a = run_workload(workload, tiny_config, "dip", quota=1000, warmup=200)
        b = run_workload(workload, tiny_config, "dip", quota=1000, warmup=200)
        assert a.snapshots == b.snapshots
