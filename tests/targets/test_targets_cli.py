"""The ``targets`` subcommand, ``traces ls`` provenance, gc pinning, and
the subcommand-named usage errors."""

from __future__ import annotations

import pytest
from make_fixtures import FIXTURE_DIR

from repro.experiments.__main__ import main
from repro.targets import ingest_file, load_registry
from repro.targets.registry import buffer_path

CHAMPSIM_FIXTURE = FIXTURE_DIR / "toy-champsim.trace.gz"
LACKEY_FIXTURE = FIXTURE_DIR / "toy.lackey.out"


@pytest.fixture
def store(tmp_path):
    return tmp_path / "results"


def targets_cli(store, *argv):
    return main(["targets", *argv, "--results-dir", str(store)])


class TestTargetsIngest:
    def test_ingest_then_list_then_info(self, store, capsys):
        assert targets_cli(store, "ingest", str(CHAMPSIM_FIXTURE)) == 0
        out = capsys.readouterr().out
        assert "ingested tgt:toy-champsim" in out
        assert "[champsim]" in out

        assert targets_cli(store, "list") == 0
        out = capsys.readouterr().out
        assert "tgt:toy-champsim" in out and "origin=toy-champsim.trace.gz" in out

        assert targets_cli(store, "info", "toy-champsim") == 0
        out = capsys.readouterr().out
        assert "source     sha256:" in out
        assert "core model mlp=2.0" in out

    def test_reingest_reports_reuse(self, store, capsys):
        targets_cli(store, "ingest", str(LACKEY_FIXTURE))
        capsys.readouterr()
        assert targets_cli(store, "ingest", str(LACKEY_FIXTURE)) == 0
        assert "reused tgt:toy.lackey" in capsys.readouterr().out

    def test_custom_name_and_flags(self, store, capsys):
        rc = targets_cli(
            store,
            "ingest",
            str(LACKEY_FIXTURE),
            "--name",
            "mcf",
            "--mlp",
            "4.0",
        )
        assert rc == 0
        registry = load_registry(store / "traces")
        assert registry["tgt:mcf"].mlp == 4.0

    def test_name_with_many_files_is_an_error(self, store, capsys):
        rc = targets_cli(
            store,
            "ingest",
            str(LACKEY_FIXTURE),
            str(CHAMPSIM_FIXTURE),
            "--name",
            "x",
        )
        assert rc == 2
        assert "--name applies to a single file" in capsys.readouterr().err

    def test_unreadable_file_names_the_item(self, store, capsys):
        rc = targets_cli(store, "ingest", "absent.trace")
        assert rc == 2
        assert "targets ingest: absent.trace:" in capsys.readouterr().err

    def test_undetectable_format_is_a_usage_error(self, store, tmp_path, capsys):
        mystery = tmp_path / "mystery.bin"
        mystery.write_bytes(b"\0" * 64)
        assert targets_cli(store, "ingest", str(mystery)) == 2
        assert "--format" in capsys.readouterr().err

    def test_empty_store_list_hints_at_ingest(self, store, capsys):
        assert targets_cli(store, "list") == 0
        assert "targets ingest" in capsys.readouterr().out

    def test_unknown_info_exits_2(self, store, capsys):
        targets_cli(store, "ingest", str(LACKEY_FIXTURE))
        capsys.readouterr()
        assert targets_cli(store, "info", "nonesuch") == 2
        assert "unknown target" in capsys.readouterr().err


class TestTracesInventory:
    def test_ls_renders_target_provenance(self, store, capsys):
        targets_cli(store, "ingest", str(CHAMPSIM_FIXTURE))
        capsys.readouterr()
        assert main(["traces", "ls", "--results-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "target" in out and "champsim" in out

    def test_gc_keeps_registered_buffers(self, store, capsys):
        spec, _ = ingest_file(CHAMPSIM_FIXTURE, directory=store / "traces")
        path = buffer_path(store / "traces", spec.key)
        assert main(["traces", "gc", "--results-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert path.is_file()
        assert "pinned by targets.json" in out
        assert spec.name in out

    def test_gc_deletes_unregistered_target_buffers(self, store, capsys):
        spec, _ = ingest_file(CHAMPSIM_FIXTURE, directory=store / "traces")
        path = buffer_path(store / "traces", spec.key)
        (store / "traces" / "targets.json").unlink()
        assert main(["traces", "gc", "--results-dir", str(store)]) == 0
        assert not path.is_file()


class TestUsageErrors:
    def test_unrecognized_argument_names_the_subcommand(self, store, capsys):
        rc = main(["targets", "list", "--results-dir", str(store), "--frobnicate"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "targets: unrecognized arguments: --frobnicate" in err
        assert "targets --help" in err

    def test_tournament_flags_are_checked_too(self, capsys):
        rc = main(["tournament", "--no-such-flag"])
        assert rc == 2
        assert "tournament: unrecognized arguments" in capsys.readouterr().err

    def test_no_command_still_prints_help(self, capsys):
        assert main([]) == 2
        assert "command" in capsys.readouterr().err


class TestBenchmarkSetFlag:
    @pytest.mark.parametrize("command", ["tournament", "fig3", "table4"])
    def test_flag_is_accepted(self, command):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([command, "--benchmark-set", "real"])
        assert args.benchmark_set == "real"

    def test_rejects_unknown_set(self, capsys):
        with pytest.raises(SystemExit):
            from repro.experiments.cli import build_parser

            build_parser().parse_args(["tournament", "--benchmark-set", "imaginary"])
