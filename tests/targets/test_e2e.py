"""End-to-end: ingest fixtures -> tournament on the real set -> report."""

from __future__ import annotations

import pytest
from make_fixtures import FIXTURE_DIR

from repro.experiments.common import ExperimentSettings
from repro.experiments.tournament import run_tournament
from repro.report import report_from_store
from repro.report.tables import render_ranked
from repro.runner import ResultStore
from repro.sim.config import SystemConfig
from repro.targets import ingest_file
from repro.trace.workloads import Workload

TINY = ExperimentSettings(
    quota=800,
    warmup=200,
    alone_quota=900,
    alone_warmup=100,
    workloads={4: 2},
)

FIXTURES = (
    FIXTURE_DIR / "toy-champsim.trace.gz",
    FIXTURE_DIR / "toy.drcachesim.txt",
    FIXTURE_DIR / "toy.lackey.out",
)


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("real-tournament")
    for path in FIXTURES:
        ingest_file(path, directory=out / "traces")
    run = run_tournament(
        SystemConfig.scaled(4),
        policies=("lru", "tadrrip"),
        cores=(4,),
        seeds=(0,),
        benchmark_set="real",
        jobs=1,
        results_dir=out,
        settings=TINY,
    )
    assert run.scheduled == 2 * 2  # policies x workloads
    assert run.executed > 0 and run.failed == 0
    return out


def test_report_marks_real_cells(results_dir):
    report = report_from_store(ResultStore(results_dir), n_resamples=100)
    assert len(report.data.cells) == 4
    assert report.data.real_cells == 4
    assert report.data.workloads == ["4core-real-000", "4core-real-001"]
    rendered = render_ranked(report)
    assert "4 cells ran ingested real-workload traces" in rendered


def test_rerun_is_fully_cached(results_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TARGETS_DIR", str(results_dir / "traces"))
    again = run_tournament(
        SystemConfig.scaled(4),
        policies=("lru", "tadrrip"),
        cores=(4,),
        seeds=(0,),
        benchmark_set="real",
        jobs=1,
        results_dir=results_dir,
        settings=TINY,
    )
    assert again.executed == 0
    assert again.store_hits >= again.scheduled


def test_all_set_composes_both_rosters(results_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TARGETS_DIR", str(results_dir / "traces"))
    from dataclasses import replace

    suite = replace(TINY, benchmark_set="all").suite(4)
    real = [w for w in suite if all(b.startswith("tgt:") for b in w.benchmarks)]
    synthetic = [w for w in suite if w not in real]
    assert len(real) == 2 and len(synthetic) == 2
    assert all(isinstance(w, Workload) for w in suite)


def test_real_set_without_ingested_targets_fails_cleanly(tmp_path):
    from dataclasses import replace

    with pytest.raises(ValueError, match="targets ingest"):
        run_tournament(
            SystemConfig.scaled(4),
            policies=("lru",),
            cores=(4,),
            seeds=(0,),
            benchmark_set="real",
            jobs=1,
            results_dir=tmp_path / "empty",
            settings=replace(TINY, benchmark_set="real"),
        )
