"""Streaming parsers: fixtures decode to their generator stream, and
every ``encode_* -> iter_chunks`` pair round-trips property-style."""

from __future__ import annotations

import gzip
import io
import lzma

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from make_fixtures import FIXTURE_DIR, fixture_instrs

from repro.targets.formats import (
    CHAMPSIM_DTYPE,
    FORMATS,
    ChunkBatch,
    FormatError,
    SyntheticInstr,
    detect_format,
    encode_champsim,
    encode_drcachesim,
    encode_lackey,
    expected_accesses,
    iter_chunks,
    open_stream,
)

CHAMPSIM_FIXTURE = FIXTURE_DIR / "toy-champsim.trace.gz"
DRCACHESIM_FIXTURE = FIXTURE_DIR / "toy.drcachesim.txt"
LACKEY_FIXTURE = FIXTURE_DIR / "toy.lackey.out"


def decode_all(stream, fmt: str, block_size: int = 64) -> ChunkBatch:
    """Concatenate every batch the parser yields."""
    addrs, pcs, writes, instructions = [], [], [], 0
    for batch in iter_chunks(stream, fmt, block_size):
        addrs.append(batch.addrs)
        pcs.append(batch.pcs)
        writes.append(batch.writes)
        instructions += batch.instructions
    return ChunkBatch(
        np.concatenate(addrs) if addrs else np.empty(0, dtype=np.int64),
        np.concatenate(pcs) if pcs else np.empty(0, dtype=np.int64),
        np.concatenate(writes) if writes else np.empty(0, dtype=bool),
        instructions,
    )


def assert_batches_equal(got: ChunkBatch, want: ChunkBatch) -> None:
    np.testing.assert_array_equal(got.addrs, want.addrs)
    np.testing.assert_array_equal(got.pcs, want.pcs)
    np.testing.assert_array_equal(got.writes, want.writes)
    assert got.instructions == want.instructions


class TestDetectFormat:
    @pytest.mark.parametrize(
        ("name", "fmt"),
        [
            ("app.champsim.trace.gz", "champsim"),
            ("600.perlbench.trace.xz", "champsim"),
            ("mcf.trace", "champsim"),
            ("run.drcachesim.txt", "drcachesim"),
            ("memtrace.dr", "drcachesim"),
            ("app.lackey.out", "lackey"),
            ("lackey-pid1234.log.gz", "lackey"),
        ],
    )
    def test_known_names(self, name, fmt):
        assert detect_format(name) == fmt

    def test_ambiguous_name_raises_with_options(self):
        with pytest.raises(FormatError, match="--format"):
            detect_format("mystery.bin")

    def test_formats_tuple_matches_dispatch(self):
        for fmt in FORMATS:
            assert list(iter_chunks(io.BytesIO(b""), fmt)) == []
        with pytest.raises(FormatError, match="unknown trace format"):
            list(iter_chunks(io.BytesIO(b""), "itrace"))


class TestFixturesDecode:
    """The committed fixtures decode to exactly their generator stream."""

    @pytest.mark.parametrize(
        ("path", "fmt"),
        [
            (CHAMPSIM_FIXTURE, "champsim"),
            (DRCACHESIM_FIXTURE, "drcachesim"),
            (LACKEY_FIXTURE, "lackey"),
        ],
    )
    def test_fixture_round_trip(self, path, fmt):
        want = expected_accesses(fixture_instrs(path.name))
        assert len(want.addrs) > 0
        with open_stream(path) as stream:
            got = decode_all(stream, fmt)
        assert_batches_equal(got, want)

    def test_fixture_formats_are_inferred(self):
        assert detect_format(CHAMPSIM_FIXTURE) == "champsim"
        assert detect_format(DRCACHESIM_FIXTURE) == "drcachesim"
        assert detect_format(LACKEY_FIXTURE) == "lackey"

    def test_fixtures_stay_tiny(self):
        for path in (CHAMPSIM_FIXTURE, DRCACHESIM_FIXTURE, LACKEY_FIXTURE):
            assert path.stat().st_size < 10_000


# ChampSim drops zero operands, so generated addresses are >= 1; sizes
# follow the record shape (<=4 loads / <=2 stores).
_addr = st.integers(min_value=1, max_value=(1 << 44) - 1)
_instr = st.builds(
    SyntheticInstr,
    pc=st.integers(min_value=0, max_value=(1 << 52) - 1),
    reads=st.lists(_addr, max_size=4).map(tuple),
    writes=st.lists(_addr, max_size=2).map(tuple),
)
_stream = st.lists(_instr, min_size=1, max_size=60)


class TestEncodeParseRoundTrip:
    @given(instrs=_stream)
    @settings(max_examples=30, deadline=None)
    def test_champsim(self, instrs):
        got = decode_all(io.BytesIO(encode_champsim(instrs)), "champsim")
        assert_batches_equal(got, expected_accesses(instrs))

    @given(instrs=_stream)
    @settings(max_examples=30, deadline=None)
    def test_drcachesim(self, instrs):
        payload = encode_drcachesim(instrs).encode()
        got = decode_all(io.BytesIO(payload), "drcachesim")
        assert_batches_equal(got, expected_accesses(instrs))

    @given(instrs=_stream)
    @settings(max_examples=30, deadline=None)
    def test_lackey(self, instrs):
        payload = encode_lackey(instrs).encode()
        got = decode_all(io.BytesIO(payload), "lackey")
        assert_batches_equal(got, expected_accesses(instrs))

    @given(
        instrs=_stream,
        block_size=st.sampled_from([16, 64, 128, 4096]),
    )
    @settings(max_examples=20, deadline=None)
    def test_block_size_is_honoured(self, instrs, block_size):
        got = decode_all(
            io.BytesIO(encode_champsim(instrs)), "champsim", block_size
        )
        assert_batches_equal(got, expected_accesses(instrs, block_size))


class TestChampsimEdges:
    def test_truncated_stream_raises(self):
        instrs = [SyntheticInstr(pc=0x400000, reads=(0x1000,))]
        payload = encode_champsim(instrs)[:-7]
        with pytest.raises(FormatError, match="truncated"):
            decode_all(io.BytesIO(payload), "champsim")

    def test_record_size_is_champsim_canonical(self):
        assert CHAMPSIM_DTYPE.itemsize == 64

    def test_zero_operands_are_unused_slots(self):
        # One load in slot 0, slots 1-3 and both stores zero: exactly one
        # access comes out.
        payload = encode_champsim([SyntheticInstr(pc=0x10, reads=(0x8000,))])
        got = decode_all(io.BytesIO(payload), "champsim")
        assert len(got.addrs) == 1 and not got.writes[0]

    def test_operand_cap_is_enforced(self):
        with pytest.raises(ValueError, match="at most"):
            encode_champsim([SyntheticInstr(pc=0, reads=(1, 2, 3, 4, 5))])

    def test_issue_order_is_reads_then_writes(self):
        payload = encode_champsim(
            [SyntheticInstr(pc=0x10, reads=(64, 128), writes=(192,))]
        )
        got = decode_all(io.BytesIO(payload), "champsim")
        assert got.addrs.tolist() == [1, 2, 3]
        assert got.writes.tolist() == [False, False, True]


class TestTextEdges:
    def test_lackey_modify_is_a_write(self):
        text = b"I  0000ABCD,4\n M 00010040,8\n"
        got = decode_all(io.BytesIO(text), "lackey")
        assert got.writes.tolist() == [True]
        assert got.pcs.tolist() == [0xABCD]

    def test_lackey_banner_lines_are_skipped(self):
        text = b"==1234== lackey\n\nI  00000100,4\n L 00000040,8\n"
        got = decode_all(io.BytesIO(text), "lackey")
        assert len(got.addrs) == 1 and got.instructions == 1

    def test_lackey_garbage_operand_raises(self):
        with pytest.raises(FormatError, match="bad lackey line"):
            decode_all(io.BytesIO(b" L nope,8\n"), "lackey")

    def test_drcachesim_header_lines_are_skipped(self):
        text = (
            b"Output format:\n<record>: T<tid> <type>\n"
            b"  1: T1 ifetch      4 byte(s) @ 0x0000000000400000 non-branch\n"
            b"  2: T1 read        8 byte(s) @ 0x0000000000010040\n"
        )
        got = decode_all(io.BytesIO(text), "drcachesim")
        assert got.addrs.tolist() == [0x10040 >> 6]
        assert got.pcs.tolist() == [0x400000]
        assert got.instructions == 1

    def test_drcachesim_garbage_address_raises(self):
        with pytest.raises(FormatError, match="bad drcachesim line"):
            decode_all(io.BytesIO(b"  1: T1 read 8 byte(s) @ 0xZZ\n"), "drcachesim")


class TestOpenStream:
    def test_gz_and_xz_and_plain(self, tmp_path):
        instrs = [SyntheticInstr(pc=0x400000, reads=(0x1000,), writes=(0x2000,))]
        payload = encode_lackey(instrs).encode()
        plain = tmp_path / "t.lackey.out"
        plain.write_bytes(payload)
        (tmp_path / "t.lackey.out.gz").write_bytes(gzip.compress(payload))
        (tmp_path / "t.lackey.out.xz").write_bytes(lzma.compress(payload))
        want = expected_accesses(instrs)
        for name in ("t.lackey.out", "t.lackey.out.gz", "t.lackey.out.xz"):
            with open_stream(tmp_path / name) as stream:
                assert_batches_equal(decode_all(stream, "lackey"), want)
