"""Deterministic generator for the committed trace fixtures.

The fixtures under ``fixtures/`` are tiny (<10 KB each) but real: one
file per supported format, produced by the ``encode_*`` helpers from a
seeded instruction stream.  Tests import :func:`fixture_instrs` to know
exactly what each fixture must decode to; running this module as a
script regenerates the files byte-identically (the gzip member is
written with ``mtime=0``)::

    PYTHONPATH=src python tests/targets/make_fixtures.py
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from repro.targets.formats import (
    SyntheticInstr,
    encode_champsim,
    encode_drcachesim,
    encode_lackey,
)

FIXTURE_DIR = Path(__file__).parent / "fixtures"

#: file name -> (format, instruction count, rng stream label)
FIXTURES = {
    "toy-champsim.trace.gz": ("champsim", 96, "champsim"),
    "toy.drcachesim.txt": ("drcachesim", 40, "drcachesim"),
    "toy.lackey.out": ("lackey", 120, "lackey"),
}


def fixture_instrs(name: str) -> list[SyntheticInstr]:
    """The exact instruction stream a fixture encodes."""
    _, count, label = FIXTURES[name]
    rng = np.random.default_rng(abs(hash_label(label)))
    instrs = []
    for _ in range(count):
        pc = int(rng.integers(0x400000, 0x500000)) & ~3
        reads = tuple(
            int(rng.integers(0x1000, 1 << 30)) for _ in range(int(rng.integers(0, 4)))
        )
        writes = tuple(
            int(rng.integers(0x1000, 1 << 30)) for _ in range(int(rng.integers(0, 3)))
        )
        instrs.append(SyntheticInstr(pc=pc, reads=reads, writes=writes))
    # Guarantee at least one access even if the dice rolled all-empty.
    if not any(i.reads or i.writes for i in instrs):
        instrs[0] = SyntheticInstr(pc=0x400000, reads=(0x2000,))
    return instrs


def hash_label(label: str) -> int:
    """A stable (non-PYTHONHASHSEED) integer seed for a stream label."""
    value = 2016  # the paper's year anchors every fixture stream
    for ch in label.encode():
        value = (value * 131 + ch) % (1 << 31)
    return value


def write_fixtures(directory: Path = FIXTURE_DIR) -> list[Path]:
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, (fmt, _, _) in FIXTURES.items():
        instrs = fixture_instrs(name)
        path = directory / name
        if fmt == "champsim":
            payload = encode_champsim(instrs)
            with open(path, "wb") as fh:
                # mtime=0 keeps the compressed bytes reproducible.
                with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
                    gz.write(payload)
        elif fmt == "drcachesim":
            path.write_text(encode_drcachesim(instrs))
        else:
            path.write_text(encode_lackey(instrs))
        written.append(path)
    return written


if __name__ == "__main__":
    for path in write_fixtures():
        print(f"{path} ({path.stat().st_size} bytes)")
