"""Ingestion: content addressing, byte-identity, budgets, acquisition."""

from __future__ import annotations

import tarfile

import numpy as np
import pytest
from make_fixtures import FIXTURE_DIR

from repro.runner.integrity import checksum_path, read_meta, verify_artifact
from repro.targets import (
    AcquisitionError,
    LocalDirectory,
    LocalFile,
    Tarball,
    Target,
    ingest_file,
    ingest_key,
    ingest_target,
    trace_budget,
)
from repro.targets.formats import SyntheticInstr, encode_lackey, expected_accesses
from repro.targets.ingest import DEFAULT_BUDGET, default_name
from repro.targets.registry import buffer_path, load_registry
from repro.trace.shared import TRACE_DTYPE

CHAMPSIM_FIXTURE = FIXTURE_DIR / "toy-champsim.trace.gz"
LACKEY_FIXTURE = FIXTURE_DIR / "toy.lackey.out"
CHUNK = 4096


def lackey_file(tmp_path, n_instrs: int, name: str = "big.lackey.out"):
    """A synthetic lackey trace with exactly ``2 * n_instrs`` accesses."""
    instrs = [
        SyntheticInstr(
            pc=0x400000 + 4 * i,
            reads=(0x1000 + 64 * i,),
            writes=(0x800000 + 64 * i,),
        )
        for i in range(n_instrs)
    ]
    path = tmp_path / name
    path.write_text(encode_lackey(instrs))
    return path, instrs


class TestBudget:
    def test_default(self):
        assert trace_budget() == DEFAULT_BUDGET

    def test_env_budget_and_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BUDGET", "100000")
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert trace_budget() == 50_000

    def test_floored_at_one_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BUDGET", "10")
        assert trace_budget() == CHUNK
        assert trace_budget(1) == CHUNK

    def test_explicit_budget_bypasses_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert trace_budget(65536) == 65536


class TestContentAddress:
    def test_key_is_stable_and_parameter_sensitive(self):
        base = ingest_key("ab" * 32, 64, 8192)
        assert base == ingest_key("ab" * 32, 64, 8192)
        assert len(base) == 40
        assert base != ingest_key("cd" * 32, 64, 8192)
        assert base != ingest_key("ab" * 32, 128, 8192)
        assert base != ingest_key("ab" * 32, 64, 4096)

    @pytest.mark.parametrize(
        ("file_name", "target_name"),
        [
            ("toy-champsim.trace.gz", "tgt:toy-champsim"),
            ("app.lackey.out", "tgt:app.lackey"),
            ("My Run (v2).drcachesim.txt", "tgt:my-run-v2-.drcachesim"),
        ],
    )
    def test_default_name(self, file_name, target_name):
        assert default_name(file_name) == target_name


class TestIngestGolden:
    def test_buffer_matches_the_decoded_stream(self, traces_dir):
        from make_fixtures import fixture_instrs

        spec, reused = ingest_file(LACKEY_FIXTURE, directory=traces_dir)
        assert not reused
        want = expected_accesses(fixture_instrs(LACKEY_FIXTURE.name))
        buf = np.load(buffer_path(traces_dir, spec.key))
        assert buf.dtype == TRACE_DTYPE
        assert len(buf) == spec.n_chunks * CHUNK
        n = len(want.addrs)
        assert spec.n_accesses == n
        np.testing.assert_array_equal(buf["addr"][:n], want.addrs)
        np.testing.assert_array_equal(buf["pc"][:n], want.pcs)
        np.testing.assert_array_equal(buf["write"][:n], want.writes)
        # Tiled tail repeats the stream cyclically.
        np.testing.assert_array_equal(buf["addr"][n : 2 * n], want.addrs[: n])

    def test_reingestion_is_byte_identical(self, traces_dir):
        spec, _ = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        path = buffer_path(traces_dir, spec.key)
        first = path.read_bytes()
        # Drop the buffer and its sidecars: a fresh ingest must reproduce
        # the exact bytes (the golden guarantee behind the content key).
        path.unlink()
        checksum_path(path).unlink()
        (traces_dir / f"{path.name}.meta.json").unlink()
        again, reused = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        assert not reused and again == spec
        assert path.read_bytes() == first

    def test_second_ingest_reuses_without_reparsing(self, traces_dir):
        spec, first_reused = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        again, reused = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        assert not first_reused and reused
        assert again == spec

    def test_ingest_into_two_stores_is_identical(self, tmp_path):
        a, _ = ingest_file(CHAMPSIM_FIXTURE, directory=tmp_path / "a")
        b, _ = ingest_file(CHAMPSIM_FIXTURE, directory=tmp_path / "b")
        assert a.key == b.key
        assert (
            buffer_path(tmp_path / "a", a.key).read_bytes()
            == buffer_path(tmp_path / "b", b.key).read_bytes()
        )

    def test_sidecars_and_registry(self, traces_dir):
        spec, _ = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        path = buffer_path(traces_dir, spec.key)
        assert verify_artifact(path) is True
        meta = read_meta(path)
        assert meta["kind"] == "target"
        assert meta["format"] == "champsim"
        assert meta["origin"] == CHAMPSIM_FIXTURE.name
        assert meta["source_sha256"] == spec.source_sha256
        assert meta["accesses"] == spec.n_accesses
        registry = load_registry(traces_dir)
        assert registry == {"tgt:toy-champsim": spec}

    def test_corrupt_buffer_is_quarantined_and_rebuilt(self, traces_dir):
        spec, _ = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        path = buffer_path(traces_dir, spec.key)
        good = path.read_bytes()
        path.write_bytes(good[:-4] + b"\xde\xad\xbe\xef")
        again, reused = ingest_file(CHAMPSIM_FIXTURE, directory=traces_dir)
        assert not reused and again == spec
        assert path.read_bytes() == good
        assert (traces_dir / "quarantine" / path.name).is_file()


class TestDownSampling:
    def test_budget_truncates_to_leading_prefix(self, tmp_path, traces_dir):
        path, instrs = lackey_file(tmp_path, 3000)  # 6000 accesses
        spec, _ = ingest_file(path, directory=traces_dir, budget=CHUNK)
        assert spec.n_accesses == CHUNK and spec.n_chunks == 1
        want = expected_accesses(instrs)
        buf = np.load(buffer_path(traces_dir, spec.key))
        np.testing.assert_array_equal(buf["addr"], want.addrs[:CHUNK])

    def test_unbudgeted_keeps_everything(self, tmp_path, traces_dir):
        path, _ = lackey_file(tmp_path, 3000)
        spec, _ = ingest_file(path, directory=traces_dir)
        assert spec.n_accesses == 6000 and spec.n_chunks == 2

    def test_env_scale_reaches_the_default_budget(
        self, tmp_path, traces_dir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_BUDGET", str(2 * CHUNK))
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        path, _ = lackey_file(tmp_path, 3000)
        spec, _ = ingest_file(path, directory=traces_dir)
        assert spec.budget == CHUNK and spec.n_accesses == CHUNK

    def test_different_budgets_are_different_artifacts(self, tmp_path, traces_dir):
        path, _ = lackey_file(tmp_path, 3000)
        a, _ = ingest_file(path, directory=traces_dir, budget=CHUNK)
        b, _ = ingest_file(path, directory=traces_dir, budget=2 * CHUNK)
        assert a.key != b.key
        assert buffer_path(traces_dir, a.key).is_file()
        assert buffer_path(traces_dir, b.key).is_file()
        # Last ingest under the name wins in the registry.
        assert load_registry(traces_dir)["tgt:big.lackey"] == b


class TestCoreModelParameters:
    def test_ipa_reflects_instruction_density(self, traces_dir):
        spec, _ = ingest_file(LACKEY_FIXTURE, directory=traces_dir)
        # The fixture emits exactly two accesses per instruction.
        assert spec.instructions_per_access == pytest.approx(0.5, abs=0.5)
        assert 1.0 <= spec.instructions_per_access <= 1000.0

    def test_ingest_flags_override_core_model(self, traces_dir):
        spec, _ = ingest_file(
            LACKEY_FIXTURE, directory=traces_dir, mlp=4.0, base_cpi=0.5
        )
        assert spec.mlp == 4.0 and spec.base_cpi == 0.5
        assert spec.thrashing is False


class TestAcquisition:
    def test_local_file_checksum_pin(self, traces_dir):
        from repro.runner.integrity import file_digest

        good = Target(
            "toy",
            LocalFile(CHAMPSIM_FIXTURE, sha256=file_digest(CHAMPSIM_FIXTURE)),
        )
        specs = ingest_target(good, traces_dir / "staging", directory=traces_dir)
        assert [s.name for s in specs] == ["tgt:toy"]
        bad = Target("toy", LocalFile(CHAMPSIM_FIXTURE, sha256="0" * 64))
        with pytest.raises(AcquisitionError, match="checksum mismatch"):
            ingest_target(bad, traces_dir / "staging", directory=traces_dir)

    def test_directory_source_ingests_every_match(self, traces_dir):
        target = Target(
            "toys", LocalDirectory(FIXTURE_DIR, pattern="toy*"), mlp=3.0
        )
        specs = ingest_target(target, traces_dir / "staging", directory=traces_dir)
        assert len(specs) == 3
        assert {s.fmt for s in specs} == {"champsim", "drcachesim", "lackey"}
        assert all(s.name.startswith("tgt:toys-") for s in specs)
        assert all(s.mlp == 3.0 for s in specs)

    def test_tarball_source_extracts_flat(self, tmp_path, traces_dir):
        archive = tmp_path / "bundle.tar.gz"
        with tarfile.open(archive, "w:gz") as tar:
            # Archive paths are hostile by default: members carry
            # directory components that must never be honoured.
            tar.add(LACKEY_FIXTURE, arcname="deep/../../toy.lackey.out")
            tar.add(CHAMPSIM_FIXTURE, arcname="sub/dir/toy-champsim.trace.gz")
        target = Target("bundle", Tarball(archive, pattern="toy*"))
        staging = tmp_path / "staging"
        specs = ingest_target(target, staging, directory=traces_dir)
        assert len(specs) == 2
        extracted = {p.name for p in staging.iterdir()}
        assert extracted == {"toy.lackey.out", "toy-champsim.trace.gz"}

    def test_missing_inputs_raise(self, tmp_path, traces_dir):
        with pytest.raises(AcquisitionError, match="not found"):
            Target("x", LocalFile(tmp_path / "absent.trace")).trace_set(tmp_path)
        with pytest.raises(AcquisitionError, match="no files match"):
            Target("x", LocalDirectory(tmp_path, pattern="*.trace")).trace_set(
                tmp_path
            )
