"""Provenance sidecars: synthetic buffers record their generator, and
``traces ls``/``targets info`` render both kinds uniformly."""

from __future__ import annotations

from pathlib import Path

from make_fixtures import FIXTURE_DIR

from repro.experiments.__main__ import main
from repro.runner.integrity import read_meta
from repro.runner.tracegc import collect_garbage, list_traces, provenance_line
from repro.targets import ingest_file
from repro.targets.registry import buffer_path
from repro.trace import shared
from repro.trace.benchmarks import BENCHMARKS, Geometry

GEOM = Geometry(llc_num_sets=64, l2_blocks=128, l1_blocks=32)
LACKEY_FIXTURE = FIXTURE_DIR / "toy.lackey.out"


def materialise_synthetic(traces_dir, benchmark="mcf", seed=3):
    store = shared.SharedTraceStore(traces_dir)
    entry = store.materialise(BENCHMARKS[benchmark], GEOM, 0, seed, n_chunks=2)
    return Path(entry["path"])


class TestSyntheticMeta:
    def test_materialise_records_generator_identity(self, traces_dir):
        path = materialise_synthetic(traces_dir)
        meta = read_meta(path)
        assert meta["kind"] == "synthetic"
        assert meta["generator"] == "mcf"
        assert meta["pattern"] == BENCHMARKS["mcf"].pattern
        assert meta["core_id"] == 0 and meta["master_seed"] == 3

    def test_provenance_lines(self, traces_dir):
        synthetic = materialise_synthetic(traces_dir)
        assert "synthetic generator=mcf" in provenance_line(synthetic)
        spec, _ = ingest_file(LACKEY_FIXTURE, directory=traces_dir)
        target = buffer_path(traces_dir, spec.key)
        line = provenance_line(target)
        assert "ingested [lackey]" in line
        assert "origin=toy.lackey.out" in line
        synthetic.with_name(synthetic.name + ".meta.json").unlink()
        assert provenance_line(synthetic) == "(no provenance recorded)"


class TestInventory:
    def test_ls_covers_both_kinds(self, tmp_path, traces_dir):
        materialise_synthetic(traces_dir)
        ingest_file(LACKEY_FIXTURE, directory=traces_dir)
        inventory = list_traces(traces_dir.parent)
        rendered = inventory.render()
        assert len(inventory.entries) == 2
        assert "synthetic generator=mcf" in rendered
        assert "ingested [lackey]" in rendered

    def test_info_falls_back_to_raw_artifacts(self, traces_dir, capsys):
        path = materialise_synthetic(traces_dir)
        rc = main(
            [
                "targets",
                "info",
                path.name,
                "--results-dir",
                str(traces_dir.parent),
            ]
        )
        assert rc == 0
        assert "synthetic generator=mcf" in capsys.readouterr().out


class TestGcSidecarSweep:
    def test_orphan_meta_sidecars_are_swept(self, traces_dir):
        path = materialise_synthetic(traces_dir)
        meta = traces_dir / (path.name + ".meta.json")
        path.unlink()  # orphan both sidecars
        assert meta.is_file()
        collect_garbage(traces_dir.parent)
        assert not meta.is_file()

    def test_gc_keeps_sidecars_of_kept_targets(self, traces_dir):
        spec, _ = ingest_file(LACKEY_FIXTURE, directory=traces_dir)
        path = buffer_path(traces_dir, spec.key)
        collect_garbage(traces_dir.parent)
        assert path.is_file()
        assert (traces_dir / (path.name + ".meta.json")).is_file()
        assert (traces_dir / (path.name + ".sha256")).is_file()
