"""Unit tests for the row-hit/row-conflict DRAM model."""

import pytest

from repro.mem.dram import DramModel


class TestRowBuffer:
    def test_first_access_is_conflict(self):
        dram = DramModel()
        done = dram.read(0, 0.0)
        assert done == 340.0
        assert dram.row_conflicts == 1

    def test_same_row_hits(self):
        dram = DramModel()
        dram.read(0, 0.0)
        done = dram.read(1, 1000.0)  # same 4KB row (64 blocks/row)
        assert done == 1000.0 + 180.0
        assert dram.row_hits == 1

    def test_row_change_conflicts(self):
        dram = DramModel()
        dram.read(0, 0.0)
        blocks_per_row = dram.blocks_per_row
        # Same bank requires same permuted index; row+num_banks keeps the
        # XOR low bits identical while changing the row.
        addr = blocks_per_row * dram.num_banks
        assert dram.bank_of(addr) == dram.bank_of(0)
        done = dram.read(addr, 1000.0)
        assert done == 1000.0 + 340.0

    def test_bank_busy_serialises(self):
        dram = DramModel(bank_occupancy=16.0)
        dram.read(0, 0.0)
        done = dram.read(1, 0.0)  # same bank, same row, but bank busy
        assert done == 16.0 + 180.0

    def test_different_banks_parallel(self):
        dram = DramModel()
        a, b = 0, dram.blocks_per_row  # consecutive rows -> different banks
        assert dram.bank_of(a) != dram.bank_of(b)
        dram.read(a, 0.0)
        done = dram.read(b, 0.0)
        assert done == 340.0  # no serialisation

    def test_writes_occupy_but_count_separately(self):
        dram = DramModel()
        dram.write(0, 0.0)
        assert dram.writes == 1 and dram.reads == 0

    def test_row_hit_rate(self):
        dram = DramModel()
        dram.read(0, 0.0)
        dram.read(1, 500.0)
        dram.read(2, 1000.0)
        assert dram.row_hit_rate() == pytest.approx(2 / 3)

    def test_streaming_mostly_row_hits(self):
        dram = DramModel()
        t = 0.0
        for block in range(512):
            t = dram.read(block, t)
        assert dram.row_hit_rate() > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(num_banks=6)
        with pytest.raises(ValueError):
            DramModel(row_bytes=100, block_bytes=64)
