"""Unit tests for the VPC-style L2->LLC arbiter."""

import pytest

from repro.mem.arbiter import VpcArbiter


class TestVpcArbiter:
    def test_idle_core_admitted_immediately(self):
        arb = VpcArbiter(num_cores=4)
        assert arb.admit(0, 100.0) == 100.0

    def test_virtual_clock_advances_by_fair_cost(self):
        arb = VpcArbiter(num_cores=4, service_cycles=4.0)
        arb.admit(0, 0.0)
        assert arb.virtual_clock(0) == 16.0  # 4 cycles x 4 cores

    def test_bursting_core_gets_throttled(self):
        arb = VpcArbiter(num_cores=8, service_cycles=4.0, window=64.0)
        start = 0.0
        for _ in range(100):
            start = arb.admit(0, 0.0)
        assert start > 0.0
        assert arb.throttled > 0

    def test_fair_usage_never_throttled(self):
        arb = VpcArbiter(num_cores=2, service_cycles=4.0, window=64.0)
        t = 0.0
        for i in range(100):
            # Requests spaced beyond the fair cost: no throttling.
            arb.admit(i % 2, t)
            t += 10.0
        assert arb.throttled == 0

    def test_idle_clock_catches_up(self):
        arb = VpcArbiter(num_cores=4, service_cycles=4.0)
        arb.admit(0, 0.0)
        arb.admit(0, 10_000.0)
        # The virtual clock rebased to real time, not the stale value.
        assert arb.virtual_clock(0) == 10_016.0

    def test_per_core_isolation(self):
        arb = VpcArbiter(num_cores=4, window=16.0)
        for _ in range(50):
            arb.admit(0, 0.0)
        # Core 1 is unaffected by core 0's burst.
        assert arb.admit(1, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VpcArbiter(0)
