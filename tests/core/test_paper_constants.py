"""Pin every hardware constant the paper states to our defaults.

These tests exist so that a refactor cannot silently drift the
reproduction away from the published design point.
"""

from repro.core.adapt import AdaptPolicy
from repro.core.footprint import FootprintSampler
from repro.core.priority import InsertionPriorityPredictor
from repro.policies.drrip import DrripPolicy
from repro.policies.eaf import EafPolicy
from repro.policies.rrip import BrripPolicy, SrripPolicy
from repro.policies.ship import ShipPolicy
from repro.policies.tadrrip import TaDrripPolicy
from repro.sim.config import SystemConfig


class TestAdaptConstants:
    def test_monitor_defaults(self):
        """Section 3.1: 40 sampled sets, 16-entry arrays, 10-bit tags."""
        sampler = FootprintSampler(llc_num_sets=16384)
        assert sampler.num_monitor_sets == 40
        assert sampler.entries == 16
        assert sampler._arrays[0].partial_mask == (1 << 10) - 1

    def test_priority_defaults(self):
        """Section 3.2: HP [0,3], MP (3,12], LP (12,16), LstP >= 16."""
        predictor = InsertionPriorityPredictor()
        assert predictor.associativity == 16
        assert predictor.high_max == 3.0
        assert predictor.medium_max == 12.0

    def test_adapt_ticker_denominators(self):
        """Table 1: 1/16th exceptions for MP and LP, 1/32nd LstP inserts."""
        predictor = InsertionPriorityPredictor()
        assert predictor._medium_ticker.denominator == 16
        assert predictor._low_ticker.denominator == 16
        assert predictor._least_ticker.denominator == 32

    def test_adapt_uses_2_bit_rrpv(self):
        """Section 3.2: 2 bits per line for the RRPV, like prior work."""
        policy = AdaptPolicy()
        assert policy.max_rrpv == 3


class TestBaselineConstants:
    def test_set_duelling_parameters(self):
        """Section 2: 32 sets per policy, 10-bit PSEL, threshold 512."""
        drrip = DrripPolicy()
        assert drrip._leader_sets == 32
        assert drrip._psel.threshold == 512
        assert drrip._psel.max_value == 1023

    def test_tadrrip_per_thread_psels(self):
        policy = TaDrripPolicy()
        policy.bind(1024, 16, 24)
        assert len(policy._psel) == 24

    def test_rrip_insertion_points(self):
        srrip, brrip = SrripPolicy(), BrripPolicy()
        assert srrip.max_rrpv - 1 == 2  # "long"
        assert brrip._ticker.denominator == 32  # epsilon

    def test_ship_table_shape(self):
        """Table 2 implies a 16K-entry SHCT; SHiP uses 14-bit signatures."""
        ship = ShipPolicy()
        assert ship.shct_entries == 16 * 1024
        assert ship.signature_bits == 14

    def test_eaf_bits_per_address(self):
        """Table 2: 8 bits per tracked address."""
        eaf = EafPolicy()
        eaf.bind(16384, 16, 16)
        assert eaf.filter.size == 16384 * 16 * 8


class TestPlatformConstants:
    def test_paper_platform_is_table3(self):
        cfg = SystemConfig.paper()
        assert (cfg.llc_banks, cfg.dram_banks) == (4, 8)
        assert (cfg.l2_wb_entries, cfg.l2_wb_retire_at) == (32, 24)
        assert (cfg.llc_wb_entries, cfg.llc_wb_retire_at) == (128, 96)
        assert cfg.llc_mshr_entries == 256
        assert cfg.dram_row_bytes == 4096
