"""Unit tests for the Table 2 hardware-cost model."""

import pytest

from repro.core.hwcost import adapt_cost, eaf_cost, ship_cost, table2_reports, tadrrip_cost


class TestTable2Values:
    def test_tadrrip_48_bytes_at_24_apps(self):
        assert tadrrip_cost(24).bytes == 48

    def test_eaf_256kb_for_16mb_cache(self):
        assert eaf_cost(256 * 1024).kilobytes == pytest.approx(256.0)

    def test_ship_near_paper_figure(self):
        report = ship_cost(256 * 1024, sampled_line_fraction=0.125)
        assert report.kilobytes == pytest.approx(65.875, abs=0.5)

    def test_adapt_8200_bits_per_app(self):
        report = adapt_cost(1)
        assert report.bits == 8200

    def test_adapt_24kb_at_24_apps(self):
        assert adapt_cost(24).kilobytes == pytest.approx(24.0, abs=0.1)

    def test_adapt_per_set_budget_is_204_bits(self):
        # 16 x (10 + 2) + 8 + 4 = 204 (Section 3.3's arithmetic).
        report = adapt_cost(1, num_monitor_sets=1, register_bits=0)
        assert report.bits == 204


class TestReports:
    def test_table2_has_four_rows(self):
        reports = table2_reports()
        assert [r.policy for r in reports] == ["TA-DRRIP", "EAF-RRIP", "SHiP", "ADAPT"]

    def test_render_contains_size(self):
        text = adapt_cost(24).render()
        assert "KB" in text and "ADAPT" in text

    def test_cost_ordering_matches_paper(self):
        """TA-DRRIP << ADAPT << SHiP << EAF at paper scale."""
        reports = {r.policy: r.bits for r in table2_reports()}
        assert reports["TA-DRRIP"] < reports["ADAPT"] < reports["SHiP"] < reports["EAF-RRIP"]
