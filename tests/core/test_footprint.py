"""Unit tests for the Footprint-number monitor (Section 3.1)."""

import pytest

from repro.core.footprint import FootprintSampler, SamplerSet


class TestSamplerSet:
    def test_counts_unique_tags(self):
        s = SamplerSet(entries=16)
        for tag in (1, 2, 3, 2, 1):
            s.observe(tag)
        assert s.unique_count == 3

    def test_hit_refreshes_recency(self):
        s = SamplerSet(entries=4)
        s.observe(7)
        s.observe(9)
        assert s.observe(7) is False
        assert s.rrpv[s.tags.index(7 & s.partial_mask)] == 0

    def test_replacement_when_full(self):
        s = SamplerSet(entries=2)
        for tag in (1, 2, 3):
            s.observe(tag)
        assert len(s.tags) == 2
        assert s.unique_count == 3  # counter keeps counting past capacity

    def test_thrashing_set_counter_grows_past_entries(self):
        # The property LstP detection relies on: a per-set working set
        # beyond the array capacity keeps incrementing the counter.
        s = SamplerSet(entries=16)
        for sweep in range(2):
            for tag in range(24):
                s.observe(tag)
        assert s.unique_count > 16

    def test_counter_saturates(self):
        s = SamplerSet(entries=2, counter_bits=4)
        for tag in range(100):
            s.observe(tag)
        assert s.unique_count == 15

    def test_partial_tags_alias(self):
        s = SamplerSet(entries=16, partial_tag_bits=4)
        s.observe(0x1)
        assert s.observe(0x11) is False  # aliases on the low 4 bits
        assert s.unique_count == 1

    def test_reset(self):
        s = SamplerSet()
        s.observe(1)
        s.reset()
        assert s.unique_count == 0 and not s.tags


class TestFootprintSampler:
    def test_figure_2b_worked_example(self):
        """The paper's example: counts 3,2,3,3 -> Footprint-number 2.75."""
        sampler = FootprintSampler(llc_num_sets=4, num_monitor_sets=4)
        per_set = {0: [1, 2, 1, 3], 1: [4, 5], 2: [6, 7, 8], 3: [9, 10, 11, 9]}
        for set_idx, tags in per_set.items():
            for tag in tags:
                sampler.observe(set_idx, tag * 4 + set_idx)
        assert sampler.footprint_number() == pytest.approx(2.75)

    def test_monitored_sets_evenly_spaced(self):
        sampler = FootprintSampler(llc_num_sets=512, num_monitor_sets=40)
        sets = sampler.monitored_sets
        assert len(sets) == 40
        assert sets == sorted(set(sets))
        gaps = [b - a for a, b in zip(sets, sets[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_unmonitored_sets_ignored(self):
        sampler = FootprintSampler(llc_num_sets=64, num_monitor_sets=4)
        unmonitored = next(
            s for s in range(64) if s not in set(sampler.monitored_sets)
        )
        sampler.observe(unmonitored, 12345)
        assert sampler.samples == 0
        assert sampler.footprint_number() == 0.0

    def test_compute_and_reset_slides_the_window(self):
        sampler = FootprintSampler(llc_num_sets=16, num_monitor_sets=16)
        for addr in range(64):
            sampler.observe(addr % 16, addr)
        first = sampler.compute_and_reset()
        assert first == pytest.approx(4.0)
        assert sampler.footprint_number() == 0.0
        assert sampler.intervals_completed == 1
        assert sampler.last_footprint == first

    def test_cyclic_working_set_measures_blocks_per_set(self):
        """A ws of k x num_sets blocks must measure Footprint-number ~k."""
        num_sets = 64
        sampler = FootprintSampler(llc_num_sets=num_sets, num_monitor_sets=16)
        k = 6
        for sweep in range(2):
            for addr in range(k * num_sets):
                sampler.observe(addr % num_sets, addr)
        assert sampler.footprint_number() == pytest.approx(k, abs=0.5)

    def test_storage_matches_paper_budget(self):
        """Section 3.3: 204 bits/set x 40 sets + 40 bits = 8200 bits/app."""
        sampler = FootprintSampler(llc_num_sets=16384, num_monitor_sets=40)
        assert sampler.storage_bits() == 8200

    def test_monitor_sets_clamped_to_llc(self):
        sampler = FootprintSampler(llc_num_sets=8, num_monitor_sets=40)
        assert sampler.num_monitor_sets == 8
