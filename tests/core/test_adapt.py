"""Unit and behaviour tests for the composed ADAPT policy."""


from repro.cache.cache import SetAssociativeCache
from repro.core.adapt import AdaptPolicy
from repro.core.priority import PriorityBucket


def make_adapt_cache(num_sets=64, ways=4, cores=2, monitor_sets=64, **kw):
    policy = AdaptPolicy(num_monitor_sets=monitor_sets, **kw)
    cache = SetAssociativeCache("llc", num_sets, ways, policy, num_cores=cores)
    return cache, policy


class TestClassificationLoop:
    def test_initial_bucket_is_low(self):
        _, policy = make_adapt_cache()
        assert all(b == PriorityBucket.LOW for b in policy.buckets)

    def test_thrashing_core_reaches_least(self):
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=2)
        # Core 0 sweeps 24 blocks/set (thrash); core 1 touches 2 blocks/set.
        for sweep in range(3):
            for addr in range(24 * 16):
                cache.access(0, addr)
            for addr in range(2 * 16):
                cache.access(1, (1 << 30) + addr)
        policy.end_interval()
        assert policy.bucket_of(0) == PriorityBucket.LEAST
        assert policy.bucket_of(1) == PriorityBucket.HIGH
        assert policy.footprints[0] >= 16
        assert policy.footprints[1] <= 3

    def test_least_core_bypasses(self):
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=1)
        for addr in range(24 * 16):
            cache.access(0, addr)
        policy.end_interval()
        before = sum(cache.stats.bypasses)
        for addr in range(24 * 16):
            cache.access(0, addr)
        assert sum(cache.stats.bypasses) > before

    def test_adapt_ins_never_bypasses(self):
        cache, policy = make_adapt_cache(
            num_sets=16, ways=4, cores=1, bypass_least=False
        )
        for sweep in range(2):
            for addr in range(24 * 16):
                cache.access(0, addr)
            policy.end_interval()
        assert sum(cache.stats.bypasses) == 0
        assert policy.bucket_of(0) == PriorityBucket.LEAST

    def test_sliding_window_declassifies(self):
        """An app that stops thrashing is re-promoted next interval."""
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=1)
        for addr in range(24 * 16):
            cache.access(0, addr)
        policy.end_interval()
        assert policy.bucket_of(0) == PriorityBucket.LEAST
        for sweep in range(20):
            for addr in range(2 * 16):
                cache.access(0, addr)
        policy.end_interval()
        assert policy.bucket_of(0) == PriorityBucket.HIGH

    def test_history_records_intervals(self):
        _, policy = make_adapt_cache(cores=3)
        policy.end_interval()
        policy.end_interval()
        assert all(len(h) == 2 for h in policy.history)


class TestInsertionBehaviour:
    def test_high_priority_fills_at_zero(self):
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=1)
        policy.buckets[0] = PriorityBucket.HIGH
        cache.access(0, 5)
        way = cache.addrs[5 & 15].index(5)
        assert policy.rrpv[5 & 15][way] == 0

    def test_writebacks_insert_distant_and_are_not_sampled(self):
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=1)
        samples_before = policy.samplers[0].samples
        cache.access(0, 7, is_write=True, is_demand=False)
        assert policy.samplers[0].samples == samples_before
        way = cache.addrs[7].index(7)
        assert policy.rrpv[7][way] == 3

    def test_demand_hits_are_sampled(self):
        cache, policy = make_adapt_cache(num_sets=16, ways=4, cores=1, monitor_sets=16)
        cache.access(0, 3)
        before = policy.samplers[0].samples
        cache.access(0, 3)  # hit on a monitored set still samples
        assert policy.samplers[0].samples == before + 1

    def test_no_dedicated_sets(self):
        """ADAPT uses no set-duelling: all sets follow the same rule."""
        cache, policy = make_adapt_cache(num_sets=64, ways=4, cores=1)
        policy.buckets[0] = PriorityBucket.HIGH
        fills = []
        for s in range(64):
            cache.access(0, (1 << 20) + s)
            way = cache.addrs[s].index((1 << 20) + s)
            fills.append(policy.rrpv[s][way])
        assert set(fills) == {0}


class TestNaming:
    def test_variant_names(self):
        assert AdaptPolicy(bypass_least=True).name == "adapt_bp32"
        assert AdaptPolicy(bypass_least=False).name == "adapt_ins"

    def test_describe_shows_buckets(self):
        _, policy = make_adapt_cache(cores=2)
        text = policy.describe()
        assert text.startswith("adapt_bp32[")

    def test_storage_bits_scales_with_cores(self):
        _, p2 = make_adapt_cache(cores=2, monitor_sets=40)
        _, p4 = make_adapt_cache(cores=4, monitor_sets=40)
        assert p4.storage_bits() == 2 * p2.storage_bits()
