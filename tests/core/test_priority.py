"""Unit tests for the insertion-priority predictor (Table 1, Section 3.2)."""

import pytest

from repro.core.priority import InsertionPriorityPredictor, PriorityBucket
from repro.policies.base import BYPASS


@pytest.fixture
def predictor():
    return InsertionPriorityPredictor(associativity=16)


class TestClassification:
    @pytest.mark.parametrize(
        "fpn,bucket",
        [
            (0.0, PriorityBucket.HIGH),
            (2.75, PriorityBucket.HIGH),
            (3.0, PriorityBucket.HIGH),      # [0,3] both included
            (3.01, PriorityBucket.MEDIUM),   # (3,12]
            (12.0, PriorityBucket.MEDIUM),
            (12.01, PriorityBucket.LOW),     # (12,16)
            (15.99, PriorityBucket.LOW),
            (16.0, PriorityBucket.LEAST),    # >= 16
            (32.0, PriorityBucket.LEAST),
        ],
    )
    def test_table1_boundaries(self, predictor, fpn, bucket):
        assert predictor.classify(fpn) == bucket

    def test_custom_ranges(self):
        p = InsertionPriorityPredictor(associativity=16, high_max=5, medium_max=10)
        assert p.classify(4.0) == PriorityBucket.HIGH
        assert p.classify(11.0) == PriorityBucket.LOW

    def test_larger_associativity_shifts_least(self):
        p = InsertionPriorityPredictor(associativity=32, medium_max=12)
        assert p.classify(20.0) == PriorityBucket.LOW
        assert p.classify(32.0) == PriorityBucket.LEAST

    def test_range_validation(self):
        with pytest.raises(ValueError):
            InsertionPriorityPredictor(associativity=16, high_max=12, medium_max=3)
        with pytest.raises(ValueError):
            InsertionPriorityPredictor(associativity=8, high_max=3, medium_max=12)


class TestInsertionValues:
    def test_high_always_zero(self, predictor):
        assert all(
            predictor.insertion_rrpv(PriorityBucket.HIGH) == 0 for _ in range(32)
        )

    def test_medium_one_in_sixteen_at_two(self, predictor):
        values = [predictor.insertion_rrpv(PriorityBucket.MEDIUM) for _ in range(64)]
        assert values.count(2) == 4
        assert values.count(1) == 60

    def test_low_one_in_sixteen_at_one(self, predictor):
        values = [predictor.insertion_rrpv(PriorityBucket.LOW) for _ in range(64)]
        assert values.count(1) == 4
        assert values.count(2) == 60

    def test_least_bypasses_31_of_32(self, predictor):
        values = [predictor.insertion_rrpv(PriorityBucket.LEAST) for _ in range(64)]
        assert sum(1 for v in values if v is BYPASS) == 62
        assert values.count(3) == 2

    def test_least_without_bypass_inserts_distant(self):
        p = InsertionPriorityPredictor(bypass_least=False)
        assert all(
            p.insertion_rrpv(PriorityBucket.LEAST) == 3 for _ in range(64)
        )

    def test_tickers_are_independent(self, predictor):
        # Consuming MEDIUM ticks must not perturb LOW's 1/16 phase.
        for _ in range(7):
            predictor.insertion_rrpv(PriorityBucket.MEDIUM)
        low_values = [predictor.insertion_rrpv(PriorityBucket.LOW) for _ in range(16)]
        assert low_values.count(1) == 1


class TestBucketLabels:
    def test_labels(self):
        assert PriorityBucket.HIGH.label == "HP"
        assert PriorityBucket.MEDIUM.label == "MP"
        assert PriorityBucket.LOW.label == "LP"
        assert PriorityBucket.LEAST.label == "LstP"

    def test_ordering(self):
        assert PriorityBucket.HIGH < PriorityBucket.LEAST
