"""Unit tests for the passive footprint monitor wrapper."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.monitor import MonitoredPolicy
from repro.policies.lru import LruPolicy
from repro.policies.rrip import SrripPolicy


def make_monitored(num_sets=16, ways=2, cores=1, configs=None):
    inner = SrripPolicy()
    policy = MonitoredPolicy(inner, configs or {"sampled": (num_sets, 16)})
    cache = SetAssociativeCache("t", num_sets, ways, policy, num_cores=cores)
    return cache, policy, inner


class TestDelegation:
    def test_behaviour_identical_to_inner(self):
        """The monitor must not change a single replacement decision."""
        plain = SetAssociativeCache("p", 16, 2, SrripPolicy(), num_cores=1)
        monitored, _, _ = make_monitored()
        stream = [(i * 7) % 128 for i in range(2000)]
        for addr in stream:
            plain.access(0, addr)
            monitored.access(0, addr)
        assert plain.stats.hits() == monitored.stats.hits()
        assert plain.addrs == monitored.addrs

    def test_interval_delegates_to_inner(self):
        cache, policy, inner = make_monitored()
        policy.end_interval()  # must not raise even with zero samples

    def test_wraps_lru_too(self):
        policy = MonitoredPolicy(LruPolicy())
        cache = SetAssociativeCache("t", 16, 2, policy, num_cores=1)
        cache.access(0, 1)
        assert cache.probe(1)


class TestMeasurement:
    def test_footprint_measured_per_interval(self):
        cache, policy, _ = make_monitored()
        for addr in range(64):  # 4 unique per set over 16 sets
            cache.access(0, addr)
        policy.end_interval()
        assert policy.history["sampled"][0] == [pytest.approx(4.0)]

    def test_mean_footprint_over_intervals(self):
        cache, policy, _ = make_monitored()
        for addr in range(32):
            cache.access(0, addr)
        policy.end_interval()
        for addr in range(64):
            cache.access(0, addr)
        policy.end_interval()
        assert policy.mean_footprint("sampled", 0) == pytest.approx(3.0)

    def test_mean_footprint_before_any_interval(self):
        cache, policy, _ = make_monitored()
        for addr in range(16):
            cache.access(0, addr)
        assert policy.mean_footprint("sampled", 0) == pytest.approx(1.0)

    def test_two_monitors_in_parallel(self):
        cache, policy, _ = make_monitored(
            configs={"all": (16, 32), "sampled": (4, 16)}
        )
        for addr in range(96):
            cache.access(0, addr)
        policy.end_interval()
        fpn_all = policy.history["all"][0][0]
        fpn_sampled = policy.history["sampled"][0][0]
        assert fpn_all == pytest.approx(6.0)
        assert fpn_sampled == pytest.approx(6.0, abs=1.0)
