"""Golden-master and differential tests for the simulation kernels.

Two independent guarantees, per registered policy:

* **Fixture equivalence** — the default (fast-path) kernel reproduces the
  committed JSON fixtures bit-for-bit: IPC inputs, per-core and per-cache
  stats, cache-content digests, timing-model counters, interval counts and
  RNG draw accounting.  Dict-ordering or hash-salt differences between
  Python versions cannot hide behind this comparison — every value is
  explicit data.
* **Kernel differential** — the fast path and the generic reference loop
  produce identical records when run back to back in this process, so a
  divergence is caught even before fixtures are regenerated.

If a *deliberate* behaviour change breaks these tests, regenerate with
``repro-experiments golden --regen`` and review the fixture diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cpu import fastpath
from repro.cpu.engine import MulticoreEngine
from repro.golden import (
    GOLDEN_WORKLOADS,
    case_name,
    compare_records,
    fixture_path,
    golden_config,
    iter_cases,
    run_case,
)
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload

FIXTURES = Path(__file__).parent / "fixtures"

CASES = list(iter_cases())
CASE_IDS = [case_name(policy, workload) for policy, workload, _ in CASES]


def _load(policy: str, workload: str) -> dict:
    path = fixture_path(FIXTURES, policy, workload)
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with "
        f"'repro-experiments golden --regen'"
    )
    with path.open(encoding="utf-8") as fh:
        return json.load(fh)


class TestFixtureCoverage:
    def test_every_case_has_a_fixture(self):
        missing = [
            fixture_path(FIXTURES, policy, workload).name
            for policy, workload, _ in CASES
            if not fixture_path(FIXTURES, policy, workload).is_file()
        ]
        assert not missing, f"missing fixtures: {missing}"

    def test_no_stale_fixtures(self):
        expected = {
            fixture_path(FIXTURES, policy, workload).name
            for policy, workload, _ in CASES
        }
        actual = {p.name for p in FIXTURES.glob("*.json")}
        assert actual == expected


@pytest.mark.parametrize(("policy", "workload", "benchmarks"), CASES, ids=CASE_IDS)
class TestGoldenMaster:
    def test_fast_kernel_matches_fixture(self, policy, workload, benchmarks):
        expected = _load(policy, workload)
        actual = run_case(policy, benchmarks)
        problems = compare_records(expected, actual)
        assert not problems, "\n".join(problems)


# The differential suite is the fixture check's independent twin: it needs
# no committed state, so it also protects fixture regeneration itself.
@pytest.mark.parametrize(("policy", "workload", "benchmarks"), CASES, ids=CASE_IDS)
class TestKernelDifferential:
    def test_fast_equals_generic(self, policy, workload, benchmarks):
        fast = run_case(policy, benchmarks)
        generic = run_case(policy, benchmarks, force_generic=True)
        problems = compare_records(fast, generic)
        assert not problems, "\n".join(problems)


class TestFastPathDispatch:
    """The engine must actually *use* the fused kernel where eligible."""

    def _engine(self, policy="tadrrip", **config_kwargs):
        config = golden_config()
        if config_kwargs:
            from dataclasses import replace

            config = replace(config, **config_kwargs)
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(
            Workload("g", GOLDEN_WORKLOADS["thrash-mix"]), config, 0
        )
        return hierarchy, MulticoreEngine(
            hierarchy, sources, quota_per_core=50, warmup_accesses=0
        )

    def test_standard_build_is_fast_eligible(self):
        _, engine = self._engine()
        assert fastpath.run_fast(engine) is not None

    def test_prefetch_configs_fall_back(self):
        _, engine = self._engine(l1_next_line_prefetch=True)
        assert fastpath.run_fast(engine) is None
        _, engine = self._engine(l2_stride_prefetch=True)
        assert fastpath.run_fast(engine) is None
        # ... and engine.run still completes on the generic loop.
        snaps = engine.run()
        assert all(s.accesses == 50 for s in snaps)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert not fastpath.fastpath_enabled()
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert fastpath.fastpath_enabled()

    def test_fast_ops_protocol_shapes(self):
        from repro.policies.registry import make_policy

        rrip = make_policy("srrip")
        rrip.bind(16, 4, 1)
        ops = rrip.fast_ops()
        assert (ops.kind, ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
            "rrip",
            True,
            True,
            True,
        )
        ship = make_policy("ship")
        ship.bind(16, 4, 1)
        ops = ship.fast_ops()
        # SHiP overrides on_hit/on_fill (training) but keeps the family victim.
        assert (ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
            False,
            True,
            False,
        )
        stack = make_policy("lru")
        stack.bind(16, 4, 1)
        assert stack.fast_ops().kind == "stack"
        # Wrappers opt out entirely: every hook stays a delegated call.
        assert make_policy("tadrrip+bp").fast_ops() is None
