"""Golden-master and differential tests for the simulation kernels.

Two independent guarantees, per registered policy (and, for one policy per
inline family, per prefetch-enabled platform):

* **Fixture equivalence** — the default (fast-path) kernel reproduces the
  committed JSON fixtures bit-for-bit: IPC inputs, per-core and per-cache
  stats, cache-content digests, timing-model counters, prefetch counters,
  interval counts and RNG draw accounting.  Dict-ordering or hash-salt
  differences between Python versions cannot hide behind this comparison —
  every value is explicit data.
* **Kernel differential** — the fast path and the generic reference loop
  produce identical records when run back to back in this process, so a
  divergence is caught even before fixtures are regenerated.

If a *deliberate* behaviour change breaks these tests, regenerate with
``repro-experiments golden --regen`` and review the fixture diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cpu import fastpath
from repro.cpu.engine import MulticoreEngine
from repro.golden import (
    GOLDEN_WORKLOADS,
    case_name,
    compare_records,
    fixture_path,
    golden_config,
    iter_cases,
    run_case,
)
from repro.sim.build import build_hierarchy, build_sources
from repro.trace.workloads import Workload

FIXTURES = Path(__file__).parent / "fixtures"

CASES = list(iter_cases())
CASE_IDS = [case_name(policy, workload, platform) for policy, workload, _, platform in CASES]


def _load(policy: str, workload: str, platform: str) -> dict:
    path = fixture_path(FIXTURES, policy, workload, platform)
    assert path.is_file(), (
        f"missing golden fixture {path}; regenerate with "
        f"'repro-experiments golden --regen'"
    )
    with path.open(encoding="utf-8") as fh:
        return json.load(fh)


class TestFixtureCoverage:
    def test_every_case_has_a_fixture(self):
        missing = [
            fixture_path(FIXTURES, policy, workload, platform).name
            for policy, workload, _, platform in CASES
            if not fixture_path(FIXTURES, policy, workload, platform).is_file()
        ]
        assert not missing, f"missing fixtures: {missing}"

    def test_no_stale_fixtures(self):
        expected = {
            fixture_path(FIXTURES, policy, workload, platform).name
            for policy, workload, _, platform in CASES
        }
        actual = {p.name for p in FIXTURES.glob("*.json")}
        assert actual == expected


@pytest.mark.parametrize(
    ("policy", "workload", "benchmarks", "platform"), CASES, ids=CASE_IDS
)
class TestGoldenMaster:
    def test_fast_kernel_matches_fixture(self, policy, workload, benchmarks, platform):
        expected = _load(policy, workload, platform)
        actual = run_case(policy, benchmarks, platform=platform)
        problems = compare_records(expected, actual)
        assert not problems, "\n".join(problems)


# The differential suite is the fixture check's independent twin: it needs
# no committed state, so it also protects fixture regeneration itself.
@pytest.mark.parametrize(
    ("policy", "workload", "benchmarks", "platform"), CASES, ids=CASE_IDS
)
class TestKernelDifferential:
    def test_fast_equals_generic(self, policy, workload, benchmarks, platform):
        fast = run_case(policy, benchmarks, platform=platform)
        generic = run_case(policy, benchmarks, platform=platform, force_generic=True)
        problems = compare_records(fast, generic)
        assert not problems, "\n".join(problems)

    def test_replay_equals_fast(self, policy, workload, benchmarks, platform):
        """Capture + LLC-filtered replay reproduces the fused kernel
        record for record — snapshots, every cache's stats and content
        digest, timing-model counters, trace positions and RNG state."""
        fast = run_case(policy, benchmarks, platform=platform)
        replayed = run_case(policy, benchmarks, platform=platform, kernel="replay")
        problems = compare_records(fast, replayed)
        assert not problems, "\n".join(problems)

    def test_replay_vec_equals_fast(self, policy, workload, benchmarks, platform):
        """Capture + array-native replay (vectorised clock walks, SoA
        event decode, batched SHiP signatures) reproduces the fused
        kernel record for record — closing the 4-way kernel matrix."""
        fast = run_case(policy, benchmarks, platform=platform)
        vec = run_case(policy, benchmarks, platform=platform, kernel="replay_vec")
        problems = compare_records(fast, vec)
        assert not problems, "\n".join(problems)


#: One policy per inline family, matching the prefetch-platform pinning
#: rationale: the replay event path is policy-independent beyond the hook
#: dispatch, so this subset covers every dispatch mode per core count.
SCALE_POLICIES = ("lru", "tadrrip", "ship", "eaf", "adapt_bp32")

#: Core-count scaling differentials: the golden fixtures pin two cores, so
#: the single-core shape (no co-runner interleaving) and the 16-core shape
#: (heap pressure, per-thread duelling/monitors) are pinned here, on both
#: the plain and the prefetch-everything platforms.
SCALE_PLATFORMS = [
    pytest.param(1, ("mcf",), "base", id="1core"),
    pytest.param(1, ("mcf",), "prefetch", id="1core_pf"),
    pytest.param(16, ("mcf", "libq", "gcc", "calc") * 4, "base", id="16core"),
    pytest.param(16, ("mcf", "libq", "gcc", "calc") * 4, "prefetch", id="16core_pf"),
]


@pytest.mark.parametrize("policy", SCALE_POLICIES)
@pytest.mark.parametrize(("cores", "benchmarks", "platform"), SCALE_PLATFORMS)
class TestKernelDifferentialScaling:
    @staticmethod
    def _config(cores):
        from dataclasses import replace

        config = golden_config().with_cores(cores)
        return replace(config, name=f"golden-{cores}core")

    def test_generic_fast_replay_agree(self, policy, cores, benchmarks, platform):
        config = self._config(cores)
        kwargs = {"platform": platform, "config": config}
        generic = run_case(policy, benchmarks, kernel="generic", **kwargs)
        fast = run_case(policy, benchmarks, kernel="fast", **kwargs)
        replayed = run_case(policy, benchmarks, kernel="replay", **kwargs)
        vec = run_case(policy, benchmarks, kernel="replay_vec", **kwargs)
        problems = (
            compare_records(generic, fast)
            + compare_records(fast, replayed)
            + compare_records(fast, vec)
        )
        assert not problems, "\n".join(problems)


class _NextAccessOnly:
    """Duck-typed source exposing only the per-access API (no next_chunk)."""

    def __init__(self, inner):
        self._inner = inner

    def next_access(self):
        return self._inner.next_access()

    def __getattr__(self, name):
        if name == "next_chunk":
            raise AttributeError(name)
        return getattr(self._inner, name)


class TestFastPathDispatch:
    """The engine must actually *use* the fused kernel where eligible."""

    def _engine(self, policy="tadrrip", **config_kwargs):
        config = golden_config()
        if config_kwargs:
            from dataclasses import replace

            config = replace(config, **config_kwargs)
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(
            Workload("g", GOLDEN_WORKLOADS["thrash-mix"]), config, 0
        )
        return hierarchy, MulticoreEngine(
            hierarchy, sources, quota_per_core=50, warmup_accesses=0
        )

    def test_standard_build_is_fast_eligible(self):
        _, engine = self._engine()
        assert fastpath.run_fast(engine) is not None

    def test_prefetch_configs_are_fast_eligible(self):
        hierarchy, engine = self._engine(l1_next_line_prefetch=True)
        assert fastpath.run_fast(engine) is not None
        assert hierarchy.prefetches_issued > 0
        hierarchy, engine = self._engine(l2_stride_prefetch=True)
        assert fastpath.run_fast(engine) is not None

    def test_duck_typed_sources_fall_back(self):
        _, engine = self._engine()
        engine.sources = [_NextAccessOnly(s) for s in engine.sources]
        assert fastpath.run_fast(engine) is None
        # ... and engine.run still completes on the generic loop.
        snaps = engine.run()
        assert all(s.accesses == 50 for s in snaps)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        assert not fastpath.fastpath_enabled()
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert fastpath.fastpath_enabled()

    def test_fast_ops_protocol_shapes(self):
        from repro.policies.registry import make_policy

        rrip = make_policy("srrip")
        rrip.bind(16, 4, 1)
        ops = rrip.fast_ops()
        assert (ops.kind, ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
            "rrip",
            True,
            True,
            True,
        )
        stack = make_policy("lru")
        stack.bind(16, 4, 1)
        assert stack.fast_ops().kind == "stack"
        # Wrappers opt out entirely: every hook stays a delegated call.
        assert make_policy("tadrrip+bp").fast_ops() is None


class TestNativeFastOps:
    """SHiP/EAF/ADAPT family hooks and duelling on_miss run inline, not
    through ``_CALL``-mode method dispatch (the PR 3 coverage criterion)."""

    @staticmethod
    def _bound(name, **kwargs):
        from repro.policies.registry import make_policy

        policy = make_policy(name, **kwargs)
        policy.bind(64, 4, 2)
        return policy

    def test_ship_kind_inlines_training(self):
        ops = self._bound("ship").fast_ops()
        assert ops.kind == "ship"
        assert (ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
            True,
            True,
            True,
        )
        assert ops.evict_inline
        assert ops.ship_sigs is not None and ops.ship_outcomes is not None
        assert ops.shct is not None and ops.shct_entries > 0
        # Plain SHiP salts nothing; the thread-aware ablation variant does.
        assert ops.sig_salt_shift is None
        salted = self._bound("ship", thread_aware_signatures=True).fast_ops()
        assert salted.sig_salt_shift == salted.sig_bits - 3

    def test_eaf_kind_inlines_filter_updates(self):
        ops = self._bound("eaf").fast_ops()
        assert ops.kind == "eaf"
        assert (ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
            True,
            True,
            True,
        )
        assert ops.evict_inline
        assert ops.eaf_filter is not None

    def test_adapt_kind_inlines_monitor_tap(self):
        for name in ("adapt_bp32", "adapt_ins"):
            ops = self._bound(name).fast_ops()
            assert ops.kind == "adapt"
            assert (ops.hit_inline, ops.victim_inline, ops.fill_inline) == (
                True,
                True,
                True,
            )
            assert ops.samplers is not None and len(ops.samplers) == 2

    def test_duelling_policies_inline_on_miss(self):
        for name in ("tadrrip", "drrip", "dip"):
            ops = self._bound(name).fast_ops()
            assert ops.miss_inline, name
            assert len(ops.duel_roles) == 2 and len(ops.duel_psels) == 2
        # Thread-aware duelling keeps per-thread PSELs; global duelling
        # shares one counter across cores.
        ta = self._bound("tadrrip").fast_ops()
        assert ta.duel_psels[0] is not ta.duel_psels[1]
        glob = self._bound("drrip").fast_ops()
        assert glob.duel_psels[0] is glob.duel_psels[1]

    def test_forced_brrip_variant_stays_inline(self):
        ops = self._bound("tadrrip", forced_brrip_cores=(0,)).fast_ops()
        assert ops.miss_inline

    def test_subclassed_hooks_fall_back_to_calls(self):
        from repro.policies.ship import ShipPolicy

        class CustomShip(ShipPolicy):
            def on_hit(self, set_idx, way, core_id, is_demand, block_addr=-1):
                super().on_hit(set_idx, way, core_id, is_demand, block_addr)

        custom = CustomShip()
        custom.bind(64, 4, 2)
        ops = custom.fast_ops()
        assert not ops.hit_inline  # overridden hook goes back to a call
        assert ops.fill_inline and ops.evict_inline  # the rest stay inline
