"""Array-native LLC replay kernel: the SoA tier of the replay family.

The scalar replay kernel (:mod:`repro.cpu.replay`) already simulates only
the shared LLC, but it still steps Python once per captured access to
advance each core's clock and once per event to decode addresses.  This
kernel keeps the *policy-visible* machinery bit-for-bit identical — the
LLC residency structures, dispatch-plan state (RRPV/stack rows, SHCT,
EAF, PSELs, monitors) and every hook call happen in the same order on the
same objects, because policies read them mid-run — and vectorises the
policy-*independent* planes of the replay:

* **batched event decode** — set index, LLC bank, DRAM row and DRAM bank
  for every captured event are decoded once per bundle into flat arrays
  (exact integer ops), cached on the bundle and shared by every policy in
  a sweep; group shapes (the common lone-demand fast path) are
  precomputed the same way;
* **vectorised clock walks** — the fused kernel's float clock recurrence
  has a serial dependence (each stall term is rounded against the current
  clock), so a plain prefix sum diverges bitwise.  The walker instead
  *speculates* the stall sequence, replays it through one interleaved
  ``np.cumsum`` (sequential accumulation — float-op order matches the
  scalar loop exactly) and *verifies* the speculation elementwise,
  keeping the verified prefix and re-speculating the tail.  A converged
  trajectory is exact by induction; non-convergence (rare) falls back to
  the scalar walk, so the result is always bit-identical;
* **batched SHiP signatures** — the per-fill PC fold is a fixed-point
  xor-fold, computed for all events at once per ``(policy geometry,
  core)`` and cached on the bundle;
* an optional **numba backend**: when numba is importable, the clock and
  cut walks run as tiny ``@njit`` kernels (strict IEEE float semantics —
  same bits as the Python loop) instead of the speculate-and-verify
  walker.  Pure numpy is the always-available fallback.

Selection mirrors the kill-switch family (documented order, machine-
checked in ``tests/sim/test_kernel_selection.py``):

1. ``REPRO_NO_FASTPATH`` — generic reference loop, no replay of any kind;
2. else ``REPRO_NO_REPLAY`` — fused kernel, no replay of any kind;
3. else ``REPRO_REPLAY_VEC`` set (non-empty, not ``0``) — this kernel for
   replay-eligible runs.  The value selects the backend: ``numpy`` forces
   the fallback, ``numba`` prefers the JIT (falling back to numpy when
   numba is not installed), anything else (``1``) auto-detects;
4. else — the scalar replay kernel.

``REPRO_NO_SHARED_TRACES`` is orthogonal: it changes how trace buffers
are materialised, never which kernel runs.

Everything below the clock/decode planes mirrors
:mod:`repro.cpu.replay` statement for statement; the 4-way golden
differential suite machine-checks the equivalence on every fixture.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from heapq import heappop, heappush

import numpy as np

from repro.cpu import capture as cap
from repro.cpu import replay as _scalar
from repro.cpu.core import CoreSnapshot
from repro.cpu.fastpath import (
    _ADAPT,
    _CALL,
    _EV_CALL,
    _EV_EAF,
    _EV_SHIP,
    _MASK64,
    _RRIP,
    _SHIP,
    _STACK,
    resolve_llc_dispatch,
)
from repro.policies.base import BYPASS

EV_WB0, EV_WB1, EV_ND = cap.EV_WB0, cap.EV_WB1, cap.EV_ND
EV_DEMAND, EV_BASELINE, EV_SNAPSHOT = cap.EV_DEMAND, cap.EV_BASELINE, cap.EV_SNAPSHOT
STEP_L2HIT, STEP_LLC = cap.STEP_L2HIT, cap.STEP_LLC

#: Minimum inter-event segment length worth a vectorised walk (below this
#: the numpy fixed overhead loses to the scalar loop).
_VEC_MIN = 48

#: Steps per chunk for the vectorised cut walk (the stop index is unknown
#: in advance, so the trajectory is grown chunk by chunk).
_CUT_CHUNK = 4096

#: Speculation passes before the walker gives up on a segment.  Each pass
#: extends the verified prefix by at least one step, and measured
#: convergence is 1-3 passes for almost every segment.
_MAX_PASSES = 6

#: Consecutive non-converged segments before a core's walker self-disables
#: for the rest of the run (pathological clock shapes stay scalar-speed
#: instead of paying failed speculation passes forever).
_FAIL_BUDGET = 3


def replay_vec_requested() -> bool:
    """Is ``REPRO_REPLAY_VEC`` set (non-empty and not ``0``)?"""
    return os.environ.get("REPRO_REPLAY_VEC", "").strip().lower() not in ("", "0")


def replay_vec_enabled() -> bool:
    """Requested *and* not overridden by a stronger kill switch."""
    return replay_vec_requested() and _scalar.replay_enabled()


# -- the optional numba backend ------------------------------------------------

#: ``"unknown"`` until the first resolution, then ``"ready"``/``"absent"``.
_NUMBA_STATE = "unknown"
_NJIT_SEEK = None
_NJIT_CUT = None


def _numba_walkers():
    """The compiled ``(seek, cut)`` walkers, or ``None`` without numba."""
    global _NUMBA_STATE, _NJIT_SEEK, _NJIT_CUT
    if _NUMBA_STATE == "unknown":
        try:
            from numba import njit
        except ImportError:
            _NUMBA_STATE = "absent"
        else:
            # The exact scalar recurrences, compiled.  No fastmath: LLVM's
            # default float add/mul/compare are strict IEEE-754, so these
            # produce the same bits as the Python loops they mirror.
            @njit(cache=True)
            def _seek(steps, i, e, t, comp, imlp, l1_latency, l2_latency):
                while i < e:
                    if steps[i]:
                        t_l2 = t + l1_latency
                        done = t_l2 + l2_latency
                        latency = done - t
                        stall = latency - l1_latency
                        if stall < 0.0:
                            stall = 0.0
                        t = t + comp + stall * imlp
                    else:
                        t = t + comp
                    i += 1
                return t

            @njit(cache=True)
            def _cut(steps, i, n, t, t_f, tie_lt, comp, imlp, l1_latency, l2_latency):
                while t < t_f or (t == t_f and tie_lt):
                    if i >= n:
                        return i, t, False
                    if steps[i]:
                        t_l2 = t + l1_latency
                        done = t_l2 + l2_latency
                        latency = done - t
                        stall = latency - l1_latency
                        if stall < 0.0:
                            stall = 0.0
                        t = t + comp + stall * imlp
                    else:
                        t = t + comp
                    i += 1
                return i, t, True

            _NJIT_SEEK, _NJIT_CUT = _seek, _cut
            _NUMBA_STATE = "ready"
    if _NUMBA_STATE == "ready":
        return _NJIT_SEEK, _NJIT_CUT
    return None


def vec_backend() -> str:
    """The backend this process would run: ``"numba"`` or ``"numpy"``.

    ``REPRO_REPLAY_VEC=numpy`` forces the fallback; any other setting
    (including ``numba``) uses the JIT exactly when numba is importable.
    """
    if os.environ.get("REPRO_REPLAY_VEC", "").strip().lower() == "numpy":
        return "numpy"
    return "numba" if _numba_walkers() is not None else "numpy"


def warm_backend() -> str:
    """Resolve the backend and trigger JIT compilation; returns its name.

    The parallel runner calls this during the capture phase so the numba
    walkers compile while the capture job is the critical path, not during
    the first swept replay.
    """
    backend = vec_backend()
    if backend == "numba":
        seek, cut = _numba_walkers()
        dummy = np.zeros(2, dtype=np.uint8)
        seek(dummy, 0, 2, 0.0, 1.0, 0.5, 3.0, 14.0)
        cut(dummy, 0, 2, 0.0, -1.0, True, 1.0, 0.5, 3.0, 14.0)
    return backend


# -- the speculate-and-verify clock walker -------------------------------------


def _trajectory(codes, t0, comp, imlp, l1_latency, l2_latency):
    """Exact clock trajectory over *codes*, or ``None`` if not converged.

    Returns the ``len(codes) + 1`` cumulative clock values ``T[0] == t0``
    .. ``T[m]`` (the clock after the last step), bit-identical to the
    scalar recurrence.  The stall sequence is speculated, replayed through
    one interleaved sequential ``np.cumsum`` and verified elementwise
    against a recomputation from the resulting trajectory; the verified
    prefix is kept and the tail re-speculated.  Convergence means every
    stall term was computed from its own exact clock value, which makes
    the whole trajectory exact by induction.
    """
    m = codes.shape[0]
    is2 = codes != 0
    lat0 = ((t0 + l1_latency) + l2_latency) - t0
    s0 = lat0 - l1_latency
    if s0 < 0.0:
        s0 = 0.0
    q = np.where(is2, s0 * imlp, 0.0)
    inc = np.empty(2 * m + 1)
    inc[0] = t0
    inc[1::2] = comp
    verified = 0
    for _ in range(_MAX_PASSES):
        inc[2::2] = q
        c = np.cumsum(inc)
        tk = c[0 : 2 * m : 2]
        lat = ((tk + l1_latency) + l2_latency) - tk
        stall = lat - l1_latency
        np.maximum(stall, 0.0, out=stall)
        qt = np.where(is2, stall * imlp, 0.0)
        bad = np.nonzero(qt[verified:] != q[verified:])[0]
        if bad.size == 0:
            # An L1-hit step adds ``+ 0.0`` on top of ``t + comp`` — a
            # bitwise no-op for the non-negative clocks here — so the
            # interleaved cumsum reproduces both step shapes exactly.
            return c[0::2]
        verified += int(bad[0])
        q[verified:] = qt[verified:]
    return None


# -- cached SoA decode planes --------------------------------------------------


def _steps_np(tape) -> np.ndarray:
    """A writable snapshot of the step stream (the live bytearray must stay
    export-free so ``extend_tape`` can keep appending to it)."""
    arr = np.empty(len(tape.steps), dtype=np.uint8)
    arr[:] = tape.steps
    return arr


def _build_core_plan(tape, consts) -> dict:
    """Decode one tape's events into flat arrays (policy-independent)."""
    llc_mask, bank_mask, dram_mask, dram_bpr = consts
    addr = np.asarray(tape.ev_addr, dtype=np.int64)
    step = np.asarray(tape.ev_step, dtype=np.int64)
    kind = np.asarray(tape.ev_kind, dtype=np.uint8)
    drow = addr // dram_bpr
    lone = kind == EV_DEMAND
    if lone.size:
        same_next = np.empty(lone.size, dtype=bool)
        same_next[-1] = False
        same_next[:-1] = step[1:] == step[:-1]
        lone &= ~same_next
    return {
        "n_steps": len(tape.steps),
        "n_ev": len(tape.ev_step),
        "steps_np": _steps_np(tape),
        # Native-int lists: the serial event dispatch indexes these one at
        # a time, and numpy scalars must not leak into policy state.
        "ev_set": (addr & llc_mask).tolist(),
        "ev_bank": ((addr & bank_mask) ^ ((addr >> 8) & bank_mask)).tolist(),
        "ev_drow": drow.tolist(),
        "ev_dbank": ((drow & dram_mask) ^ ((drow >> 8) & dram_mask)).tolist(),
        "lone": lone.tolist(),
    }


#: Worker-process-local decode-plane cache, keyed by the owning artifact's
#: content address (plus the decode constants).  A sweep's policies land on
#: the same worker under the supervisor's sticky affinity routing, so the
#: expensive SoA event decode happens once per (worker, artifact) instead
#: of once per job — ``plane_hits``/``plane_misses`` surface in
#: ``runner.stats``.  Bounded LRU (``REPRO_PLANE_CACHE``, default 8): a
#: plane set is a few flat arrays per core, but a long-lived worker crossing
#: many artifacts must not accumulate them unboundedly.
_PLANE_CACHE: OrderedDict[tuple, dict] = OrderedDict()

#: Monotonic per-process counters; the parallel runner ships per-task
#: deltas back over the wire and aggregates them into ``runner.stats``.
PLANE_STATS = {"plane_hits": 0, "plane_misses": 0}


def plane_cache_limit() -> int:
    """``REPRO_PLANE_CACHE``: decoded plane sets kept per process (>= 1)."""
    try:
        value = int(os.environ.get("REPRO_PLANE_CACHE", ""))
    except ValueError:
        value = 0
    return value if value > 0 else 8


def _bundle_cache(bundle, consts) -> dict:
    """The bundle's vec-plane cache, (re)initialised for *consts*.

    Content-keyed bundles (loaded from a replay artifact) resolve through
    the process-wide LRU, so the planes survive the bundle objects and are
    shared across jobs; an anonymous in-process bundle keeps its cache on
    the instance as before.
    """
    content = getattr(bundle, "content_key", None)
    if content is None:
        cache = bundle.vec_cache
        if cache is None or cache["consts"] != consts:
            cache = {"consts": consts, "cores": {}, "sigs": {}}
            bundle.vec_cache = cache
        return cache
    key = (content, consts)
    cache = _PLANE_CACHE.get(key)
    if cache is None:
        PLANE_STATS["plane_misses"] += 1
        cache = {"consts": consts, "cores": {}, "sigs": {}}
        _PLANE_CACHE[key] = cache
        limit = plane_cache_limit()
        while len(_PLANE_CACHE) > limit:
            _PLANE_CACHE.popitem(last=False)
    else:
        PLANE_STATS["plane_hits"] += 1
        _PLANE_CACHE.move_to_end(key)
    bundle.vec_cache = cache
    return cache


def _core_plan(cache, tape, cid) -> dict:
    plan = cache["cores"].get(cid)
    if (
        plan is None
        or plan["n_steps"] != len(tape.steps)
        or plan["n_ev"] != len(tape.ev_step)
    ):
        plan = _build_core_plan(tape, cache["consts"])
        cache["cores"][cid] = plan
    return plan


def _sig_plan(cache, tape, cid, salt, sig_bits, sig_mask, sig_entries) -> list:
    """Pre-folded SHiP signatures for every event of one core.

    The scalar fold loops ``while value``; folding a fixed number of times
    past that point only xors and shifts zeros, so folding until *every*
    lane is exhausted is exact for each lane.
    """
    key = (cid, salt, sig_bits, sig_mask, sig_entries, len(tape.ev_step))
    sigs = cache["sigs"].get(key)
    if sigs is None:
        value = np.asarray(tape.ev_pc, dtype=np.int64)
        if salt is not None:
            value = value ^ (cid << salt)
        else:
            value = value.copy()
        folded = np.zeros_like(value)
        while value.any():
            folded ^= value & sig_mask
            value >>= sig_bits
        sigs = (folded % sig_entries).tolist()
        cache["sigs"][key] = sigs
    return sigs


# -- the kernel ----------------------------------------------------------------


def run_replay_vec(engine, bundle, finalize: bool = True) -> list | None:
    """Run *engine* to completion by replaying a capture bundle (SoA tier).

    Same contract as :func:`repro.cpu.replay.run_replay` — returns the
    per-core snapshots, or ``None`` when the engine does not match the
    bundle (the caller falls back to the scalar replay / fused / generic
    kernels) — and bit-identical results, machine-checked by the golden
    differential suite.
    """
    if not _scalar._eligible(engine, bundle):
        return None

    h = engine.hierarchy
    llc = h.llc
    cores = engine.cores
    n = h.num_cores
    tapes = bundle.tapes
    meta = bundle.meta
    warmup = meta["warmup"]
    finish_count = meta["quota"] + warmup

    # -- LLC state (identical bindings to the scalar replay kernel) ---------
    llc_mask = llc.set_mask
    llc_ways = llc.ways
    llc_lookup, llc_valid = cap._residency(llc)
    llc_addrs = llc.addrs
    llc_dirty = llc.dirty
    llc_owner = llc.owner
    llc_reused = llc.reused
    llc_occ = llc.occupancy
    s3 = llc.stats
    llc_dh, llc_dm = s3.demand_hits, s3.demand_misses
    llc_oh, llc_om = s3.other_hits, s3.other_misses
    llc_by, llc_wbarr = s3.bypasses, s3.writeback_arrivals
    llc_ev, llc_dev, llc_fl = s3.evictions, s3.dirty_evictions, s3.fills

    policy = llc.policy
    d = resolve_llc_dispatch(policy)
    call_on_miss = d.call_on_miss
    hit_mode = d.hit_mode
    victim_mode = d.victim_mode
    fill_mode = d.fill_mode
    evict_mode = d.evict_mode
    rows3 = d.rows
    nmru3, nlru3 = d.next_mru, d.next_lru
    max3 = d.max_code
    sig3, out3, shct3 = d.ship_sigs, d.ship_outcomes, d.shct
    shct_max3 = d.shct_max
    sig_entries3 = d.shct_entries
    sig_bits3 = d.sig_bits
    sig_mask3 = d.sig_mask
    salt3 = d.sig_salt_shift
    eaf3 = d.eaf
    eaf_mults3 = d.eaf_mults
    eaf_size3, eaf_cap3 = d.eaf_size, d.eaf_capacity
    samplers3 = d.samplers
    duel_roles3, duel_psels3 = d.duel_roles, d.duel_psels
    p_on_hit = policy.on_hit
    p_on_miss = policy.on_miss
    p_on_evict = policy.on_evict
    p_on_fill = policy.on_fill
    p_decide = policy.decide_insertion
    p_victim = policy.victim
    end_interval = policy.end_interval

    # -- timing models (identical bindings to the scalar replay kernel) -----
    l1_latency = h.l1_latency
    l2_latency = h.l2_latency
    banks = h.llc_banks
    bank_mask = banks.num_banks - 1
    bank_free = banks._free_at
    bank_occ = banks.occupancy
    bank_lat = banks.latency
    dram = h.dram
    dram_mask = dram.num_banks - 1
    dram_bpr = dram.blocks_per_row
    dram_open = dram._open_row
    dram_busy = dram._busy_until
    dram_hit = dram.row_hit_cycles
    dram_conf = dram.row_conflict_cycles
    dram_occ = dram.bank_occupancy
    arb = h.arbiter
    arb_virtual = arb._virtual
    arb_window = arb.window
    arb_cost = arb.service_cycles * arb.num_cores
    mshr = h.llc_mshr
    msh_heap = mshr._completions if mshr is not None else None
    msh_by = mshr._by_block if mshr is not None else None
    msh_entries = mshr.entries if mshr is not None else 0
    llc_wb = h.llc_wb_buffer

    dram_reads = dram.reads
    dram_writes = dram.writes
    dram_rowhits = dram.row_hits
    dram_rowconf = dram.row_conflicts
    bank_accs = banks.accesses
    bank_confs = banks.conflicts
    arb_reqs = arb.requests
    arb_throt = arb.throttled
    mshr_merged = mshr.merged if mshr is not None else 0
    mshr_stalls = mshr.stalls if mshr is not None else 0
    msh_get = msh_by.get if msh_by is not None else None
    llc_get = llc_lookup.get
    llc_sets = llc.num_sets

    if llc_wb is not None:
        wb3_heap = llc_wb._retires
        wb3_entries = llc_wb.entries
        wb3_retire_at = llc_wb.retire_at
        wb3_drain = llc_wb.drain_cycles
        wb3_stalls = llc_wb.stalls
        wb3_admitted = llc_wb.admitted
        wb3_last = llc_wb._last_retire
    else:
        wb3_stalls = wb3_admitted = 0
        wb3_last = 0.0

    def wb_to_dram(addr, now):
        nonlocal wb3_stalls, wb3_admitted, wb3_last
        nonlocal dram_writes, dram_rowhits, dram_rowconf
        start = now
        if llc_wb is not None:
            while wb3_heap and wb3_heap[0] <= start:
                heappop(wb3_heap)
            if len(wb3_heap) >= wb3_entries:
                start = wb3_heap[0]
                wb3_stalls += 1
                while wb3_heap and wb3_heap[0] <= start:
                    heappop(wb3_heap)
            if len(wb3_heap) >= wb3_retire_at:
                retire = (wb3_last if wb3_last > start else start) + wb3_drain
            else:
                retire = start + wb3_drain
            wb3_last = retire
            heappush(wb3_heap, retire)
            wb3_admitted += 1
        dram_writes += 1
        dram_row = addr // dram_bpr
        bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
        bstart = dram_busy[bank]
        if bstart < start:
            bstart = start
        if dram_open[bank] == dram_row:
            dram_rowhits += 1
        else:
            dram_rowconf += 1
            dram_open[bank] = dram_row
        dram_busy[bank] = bstart + dram_occ

    # -- engine bookkeeping --------------------------------------------------
    interval = engine.interval_misses // engine.first_interval_divisor
    full_interval = engine.interval_misses
    no_warmup = warmup == 0
    baselines = engine._baselines
    remaining = n
    if no_warmup:
        for core in cores:
            engine._record_baseline(core, 0.0)
    miss_clock = engine._miss_clock
    intervals_completed = engine.intervals_completed

    resume_idx = [0] * n
    resume_t = [0.0] * n
    cut = [0.0, -1]  # (t_F, cid_F): the run-ending access in heap order
    final_next_t = [0.0]
    ev_wb0, ev_wb1, ev_nd = EV_WB0, EV_WB1, EV_ND
    ev_demand, ev_baseline = EV_DEMAND, EV_BASELINE
    step_l2hit, step_llc = STEP_L2HIT, STEP_LLC

    # -- vectorised planes ---------------------------------------------------
    consts = (llc_mask, bank_mask, dram_mask, dram_bpr)
    vcache = _bundle_cache(bundle, consts)
    walkers = None if vec_backend() == "numpy" else _numba_walkers()
    if walkers is not None:
        njit_seek, njit_cut = walkers
    trajectory = _trajectory

    # -- per-core compiled closures -----------------------------------------

    def compile_core(cid):
        tape = tapes[cid]
        steps = tape.steps  # bytearray; grows in place on live extension
        ev_step = tape.ev_step
        ev_kind = tape.ev_kind
        ev_addr = tape.ev_addr
        ev_pc = tape.ev_pc
        core = cores[cid]
        comp_c = core.compute_cycles_per_access
        imlp_c = core.inverse_mlp
        base = baselines[cid]

        plan = _core_plan(vcache, tape, cid)
        steps_np = plan["steps_np"]
        ev_set = plan["ev_set"]
        ev_bank = plan["ev_bank"]
        ev_drow = plan["ev_drow"]
        ev_dbank = plan["ev_dbank"]
        lone = plan["lone"]
        if fill_mode == _SHIP:
            ev_sig = _sig_plan(
                vcache, tape, cid, salt3, sig_bits3, sig_mask3, sig_entries3
            )
        else:
            ev_sig = None
        fail_budget = _FAIL_BUDGET

        def refresh_plan():
            """Rebuild the decode planes after a live tape extension."""
            nonlocal steps_np, ev_set, ev_bank, ev_drow, ev_dbank, lone, ev_sig
            fresh = _core_plan(vcache, tape, cid)
            steps_np = fresh["steps_np"]
            ev_set = fresh["ev_set"]
            ev_bank = fresh["ev_bank"]
            ev_drow = fresh["ev_drow"]
            ev_dbank = fresh["ev_dbank"]
            lone = fresh["lone"]
            if ev_sig is not None:
                ev_sig = _sig_plan(
                    vcache, tape, cid, salt3, sig_bits3, sig_mask3, sig_entries3
                )

        if samplers3 is not None:
            smp3 = samplers3[cid]
            mon_get = smp3._index_of.get
            mon_arrays = smp3._arrays
        else:
            smp3 = mon_get = mon_arrays = None
        if duel_psels3 is not None:
            d_psel = duel_psels3[cid]
            d_get = duel_roles3[cid].get
            d_max = d_psel.max_value
        else:
            d_psel = d_get = None
            d_max = 0
        wb2 = h.l2_wb_buffers[cid] if h.l2_wb_buffers is not None else None
        if wb2 is not None:
            wb2_heap = wb2._retires
            wb2_entries = wb2.entries
            wb2_retire_at = wb2.retire_at
            wb2_drain = wb2.drain_cycles
            wb2_stalls = wb2.stalls
            wb2_admitted = wb2.admitted
            wb2_last = wb2._last_retire
        else:
            wb2_stalls = wb2_admitted = 0
            wb2_last = 0.0

        def sync_core():
            if wb2 is not None:
                wb2.stalls = wb2_stalls
                wb2.admitted = wb2_admitted
                wb2._last_retire = wb2_last

        def llc_fill(addr, s, pc, decision, is_write, is_demand, sig):
            """Identical to the scalar replay kernel's ``llc_fill`` (the
            SHiP signature arrives pre-folded)."""
            victim_addr = -1
            victim_dirty = False
            row = llc_addrs[s]
            if llc_valid[s] < llc_ways:
                way = row.index(-1)
                llc_valid[s] += 1
            else:
                if victim_mode == _RRIP:
                    rrow = rows3[s]
                    current_max = max(rrow)
                    if current_max < max3:
                        delta = max3 - current_max
                        rrow[:] = [v + delta for v in rrow]
                    way = rrow.index(max3)
                elif victim_mode == _STACK:
                    srow = rows3[s]
                    way = srow.index(min(srow))
                else:
                    way = p_victim(s, cid)
                victim_addr = row[way]
                victim_dirty = llc_dirty[s][way]
                victim_owner = llc_owner[s][way]
                if evict_mode == _EV_SHIP:
                    if not out3[s][way]:
                        sg = sig3[s][way]
                        v = shct3[sg]
                        if v > 0:
                            shct3[sg] = v - 1
                elif evict_mode == _EV_EAF:
                    mixed = (victim_addr ^ (victim_addr >> 17)) + 0x9E37
                    bits = eaf3._bits
                    for mult in eaf_mults3:
                        bits[(((mixed * mult) & _MASK64) >> 31) % eaf_size3] = 1
                    ins = eaf3.inserted + 1
                    eaf3.inserted = ins
                    if ins >= eaf_cap3:
                        eaf3.clear()
                elif evict_mode == _EV_CALL:
                    p_on_evict(
                        s,
                        way,
                        victim_owner,
                        victim_addr,
                        llc_reused[s][way],
                    )
                llc_ev[victim_owner] += 1
                if victim_dirty:
                    llc_dev[victim_owner] += 1
                llc_occ[victim_owner] -= 1
                del llc_lookup[victim_addr]
            row[way] = addr
            llc_lookup[addr] = way
            llc_dirty[s][way] = is_write
            llc_owner[s][way] = cid
            llc_reused[s][way] = False
            llc_occ[cid] += 1
            llc_fl[cid] += 1
            if fill_mode == _RRIP:
                rows3[s][way] = decision
            elif fill_mode == _SHIP:
                rows3[s][way] = decision
                sig3[s][way] = sig
                out3[s][way] = not is_demand
            elif fill_mode == _STACK:
                if decision == 1:  # MRU_INSERT
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    st = nlru3[s]
                    rows3[s][way] = st
                    nlru3[s] = st - 1
            else:
                p_on_fill(s, way, decision, cid, pc, addr, is_demand)
            return victim_addr, victim_dirty

        def wb_to_llc(addr, now, s, bank):
            """Identical to the scalar replay kernel's ``wb_to_llc`` (set
            index and LLC bank arrive pre-decoded)."""
            nonlocal wb2_stalls, wb2_admitted, wb2_last, bank_accs, bank_confs
            start = now
            if wb2 is not None:
                while wb2_heap and wb2_heap[0] <= start:
                    heappop(wb2_heap)
                if len(wb2_heap) >= wb2_entries:
                    start = wb2_heap[0]
                    wb2_stalls += 1
                    while wb2_heap and wb2_heap[0] <= start:
                        heappop(wb2_heap)
                if len(wb2_heap) >= wb2_retire_at:
                    retire = (wb2_last if wb2_last > start else start) + wb2_drain
                else:
                    retire = start + wb2_drain
                wb2_last = retire
                heappush(wb2_heap, retire)
                wb2_admitted += 1
            way = llc_get(addr, -1)
            llc_wbarr[cid] += 1
            bypassed = False
            victim_addr = -1
            victim_dirty = False
            if way >= 0:
                llc_oh[cid] += 1
                llc_dirty[s][way] = True
                if hit_mode == _CALL:
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, 0, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                    bypassed = True
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, 0, decision, True, False, 0
                    )
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            if bypassed:
                wb_to_dram(addr, start)
            elif victim_dirty:
                wb_to_dram(victim_addr, start)

        def nondemand_llc(addr, pc, now, s, bank, drow, dbank, sig):
            """The scalar kernel's ``nondemand_llc`` with pre-decoded
            set/bank/DRAM-row/DRAM-bank and pre-folded signature."""
            nonlocal arb_reqs, arb_throt, bank_accs, bank_confs
            nonlocal mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            t_l2 = now + l1_latency
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base_v = vclock if vclock > start else start
            arb_virtual[cid] = base_v + arb_cost

            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_oh[cid] += 1
                if hit_mode == _CALL:
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, pc, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, False, sig
                    )
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dstart = dram_busy[dbank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[dbank] == drow:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[dbank] = drow
            dram_busy[dbank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done

        def demand_llc(addr, pc, now, s, bank, drow, dbank, sig):
            """The scalar kernel's ``demand_llc`` with pre-decoded
            set/bank/DRAM-row/DRAM-bank and pre-folded signature.

            Returns ``(completion_time, llc_demand_miss)``.
            """
            nonlocal arb_reqs, arb_throt, bank_accs, bank_confs
            nonlocal mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            t_l2 = now + l1_latency
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base_v = vclock if vclock > start else start
            arb_virtual[cid] = base_v + arb_cost

            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_dh[cid] += 1
                llc_reused[s][way] = True
                if hit_mode == _RRIP:
                    rows3[s][way] = 0
                elif hit_mode == _SHIP:
                    rows3[s][way] = 0
                    out3[s][way] = True
                    sg = sig3[s][way]
                    v = shct3[sg]
                    if v < shct_max3:
                        shct3[sg] = v + 1
                elif hit_mode == _ADAPT:
                    rows3[s][way] = 0
                    ai = mon_get(s)
                    if ai is not None:
                        smp3.samples += 1
                        mon_arrays[ai].observe(addr // llc_sets)
                elif hit_mode == _STACK:
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    p_on_hit(s, way, cid, True, addr)
            else:
                llc_dm[cid] += 1
                if d_psel is not None:
                    role = d_get(s, -1)
                    if role == 0:
                        v = d_psel.value + 1
                        if v <= d_max:
                            d_psel.value = v
                    elif role == 1:
                        v = d_psel.value - 1
                        if v >= 0:
                            d_psel.value = v
                elif call_on_miss:
                    p_on_miss(s, cid, True)
                decision = p_decide(s, cid, pc, addr, True)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, True, sig
                    )
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return t_bank, False
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return done, True
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dstart = dram_busy[dbank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[dbank] == drow:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[dbank] = drow
            dram_busy[dbank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done
            return done, True

        # -- the clock + event cursor ----------------------------------------

        idx = 0
        t_clock = 0.0
        p = 0

        def seek_event():
            """Walk the clock to the next event-bearing access.

            Same contract as the scalar kernel's ``seek_event``; long
            inter-event segments run through the vectorised walker (numba
            when active, speculate-and-verify numpy otherwise), short ones
            and non-converged segments through the scalar recurrence.
            """
            nonlocal idx, t_clock, fail_budget
            if p >= len(ev_step):
                cap.extend_tape(bundle, cid, meta["chunk"])
                refresh_plan()
            e = ev_step[p] if p < len(ev_step) else len(steps)
            i = idx
            t = t_clock
            if walkers is not None:
                if e > i:
                    t = njit_seek(
                        steps_np, i, e, t, comp_c, imlp_c, l1_latency, l2_latency
                    )
                idx = e
                t_clock = t
                return t
            if e - i >= _VEC_MIN and fail_budget > 0:
                traj = trajectory(
                    steps_np[i:e], t, comp_c, imlp_c, l1_latency, l2_latency
                )
                if traj is not None:
                    t = float(traj[e - i])
                    idx = e
                    t_clock = t
                    return t
                fail_budget -= 1
            while i < e:
                if steps[i]:
                    t_l2 = t + l1_latency
                    done = t_l2 + l2_latency
                    latency = done - t
                    stall = latency - l1_latency
                    if stall < 0.0:
                        stall = 0.0
                    t = t + comp_c + stall * imlp_c
                else:
                    t = t + comp_c
                i += 1
            idx = i
            t_clock = t
            return t

        def process(t):
            """Process the pending event group; returns the next event time
            (or ``None`` once the whole run has completed)."""
            nonlocal miss_clock, intervals_completed, interval, remaining
            nonlocal idx, t_clock, p
            if p >= len(ev_step):
                # Provisional wake-up: no event generated yet — extend by
                # another chunk and reschedule.
                return seek_event()
            e = ev_step[p]
            code = steps[e]
            saw_baseline = False
            saw_snapshot = False
            n_ev = len(ev_step)
            p1 = p + 1
            if lone[p]:
                # Overwhelmingly common group shape: one demand fetch.
                done, demand_missed = demand_llc(
                    ev_addr[p],
                    ev_pc[p],
                    t,
                    ev_set[p],
                    ev_bank[p],
                    ev_drow[p],
                    ev_dbank[p],
                    ev_sig[p] if ev_sig is not None else 0,
                )
                p = p1
            else:
                done = 0.0
                demand_missed = False
                while p < n_ev and ev_step[p] == e:
                    k = ev_kind[p]
                    if k == ev_demand:
                        done, demand_missed = demand_llc(
                            ev_addr[p],
                            ev_pc[p],
                            t,
                            ev_set[p],
                            ev_bank[p],
                            ev_drow[p],
                            ev_dbank[p],
                            ev_sig[p] if ev_sig is not None else 0,
                        )
                    elif k == ev_wb0:
                        wb_to_llc(ev_addr[p], t, ev_set[p], ev_bank[p])
                    elif k == ev_wb1:
                        wb_to_llc(
                            ev_addr[p], t + l1_latency, ev_set[p], ev_bank[p]
                        )
                    elif k == ev_nd:
                        nondemand_llc(
                            ev_addr[p],
                            ev_pc[p],
                            t,
                            ev_set[p],
                            ev_bank[p],
                            ev_drow[p],
                            ev_dbank[p],
                            ev_sig[p] if ev_sig is not None else 0,
                        )
                    elif k == ev_baseline:
                        saw_baseline = True
                    else:
                        saw_snapshot = True
                    p += 1

            if code == step_llc:
                latency = done - t
                stall = latency - l1_latency
                if stall < 0.0:
                    stall = 0.0
                next_t = t + comp_c + stall * imlp_c
            elif code == step_l2hit:
                t_l2 = t + l1_latency
                done = t_l2 + l2_latency
                latency = done - t
                stall = latency - l1_latency
                if stall < 0.0:
                    stall = 0.0
                next_t = t + comp_c + stall * imlp_c
            else:
                next_t = t + comp_c

            if demand_missed:
                miss_clock += 1
                if miss_clock >= interval:
                    end_interval()
                    miss_clock = 0
                    intervals_completed += 1
                    interval = full_interval

            if saw_baseline:
                rec = tape.baseline
                base.time = next_t
                base.instructions = rec["instructions"]
                base.accesses = warmup
                base.l1 = rec["l1_demand_misses"]
                base.l2 = rec["l2_demand_misses"]
                base.llc = (llc_dh[cid] + llc_dm[cid], llc_dm[cid])
                base.bypasses = llc_by[cid]

            if saw_snapshot:
                rec = tape.finish
                core.finished = True
                core.snapshot = CoreSnapshot(
                    instructions=rec["instructions"] - base.instructions,
                    cycles=next_t - base.time,
                    accesses=finish_count - base.accesses,
                    l1_misses=rec["l1_demand_misses"] - base.l1,
                    l2_misses=rec["l2_demand_misses"] - base.l2,
                    llc_accesses=(llc_dh[cid] + llc_dm[cid]) - base.llc[0],
                    llc_misses=llc_dm[cid] - base.llc[1],
                    llc_bypasses=llc_by[cid] - base.bypasses,
                )
                remaining -= 1
                if remaining == 0:
                    cut[0] = t
                    cut[1] = cid
                    final_next_t[0] = next_t
                    resume_idx[cid] = e + 1
                    resume_t[cid] = next_t
                    return None

            idx = e + 1
            t_clock = next_t
            resume_idx[cid] = e + 1
            resume_t[cid] = next_t
            return seek_event()

        def cut_walk(t_f, cid_f):
            """How many of this core's accesses the fused kernel would have
            processed before the run-ending access ``(t_f, cid_f)``.

            Same contract as the scalar kernel's ``cut_walk``; the stop
            index is found by growing the exact trajectory chunk by chunk
            and binary-searching it (ties resolved by the ``cid < cid_f``
            heap order, exactly like the scalar condition).
            """
            i = resume_idx[cid]
            t = resume_t[cid]
            tie_lt = cid < cid_f  # continue through a tie on t_f
            if walkers is not None:
                i, t, found = njit_cut(
                    steps_np,
                    i,
                    len(steps_np),
                    t,
                    t_f,
                    tie_lt,
                    comp_c,
                    imlp_c,
                    l1_latency,
                    l2_latency,
                )
                if found:
                    return i
                t = float(t)
            else:
                n_steps = len(steps)
                while True:
                    m = n_steps - i
                    if m > _CUT_CHUNK:
                        m = _CUT_CHUNK
                    if m < _VEC_MIN:
                        break
                    traj = trajectory(
                        steps_np[i : i + m],
                        t,
                        comp_c,
                        imlp_c,
                        l1_latency,
                        l2_latency,
                    )
                    if traj is None:
                        break
                    # traj[k] is the clock *before* step i+k: the scalar
                    # loop keeps walking while the pre-step clock satisfies
                    # the cut condition, and traj is strictly increasing,
                    # so the stop offset is a binary search.
                    side = "right" if tie_lt else "left"
                    k = int(np.searchsorted(traj[:m], t_f, side=side))
                    if k < m:
                        return i + k
                    i += m
                    t = float(traj[m])
            while t < t_f or (t == t_f and cid < cid_f):
                if steps[i]:
                    t_l2 = t + l1_latency
                    done = t_l2 + l2_latency
                    latency = done - t
                    stall = latency - l1_latency
                    if stall < 0.0:
                        stall = 0.0
                    t = t + comp_c + stall * imlp_c
                else:
                    t = t + comp_c
                i += 1
            return i

        return seek_event, process, cut_walk, sync_core

    seekers = [None] * n
    processors = [None] * n
    cut_walks = [None] * n
    core_syncs = [None] * n
    for cid in range(n):
        seekers[cid], processors[cid], cut_walks[cid], core_syncs[cid] = compile_core(cid)

    # -- the replay loop (identical to the scalar replay kernel) -------------
    try:
        heap: list[tuple[float, int]] = []
        for cid in range(n):
            heappush(heap, (seekers[cid](), cid))
        running = True
        while running:
            t, cid = heappop(heap)
            proc = processors[cid]
            if heap:
                head = heap[0]
                while True:
                    nxt = proc(t)
                    if nxt is None:
                        running = False
                        break
                    head_t = head[0]
                    if nxt < head_t or (nxt == head_t and cid < head[1]):
                        t = nxt
                        continue
                    heappush(heap, (nxt, cid))
                    break
            else:
                while True:
                    nxt = proc(t)
                    if nxt is None:
                        running = False
                        break
                    t = nxt
    finally:
        engine._miss_clock = miss_clock
        engine.intervals_completed = intervals_completed
        dram.reads = dram_reads
        dram.writes = dram_writes
        dram.row_hits = dram_rowhits
        dram.row_conflicts = dram_rowconf
        banks.accesses = bank_accs
        banks.conflicts = bank_confs
        arb.requests = arb_reqs
        arb.throttled = arb_throt
        if mshr is not None:
            mshr.merged = mshr_merged
            mshr.stalls = mshr_stalls
        if llc_wb is not None:
            llc_wb.stalls = wb3_stalls
            llc_wb.admitted = wb3_admitted
            llc_wb._last_retire = wb3_last
        for sync in core_syncs:
            sync()

    # -- final private-level reconstruction (identical to the scalar) --------
    if finalize:
        t_f, cid_f = cut[0], cut[1]
        prefetches_issued = 0
        for cid in range(n):
            n_i = finish_count if cid == cid_f else cut_walks[cid](t_f, cid_f)
            tape = tapes[cid]
            ck = None
            for candidate in tape.checkpoints:
                if candidate["index"] <= n_i:
                    ck = candidate
                else:
                    break
            source = engine.sources[cid]
            pf = h.l2_prefetchers[cid] if h.l2_prefetchers is not None else None
            sim = cap.PrivateCoreSim(
                h.l1s[cid], h.l2s[cid], pf, h.l1_next_line_prefetch, source
            )
            sim.restore_state(ck)
            cap.advance_source(source, ck["index"])
            sim.run(n_i - ck["index"], record=False)
            core = cores[cid]
            core.accesses = n_i
            core.instructions = sim.instr
            prefetches_issued += sim.pf_issued
        h.prefetches_issued = prefetches_issued

    engine.now = final_next_t[0]
    engine.now = max(engine.now, max(c.snapshot.cycles for c in cores))
    return [c.snapshot for c in cores]
