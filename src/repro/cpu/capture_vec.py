"""Array-native capture pass: the SoA tier of the capture family.

The scalar capture pass (:mod:`repro.cpu.capture`) steps Python once per
access even though, for the workloads worth sweeping, the overwhelming
majority of accesses are plain L1 hits whose entire effect is four
metadata writes.  This kernel keeps every *coupled* plane of the private
levels scalar — the L2 DRRIP state is global (one PSEL and one BRRIP
ticker advanced in strict access order across sets), stride-prefetcher
issue decisions read global L2 residency, and the L1 next-line prefetch
couples L1 sets — and vectorises exactly the plane that is provably
independent: **runs of consecutive L1 hits**.

Within a hit run the L1 contents are invariant (hits never fill or
evict), so:

* membership of a whole window of accesses is one broadcast compare of
  the gathered set rows (``rows[sets]``) against the addresses — the L1
  contents live in a dense ``(num_sets, ways)`` array, so there is no
  index structure to maintain on the miss path;
* the per-hit metadata writes commute into bulk scatters — ``reused``
  and ``dirty`` are idempotent ``True`` stores, and the LRU stamps of a
  run are an arithmetic progression per set (stamp of the *i*-th hit to
  set *s* is ``next_mru[s] + i``), so the final stamp of each touched
  way is the progression value at its **last** occurrence, applied with
  one ``np.maximum.at`` (new stamps always exceed every stored stamp);
* the instruction counter is a left fold of a constant addend, replayed
  through one sequential ``np.cumsum`` — bit-identical to the scalar
  ``instr += ipa`` recurrence.

The first non-hit access ends the run and is handled by a statement-for-
statement mirror of the scalar miss path (same list/dict structures for
the L1 contents, L2 and prefetcher; the L1 replacement metadata lives in
NumPy arrays and is written back to the policy objects at every
checkpoint, so snapshots — and therefore the saved artifact — are
byte-identical to the scalar pass).

An optional **numba backend** (the ``[jit]`` extra) replaces the
window-vectorised walker with one ``@njit`` loop that probes the set row
and applies each hit in place — the literal scalar recurrence, compiled,
and the tier the capture speedup gate is enforced on.  Pure numpy is the
always-available fallback; its per-run dispatch overhead only amortises
when hit runs are long (large L1s, very hit-heavy mixes), so on small
platforms it trades throughput for zero dependencies.

``REPRO_CAPTURE_VEC`` opts in, mirroring ``REPRO_REPLAY_VEC`` value
semantics (off / auto / forced backend); the capture-kernel resolution
order is documented in :func:`repro.sim.multi.capture_kernel` and
machine-checked in ``tests/sim/test_kernel_selection.py``.  The
capture-artifact differential in ``tests/golden/test_golden_master.py``
proves byte-identity against the scalar pass on every golden fixture.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cpu import capture as cap
from repro.cpu import replay as _scalar

EV_WB0, EV_WB1, EV_ND = cap.EV_WB0, cap.EV_WB1, cap.EV_ND
EV_DEMAND = cap.EV_DEMAND
STEP_L2HIT, STEP_LLC = cap.STEP_L2HIT, cap.STEP_LLC

#: Window of the numpy hit walker; doubles while the run continues, so a
#: long run costs one broadcast membership test per window, not per
#: access, and a short run never gathers far past its first miss.
_WINDOW_START = 16


def capture_vec_requested() -> bool:
    """Is ``REPRO_CAPTURE_VEC`` set (non-empty and not ``0``)?"""
    return os.environ.get("REPRO_CAPTURE_VEC", "").strip().lower() not in ("", "0")


def capture_vec_enabled() -> bool:
    """Requested *and* not overridden by a stronger kill switch.

    Captures only exist to feed the replay kernels, so the replay family
    switches (``REPRO_NO_FASTPATH`` / ``REPRO_NO_REPLAY``) disable the
    array-native capture pass along with the scalar one.
    """
    return capture_vec_requested() and _scalar.replay_enabled()


# -- the optional numba backend ------------------------------------------------

#: ``"unknown"`` until the first resolution, then ``"ready"``/``"absent"``.
_NUMBA_STATE = "unknown"
_NJIT_FNS: tuple | None = None


def _hits_py(a, s, w, start, stop, rows, stamp, dirty, reused, nmru):
    """The hit walker the numba backend compiles — the literal scalar hit
    recurrence: probe the set row, apply the four metadata writes in
    order.  Integer/bool ops only, so bit-identity is structural.

    Kept as a plain function so the walker's *algorithm* is testable
    (and covered by the golden differential) on machines without numba.
    Returns the run length applied starting at *start*.
    """
    ways = rows.shape[1]
    i = start
    while i < stop:
        addr = a[i]
        si = s[i]
        way = -1
        for j in range(ways):
            if rows[si, j] == addr:
                way = j
                break
        if way < 0:
            break
        reused[si, way] = True
        if w[i]:
            dirty[si, way] = True
        st = nmru[si]
        stamp[si, way] = st
        nmru[si] = st + 1
        i += 1
    return i - start


def _fill_py(addr, si, is_write, rows, stamp, dirty, reused, nmru, valid):
    """The L1 fill the numba backend compiles (demand and next-line
    paths share it) — the scalar fill on the dense planes.

    Free way = first ``-1`` slot (``row.index(-1)``); victim = first
    minimum-stamp way, exactly the scalar ``srow.index(min(srow))``.
    Returns ``(way, victim_addr, victim_dirty)``; the caller keeps the
    residency dict and the boxed stat counters.
    """
    ways = rows.shape[1]
    victim_addr = -1
    victim_dirty = False
    if valid[si] < ways:
        way = 0
        for j in range(ways):
            if rows[si, j] == -1:
                way = j
                break
        valid[si] += 1
    else:
        way = 0
        best = stamp[si, 0]
        for j in range(1, ways):
            v = stamp[si, j]
            if v < best:
                best = v
                way = j
        victim_addr = rows[si, way]
        victim_dirty = dirty[si, way]
    rows[si, way] = addr
    dirty[si, way] = is_write
    reused[si, way] = False
    st = nmru[si]
    stamp[si, way] = st
    nmru[si] = st + 1
    return way, victim_addr, victim_dirty


def _numba_kernels():
    """The compiled ``(hit walker, L1 fill)`` pair, or ``None`` without
    numba."""
    global _NUMBA_STATE, _NJIT_FNS
    if _NUMBA_STATE == "unknown":
        try:
            from numba import njit
        except ImportError:
            _NUMBA_STATE = "absent"
        else:
            _NJIT_FNS = (
                njit(cache=True)(_hits_py),
                njit(cache=True)(_fill_py),
            )
            _NUMBA_STATE = "ready"
    return _NJIT_FNS if _NUMBA_STATE == "ready" else None


def vec_backend() -> str:
    """The backend this process would run: ``"numba"`` or ``"numpy"``.

    ``REPRO_CAPTURE_VEC=numpy`` forces the fallback; any other setting
    (including ``numba``) uses the JIT exactly when numba is importable.
    """
    if os.environ.get("REPRO_CAPTURE_VEC", "").strip().lower() == "numpy":
        return "numpy"
    return "numba" if _numba_kernels() is not None else "numpy"


def warm_backend() -> str:
    """Resolve the backend and trigger JIT compilation; returns its name."""
    backend = vec_backend()
    if backend == "numba":
        walker, fill = _numba_kernels()
        rows = np.full((1, 1), -1, dtype=np.int64)
        stamp = np.zeros((1, 1), dtype=np.int64)
        dirty = np.zeros((1, 1), dtype=bool)
        reused = np.zeros((1, 1), dtype=bool)
        nmru = np.ones(1, dtype=np.int64)
        valid = np.zeros(1, dtype=np.int64)
        walker(
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=bool),
            0,
            1,
            rows,
            stamp,
            dirty,
            reused,
            nmru,
        )
        fill(0, 0, False, rows, stamp, dirty, reused, nmru, valid)
    return backend


# -- the numpy hit walker ------------------------------------------------------


def _walk_hits_numpy(a, s, w, start, stop, rows, stamp, dirty, reused, nmru):
    """Numpy twin of the njit walker: apply the leading hit run, return
    its length.

    Window at a time: gather the set rows of the window, one broadcast
    compare finds each access's way (or its absence), and the prefix up
    to the first miss commutes into bulk scatters (see module docstring
    for why ``np.maximum.at`` realises the scalar stamp outcome).
    """
    n = stop - start
    done = 0
    window = _WINDOW_START
    while done < n:
        hi = done + window
        if hi > n:
            hi = n
        seg_a = a[start + done : start + hi]
        seg_s = s[start + done : start + hi]
        eq = rows[seg_s] == seg_a[:, None]
        hit = eq.any(1)
        k = hit.shape[0] if hit.all() else int(hit.argmin())
        if 0 < k <= 4:
            # Short runs dominate most mixes, and the bulk machinery's
            # fixed dispatch cost dwarfs four scalar updates.
            ways = eq[:k].argmax(1)
            for i in range(k):
                si = int(seg_s[i])
                way = int(ways[i])
                reused[si, way] = True
                if w[start + done + i]:
                    dirty[si, way] = True
                st = nmru[si]
                stamp[si, way] = st
                nmru[si] = st + 1
            done += k
        elif k:
            ss = seg_s[:k]
            ways = eq[:k].argmax(1)
            reused[ss, ways] = True
            sw = w[start + done : start + done + k]
            if sw.any():
                dirty[ss[sw], ways[sw]] = True
            order = ss.argsort(kind="stable")
            so = ss[order]
            fresh = np.empty(k, dtype=bool)
            fresh[0] = True
            np.not_equal(so[1:], so[:-1], out=fresh[1:])
            starts = fresh.nonzero()[0]
            counts = np.empty(starts.shape[0], dtype=np.int64)
            counts[:-1] = starts[1:] - starts[:-1]
            counts[-1] = k - starts[-1]
            rank = np.arange(k) - starts.repeat(counts)
            flat = so * stamp.shape[1] + ways[order]
            np.maximum.at(stamp.reshape(-1), flat, nmru[so] + rank)
            nmru += np.bincount(so, minlength=nmru.shape[0])
            done += k
        if done < hi:
            return done
        window <<= 1
    return n


# -- the simulator -------------------------------------------------------------


class VecPrivateCoreSim(cap.PrivateCoreSim):
    """Array-native :class:`~repro.cpu.capture.PrivateCoreSim`.

    Holds the same cache/policy/prefetcher objects; the L1 contents and
    replacement metadata (rows, stamps, dirty, reused, per-set MRU
    clocks) additionally live in dense NumPy arrays, synced back to the
    cache/policy lists at every checkpoint so ``snapshot_state`` output
    is byte-identical to the scalar pass.
    """

    __slots__ = (
        "_rows_np",
        "_stamp_np",
        "_dirty_np",
        "_reused_np",
        "_nmru_np",
        "_valid1_np",
        "_walker",
        "_fill",
    )

    def __init__(
        self,
        l1,
        l2,
        prefetcher,
        l1_next_line,
        source,
        tape=None,
        walker=None,
        fill=None,
    ):
        super().__init__(l1, l2, prefetcher, l1_next_line, source, tape)
        self._walker = walker
        self._fill = fill
        self._bind_np()

    # -- numpy <-> object state transfer ------------------------------------

    def _bind_np(self) -> None:
        """(Re)derive the NumPy working state from the held objects."""
        l1 = self.l1
        self._rows_np = np.array(l1.addrs, dtype=np.int64)
        self._stamp_np = np.array(l1.policy._stamp, dtype=np.int64)
        self._dirty_np = np.array(l1.dirty, dtype=bool)
        self._reused_np = np.array(l1.reused, dtype=bool)
        self._nmru_np = np.array(l1.policy._next_mru, dtype=np.int64)
        self._valid1_np = np.array(self._valid1, dtype=np.int64)

    def _sync_np(self) -> None:
        """Write the NumPy working state back to the cache/policy objects.

        ``tolist`` yields native ints/bools, so a subsequent snapshot
        serialises exactly like the scalar pass.  The dense planes are
        authoritative for the L1 (the compiled fill bypasses the list
        rows), so the address rows flow back too.
        """
        l1 = self.l1
        for row, src in zip(l1.addrs, self._rows_np):
            row[:] = src.tolist()
        for row, src in zip(l1.policy._stamp, self._stamp_np):
            row[:] = src.tolist()
        for row, src in zip(l1.dirty, self._dirty_np):
            row[:] = src.tolist()
        for row, src in zip(l1.reused, self._reused_np):
            row[:] = src.tolist()
        l1.policy._next_mru[:] = self._nmru_np.tolist()
        self._valid1[:] = self._valid1_np.tolist()

    def snapshot_state(self) -> dict:
        self._sync_np()
        return super().snapshot_state()

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._bind_np()

    # -- the private-level loop ---------------------------------------------

    def run(self, n: int, record: bool = True) -> None:
        """Process the next *n* accesses; see :meth:`PrivateCoreSim.run`.

        Hit runs go through the array walker; everything else mirrors
        the scalar loop statement for statement on the same structures.
        """
        if n <= 0:
            return
        l1, l2 = self.l1, self.l2
        source = self.source
        mask1 = l1.set_mask
        lookup1 = self._lookup1
        occ1 = l1.occupancy
        st1 = l1.stats
        dh1, dm1, om1 = st1.demand_hits, st1.demand_misses, st1.other_misses
        ev1, dev1, fl1 = st1.evictions, st1.dirty_evictions, st1.fills
        rows_np = self._rows_np
        stamp_np = self._stamp_np
        dirty_np = self._dirty_np
        reused_np = self._reused_np
        nmru_np = self._nmru_np
        walker = self._walker if self._walker is not None else _walk_hits_numpy

        mask2 = l2.set_mask
        ways2 = l2.ways
        lookup2, valid2 = self._lookup2, self._valid2
        l2_get = lookup2.get
        rows2 = l2.addrs
        dirty2 = l2.dirty
        reused2 = l2.reused
        occ2 = l2.occupancy
        st2 = l2.stats
        dh2, dm2 = st2.demand_hits, st2.demand_misses
        oh2, om2 = st2.other_hits, st2.other_misses
        wba2 = st2.writeback_arrivals
        ev2, dev2, fl2 = st2.evictions, st2.dirty_evictions, st2.fills
        pol2 = l2.policy
        rrpv2 = pol2.rrpv
        maxr2 = pol2.max_rrpv
        psel_val = self._psel_val
        psel_max = pol2._psel.max_value
        psel_thr = pol2._psel.threshold
        tick_cnt = self._tick_cnt
        tick_phase = pol2._ticker._phase
        tick_den = pol2._ticker.denominator
        roles_get = pol2._duel.roles_for(0).get

        pf2 = self.prefetcher
        pf2_train = pf2.train if pf2 is not None else None
        l1_pf = self.l1_next_line
        pf_issued = self.pf_issued

        tape = self.tape
        if record:
            steps_append = tape.steps.append
            steps_extend = tape.steps.extend
            evs_append = tape.ev_step.append
            evk_append = tape.ev_kind.append
            eva_append = tape.ev_addr.append
            evp_append = tape.ev_pc.append
        count = self.count
        ipa = self.instructions_per_access

        def l2_fill(addr, s, insertion, dirty):
            """Mirror of the fused kernel's ``l2_fill``."""
            victim_addr = -1
            victim_dirty = False
            row = rows2[s]
            if valid2[s] < ways2:
                way = row.index(-1)
                valid2[s] += 1
            else:
                rrow = rrpv2[s]
                current_max = max(rrow)
                if current_max < maxr2:
                    delta = maxr2 - current_max
                    rrow[:] = [v + delta for v in rrow]
                way = rrow.index(maxr2)
                victim_addr = row[way]
                victim_dirty = dirty2[s][way]
                ev2[0] += 1
                if victim_dirty:
                    dev2[0] += 1
                occ2[0] -= 1
                del lookup2[victim_addr]
            row[way] = addr
            lookup2[addr] = way
            dirty2[s][way] = dirty
            reused2[s][way] = False
            occ2[0] += 1
            fl2[0] += 1
            rrpv2[s][way] = insertion
            return victim_addr, victim_dirty

        def l1_victim_to_l2(addr):
            """Dirty L1 victim → private L2; may emit a WB0 event."""
            s = addr & mask2
            way = l2_get(addr, -1)
            wba2[0] += 1
            if way >= 0:
                oh2[0] += 1
                dirty2[s][way] = True
                return
            om2[0] += 1
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, True)
            if victim_dirty and record:
                evs_append(count)
                evk_append(EV_WB0)
                eva_append(victim_addr)
                evp_append(0)

        def fetch_nondemand(addr, pc):
            """Prefetch fill below L1; may emit WB1 + ND events."""
            nonlocal pf_issued
            s = addr & mask2
            way = l2_get(addr, -1)
            if way >= 0:
                oh2[0] += 1
                return
            om2[0] += 1
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, False)
            if record:
                if victim_dirty:
                    evs_append(count)
                    evk_append(EV_WB1)
                    eva_append(victim_addr)
                    evp_append(0)
                evs_append(count)
                evk_append(EV_ND)
                eva_append(addr)
                evp_append(pc)

        fill = self._fill
        valid1_np = self._valid1_np

        if fill is not None:

            def l1_insert(addr, si, is_write):
                """Compiled fill on the dense planes; the residency dict
                and the boxed stat counters stay Python-side."""
                way, victim_addr, vdirty = fill(
                    addr,
                    si,
                    is_write,
                    rows_np,
                    stamp_np,
                    dirty_np,
                    reused_np,
                    nmru_np,
                    valid1_np,
                )
                victim_addr = int(victim_addr)
                victim_dirty = bool(vdirty)
                if victim_addr >= 0:
                    ev1[0] += 1
                    if victim_dirty:
                        dev1[0] += 1
                    occ1[0] -= 1
                    del lookup1[victim_addr]
                lookup1[addr] = way
                occ1[0] += 1
                fl1[0] += 1
                return victim_addr, victim_dirty

        else:

            def l1_insert(addr, si, is_write):
                """The scalar L1 fill (demand and next-line paths share
                it): :func:`_fill_py` on the dense planes, plus the same
                residency-dict and stat bookkeeping as the scalar loop.
                ``_fill_py`` picks the first minimum-stamp victim exactly
                like the scalar ``srow.index(min(srow))``.
                """
                way, victim_addr, victim_dirty = _fill_py(
                    addr,
                    si,
                    is_write,
                    rows_np,
                    stamp_np,
                    dirty_np,
                    reused_np,
                    nmru_np,
                    valid1_np,
                )
                victim_addr = int(victim_addr)
                victim_dirty = bool(victim_dirty)
                if victim_addr >= 0:
                    ev1[0] += 1
                    if victim_dirty:
                        dev1[0] += 1
                    occ1[0] -= 1
                    del lookup1[victim_addr]
                lookup1[addr] = way
                occ1[0] += 1
                fl1[0] += 1
                return victim_addr, victim_dirty

        buf = self._buf
        pos = self._pos
        length = self._len
        remaining = n
        while remaining:
            if pos >= length:
                if buf is not None:
                    source.commit(pos)
                # With no buffer yet (fresh or restored sim) the source's
                # own position is authoritative — committing the local one
                # would rewind a state-advanced source.
                arr_a, arr_p, arr_w, pos = source.next_chunk()
                buf = (arr_a, arr_a & mask1, arr_p, arr_w)
                length = len(arr_a)
            buf_a, buf_s, buf_p, buf_w = buf
            take = length - pos
            if take > remaining:
                take = remaining
            remaining -= take
            end = pos + take
            get1 = lookup1.get
            while pos < end:
                addr = int(buf_a[pos])
                if get1(addr, -1) >= 0:
                    # At least one hit: hand the run to the array walker
                    # (the dict probe keeps pure-miss stretches from
                    # paying the walker dispatch for an empty run).
                    k = int(
                        walker(
                            buf_a,
                            buf_s,
                            buf_w,
                            pos,
                            end,
                            rows_np,
                            stamp_np,
                            dirty_np,
                            reused_np,
                            nmru_np,
                        )
                    )
                    dh1[0] += k
                    if record:
                        steps_extend(bytes(k))  # STEP_HIT == 0
                    pos += k
                    count += k
                    if pos >= end:
                        break
                    addr = int(buf_a[pos])

                # -- the access at *pos* is an L1 miss: scalar mirror -------
                si = int(buf_s[pos])
                pc = int(buf_p[pos])
                is_write = bool(buf_w[pos])
                dm1[0] += 1
                victim_addr, victim_dirty = l1_insert(addr, si, is_write)
                if victim_dirty:
                    l1_victim_to_l2(victim_addr)

                # fetch_below: the demand path into the L2.
                s = addr & mask2
                way = l2_get(addr, -1)
                if way >= 0:
                    dh2[0] += 1
                    reused2[s][way] = True
                    rrpv2[s][way] = 0  # demand-hit promotion
                    if record:
                        steps_append(STEP_L2HIT)
                else:
                    dm2[0] += 1
                    # DRRIP on_miss + decide_insertion (demand).
                    leader = roles_get(s, -1)
                    if leader == 0:  # SRRIP leader missed
                        value = psel_val + 1
                        psel_val = value if value <= psel_max else psel_max
                    elif leader == 1:  # BRRIP leader missed
                        value = psel_val - 1
                        psel_val = value if value >= 0 else 0
                    if leader == 0:
                        insertion = maxr2 - 1
                    elif leader == 1 or psel_val >= psel_thr:
                        fired = tick_cnt == tick_phase
                        tick_cnt += 1
                        if tick_cnt == tick_den:
                            tick_cnt = 0
                        insertion = maxr2 - 1 if fired else maxr2
                    else:
                        insertion = maxr2 - 1
                    victim_addr, victim_dirty = l2_fill(addr, s, insertion, False)
                    if victim_dirty and record:
                        evs_append(count)
                        evk_append(EV_WB1)
                        eva_append(victim_addr)
                        evp_append(0)
                    if pf2_train is not None:
                        for pfa in pf2_train(pc, addr):
                            if pfa >= 0 and pfa not in lookup2:
                                pf_issued += 1
                                fetch_nondemand(pfa, pc)
                    if record:
                        evs_append(count)
                        evk_append(EV_DEMAND)
                        eva_append(addr)
                        evp_append(pc)
                        steps_append(STEP_LLC)

                if l1_pf:
                    pfa = addr + 1
                    if pfa not in lookup1:
                        pf_issued += 1
                        om1[0] += 1
                        v_addr, v_dirty = l1_insert(pfa, pfa & mask1, False)
                        if v_dirty:
                            l1_victim_to_l2(v_addr)
                        fetch_nondemand(pfa, pc)
                pos += 1
                count += 1

        source.commit(pos)
        self._buf = buf
        self._pos = pos
        self._len = length
        consumed = count - self.count
        # The scalar ``instr += ipa`` recurrence is a left fold, which one
        # sequential cumsum over ``[instr, ipa, ipa, ...]`` replays with
        # the identical float-op order — bit-for-bit.
        inc = np.empty(consumed + 1)
        inc[0] = self.instr
        inc[1:] = ipa
        self.instr = float(np.cumsum(inc)[consumed])
        self.count = count
        self.pf_issued = pf_issued
        self._psel_val = psel_val
        self._tick_cnt = tick_cnt
        self.sync()
        # Leave the held objects consistent after every run() — the replay
        # finaliser's reconstruction reads them directly (no snapshot), so
        # a drop-in vec sim must not defer the write-back.
        self._sync_np()
        if record:
            tape.length = count


# -- the capture driver --------------------------------------------------------


def capture_workload_vec(
    benchmarks: tuple[str, ...],
    config,
    quota: int,
    warmup: int,
    master_seed: int = 0,
    slack: float | None = None,
) -> cap.CaptureBundle:
    """:func:`repro.cpu.capture.capture_workload`, on the array kernel.

    Identical meta, boundaries and artifact content — only the per-core
    simulator differs, and the golden capture differential proves the
    output byte-identical.
    """
    walker, fill = (None, None)
    if vec_backend() == "numba":
        walker, fill = _numba_kernels()

    def factory(l1, l2, prefetcher, l1_next_line, source, tape):
        return VecPrivateCoreSim(
            l1, l2, prefetcher, l1_next_line, source, tape, walker=walker, fill=fill
        )

    return cap.capture_workload(
        benchmarks, config, quota, warmup, master_seed, slack, sim_cls=factory
    )
