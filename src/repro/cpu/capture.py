"""Capture pass for the LLC-filtered replay engine.

Because the hierarchy is non-inclusive, each core's private-cache contents
— and therefore its sequence of LLC-bound demand misses, L2 write-backs
and prefetcher issues — depend only on that core's fixed address stream,
never on the LLC policy or on timing; only the *timestamps* of those
events vary between policies.  A policy sweep therefore re-simulates the
identical L1/L2 behaviour once per swept policy for nothing.

This module runs the private levels (L1 LRU, L2 DRRIP, both prefetcher
shapes) **once** per distinct ``(trace identity, geometry, private-level
config)`` and records, per core:

* a **step stream** — one byte per access classifying its private-time
  cost: L1 hit (``STEP_HIT``), L1-miss/L2-hit (``STEP_L2HIT``) or
  L2 miss reaching the LLC (``STEP_LLC``).  The replay kernel
  (:mod:`repro.cpu.replay`) re-executes exactly the fused kernel's
  floating-point clock recurrence over this stream, so reconstructed
  timestamps are bit-for-bit identical;
* an **event stream** — the ordered LLC-bound interactions each access
  performs (L2→LLC write-backs at their two fixed time offsets, non-demand
  prefetch fetches, the demand fetch itself) plus the engine's
  warm-up-baseline and quota-completion markers, which must be replayed in
  global ``(time, core)`` order because they read live LLC statistics;
* **private-state checkpoints** — JSON-safe snapshots of the L1/L2
  contents, replacement state, stats, and prefetcher tables every
  ``checkpoint_every`` accesses (and always at the stream end), from which
  the replay finaliser reconstructs the exact private-level end state at
  the run's policy-dependent stop point with a bounded re-simulation.

Every content operation mirrors :mod:`repro.cpu.fastpath` statement for
statement, which the golden differential suite machine-checks.
"""

from __future__ import annotations

import numpy as np

from repro.cache.prefetch import StrideEntry
from repro.cpu.fastpath import _decode_chunk, _residency
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import LruPolicy
from repro.trace.benchmarks import TraceSource

#: Step-stream codes: the access's private-time cost class.
STEP_HIT, STEP_L2HIT, STEP_LLC = 0, 1, 2

#: Event-stream kinds, in the exact order the fused kernel performs them.
#: ``EV_WB0``/``EV_WB1`` are L2→LLC write-backs arriving at ``t`` (dirty L1
#: victim path) and ``t + l1_latency`` (demand/prefetch L2-fill path);
#: ``EV_ND`` is a non-demand (prefetch) LLC fetch, ``EV_DEMAND`` the demand
#: fetch whose completion time feeds the core's clock.  ``EV_BASELINE`` and
#: ``EV_SNAPSHOT`` mark the engine's warm-up and quota-completion points.
EV_WB0, EV_WB1, EV_ND, EV_DEMAND, EV_BASELINE, EV_SNAPSHOT = 0, 1, 2, 3, 4, 5

#: One record per LLC-bound event; ``step`` is the 0-based access index.
EVENT_DTYPE = np.dtype([("step", "<u8"), ("kind", "u1"), ("addr", "<i8"), ("pc", "<i8")])

#: Capture artifact layout version (part of every content address).
CAPTURE_FORMAT = 1

#: Target number of private-state checkpoints per stream (the replay
#: finaliser re-simulates at most one inter-checkpoint span per core, so
#: denser checkpoints trade a little capture memory for faster finalised
#: replays).
_TARGET_CHECKPOINTS = 24


class CoreTape:
    """One core's captured stream: steps, events, checkpoints, markers."""

    __slots__ = (
        "steps",
        "ev_step",
        "ev_kind",
        "ev_addr",
        "ev_pc",
        "checkpoints",
        "baseline",
        "finish",
        "length",
        "live_sim",
    )

    def __init__(self) -> None:
        self.steps = bytearray()
        self.ev_step: list[int] = []
        self.ev_kind: list[int] = []
        self.ev_addr: list[int] = []
        self.ev_pc: list[int] = []
        self.checkpoints: list[dict] = []
        self.baseline: dict | None = None
        self.finish: dict | None = None
        self.length = 0
        #: Scratch continuation simulator, attached lazily by the replay
        #: kernel when a run outlives the captured stream.
        self.live_sim: PrivateCoreSim | None = None

    def events_array(self) -> np.ndarray:
        out = np.empty(len(self.ev_step), dtype=EVENT_DTYPE)
        out["step"] = self.ev_step
        out["kind"] = self.ev_kind
        out["addr"] = self.ev_addr
        out["pc"] = self.ev_pc
        return out

    def steps_array(self) -> np.ndarray:
        return np.frombuffer(bytes(self.steps), dtype=np.uint8)


class CaptureBundle:
    """A full platform capture: one :class:`CoreTape` per core plus meta."""

    __slots__ = ("meta", "tapes", "vec_cache", "content_key")

    def __init__(self, meta: dict, tapes: list[CoreTape]) -> None:
        self.meta = meta
        self.tapes = tapes
        #: Lazy policy-independent SoA decode planes, owned by
        #: :mod:`repro.cpu.replay_vec` and shared by every policy in a
        #: sweep (invalidated per core on live tape extension).
        self.vec_cache: dict | None = None
        #: Content address of the artifact this bundle was loaded from
        #: (set by the replay store), keying the worker-local plane cache;
        #: ``None`` for a bundle built in-process.
        self.content_key: str | None = None


class PrivateCoreSim:
    """Private-level content simulator for one core.

    Mirrors the fused kernel's L1/L2/prefetcher behaviour exactly (same
    state objects, same mutation order); used three ways:

    * **capture** — ``run(n, record=True)`` appends step codes and LLC
      events to a :class:`CoreTape`;
    * **live continuation** — the replay kernel resumes a tape-end
      checkpoint on scratch objects and keeps recording when a run
      outlives the captured stream;
    * **reconstruction** — the replay finaliser resumes the engine's *own*
      cache/prefetcher/source objects from a checkpoint and re-simulates
      (``record=False``) up to the exact access index where the fused
      kernel would have stopped.
    """

    __slots__ = (
        "l1",
        "l2",
        "prefetcher",
        "l1_next_line",
        "source",
        "instructions_per_access",
        "count",
        "instr",
        "pf_issued",
        "tape",
        "_lookup1",
        "_valid1",
        "_lookup2",
        "_valid2",
        "_psel_val",
        "_tick_cnt",
        "_buf",
        "_pos",
        "_len",
    )

    def __init__(
        self,
        l1,
        l2,
        prefetcher,
        l1_next_line: bool,
        source,
        tape: CoreTape | None = None,
    ) -> None:
        if type(l1.policy) is not LruPolicy:
            raise ValueError("capture requires a plain-LRU L1")
        if type(l2.policy) is not DrripPolicy:
            raise ValueError("capture requires a plain-DRRIP L2")
        self.l1 = l1
        self.l2 = l2
        self.prefetcher = prefetcher
        self.l1_next_line = l1_next_line
        self.source = source
        self.instructions_per_access = source.instructions_per_access
        self.count = 0
        self.instr = 0.0
        self.pf_issued = 0
        self.tape = tape
        self._lookup1, self._valid1 = _residency(l1)
        self._lookup2, self._valid2 = _residency(l2)
        self._psel_val = l2.policy._psel.value
        self._tick_cnt = l2.policy._ticker._count
        self._buf = None
        self._pos = 0
        self._len = 0

    # -- state transfer ------------------------------------------------------

    def sync(self) -> None:
        """Write localized scalar state back to the policy objects."""
        self.l2.policy._psel.value = self._psel_val
        self.l2.policy._ticker._count = self._tick_cnt

    def snapshot_state(self) -> dict:
        """JSON-safe checkpoint of the full private-level state."""
        self.sync()
        l1, l2 = self.l1, self.l2
        pf = self.prefetcher
        state = {
            "index": self.count,
            "instr": self.instr,
            "pf_issued": self.pf_issued,
            "l1": {
                "addrs": [row[:] for row in l1.addrs],
                "dirty": [row[:] for row in l1.dirty],
                "reused": [row[:] for row in l1.reused],
                "occupancy": list(l1.occupancy),
                "stats": l1.stats.snapshot(),
                "stamp": [row[:] for row in l1.policy._stamp],
                "next_mru": list(l1.policy._next_mru),
                "next_lru": list(l1.policy._next_lru),
            },
            "l2": {
                "addrs": [row[:] for row in l2.addrs],
                "dirty": [row[:] for row in l2.dirty],
                "reused": [row[:] for row in l2.reused],
                "occupancy": list(l2.occupancy),
                "stats": l2.stats.snapshot(),
                "rrpv": [row[:] for row in l2.policy.rrpv],
                "psel_value": l2.policy._psel.value,
                "ticker_count": l2.policy._ticker._count,
            },
            "pf": None,
        }
        if pf is not None:
            state["pf"] = {
                "table": [
                    [pc, e.last_addr, e.stride, e.confidence]
                    for pc, e in pf._table.items()
                ],
                "trained": pf.trained,
                "issued": pf.issued,
            }
        return state

    def restore_state(self, state: dict) -> None:
        """Load a checkpoint into the held objects (deep copies)."""
        l1, l2 = self.l1, self.l2
        c1, c2 = state["l1"], state["l2"]
        for target, rows in (
            (l1.addrs, c1["addrs"]),
            (l1.dirty, c1["dirty"]),
            (l1.reused, c1["reused"]),
            (l1.policy._stamp, c1["stamp"]),
            (l2.addrs, c2["addrs"]),
            (l2.dirty, c2["dirty"]),
            (l2.reused, c2["reused"]),
            (l2.policy.rrpv, c2["rrpv"]),
        ):
            for row, src in zip(target, rows):
                row[:] = src
        l1.occupancy[:] = c1["occupancy"]
        l2.occupancy[:] = c2["occupancy"]
        l1.policy._next_mru[:] = c1["next_mru"]
        l1.policy._next_lru[:] = c1["next_lru"]
        for stats, snap in ((l1.stats, c1["stats"]), (l2.stats, c2["stats"])):
            for field, values in snap.items():
                getattr(stats, field)[:] = values
        l2.policy._psel.value = c2["psel_value"]
        l2.policy._ticker._count = c2["ticker_count"]
        pf = self.prefetcher
        if pf is not None and state["pf"] is not None:
            pf._table.clear()
            for pc, last, stride, conf in state["pf"]["table"]:
                entry = StrideEntry(last)
                entry.stride = stride
                entry.confidence = conf
                pf._table[pc] = entry
            pf.trained = state["pf"]["trained"]
            pf.issued = state["pf"]["issued"]
        self.count = state["index"]
        self.instr = state["instr"]
        self.pf_issued = state["pf_issued"]
        self._lookup1, self._valid1 = _residency(l1)
        self._lookup2, self._valid2 = _residency(l2)
        self._psel_val = l2.policy._psel.value
        self._tick_cnt = l2.policy._ticker._count

    # -- the private-level loop ---------------------------------------------

    def run(self, n: int, record: bool = True) -> None:
        """Process the next *n* accesses, mirroring the fused kernel.

        With ``record``, step codes and LLC-bound events are appended to
        the tape; without, only the private state advances (the
        reconstruction mode).
        """
        if n <= 0:
            return
        l1, l2 = self.l1, self.l2
        source = self.source
        mask1 = l1.set_mask
        lookup1, valid1 = self._lookup1, self._valid1
        get1 = lookup1.get
        rows1 = l1.addrs
        dirty1 = l1.dirty
        reused1 = l1.reused
        occ1 = l1.occupancy
        st1 = l1.stats
        dh1, dm1, om1 = st1.demand_hits, st1.demand_misses, st1.other_misses
        ev1, dev1, fl1 = st1.evictions, st1.dirty_evictions, st1.fills
        stamp1 = l1.policy._stamp
        nmru1 = l1.policy._next_mru

        mask2 = l2.set_mask
        ways2 = l2.ways
        lookup2, valid2 = self._lookup2, self._valid2
        l2_get = lookup2.get
        rows2 = l2.addrs
        dirty2 = l2.dirty
        reused2 = l2.reused
        occ2 = l2.occupancy
        st2 = l2.stats
        dh2, dm2 = st2.demand_hits, st2.demand_misses
        oh2, om2 = st2.other_hits, st2.other_misses
        wba2 = st2.writeback_arrivals
        ev2, dev2, fl2 = st2.evictions, st2.dirty_evictions, st2.fills
        pol2 = l2.policy
        rrpv2 = pol2.rrpv
        maxr2 = pol2.max_rrpv
        psel_val = self._psel_val
        psel_max = pol2._psel.max_value
        psel_thr = pol2._psel.threshold
        tick_cnt = self._tick_cnt
        tick_phase = pol2._ticker._phase
        tick_den = pol2._ticker.denominator
        roles_get = pol2._duel.roles_for(0).get

        pf2 = self.prefetcher
        pf2_train = pf2.train if pf2 is not None else None
        l1_pf = self.l1_next_line
        pf_issued = self.pf_issued

        tape = self.tape
        if record:
            steps_append = tape.steps.append
            evs_append = tape.ev_step.append
            evk_append = tape.ev_kind.append
            eva_append = tape.ev_addr.append
            evp_append = tape.ev_pc.append
        count = self.count
        instr = self.instr
        ipa = self.instructions_per_access

        def l2_fill(addr, s, insertion, dirty):
            """Mirror of the fused kernel's ``l2_fill``."""
            victim_addr = -1
            victim_dirty = False
            row = rows2[s]
            if valid2[s] < ways2:
                way = row.index(-1)
                valid2[s] += 1
            else:
                rrow = rrpv2[s]
                current_max = max(rrow)
                if current_max < maxr2:
                    delta = maxr2 - current_max
                    rrow[:] = [v + delta for v in rrow]
                way = rrow.index(maxr2)
                victim_addr = row[way]
                victim_dirty = dirty2[s][way]
                ev2[0] += 1
                if victim_dirty:
                    dev2[0] += 1
                occ2[0] -= 1
                del lookup2[victim_addr]
            row[way] = addr
            lookup2[addr] = way
            dirty2[s][way] = dirty
            reused2[s][way] = False
            occ2[0] += 1
            fl2[0] += 1
            rrpv2[s][way] = insertion
            return victim_addr, victim_dirty

        def l1_victim_to_l2(addr):
            """Dirty L1 victim → private L2; may emit a WB0 event."""
            s = addr & mask2
            way = l2_get(addr, -1)
            wba2[0] += 1
            if way >= 0:
                oh2[0] += 1
                dirty2[s][way] = True
                return
            om2[0] += 1
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, True)
            if victim_dirty and record:
                evs_append(count)
                evk_append(EV_WB0)
                eva_append(victim_addr)
                evp_append(0)

        def fetch_nondemand(addr, pc):
            """Prefetch fill below L1; may emit WB1 + ND events."""
            nonlocal pf_issued
            s = addr & mask2
            way = l2_get(addr, -1)
            if way >= 0:
                oh2[0] += 1
                return
            om2[0] += 1
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, False)
            if record:
                if victim_dirty:
                    evs_append(count)
                    evk_append(EV_WB1)
                    eva_append(victim_addr)
                    evp_append(0)
                evs_append(count)
                evk_append(EV_ND)
                eva_append(addr)
                evp_append(pc)

        buf = self._buf
        pos = self._pos
        length = self._len
        remaining = n
        while remaining:
            if pos >= length:
                if buf is not None:
                    source.commit(pos)
                # With no buffer yet (fresh or restored sim) the source's
                # own position is authoritative — committing the local one
                # would rewind a state-advanced source.
                buf = _decode_chunk(source, mask1)
                pos = buf[4]
                length = len(buf[0])
            buf_a, buf_s, buf_p, buf_w = buf[0], buf[1], buf[2], buf[3]
            take = length - pos
            if take > remaining:
                take = remaining
            remaining -= take
            for _ in range(take):
                addr = buf_a[pos]
                way = get1(addr, -1)
                if way >= 0:
                    dh1[0] += 1
                    s = buf_s[pos]
                    reused1[s][way] = True
                    if buf_w[pos]:
                        dirty1[s][way] = True
                    stamp = nmru1[s]
                    stamp1[s][way] = stamp
                    nmru1[s] = stamp + 1
                    if record:
                        steps_append(STEP_HIT)
                else:
                    s = buf_s[pos]
                    pc = buf_p[pos]
                    is_write = buf_w[pos]
                    dm1[0] += 1
                    victim_addr = -1
                    victim_dirty = False
                    row = rows1[s]
                    if valid1[s] < len(row):
                        way = row.index(-1)
                        valid1[s] += 1
                    else:
                        srow = stamp1[s]
                        way = srow.index(min(srow))
                        victim_addr = row[way]
                        victim_dirty = dirty1[s][way]
                        ev1[0] += 1
                        if victim_dirty:
                            dev1[0] += 1
                        occ1[0] -= 1
                        del lookup1[victim_addr]
                    row[way] = addr
                    lookup1[addr] = way
                    dirty1[s][way] = is_write
                    reused1[s][way] = False
                    occ1[0] += 1
                    fl1[0] += 1
                    stamp = nmru1[s]
                    stamp1[s][way] = stamp
                    nmru1[s] = stamp + 1
                    if victim_dirty:
                        l1_victim_to_l2(victim_addr)

                    # fetch_below: the demand path into the L2.
                    s = addr & mask2
                    way = l2_get(addr, -1)
                    if way >= 0:
                        dh2[0] += 1
                        reused2[s][way] = True
                        rrpv2[s][way] = 0  # demand-hit promotion
                        if record:
                            steps_append(STEP_L2HIT)
                    else:
                        dm2[0] += 1
                        # DRRIP on_miss + decide_insertion (demand).
                        leader = roles_get(s, -1)
                        if leader == 0:  # SRRIP leader missed
                            value = psel_val + 1
                            psel_val = value if value <= psel_max else psel_max
                        elif leader == 1:  # BRRIP leader missed
                            value = psel_val - 1
                            psel_val = value if value >= 0 else 0
                        if leader == 0:
                            insertion = maxr2 - 1
                        elif leader == 1 or psel_val >= psel_thr:
                            fired = tick_cnt == tick_phase
                            tick_cnt += 1
                            if tick_cnt == tick_den:
                                tick_cnt = 0
                            insertion = maxr2 - 1 if fired else maxr2
                        else:
                            insertion = maxr2 - 1
                        victim_addr, victim_dirty = l2_fill(addr, s, insertion, False)
                        if victim_dirty and record:
                            evs_append(count)
                            evk_append(EV_WB1)
                            eva_append(victim_addr)
                            evp_append(0)
                        if pf2_train is not None:
                            for pfa in pf2_train(pc, addr):
                                if pfa >= 0 and pfa not in lookup2:
                                    pf_issued += 1
                                    fetch_nondemand(pfa, pc)
                        if record:
                            evs_append(count)
                            evk_append(EV_DEMAND)
                            eva_append(addr)
                            evp_append(pc)
                            steps_append(STEP_LLC)

                    if l1_pf:
                        pfa = addr + 1
                        if pfa not in lookup1:
                            pf_issued += 1
                            om1[0] += 1
                            victim_addr = -1
                            victim_dirty = False
                            s = pfa & mask1
                            row = rows1[s]
                            if valid1[s] < len(row):
                                way = row.index(-1)
                                valid1[s] += 1
                            else:
                                srow = stamp1[s]
                                way = srow.index(min(srow))
                                victim_addr = row[way]
                                victim_dirty = dirty1[s][way]
                                ev1[0] += 1
                                if victim_dirty:
                                    dev1[0] += 1
                                occ1[0] -= 1
                                del lookup1[victim_addr]
                            row[way] = pfa
                            lookup1[pfa] = way
                            dirty1[s][way] = False
                            reused1[s][way] = False
                            occ1[0] += 1
                            fl1[0] += 1
                            stamp = nmru1[s]
                            stamp1[s][way] = stamp
                            nmru1[s] = stamp + 1
                            if victim_dirty:
                                l1_victim_to_l2(victim_addr)
                            fetch_nondemand(pfa, buf_p[pos])
                pos += 1
                count += 1
                instr += ipa

        source.commit(pos)
        self._buf = buf
        self._pos = pos
        self._len = length
        self.count = count
        self.instr = instr
        self.pf_issued = pf_issued
        self._psel_val = psel_val
        self._tick_cnt = tick_cnt
        self.sync()
        if record:
            tape.length = count


# -- capture drivers -----------------------------------------------------------


def replay_slack() -> float:
    """Captured-stream over-provisioning beyond the quota-completion index.

    Cores that finish early keep running until the slowest core completes,
    so each stream is captured ``1 + slack`` times the per-core access
    budget; a replay that outruns a stream switches to live private-level
    continuation (bit-identical, and the extension is appended to the
    bundle so later replays of the same bundle reuse it).  Typical mixes
    overrun by a few percent, so the default stays lean;
    ``REPRO_REPLAY_SLACK`` tunes it.
    """
    import os

    try:
        value = float(os.environ.get("REPRO_REPLAY_SLACK", "0.25"))
    except ValueError:
        value = 0.25
    return max(0.0, value)


def _fresh_private_level(meta: dict, core_id: int):
    """One core's private caches + prefetcher, exactly as the builder wires them."""
    from repro.cache.cache import SetAssociativeCache
    from repro.cache.prefetch import StridePrefetcher

    l1 = SetAssociativeCache(
        f"l1d-{core_id}", meta["l1_sets"], meta["l1_ways"], LruPolicy(), num_cores=1
    )
    l2 = SetAssociativeCache(
        f"l2-{core_id}", meta["l2_sets"], meta["l2_ways"], DrripPolicy(), num_cores=1
    )
    prefetcher = (
        StridePrefetcher(degree=meta["l2_prefetch_degree"])
        if meta["l2_stride_prefetch"]
        else None
    )
    return l1, l2, prefetcher


def _meta_geometry(meta: dict):
    from repro.trace.benchmarks import Geometry

    return Geometry(
        llc_num_sets=meta["llc_sets"],
        l2_blocks=meta["l2_sets"] * meta["l2_ways"],
        l1_blocks=meta["l1_sets"] * meta["l1_ways"],
    )


def advance_source(source, n: int) -> None:
    """State-only advance of *source* past *n* accesses.

    Replicates the kernels' chunked consumption pattern exactly (refills at
    the same boundaries, same commit positions), so the source's generator
    state, chunk count and read position match a simulated run of length
    ``n`` bit-for-bit.
    """
    consumed = 0
    while consumed < n:
        _addrs, _pcs, _writes, pos = source.next_chunk()
        length = len(_addrs)
        take = length - pos
        if take > n - consumed:
            take = n - consumed
        source.commit(pos + take)
        consumed += take


def capture_workload(
    benchmarks: tuple[str, ...],
    config,
    quota: int,
    warmup: int,
    master_seed: int = 0,
    slack: float | None = None,
    *,
    sim_cls=None,
) -> CaptureBundle:
    """Capture the private-level streams of one (workload, platform, seed).

    Builds fresh sources and private levels (independent of any engine),
    simulates each core ``(quota + warmup) * (1 + slack)`` accesses, and
    returns the bundle the replay kernel consumes.  Sources go through
    :func:`repro.trace.shared.make_source`, so shared trace buffers are
    replayed zero-copy when registered.

    *sim_cls* swaps the per-core simulator (``PrivateCoreSim``-compatible
    callable) — the hook :mod:`repro.cpu.capture_vec` uses to run the
    identical driver (same meta, same boundaries, same checkpoints) on
    the array-native kernel.
    """
    if sim_cls is None:
        sim_cls = PrivateCoreSim
    from repro.trace.shared import make_source

    if slack is None:
        slack = replay_slack()
    finish = quota + warmup
    n_cap = finish + int(round(slack * finish))
    interval = max(TraceSource.CHUNK, -(-n_cap // _TARGET_CHECKPOINTS))
    meta = {
        "format": CAPTURE_FORMAT,
        "benchmarks": list(benchmarks),
        "num_cores": len(benchmarks),
        "quota": quota,
        "warmup": warmup,
        "master_seed": master_seed,
        "slack": slack,
        "length": n_cap,
        "chunk": TraceSource.CHUNK,
        "l1_sets": config.l1.num_sets,
        "l1_ways": config.l1.ways,
        "l2_sets": config.l2.num_sets,
        "l2_ways": config.l2.ways,
        "llc_sets": config.llc.num_sets,
        "l1_next_line_prefetch": bool(config.l1_next_line_prefetch),
        "l2_stride_prefetch": bool(config.l2_stride_prefetch),
        "l2_prefetch_degree": int(config.l2_prefetch_degree),
    }
    geometry = _meta_geometry(meta)

    tapes: list[CoreTape] = []
    for core_id, name in enumerate(benchmarks):
        source = make_source(name, geometry, core_id, master_seed)
        l1, l2, prefetcher = _fresh_private_level(meta, core_id)
        tape = CoreTape()
        sim = sim_cls(
            l1, l2, prefetcher, meta["l1_next_line_prefetch"], source, tape
        )
        boundaries = {n_cap}
        if warmup > 0:
            boundaries.add(warmup)
        boundaries.add(finish)
        boundaries.update(range(interval, n_cap, interval))
        # Index-0 checkpoint: reconstruction of a cut before the first
        # interval starts from the pristine state.
        tape.checkpoints.append(sim.snapshot_state())
        done = 0
        for boundary in sorted(boundaries):
            sim.run(boundary - done)
            done = boundary
            if boundary == warmup and warmup > 0:
                tape.baseline = {
                    "l1_demand_misses": l1.stats.demand_misses[0],
                    "l2_demand_misses": l2.stats.demand_misses[0],
                    "instructions": sim.instr,
                }
                tape.ev_step.append(boundary - 1)
                tape.ev_kind.append(EV_BASELINE)
                tape.ev_addr.append(0)
                tape.ev_pc.append(0)
            if boundary == finish:
                tape.finish = {
                    "l1_demand_misses": l1.stats.demand_misses[0],
                    "l2_demand_misses": l2.stats.demand_misses[0],
                    "instructions": sim.instr,
                }
                tape.ev_step.append(boundary - 1)
                tape.ev_kind.append(EV_SNAPSHOT)
                tape.ev_addr.append(0)
                tape.ev_pc.append(0)
            if boundary % interval == 0 or boundary == n_cap:
                tape.checkpoints.append(sim.snapshot_state())
        tapes.append(tape)

    return CaptureBundle(meta, tapes)


def extend_tape(bundle: CaptureBundle, core_id: int, n: int) -> None:
    """Live continuation: append *n* more captured accesses to one tape.

    Used by the replay kernel when a run outlives the captured stream
    (heavy completion-time skew between co-runners).  The continuation
    runs on scratch private levels resumed from the tape-end checkpoint —
    the engine's own objects stay untouched for the final reconstruction —
    and appends a fresh checkpoint so both further extension and the
    finaliser can pick up from the new end.
    """
    tape = bundle.tapes[core_id]
    sim = tape.live_sim
    if sim is None:
        from repro.trace.shared import make_source

        meta = bundle.meta
        l1, l2, prefetcher = _fresh_private_level(meta, core_id)
        source = make_source(
            meta["benchmarks"][core_id],
            _meta_geometry(meta),
            core_id,
            meta["master_seed"],
        )
        sim = PrivateCoreSim(
            l1, l2, prefetcher, meta["l1_next_line_prefetch"], source, tape
        )
        end_state = tape.checkpoints[-1]
        sim.restore_state(end_state)
        advance_source(source, end_state["index"])
        tape.live_sim = sim
    sim.run(n)
    # Keep the capture pass's checkpoint density: further extension resumes
    # from the persistent live_sim, and the replay finaliser only needs a
    # checkpoint within one interval of the final cut — appending one per
    # extension chunk would bloat long overruns for no benefit.
    meta = bundle.meta
    interval = max(TraceSource.CHUNK, -(-meta["length"] // _TARGET_CHECKPOINTS))
    if sim.count - tape.checkpoints[-1]["index"] >= interval:
        tape.checkpoints.append(sim.snapshot_state())
