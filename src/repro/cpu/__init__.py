"""Behavioural core model and the event-driven multi-core engine."""

from repro.cpu.core import CoreSnapshot, CoreState
from repro.cpu.engine import MulticoreEngine

__all__ = ["CoreSnapshot", "CoreState", "MulticoreEngine"]
