"""Event-driven multi-core interleaving engine.

The engine keeps a min-heap of ``(ready_time, core)`` events.  At each
step the earliest-ready core issues its next memory access into the shared
hierarchy; the observed latency (divided by the benchmark's MLP factor)
plus the compute gap between accesses schedules the core's next event.
This couples co-runner progress through every shared resource — LLC
capacity, LLC banks, the VPC arbiter and DRAM banks — which is exactly the
feedback loop replacement-policy interference studies need.

The engine also owns the paper's **interval clock**: every
``interval_misses`` demand misses at the shared LLC it calls the LLC
policy's ``end_interval`` hook, which is where ADAPT recomputes
Footprint-numbers (Section 3.1: 1M misses on the paper's 16MB cache,
i.e. 4x the number of LLC blocks — the ratio we default to).

Methodology (Section 4.1): like the paper's 200M-instruction fast-forward,
``warmup_accesses`` warms all structures before measurement begins (per
core, statistics baseline at warm-up completion and are subtracted at
snapshot time).  Every core then runs until it completes its measured
quota; cores that finish early *keep running* (the paper re-executes
finished applications) so contention stays representative, but their
statistics are frozen at quota completion.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu import fastpath
from repro.cpu.core import CoreSnapshot, CoreState
from repro.trace.benchmarks import TraceSource


class _Baseline:
    """Per-core counter values at warm-up completion."""

    __slots__ = ("time", "instructions", "accesses", "l1", "l2", "llc", "bypasses")

    def __init__(self) -> None:
        self.time = 0.0
        self.instructions = 0.0
        self.accesses = 0
        self.l1 = 0
        self.l2 = 0
        self.llc = (0, 0)  # (demand accesses, demand misses)
        self.bypasses = 0


class MulticoreEngine:
    """Drives N cores' trace sources through a shared hierarchy."""

    __slots__ = (
        "hierarchy",
        "sources",
        "cores",
        "interval_misses",
        "first_interval_divisor",
        "warmup_accesses",
        "_baselines",
        "_miss_clock",
        "intervals_completed",
        "now",
    )

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        sources: list[TraceSource],
        quota_per_core: int,
        interval_misses: int | None = None,
        warmup_accesses: int = 0,
        first_interval_divisor: int = 1,
    ) -> None:
        if len(sources) != hierarchy.num_cores:
            raise ValueError("need exactly one trace source per core")
        self.hierarchy = hierarchy
        self.sources = sources
        self.cores = [
            CoreState(i, src, quota_per_core) for i, src in enumerate(sources)
        ]
        if interval_misses is None:
            interval_misses = 4 * hierarchy.llc.num_blocks
        self.interval_misses = interval_misses
        # Optionally shorten the very first interval (footprints measured
        # over a short window are proportionally smaller, so this trades
        # classification quality for speed of first decision — kept at 1,
        # i.e. disabled, by default; exposed for the interval ablation).
        self.first_interval_divisor = max(1, first_interval_divisor)
        self.warmup_accesses = warmup_accesses
        self._baselines = [_Baseline() for _ in self.cores]
        self._miss_clock = 0
        self.intervals_completed = 0
        self.now = 0.0

    # -- snapshots ----------------------------------------------------------------

    def _record_baseline(self, core: CoreState, t: float) -> None:
        cid = core.core_id
        h = self.hierarchy
        base = self._baselines[cid]
        base.time = t
        base.instructions = core.instructions
        base.accesses = core.accesses
        base.l1 = h.l1s[cid].stats.demand_misses[0]
        base.l2 = h.l2s[cid].stats.demand_misses[0]
        base.llc = (h.llc.stats.demand_accesses(cid), h.llc.stats.demand_misses[cid])
        base.bypasses = h.llc.stats.bypasses[cid]

    def _take_snapshot(self, core: CoreState, t: float) -> CoreSnapshot:
        cid = core.core_id
        h = self.hierarchy
        base = self._baselines[cid]
        return CoreSnapshot(
            instructions=core.instructions - base.instructions,
            cycles=t - base.time,
            accesses=core.accesses - base.accesses,
            l1_misses=h.l1s[cid].stats.demand_misses[0] - base.l1,
            l2_misses=h.l2s[cid].stats.demand_misses[0] - base.l2,
            llc_accesses=h.llc.stats.demand_accesses(cid) - base.llc[0],
            llc_misses=h.llc.stats.demand_misses[cid] - base.llc[1],
            llc_bypasses=h.llc.stats.bypasses[cid] - base.bypasses,
        )

    # -- main loop -------------------------------------------------------------------

    def run(self, force_generic: bool = False) -> list[CoreSnapshot]:
        """Run warm-up then measurement to completion; one snapshot per core.

        Dispatches to the fused fast-path kernel
        (:mod:`repro.cpu.fastpath`) when the hierarchy matches its
        supported shape; behaviour is bit-for-bit identical either way
        (machine-checked by the golden-master suite).  ``force_generic``
        — or the ``REPRO_NO_FASTPATH`` environment variable — pins the
        generic loop, which is how the differential tests drive both
        kernels over the same configuration.
        """
        if not force_generic and fastpath.fastpath_enabled():
            snapshots = fastpath.run_fast(self)
            if snapshots is not None:
                return snapshots
        return self._run_generic()

    def _run_generic(self) -> list[CoreSnapshot]:
        """The reference one-access-at-a-time loop (fallback kernel)."""
        hierarchy = self.hierarchy
        access = hierarchy.access
        l1_latency = hierarchy.l1_latency
        llc_policy = hierarchy.llc.policy
        interval = self.interval_misses // self.first_interval_divisor
        full_interval = self.interval_misses
        warmup = self.warmup_accesses
        cores = self.cores
        remaining = len(cores)
        warming = len(cores) if warmup > 0 else 0
        if warmup == 0:
            for core in cores:
                self._record_baseline(core, 0.0)

        heap: list[tuple[float, int]] = [(0.0, c.core_id) for c in cores]

        while remaining:
            t, cid = heappop(heap)
            core = cores[cid]
            addr, pc, is_write = core.source.next_access()
            outcome = access(cid, addr, pc, is_write, t)

            core.accesses += 1
            core.instructions += core.instructions_per_access
            stall = outcome.latency - l1_latency
            if stall < 0.0:
                stall = 0.0
            next_t = t + core.compute_cycles_per_access + stall * core.inverse_mlp

            if outcome.llc_demand_miss:
                self._miss_clock += 1
                if self._miss_clock >= interval:
                    llc_policy.end_interval()
                    self._miss_clock = 0
                    self.intervals_completed += 1
                    interval = full_interval

            if warming and core.accesses == warmup:
                self._record_baseline(core, next_t)
                warming -= 1

            if (
                not core.finished
                and core.accesses >= core.quota + self._baselines[cid].accesses
                and (warmup == 0 or core.accesses > warmup)
            ):
                core.finished = True
                core.snapshot = self._take_snapshot(core, next_t)
                remaining -= 1
                if remaining == 0:
                    self.now = next_t
                    break

            heappush(heap, (next_t, cid))

        self.now = max(self.now, max(c.snapshot.cycles for c in cores))
        return [c.snapshot for c in cores]
