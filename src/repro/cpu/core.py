"""Behavioural core model.

The paper evaluates on BADCO, a *behavioural application-dependent core
model*: instead of simulating the pipeline cycle by cycle, each core's
progress is a function of its instruction stream's inherent CPI plus the
memory latencies it observes.  We adopt the same abstraction level:

* between two memory accesses the core retires
  ``instructions_per_access`` instructions at ``base_cpi``;
* a memory access beyond the L1 stalls the core for the observed latency
  divided by the benchmark's memory-level parallelism (MLP) factor —
  streaming codes overlap many misses, pointer chases overlap none.

Per-core bookkeeping (instructions, cycles, completion snapshots) lives in
:class:`CoreState`; the scheduling loop lives in
:mod:`repro.cpu.engine`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.trace.benchmarks import TraceSource


@dataclass
class CoreSnapshot:
    """Statistics frozen at the moment a core completes its quota."""

    instructions: float
    cycles: float
    accesses: int
    l1_misses: int
    l2_misses: int
    llc_accesses: int
    llc_misses: int
    llc_bypasses: int

    def to_dict(self) -> dict:
        """A JSON-safe dict; floats survive the round-trip bit-exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CoreSnapshot":
        return cls(**data)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def mpki(self, misses: int | None = None) -> float:
        """Misses per kilo-instruction; defaults to LLC demand misses."""
        m = self.llc_misses if misses is None else misses
        return 1000.0 * m / self.instructions if self.instructions else 0.0

    @property
    def l2_mpki(self) -> float:
        """The Table 4 intensity metric: L2 misses per kilo-instruction."""
        return self.mpki(self.l2_misses)

    @property
    def llc_mpki(self) -> float:
        return self.mpki(self.llc_misses)


class CoreState:
    """Mutable per-core execution state inside the engine."""

    __slots__ = (
        "core_id",
        "source",
        "quota",
        "accesses",
        "instructions",
        "instructions_per_access",
        "compute_cycles_per_access",
        "inverse_mlp",
        "finished",
        "snapshot",
    )

    def __init__(self, core_id: int, source: TraceSource, quota: int) -> None:
        if quota < 1:
            raise ValueError("quota must be positive")
        self.core_id = core_id
        self.source = source
        self.quota = quota
        self.accesses = 0
        self.instructions = 0.0
        self.instructions_per_access = source.instructions_per_access
        self.compute_cycles_per_access = (
            source.instructions_per_access * source.spec.base_cpi
        )
        self.inverse_mlp = 1.0 / source.spec.mlp
        self.finished = False
        self.snapshot: CoreSnapshot | None = None
