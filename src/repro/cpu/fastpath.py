"""Fused fast-path simulation kernel.

The generic engine walks every access through five object layers
(``MulticoreEngine`` → ``CacheHierarchy`` → three ``SetAssociativeCache``
levels → policy hooks), which costs a dozen Python calls, repeated
attribute chains and an ``AccessOutcome`` allocation per access.  This
module flattens that chain into one loop plus a small set of *per-core
compiled closures* whose free variables carry all hot state:

* residency is answered by kernel-local ``{block_addr: way}`` dicts plus
  per-set valid-way counts (built from — and kept consistent with — the
  caches' address arrays), replacing the generic path's ``list.index``
  scans and their exception-driven miss handling;
* the L1 level (always plain per-core LRU in the standard build) and the
  L2 level (always plain per-core DRRIP) are inlined completely — stats,
  recency/RRPV updates, set duelling, victim selection and fills all
  operate directly on the caches' per-set arrays;
* the shared LLC runs *any* policy: hooks a policy left at known
  implementations are inlined through the
  :class:`~repro.policies.base.FastPathOps` protocol — family RRPV/stamp
  arrays plus the native ``"ship"``/``"eaf"``/``"adapt"`` kinds (SHiP
  signature/outcome training, EAF Bloom-filter updates, ADAPT's monitor
  tap) and inline set-duelling PSEL movement — while overridden hooks
  stay method calls, so bypass and monitoring wrappers behave
  identically;
* both prefetch shapes of the configuration space are inlined too: the
  L1 next-line prefetch (Table 3) and the per-core L2 stride prefetcher
  issue/fill sequence (:mod:`repro.cache.prefetch`), whose traffic is
  non-demand end to end (footnote 4: no recency promotion, no PSEL
  movement, no monitor samples, no interval ticks);
* bank, DRAM, arbiter, MSHR and write-back-buffer timing arithmetic is
  inlined with precomputed masks (the generic path recomputes ``ilog2``
  per access);
* trace sources are consumed as chunk arrays (:meth:`TraceSource.next_chunk`)
  instead of one generator call per access, and a core whose next event
  is still the earliest skips the scheduling heap entirely.

Every operation mutates the *same* state objects in the *same* order as
the generic path, so the two kernels are bit-for-bit equivalent — which
the golden-master suite under ``tests/golden/`` machine-checks for every
registered policy on both the plain and the prefetch-enabled platforms.

``run_fast`` returns ``None`` when the platform does not match the
supported shape (non-standard private-level policies, or duck-typed
trace sources without chunked consumption) and when ``REPRO_NO_FASTPATH``
is set; the engine then falls back to the generic loop.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush, heappushpop

from repro.policies.base import BYPASS, ReplacementPolicy
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import LruPolicy

#: Inline-dispatch modes for the LLC hit/victim/fill hooks.
_CALL, _RRIP, _STACK, _SHIP, _ADAPT = 0, 1, 2, 3, 4
#: Inline-dispatch modes for the LLC eviction hook.
_EV_NONE, _EV_CALL, _EV_SHIP, _EV_EAF = 0, 1, 2, 3

_MASK64 = (1 << 64) - 1


def fastpath_enabled() -> bool:
    """Fast path is on unless ``REPRO_NO_FASTPATH`` is set (differential runs)."""
    return not os.environ.get("REPRO_NO_FASTPATH")


class LlcDispatch:
    """Resolved inline-dispatch plan for one bound LLC policy.

    Computed once per run from the policy's :class:`FastPathOps` by
    :func:`resolve_llc_dispatch`; both inline kernels (the fused loop here
    and the LLC-filtered replay kernel, :mod:`repro.cpu.replay`) unpack the
    same plan, so a policy dispatches identically under either engine.
    """

    __slots__ = (
        "hit_mode",
        "victim_mode",
        "fill_mode",
        "evict_mode",
        "call_on_miss",
        "rows",
        "next_mru",
        "next_lru",
        "max_code",
        "ship_sigs",
        "ship_outcomes",
        "shct",
        "shct_max",
        "shct_entries",
        "sig_bits",
        "sig_mask",
        "sig_salt_shift",
        "eaf",
        "eaf_mults",
        "eaf_size",
        "eaf_capacity",
        "samplers",
        "duel_roles",
        "duel_psels",
    )


def resolve_llc_dispatch(policy) -> LlcDispatch:
    """Map a bound policy's fast-ops onto concrete inline-dispatch modes."""
    d = LlcDispatch()
    ops = policy.fast_ops()
    cls = type(policy)
    call_on_miss = cls.on_miss is not ReplacementPolicy.on_miss
    call_on_evict = cls.on_evict is not ReplacementPolicy.on_evict
    d.ship_sigs = d.ship_outcomes = d.shct = None
    d.shct_max = d.shct_entries = d.sig_bits = d.sig_mask = 0
    d.sig_salt_shift = None
    d.eaf = None
    d.eaf_mults = ()
    d.eaf_size = d.eaf_capacity = 0
    d.samplers = None
    d.duel_roles = d.duel_psels = None
    if ops is None:
        d.hit_mode = d.victim_mode = d.fill_mode = _CALL
        d.evict_mode = _EV_CALL if call_on_evict else _EV_NONE
        d.rows = d.next_mru = d.next_lru = None
        d.max_code = 0
    else:
        kind = ops.kind
        base_mode = _STACK if kind == "stack" else _RRIP
        hit_kind = _SHIP if kind == "ship" else _ADAPT if kind == "adapt" else base_mode
        fill_kind = _SHIP if kind == "ship" else base_mode
        d.hit_mode = hit_kind if ops.hit_inline else _CALL
        d.victim_mode = base_mode if ops.victim_inline else _CALL
        d.fill_mode = fill_kind if ops.fill_inline else _CALL
        if kind == "ship" and ops.evict_inline:
            d.evict_mode = _EV_SHIP
        elif kind == "eaf" and ops.evict_inline:
            d.evict_mode = _EV_EAF
        elif call_on_evict:
            d.evict_mode = _EV_CALL
        else:
            d.evict_mode = _EV_NONE
        d.rows = ops.rows
        d.next_mru, d.next_lru = ops.next_mru, ops.next_lru
        d.max_code = ops.max_code
        if kind == "ship":
            d.ship_sigs, d.ship_outcomes = ops.ship_sigs, ops.ship_outcomes
            d.shct = ops.shct
            d.shct_max = ops.shct_max
            d.shct_entries = ops.shct_entries
            d.sig_bits = ops.sig_bits
            d.sig_mask = (1 << ops.sig_bits) - 1
            d.sig_salt_shift = ops.sig_salt_shift
        elif kind == "eaf":
            eaf = ops.eaf_filter
            d.eaf = eaf
            d.eaf_mults = tuple(eaf._MULTIPLIERS[: eaf.num_hashes])
            d.eaf_size = eaf.size
            d.eaf_capacity = eaf.capacity
        elif kind == "adapt":
            d.samplers = ops.samplers
        if ops.miss_inline:
            # Duelling PSEL movement executes inline; the PSEL object's
            # ``value`` is written through so decide_insertion (a call)
            # observes every update.
            call_on_miss = False
            d.duel_roles = ops.duel_roles
            d.duel_psels = ops.duel_psels
    d.call_on_miss = call_on_miss
    return d


def _decode_chunk(source, set_mask: int) -> tuple:
    """Fetch and pre-decode one trace chunk: native lists + set indices.

    ``next_chunk`` hands back NumPy arrays; the per-access loop wants plain
    Python scalars (dict keys, arbitrary-precision arithmetic) and the L1
    set index of every access.  Both conversions are done here with
    vectorised NumPy operations, once per ``CHUNK`` — replacing the old
    per-access ``addr & mask`` arithmetic and the per-chunk ``tolist``
    inside the sources.

    Returns ``(addrs, sets, pcs, writes, position)``.
    """
    arr_addrs, arr_pcs, arr_writes, pos = source.next_chunk()
    return (
        arr_addrs.tolist(),
        (arr_addrs & set_mask).tolist(),
        arr_pcs.tolist(),
        arr_writes.tolist(),
        pos,
    )


def _residency(cache) -> tuple[dict, list[int]]:
    """Kernel-local residency index: ``{addr: way}`` plus valid ways per set.

    A block address determines its set, so one flat dict per cache is
    unambiguous.  Built from the cache's current contents (normally empty)
    and maintained by the kernel in lock-step with the address arrays.
    """
    lookup: dict[int, int] = {}
    valid: list[int] = []
    for row in cache.addrs:
        count = 0
        for way, addr in enumerate(row):
            if addr != -1:
                lookup[addr] = way
                count += 1
        valid.append(count)
    return lookup, valid


def run_fast(engine) -> list | None:
    """Run *engine* to completion on the fused kernel.

    Returns the per-core snapshots, or ``None`` when the hierarchy does not
    match the supported shape (the caller must then use the generic loop).
    """
    h = engine.hierarchy
    l1s, l2s, llc = h.l1s, h.l2s, h.llc
    for cache in l1s:
        if type(cache.policy) is not LruPolicy:
            return None
    for cache in l2s:
        if type(cache.policy) is not DrripPolicy:
            return None
    for source in engine.sources:
        # Duck-typed sources (instrumentation wrappers exposing only
        # next_access) run on the generic loop.
        if not hasattr(source, "next_chunk"):
            return None

    cores = engine.cores
    sources = engine.sources
    n = h.num_cores

    # -- LLC state (any policy; inline what the FastPathOps allow) ----------
    llc_mask = llc.set_mask
    llc_ways = llc.ways
    llc_lookup, llc_valid = _residency(llc)
    llc_addrs = llc.addrs
    llc_dirty = llc.dirty
    llc_owner = llc.owner
    llc_reused = llc.reused
    llc_occ = llc.occupancy
    s3 = llc.stats
    llc_dh, llc_dm = s3.demand_hits, s3.demand_misses
    llc_oh, llc_om = s3.other_hits, s3.other_misses
    llc_by, llc_wbarr = s3.bypasses, s3.writeback_arrivals
    llc_ev, llc_dev, llc_fl = s3.evictions, s3.dirty_evictions, s3.fills

    policy = llc.policy
    dispatch = resolve_llc_dispatch(policy)
    call_on_miss = dispatch.call_on_miss
    hit_mode = dispatch.hit_mode
    victim_mode = dispatch.victim_mode
    fill_mode = dispatch.fill_mode
    evict_mode = dispatch.evict_mode
    rows3 = dispatch.rows
    nmru3, nlru3 = dispatch.next_mru, dispatch.next_lru
    max3 = dispatch.max_code
    sig3, out3, shct3 = dispatch.ship_sigs, dispatch.ship_outcomes, dispatch.shct
    shct_max3 = dispatch.shct_max
    sig_entries3 = dispatch.shct_entries
    sig_bits3 = dispatch.sig_bits
    sig_mask3 = dispatch.sig_mask
    salt3 = dispatch.sig_salt_shift
    eaf3 = dispatch.eaf
    eaf_mults3 = dispatch.eaf_mults
    eaf_size3, eaf_cap3 = dispatch.eaf_size, dispatch.eaf_capacity
    samplers3 = dispatch.samplers
    duel_roles3, duel_psels3 = dispatch.duel_roles, dispatch.duel_psels
    p_on_hit = policy.on_hit
    p_on_miss = policy.on_miss
    p_on_evict = policy.on_evict
    p_on_fill = policy.on_fill
    p_decide = policy.decide_insertion
    p_victim = policy.victim
    end_interval = policy.end_interval

    # -- timing models ------------------------------------------------------
    l1_latency = h.l1_latency
    l2_latency = h.l2_latency
    banks = h.llc_banks
    bank_mask = banks.num_banks - 1
    bank_free = banks._free_at
    bank_occ = banks.occupancy
    bank_lat = banks.latency
    dram = h.dram
    dram_mask = dram.num_banks - 1
    dram_bpr = dram.blocks_per_row
    dram_open = dram._open_row
    dram_busy = dram._busy_until
    dram_hit = dram.row_hit_cycles
    dram_conf = dram.row_conflict_cycles
    dram_occ = dram.bank_occupancy
    arb = h.arbiter
    arb_virtual = arb._virtual
    arb_window = arb.window
    arb_cost = arb.service_cycles * arb.num_cores
    mshr = h.llc_mshr
    msh_heap = mshr._completions if mshr is not None else None
    msh_by = mshr._by_block if mshr is not None else None
    msh_entries = mshr.entries if mshr is not None else 0
    llc_wb = h.llc_wb_buffer

    # Hot scalar counters live in locals (closure cells) for the duration of
    # the run and are written back to their objects in the ``finally`` block;
    # nothing reads them mid-run (baselines/snapshots read cache stats only).
    dram_reads = dram.reads
    dram_writes = dram.writes
    dram_rowhits = dram.row_hits
    dram_rowconf = dram.row_conflicts
    bank_accs = banks.accesses
    bank_confs = banks.conflicts
    arb_reqs = arb.requests
    arb_throt = arb.throttled
    mshr_merged = mshr.merged if mshr is not None else 0
    mshr_stalls = mshr.stalls if mshr is not None else 0
    msh_get = msh_by.get if msh_by is not None else None
    llc_get = llc_lookup.get
    llc_sets = llc.num_sets

    # -- prefetch configuration ---------------------------------------------
    l1_pf = h.l1_next_line_prefetch
    l2_pfs = h.l2_prefetchers
    prefetches_issued = h.prefetches_issued

    # -- DRAM write-back path (LLC write-back buffer inlined) ---------------

    if llc_wb is not None:
        wb3_heap = llc_wb._retires
        wb3_entries = llc_wb.entries
        wb3_retire_at = llc_wb.retire_at
        wb3_drain = llc_wb.drain_cycles
        wb3_stalls = llc_wb.stalls
        wb3_admitted = llc_wb.admitted
        wb3_last = llc_wb._last_retire
    else:
        wb3_stalls = wb3_admitted = 0
        wb3_last = 0.0

    def wb_to_dram(addr, now):
        nonlocal wb3_stalls, wb3_admitted, wb3_last
        nonlocal dram_writes, dram_rowhits, dram_rowconf
        start = now
        if llc_wb is not None:
            while wb3_heap and wb3_heap[0] <= start:
                heappop(wb3_heap)
            if len(wb3_heap) >= wb3_entries:
                start = wb3_heap[0]
                wb3_stalls += 1
                while wb3_heap and wb3_heap[0] <= start:
                    heappop(wb3_heap)
            if len(wb3_heap) >= wb3_retire_at:
                retire = (wb3_last if wb3_last > start else start) + wb3_drain
            else:
                retire = start + wb3_drain
            wb3_last = retire
            heappush(wb3_heap, retire)
            wb3_admitted += 1
        dram_writes += 1
        dram_row = addr // dram_bpr
        bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
        bstart = dram_busy[bank]
        if bstart < start:
            bstart = start
        if dram_open[bank] == dram_row:
            dram_rowhits += 1
        else:
            dram_rowconf += 1
            dram_open[bank] = dram_row
        dram_busy[bank] = bstart + dram_occ

    # -- per-core compiled closures -----------------------------------------

    def compile_core(cid):
        """Bind one core's L2/arbiter/write-back state into closures.

        Returns ``(fetch_below, l1_victim_to_l2)``; both mutate the shared
        LLC/DRAM structures through the enclosing scope.
        """
        l2 = l2s[cid]
        mask2 = l2.set_mask
        ways2 = l2.ways
        lookup2, valid2 = _residency(l2)
        rows2 = l2.addrs
        dirty2 = l2.dirty
        reused2 = l2.reused
        occ2 = l2.occupancy
        st2 = l2.stats
        dh2, dm2 = st2.demand_hits, st2.demand_misses
        oh2, om2 = st2.other_hits, st2.other_misses
        wba2 = st2.writeback_arrivals
        ev2, dev2, fl2 = st2.evictions, st2.dirty_evictions, st2.fills
        pol2 = l2.policy
        rrpv2 = pol2.rrpv
        maxr2 = pol2.max_rrpv
        psel2 = pol2._psel
        tick2 = pol2._ticker
        psel_val = psel2.value
        psel_max = psel2.max_value
        psel_thr = psel2.threshold
        tick_cnt = tick2._count
        tick_phase = tick2._phase
        tick_den = tick2.denominator
        l2_get = lookup2.get
        roles_get = pol2._duel.roles_for(0).get
        if samplers3 is not None:
            smp3 = samplers3[cid]
            mon_get = smp3._index_of.get
            mon_arrays = smp3._arrays
        else:
            smp3 = mon_get = mon_arrays = None
        if duel_psels3 is not None:
            d_psel = duel_psels3[cid]
            d_get = duel_roles3[cid].get
            d_max = d_psel.max_value
        else:
            d_psel = d_get = None
            d_max = 0
        pf2 = l2_pfs[cid] if l2_pfs is not None else None
        pf2_train = pf2.train if pf2 is not None else None
        wb2 = h.l2_wb_buffers[cid] if h.l2_wb_buffers is not None else None
        if wb2 is not None:
            wb2_heap = wb2._retires
            wb2_entries = wb2.entries
            wb2_retire_at = wb2.retire_at
            wb2_drain = wb2.drain_cycles
            wb2_stalls = wb2.stalls
            wb2_admitted = wb2.admitted
            wb2_last = wb2._last_retire
        else:
            wb2_stalls = wb2_admitted = 0
            wb2_last = 0.0

        def sync_core():
            """Write localized per-core scalar state back to its objects."""
            psel2.value = psel_val
            tick2._count = tick_cnt
            if wb2 is not None:
                wb2.stalls = wb2_stalls
                wb2.admitted = wb2_admitted
                wb2._last_retire = wb2_last

        def llc_fill(addr, s, pc, decision, is_write, is_demand):
            """Select a victim if needed and install *addr* in the LLC.

            The single fill sequence both LLC miss flavours share (demand
            reads and L2-victim write-backs); returns
            ``(victim_addr, victim_dirty)``.
            """
            victim_addr = -1
            victim_dirty = False
            row = llc_addrs[s]
            if llc_valid[s] < llc_ways:
                way = row.index(-1)
                llc_valid[s] += 1
            else:
                if victim_mode == _RRIP:
                    rrow = rows3[s]
                    current_max = max(rrow)
                    if current_max < max3:
                        delta = max3 - current_max
                        rrow[:] = [v + delta for v in rrow]
                    way = rrow.index(max3)
                elif victim_mode == _STACK:
                    srow = rows3[s]
                    way = srow.index(min(srow))
                else:
                    way = p_victim(s, cid)
                victim_addr = row[way]
                victim_dirty = llc_dirty[s][way]
                victim_owner = llc_owner[s][way]
                if evict_mode == _EV_SHIP:
                    # Eviction without reuse punishes the line's signature.
                    if not out3[s][way]:
                        sg = sig3[s][way]
                        v = shct3[sg]
                        if v > 0:
                            shct3[sg] = v - 1
                elif evict_mode == _EV_EAF:
                    # Bloom-filter insert (multiplicative hash family); the
                    # bit array is re-read because clear() rebinds it.
                    mixed = (victim_addr ^ (victim_addr >> 17)) + 0x9E37
                    bits = eaf3._bits
                    for mult in eaf_mults3:
                        bits[(((mixed * mult) & _MASK64) >> 31) % eaf_size3] = 1
                    ins = eaf3.inserted + 1
                    eaf3.inserted = ins
                    if ins >= eaf_cap3:
                        eaf3.clear()
                elif evict_mode == _EV_CALL:
                    p_on_evict(
                        s,
                        way,
                        victim_owner,
                        victim_addr,
                        llc_reused[s][way],
                    )
                llc_ev[victim_owner] += 1
                if victim_dirty:
                    llc_dev[victim_owner] += 1
                llc_occ[victim_owner] -= 1
                del llc_lookup[victim_addr]
            row[way] = addr
            llc_lookup[addr] = way
            llc_dirty[s][way] = is_write
            llc_owner[s][way] = cid
            llc_reused[s][way] = False
            llc_occ[cid] += 1
            llc_fl[cid] += 1
            if fill_mode == _RRIP:
                rows3[s][way] = decision
            elif fill_mode == _SHIP:
                # RRIP install plus the folded PC signature and a fresh
                # outcome bit (write-back fills are born "reused" so their
                # eviction never punishes signature 0).
                rows3[s][way] = decision
                value = pc if salt3 is None else pc ^ (cid << salt3)
                folded = 0
                while value:
                    folded ^= value & sig_mask3
                    value >>= sig_bits3
                sig3[s][way] = folded % sig_entries3
                out3[s][way] = not is_demand
            elif fill_mode == _STACK:
                if decision == 1:  # MRU_INSERT
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    st = nlru3[s]
                    rows3[s][way] = st
                    nlru3[s] = st - 1
            else:
                p_on_fill(s, way, decision, cid, pc, addr, is_demand)
            return victim_addr, victim_dirty

        def wb_to_llc(addr, now):
            """A dirty L2 victim arrives at the LLC (non-demand write)."""
            nonlocal wb2_stalls, wb2_admitted, wb2_last, bank_accs, bank_confs
            start = now
            if wb2 is not None:
                while wb2_heap and wb2_heap[0] <= start:
                    heappop(wb2_heap)
                if len(wb2_heap) >= wb2_entries:
                    start = wb2_heap[0]
                    wb2_stalls += 1
                    while wb2_heap and wb2_heap[0] <= start:
                        heappop(wb2_heap)
                if len(wb2_heap) >= wb2_retire_at:
                    retire = (wb2_last if wb2_last > start else start) + wb2_drain
                else:
                    retire = start + wb2_drain
                wb2_last = retire
                heappush(wb2_heap, retire)
                wb2_admitted += 1
            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_wbarr[cid] += 1
            bypassed = False
            victim_addr = -1
            victim_dirty = False
            if way >= 0:
                llc_oh[cid] += 1
                llc_dirty[s][way] = True
                if hit_mode == _CALL:
                    # Family defaults ignore non-demand hits; overridden
                    # hooks must still see them.
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, 0, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                    bypassed = True
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, 0, decision, True, False
                    )
            # Bank timing runs after the content operation (generic order).
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            if bypassed:
                # The policy refused allocation; the dirty data must still
                # land somewhere, so it streams through to memory.
                wb_to_dram(addr, start)
            elif victim_dirty:
                wb_to_dram(victim_addr, start)

        def l2_fill(addr, s, insertion, dirty):
            """Select a victim if needed and install *addr* in the L2.

            The single fill sequence both L2 miss flavours share (demand
            fetches and dirty L1 victims); returns
            ``(victim_addr, victim_dirty)``.
            """
            victim_addr = -1
            victim_dirty = False
            row = rows2[s]
            if valid2[s] < ways2:
                way = row.index(-1)
                valid2[s] += 1
            else:
                rrow = rrpv2[s]
                current_max = max(rrow)
                if current_max < maxr2:
                    delta = maxr2 - current_max
                    rrow[:] = [v + delta for v in rrow]
                way = rrow.index(maxr2)
                victim_addr = row[way]
                victim_dirty = dirty2[s][way]
                ev2[0] += 1
                if victim_dirty:
                    dev2[0] += 1
                occ2[0] -= 1
                del lookup2[victim_addr]
            row[way] = addr
            lookup2[addr] = way
            dirty2[s][way] = dirty
            reused2[s][way] = False
            occ2[0] += 1
            fl2[0] += 1
            rrpv2[s][way] = insertion
            return victim_addr, victim_dirty

        def l1_victim_to_l2(addr, now):
            """A dirty L1 victim arrives at the private L2 (inlined DRRIP)."""
            s = addr & mask2
            way = l2_get(addr, -1)
            wba2[0] += 1
            if way >= 0:
                oh2[0] += 1
                dirty2[s][way] = True
                # Non-demand hit: no RRPV promotion.
                return
            om2[0] += 1
            # DRRIP for non-demand traffic: no PSEL movement, distant
            # insertion, no ticker draw.
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, True)
            if victim_dirty:
                wb_to_llc(victim_addr, now)

        def fetch_nondemand(addr, pc, now):
            """L2 and below for a non-demand (prefetch) fill.

            Mirrors the demand path of :func:`fetch_below` minus recency
            promotion, PSEL movement, prefetcher training and interval
            accounting — prefetches are non-demand end to end (paper
            footnote 4) and never stall the core, so the completion time
            is discarded.
            """
            nonlocal arb_reqs, arb_throt, bank_accs, bank_confs
            nonlocal mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            t_l2 = now + l1_latency
            s = addr & mask2
            way = l2_get(addr, -1)
            if way >= 0:
                # Non-demand hit: no RRPV promotion, no reuse marking.
                oh2[0] += 1
                return
            om2[0] += 1
            # DRRIP for non-demand traffic: no PSEL movement, distant
            # insertion, no ticker draw.
            victim_addr, victim_dirty = l2_fill(addr, s, maxr2, False)
            if victim_dirty:
                wb_to_llc(victim_addr, t_l2)

            # The prefetch request travels through the VPC arbiter too.
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base = vclock if vclock > start else start
            arb_virtual[cid] = base + arb_cost

            # LLC non-demand read (content first, bank timing second).
            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_oh[cid] += 1
                if hit_mode == _CALL:
                    # Family defaults ignore non-demand hits; overridden
                    # hooks must still see them.
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, pc, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, False
                    )
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            # LLC miss: fill from DRAM through the MSHR (same inline
            # sequence as the demand path).
            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dram_row = addr // dram_bpr
            bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
            dstart = dram_busy[bank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[bank] == dram_row:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[bank] = dram_row
            dram_busy[bank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done

        def fetch_below(addr, pc, now):
            """L2 and below for a demand access.

            Returns ``(completion_time, llc_demand_miss)``.
            """
            nonlocal psel_val, tick_cnt, arb_reqs, arb_throt
            nonlocal bank_accs, bank_confs, mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            nonlocal prefetches_issued
            t_l2 = now + l1_latency
            s = addr & mask2
            way = l2_get(addr, -1)
            if way >= 0:
                dh2[0] += 1
                reused2[s][way] = True
                rrpv2[s][way] = 0  # demand-hit promotion
                return t_l2 + l2_latency, False
            dm2[0] += 1
            # DRRIP on_miss: leader-set misses move the PSEL (before
            # decide_insertion reads it).
            leader = roles_get(s, -1)
            if leader == 0:  # SRRIP leader missed
                value = psel_val + 1
                psel_val = value if value <= psel_max else psel_max
            elif leader == 1:  # BRRIP leader missed
                value = psel_val - 1
                psel_val = value if value >= 0 else 0
            # DRRIP decide_insertion (demand).
            if leader == 0:
                insertion = maxr2 - 1
            elif leader == 1 or psel_val >= psel_thr:
                fired = tick_cnt == tick_phase
                tick_cnt += 1
                if tick_cnt == tick_den:
                    tick_cnt = 0
                insertion = maxr2 - 1 if fired else maxr2
            else:
                insertion = maxr2 - 1
            victim_addr, victim_dirty = l2_fill(addr, s, insertion, False)
            if victim_dirty:
                wb_to_llc(victim_addr, t_l2)

            if pf2_train is not None:
                # Stride prefetcher trains on L2 demand misses and fills
                # the L2 with non-demand traffic (footnote 4 semantics).
                for pfa in pf2_train(pc, addr):
                    if pfa >= 0 and pfa not in lookup2:
                        prefetches_issued += 1
                        fetch_nondemand(pfa, pc, now)

            # L2 miss: the request travels through the VPC arbiter.
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base = vclock if vclock > start else start
            arb_virtual[cid] = base + arb_cost

            # LLC demand read (content first, bank timing second).
            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_dh[cid] += 1
                llc_reused[s][way] = True
                if hit_mode == _RRIP:
                    rows3[s][way] = 0
                elif hit_mode == _SHIP:
                    # Promotion plus signature training: every demand
                    # re-reference sets the outcome bit and bumps the SHCT.
                    rows3[s][way] = 0
                    out3[s][way] = True
                    sg = sig3[s][way]
                    v = shct3[sg]
                    if v < shct_max3:
                        shct3[sg] = v + 1
                elif hit_mode == _ADAPT:
                    # Promotion plus the Footprint monitor tap (sampled
                    # sets only; the dict miss is the common case).
                    rows3[s][way] = 0
                    ai = mon_get(s)
                    if ai is not None:
                        smp3.samples += 1
                        mon_arrays[ai].observe(addr // llc_sets)
                elif hit_mode == _STACK:
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    p_on_hit(s, way, cid, True, addr)
            else:
                llc_dm[cid] += 1
                if d_psel is not None:
                    # Inline duelling on_miss: leader-set demand misses
                    # move this thread's PSEL (saturating both ways).
                    role = d_get(s, -1)
                    if role == 0:
                        v = d_psel.value + 1
                        if v <= d_max:
                            d_psel.value = v
                    elif role == 1:
                        v = d_psel.value - 1
                        if v >= 0:
                            d_psel.value = v
                elif call_on_miss:
                    p_on_miss(s, cid, True)
                decision = p_decide(s, cid, pc, addr, True)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, True
                    )
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return t_bank, False
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            # LLC miss: fill from DRAM through the MSHR (inlined; the dict
            # shrink is done in place so the bound ``get`` stays valid).
            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return done, True
                # reserve(): expire completed entries, then back-pressure.
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dram_row = addr // dram_bpr
            bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
            dstart = dram_busy[bank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[bank] == dram_row:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[bank] = dram_row
            dram_busy[bank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done
            return done, True

        return fetch_below, l1_victim_to_l2, fetch_nondemand, sync_core

    fetch_below_for = [None] * n
    l1_victim_for = [None] * n
    fetch_nd_for = [None] * n
    core_syncs = [None] * n
    for cid in range(n):
        (
            fetch_below_for[cid],
            l1_victim_for[cid],
            fetch_nd_for[cid],
            core_syncs[cid],
        ) = compile_core(cid)

    # -- L1 state (plain LRU, single-core stats), packed per core -----------
    # Hit tuple: (mask, lookup.get, dh, reused, dirty, stamp, next_mru)
    # Miss tuple: (lookup, valid, rows, occ, dm, om, ev, dev, fl)
    l1_hit_state = []
    l1_miss_state = []
    for c in l1s:
        lookup, valid = _residency(c)
        st = c.stats
        l1_hit_state.append(
            (
                c.set_mask,
                lookup.get,
                st.demand_hits,
                c.reused,
                c.dirty,
                c.policy._stamp,
                c.policy._next_mru,
            )
        )
        l1_miss_state.append(
            (
                lookup,
                valid,
                c.addrs,
                c.occupancy,
                st.demand_misses,
                st.other_misses,
                st.evictions,
                st.dirty_evictions,
                st.fills,
            )
        )

    # -- the fused engine loop ----------------------------------------------

    interval = engine.interval_misses // engine.first_interval_divisor
    full_interval = engine.interval_misses
    warmup = engine.warmup_accesses
    no_warmup = warmup == 0
    baselines = engine._baselines
    remaining = n
    warming = n if warmup > 0 else 0
    if no_warmup:
        for core in cores:
            engine._record_baseline(core, 0.0)
    miss_clock = engine._miss_clock
    intervals_completed = engine.intervals_completed

    accesses = [c.accesses for c in cores]
    instructions = [c.instructions for c in cores]
    ipa = [c.instructions_per_access for c in cores]
    compute = [c.compute_cycles_per_access for c in cores]
    inv_mlp = [c.inverse_mlp for c in cores]
    finished = [c.finished for c in cores]
    # Completion thresholds; re-derived when a warm-up baseline is recorded.
    thresholds = [c.quota + baselines[i].accesses for i, c in enumerate(cores)]

    t_addrs: list = [None] * n
    t_sets: list = [None] * n
    t_pcs: list = [None] * n
    t_writes: list = [None] * n
    t_pos = [0] * n
    t_len = [0] * n
    for i, src in enumerate(sources):
        t_addrs[i], t_sets[i], t_pcs[i], t_writes[i], t_pos[i] = _decode_chunk(
            src, l1s[i].set_mask
        )
        t_len[i] = len(t_addrs[i])

    heap: list[tuple[float, int]] = [(0.0, c.core_id) for c in cores]
    t, cid = heappop(heap)
    done_all = False

    # Two-level loop: the outer level (re)binds one core's state into plain
    # locals; the inner level then processes that core's events back to back
    # for as long as it remains the earliest-ready core.  Nothing is pushed
    # onto the heap during such a burst, so the head comparison is cheap and
    # exactly equivalent to the generic pop/push sequence.
    try:
        while not done_all:
            mask1, get1, dh1, reused1, dirty1, stamp1, nmru1 = l1_hit_state[cid]
            comp_c = compute[cid]
            ipa_c = ipa[cid]
            imlp_c = inv_mlp[cid]
            fetch_c = fetch_below_for[cid]
            l1v_c = l1_victim_for[cid]
            fetch_nd_c = fetch_nd_for[cid]
            bhits = 0  # L1 hits accumulated locally, flushed at sync points
            buf_a = t_addrs[cid]
            buf_s = t_sets[cid]
            buf_p = t_pcs[cid]
            buf_w = t_writes[cid]
            pos = t_pos[cid]
            length = t_len[cid]
            count = accesses[cid]
            instr = instructions[cid]
            threshold_c = thresholds[cid]
            fin_c = finished[cid]

            while True:
                if pos >= length:
                    src = sources[cid]
                    src.commit(pos)
                    buf_a, buf_s, buf_p, buf_w, pos = _decode_chunk(src, mask1)
                    t_addrs[cid] = buf_a
                    t_sets[cid] = buf_s
                    t_pcs[cid] = buf_p
                    t_writes[cid] = buf_w
                    length = len(buf_a)
                    t_len[cid] = length
                addr = buf_a[pos]

                # L1 access (demand): inlined single-core LRU.
                way = get1(addr, -1)
                if way >= 0:
                    bhits += 1
                    s = buf_s[pos]
                    reused1[s][way] = True
                    if buf_w[pos]:
                        dirty1[s][way] = True
                    stamp = nmru1[s]
                    stamp1[s][way] = stamp
                    nmru1[s] = stamp + 1
                    pos += 1
                    count += 1
                    instr += ipa_c
                    next_t = t + comp_c
                else:
                    s = buf_s[pos]
                    is_write = buf_w[pos]
                    (
                        lookup1,
                        valid1,
                        rows1,
                        occ1,
                        dm1,
                        om1,
                        ev1,
                        dev1,
                        fl1,
                    ) = l1_miss_state[cid]
                    dm1[0] += 1
                    # LruPolicy never bypasses; insertion is always MRU.
                    victim_addr = -1
                    victim_dirty = False
                    row = rows1[s]
                    if valid1[s] < len(row):
                        way = row.index(-1)
                        valid1[s] += 1
                    else:
                        srow = stamp1[s]
                        way = srow.index(min(srow))
                        victim_addr = row[way]
                        victim_dirty = dirty1[s][way]
                        ev1[0] += 1
                        if victim_dirty:
                            dev1[0] += 1
                        occ1[0] -= 1
                        del lookup1[victim_addr]
                    row[way] = addr
                    lookup1[addr] = way
                    dirty1[s][way] = is_write
                    reused1[s][way] = False
                    occ1[0] += 1
                    fl1[0] += 1
                    stamp = nmru1[s]
                    stamp1[s][way] = stamp
                    nmru1[s] = stamp + 1
                    if victim_dirty:
                        l1v_c(victim_addr, t)
                    done, llc_demand_miss = fetch_c(addr, buf_p[pos], t)
                    if l1_pf:
                        # Next-line prefetch into L1 (Table 3): issued on
                        # every demand L1 miss, non-demand all the way
                        # down, never stalls the core.
                        pfa = addr + 1
                        if pfa not in lookup1:
                            prefetches_issued += 1
                            om1[0] += 1
                            victim_addr = -1
                            victim_dirty = False
                            s = pfa & mask1
                            row = rows1[s]
                            if valid1[s] < len(row):
                                way = row.index(-1)
                                valid1[s] += 1
                            else:
                                srow = stamp1[s]
                                way = srow.index(min(srow))
                                victim_addr = row[way]
                                victim_dirty = dirty1[s][way]
                                ev1[0] += 1
                                if victim_dirty:
                                    dev1[0] += 1
                                occ1[0] -= 1
                                del lookup1[victim_addr]
                            row[way] = pfa
                            lookup1[pfa] = way
                            dirty1[s][way] = False
                            reused1[s][way] = False
                            occ1[0] += 1
                            fl1[0] += 1
                            stamp = nmru1[s]
                            stamp1[s][way] = stamp
                            nmru1[s] = stamp + 1
                            if victim_dirty:
                                l1v_c(victim_addr, t)
                            fetch_nd_c(pfa, buf_p[pos], t)
                    pos += 1
                    count += 1
                    instr += ipa_c
                    latency = done - t
                    stall = latency - l1_latency
                    if stall < 0.0:
                        stall = 0.0
                    next_t = t + comp_c + stall * imlp_c

                    if llc_demand_miss:
                        miss_clock += 1
                        if miss_clock >= interval:
                            end_interval()
                            miss_clock = 0
                            intervals_completed += 1
                            interval = full_interval

                if warming and count == warmup:
                    if bhits:
                        dh1[0] += bhits
                        bhits = 0
                    core = cores[cid]
                    core.accesses = accesses[cid] = count
                    core.instructions = instructions[cid] = instr
                    engine._record_baseline(core, next_t)
                    threshold_c = thresholds[cid] = (
                        core.quota + baselines[cid].accesses
                    )
                    warming -= 1

                if (
                    count >= threshold_c
                    and not fin_c
                    and (no_warmup or count > warmup)
                ):
                    if bhits:
                        dh1[0] += bhits
                        bhits = 0
                    fin_c = finished[cid] = True
                    core = cores[cid]
                    core.accesses = accesses[cid] = count
                    core.instructions = instructions[cid] = instr
                    core.finished = True
                    core.snapshot = engine._take_snapshot(core, next_t)
                    remaining -= 1
                    if remaining == 0:
                        engine.now = next_t
                        t_pos[cid] = pos
                        done_all = True
                        break

                # Keep running this core while its next event is still the
                # earliest — equivalent to heappushpop returning our item.
                if heap:
                    head = heap[0]
                    head_t = head[0]
                    if next_t < head_t or (next_t == head_t and cid < head[1]):
                        t = next_t
                        continue
                    accesses[cid] = count
                    instructions[cid] = instr
                    t_pos[cid] = pos
                    if bhits:
                        dh1[0] += bhits
                    t, cid = heappushpop(heap, (next_t, cid))
                    break
                t = next_t
    finally:
        # Write the loop-local state back so the engine, cores, sources and
        # timing models are indistinguishable from a generic-path run.
        for i, core in enumerate(cores):
            core.accesses = accesses[i]
            core.instructions = instructions[i]
            sources[i].commit(t_pos[i])
        engine._miss_clock = miss_clock
        engine.intervals_completed = intervals_completed
        h.prefetches_issued = prefetches_issued
        dram.reads = dram_reads
        dram.writes = dram_writes
        dram.row_hits = dram_rowhits
        dram.row_conflicts = dram_rowconf
        banks.accesses = bank_accs
        banks.conflicts = bank_confs
        arb.requests = arb_reqs
        arb.throttled = arb_throt
        if mshr is not None:
            mshr.merged = mshr_merged
            mshr.stalls = mshr_stalls
        if llc_wb is not None:
            llc_wb.stalls = wb3_stalls
            llc_wb.admitted = wb3_admitted
            llc_wb._last_retire = wb3_last
        for sync in core_syncs:
            sync()

    engine.now = max(engine.now, max(c.snapshot.cycles for c in cores))
    return [c.snapshot for c in cores]
