"""LLC-filtered replay kernel: sweep policies at LLC speed.

The second tier of the fast-path family.  A policy sweep runs the *same*
(workload, platform, seed) once per policy; the fused kernel
(:mod:`repro.cpu.fastpath`) re-simulates the identical private-level
behaviour every time.  This kernel instead consumes a capture bundle
(:mod:`repro.cpu.capture`) — per-core step streams, LLC-bound event
streams and private-state checkpoints recorded once — and simulates only:

* the shared LLC (any policy, through the same
  :class:`~repro.cpu.fastpath.LlcDispatch` inline plan as the fused
  kernel), the bank/DRAM/arbiter/MSHR/write-back timing models, and
* each core's clock: the fused kernel's exact floating-point recurrence
  re-executed over the recorded step codes, with the demand-fetch
  completion time feeding back into the stall term.

Event-bearing accesses are merged across cores through the same
``(time, core)`` scheduling order the fused burst heap produces, so every
LLC mutation, PSEL/SHCT/monitor update, interval tick and timing-model
counter lands in the identical order with identical timestamps — the two
kernels are bit-for-bit equivalent, which the golden differential suite
machine-checks.

Eligibility mirrors the fused kernel (plain-LRU L1s, plain-DRRIP L2s,
chunked trace sources) plus a bundle whose identity matches the engine;
``run_replay`` returns ``None`` otherwise and the caller falls back.
``REPRO_NO_REPLAY`` (or ``REPRO_NO_FASTPATH``) disables the kernel.

When a run outlives a captured stream (heavy completion-time skew between
co-runners) the affected core switches to live private-level continuation
— bit-identical, just no longer amortised.  After the run, the engine's
private caches, sources and prefetchers are reconstructed to the exact
policy-dependent stop point from the nearest checkpoint, so the engine is
indistinguishable from a fused-kernel run.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush

from repro.cpu import capture as cap
from repro.cpu.core import CoreSnapshot
from repro.cpu.fastpath import (
    _ADAPT,
    _CALL,
    _EV_CALL,
    _EV_EAF,
    _EV_SHIP,
    _MASK64,
    _RRIP,
    _SHIP,
    _STACK,
    fastpath_enabled,
    resolve_llc_dispatch,
)
from repro.policies.base import BYPASS
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import LruPolicy


#: Event/step codes shared with the capture pass — aliased (and hoisted to
#: closure locals below) so a renumbering in :mod:`repro.cpu.capture`
#: cannot silently desynchronise the dispatch here.
EV_WB0, EV_WB1, EV_ND = cap.EV_WB0, cap.EV_WB1, cap.EV_ND
EV_DEMAND, EV_BASELINE, EV_SNAPSHOT = cap.EV_DEMAND, cap.EV_BASELINE, cap.EV_SNAPSHOT
STEP_L2HIT, STEP_LLC = cap.STEP_L2HIT, cap.STEP_LLC


def replay_enabled() -> bool:
    """Replay is on unless ``REPRO_NO_REPLAY`` or ``REPRO_NO_FASTPATH`` is set."""
    return not os.environ.get("REPRO_NO_REPLAY") and fastpath_enabled()


def _eligible(engine, bundle) -> bool:
    """Does *bundle* describe exactly this engine's platform and budgets?"""
    h = engine.hierarchy
    meta = bundle.meta
    if meta.get("format") != cap.CAPTURE_FORMAT:
        return False
    if h.num_cores != meta["num_cores"] or len(bundle.tapes) != meta["num_cores"]:
        return False
    for cache in h.l1s:
        if type(cache.policy) is not LruPolicy:
            return False
    for cache in h.l2s:
        if type(cache.policy) is not DrripPolicy:
            return False
    l1, l2 = h.l1s[0], h.l2s[0]
    if (l1.num_sets, l1.ways) != (meta["l1_sets"], meta["l1_ways"]):
        return False
    if (l2.num_sets, l2.ways) != (meta["l2_sets"], meta["l2_ways"]):
        return False
    if h.llc.num_sets != meta["llc_sets"]:
        return False
    if bool(h.l1_next_line_prefetch) != meta["l1_next_line_prefetch"]:
        return False
    if (h.l2_prefetchers is not None) != meta["l2_stride_prefetch"]:
        return False
    if h.l2_prefetchers is not None and (
        h.l2_prefetchers[0].degree != meta["l2_prefetch_degree"]
    ):
        return False
    if engine.warmup_accesses != meta["warmup"]:
        return False
    for core, source, name in zip(engine.cores, engine.sources, meta["benchmarks"]):
        if core.quota != meta["quota"] or core.accesses != 0:
            return False
        # Duck-typed sources (no chunked consumption / unknown identity)
        # and mismatched trace identities run on the fused/generic path.
        if not hasattr(source, "next_chunk"):
            return False
        spec = getattr(source, "spec", None)
        if spec is None or spec.name != name:
            return False
        if getattr(source, "master_seed", None) != meta["master_seed"]:
            return False
        if type(source).CHUNK != meta["chunk"]:
            return False
    return True


def run_replay(engine, bundle, finalize: bool = True) -> list | None:
    """Run *engine* to completion by replaying a capture bundle.

    Returns the per-core snapshots, or ``None`` when the engine does not
    match the bundle (the caller must then fall back to the fused or
    generic kernel).

    With ``finalize`` (the default), the engine's private caches, sources
    and prefetchers are reconstructed to the exact policy-dependent stop
    point, so the whole engine ends bit-for-bit identical to a
    fused-kernel run.  Sweep drivers that consume only the returned
    snapshots (and the LLC-side state, which is always exact) pass
    ``finalize=False`` to skip that reconstruction — the private levels
    then simply keep their pristine pre-run state.
    """
    if not _eligible(engine, bundle):
        return None

    h = engine.hierarchy
    llc = h.llc
    cores = engine.cores
    n = h.num_cores
    tapes = bundle.tapes
    meta = bundle.meta
    warmup = meta["warmup"]
    finish_count = meta["quota"] + warmup

    # -- LLC state (identical bindings to the fused kernel) -----------------
    llc_mask = llc.set_mask
    llc_ways = llc.ways
    llc_lookup, llc_valid = cap._residency(llc)
    llc_addrs = llc.addrs
    llc_dirty = llc.dirty
    llc_owner = llc.owner
    llc_reused = llc.reused
    llc_occ = llc.occupancy
    s3 = llc.stats
    llc_dh, llc_dm = s3.demand_hits, s3.demand_misses
    llc_oh, llc_om = s3.other_hits, s3.other_misses
    llc_by, llc_wbarr = s3.bypasses, s3.writeback_arrivals
    llc_ev, llc_dev, llc_fl = s3.evictions, s3.dirty_evictions, s3.fills

    policy = llc.policy
    d = resolve_llc_dispatch(policy)
    call_on_miss = d.call_on_miss
    hit_mode = d.hit_mode
    victim_mode = d.victim_mode
    fill_mode = d.fill_mode
    evict_mode = d.evict_mode
    rows3 = d.rows
    nmru3, nlru3 = d.next_mru, d.next_lru
    max3 = d.max_code
    sig3, out3, shct3 = d.ship_sigs, d.ship_outcomes, d.shct
    shct_max3 = d.shct_max
    sig_entries3 = d.shct_entries
    sig_bits3 = d.sig_bits
    sig_mask3 = d.sig_mask
    salt3 = d.sig_salt_shift
    eaf3 = d.eaf
    eaf_mults3 = d.eaf_mults
    eaf_size3, eaf_cap3 = d.eaf_size, d.eaf_capacity
    samplers3 = d.samplers
    duel_roles3, duel_psels3 = d.duel_roles, d.duel_psels
    p_on_hit = policy.on_hit
    p_on_miss = policy.on_miss
    p_on_evict = policy.on_evict
    p_on_fill = policy.on_fill
    p_decide = policy.decide_insertion
    p_victim = policy.victim
    end_interval = policy.end_interval

    # -- timing models (identical bindings to the fused kernel) -------------
    l1_latency = h.l1_latency
    l2_latency = h.l2_latency
    banks = h.llc_banks
    bank_mask = banks.num_banks - 1
    bank_free = banks._free_at
    bank_occ = banks.occupancy
    bank_lat = banks.latency
    dram = h.dram
    dram_mask = dram.num_banks - 1
    dram_bpr = dram.blocks_per_row
    dram_open = dram._open_row
    dram_busy = dram._busy_until
    dram_hit = dram.row_hit_cycles
    dram_conf = dram.row_conflict_cycles
    dram_occ = dram.bank_occupancy
    arb = h.arbiter
    arb_virtual = arb._virtual
    arb_window = arb.window
    arb_cost = arb.service_cycles * arb.num_cores
    mshr = h.llc_mshr
    msh_heap = mshr._completions if mshr is not None else None
    msh_by = mshr._by_block if mshr is not None else None
    msh_entries = mshr.entries if mshr is not None else 0
    llc_wb = h.llc_wb_buffer

    dram_reads = dram.reads
    dram_writes = dram.writes
    dram_rowhits = dram.row_hits
    dram_rowconf = dram.row_conflicts
    bank_accs = banks.accesses
    bank_confs = banks.conflicts
    arb_reqs = arb.requests
    arb_throt = arb.throttled
    mshr_merged = mshr.merged if mshr is not None else 0
    mshr_stalls = mshr.stalls if mshr is not None else 0
    msh_get = msh_by.get if msh_by is not None else None
    llc_get = llc_lookup.get
    llc_sets = llc.num_sets

    if llc_wb is not None:
        wb3_heap = llc_wb._retires
        wb3_entries = llc_wb.entries
        wb3_retire_at = llc_wb.retire_at
        wb3_drain = llc_wb.drain_cycles
        wb3_stalls = llc_wb.stalls
        wb3_admitted = llc_wb.admitted
        wb3_last = llc_wb._last_retire
    else:
        wb3_stalls = wb3_admitted = 0
        wb3_last = 0.0

    def wb_to_dram(addr, now):
        nonlocal wb3_stalls, wb3_admitted, wb3_last
        nonlocal dram_writes, dram_rowhits, dram_rowconf
        start = now
        if llc_wb is not None:
            while wb3_heap and wb3_heap[0] <= start:
                heappop(wb3_heap)
            if len(wb3_heap) >= wb3_entries:
                start = wb3_heap[0]
                wb3_stalls += 1
                while wb3_heap and wb3_heap[0] <= start:
                    heappop(wb3_heap)
            if len(wb3_heap) >= wb3_retire_at:
                retire = (wb3_last if wb3_last > start else start) + wb3_drain
            else:
                retire = start + wb3_drain
            wb3_last = retire
            heappush(wb3_heap, retire)
            wb3_admitted += 1
        dram_writes += 1
        dram_row = addr // dram_bpr
        bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
        bstart = dram_busy[bank]
        if bstart < start:
            bstart = start
        if dram_open[bank] == dram_row:
            dram_rowhits += 1
        else:
            dram_rowconf += 1
            dram_open[bank] = dram_row
        dram_busy[bank] = bstart + dram_occ

    # -- engine bookkeeping --------------------------------------------------
    interval = engine.interval_misses // engine.first_interval_divisor
    full_interval = engine.interval_misses
    no_warmup = warmup == 0
    baselines = engine._baselines
    remaining = n
    if no_warmup:
        for core in cores:
            engine._record_baseline(core, 0.0)
    miss_clock = engine._miss_clock
    intervals_completed = engine.intervals_completed

    #: Per-core resume point: first unprocessed access index and its issue
    #: time (set after every processed event group; the final cut walk
    #: restarts from here).
    resume_idx = [0] * n
    resume_t = [0.0] * n
    cut = [0.0, -1]  # (t_F, cid_F): the run-ending access in heap order
    final_next_t = [0.0]
    # Shared capture codes as closure locals for the hot dispatch below.
    ev_wb0, ev_wb1, ev_nd = EV_WB0, EV_WB1, EV_ND
    ev_demand, ev_baseline = EV_DEMAND, EV_BASELINE
    step_l2hit, step_llc = STEP_L2HIT, STEP_LLC

    # -- per-core compiled closures -----------------------------------------

    def compile_core(cid):
        tape = tapes[cid]
        steps = tape.steps  # bytearray; grows in place on live extension
        ev_step = tape.ev_step
        ev_kind = tape.ev_kind
        ev_addr = tape.ev_addr
        ev_pc = tape.ev_pc
        core = cores[cid]
        comp_c = core.compute_cycles_per_access
        imlp_c = core.inverse_mlp
        base = baselines[cid]

        if samplers3 is not None:
            smp3 = samplers3[cid]
            mon_get = smp3._index_of.get
            mon_arrays = smp3._arrays
        else:
            smp3 = mon_get = mon_arrays = None
        if duel_psels3 is not None:
            d_psel = duel_psels3[cid]
            d_get = duel_roles3[cid].get
            d_max = d_psel.max_value
        else:
            d_psel = d_get = None
            d_max = 0
        wb2 = h.l2_wb_buffers[cid] if h.l2_wb_buffers is not None else None
        if wb2 is not None:
            wb2_heap = wb2._retires
            wb2_entries = wb2.entries
            wb2_retire_at = wb2.retire_at
            wb2_drain = wb2.drain_cycles
            wb2_stalls = wb2.stalls
            wb2_admitted = wb2.admitted
            wb2_last = wb2._last_retire
        else:
            wb2_stalls = wb2_admitted = 0
            wb2_last = 0.0

        def sync_core():
            if wb2 is not None:
                wb2.stalls = wb2_stalls
                wb2.admitted = wb2_admitted
                wb2._last_retire = wb2_last

        def llc_fill(addr, s, pc, decision, is_write, is_demand):
            """Identical to the fused kernel's ``llc_fill``."""
            victim_addr = -1
            victim_dirty = False
            row = llc_addrs[s]
            if llc_valid[s] < llc_ways:
                way = row.index(-1)
                llc_valid[s] += 1
            else:
                if victim_mode == _RRIP:
                    rrow = rows3[s]
                    current_max = max(rrow)
                    if current_max < max3:
                        delta = max3 - current_max
                        rrow[:] = [v + delta for v in rrow]
                    way = rrow.index(max3)
                elif victim_mode == _STACK:
                    srow = rows3[s]
                    way = srow.index(min(srow))
                else:
                    way = p_victim(s, cid)
                victim_addr = row[way]
                victim_dirty = llc_dirty[s][way]
                victim_owner = llc_owner[s][way]
                if evict_mode == _EV_SHIP:
                    if not out3[s][way]:
                        sg = sig3[s][way]
                        v = shct3[sg]
                        if v > 0:
                            shct3[sg] = v - 1
                elif evict_mode == _EV_EAF:
                    mixed = (victim_addr ^ (victim_addr >> 17)) + 0x9E37
                    bits = eaf3._bits
                    for mult in eaf_mults3:
                        bits[(((mixed * mult) & _MASK64) >> 31) % eaf_size3] = 1
                    ins = eaf3.inserted + 1
                    eaf3.inserted = ins
                    if ins >= eaf_cap3:
                        eaf3.clear()
                elif evict_mode == _EV_CALL:
                    p_on_evict(
                        s,
                        way,
                        victim_owner,
                        victim_addr,
                        llc_reused[s][way],
                    )
                llc_ev[victim_owner] += 1
                if victim_dirty:
                    llc_dev[victim_owner] += 1
                llc_occ[victim_owner] -= 1
                del llc_lookup[victim_addr]
            row[way] = addr
            llc_lookup[addr] = way
            llc_dirty[s][way] = is_write
            llc_owner[s][way] = cid
            llc_reused[s][way] = False
            llc_occ[cid] += 1
            llc_fl[cid] += 1
            if fill_mode == _RRIP:
                rows3[s][way] = decision
            elif fill_mode == _SHIP:
                rows3[s][way] = decision
                value = pc if salt3 is None else pc ^ (cid << salt3)
                folded = 0
                while value:
                    folded ^= value & sig_mask3
                    value >>= sig_bits3
                sig3[s][way] = folded % sig_entries3
                out3[s][way] = not is_demand
            elif fill_mode == _STACK:
                if decision == 1:  # MRU_INSERT
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    st = nlru3[s]
                    rows3[s][way] = st
                    nlru3[s] = st - 1
            else:
                p_on_fill(s, way, decision, cid, pc, addr, is_demand)
            return victim_addr, victim_dirty

        def wb_to_llc(addr, now):
            """Identical to the fused kernel's ``wb_to_llc``."""
            nonlocal wb2_stalls, wb2_admitted, wb2_last, bank_accs, bank_confs
            start = now
            if wb2 is not None:
                while wb2_heap and wb2_heap[0] <= start:
                    heappop(wb2_heap)
                if len(wb2_heap) >= wb2_entries:
                    start = wb2_heap[0]
                    wb2_stalls += 1
                    while wb2_heap and wb2_heap[0] <= start:
                        heappop(wb2_heap)
                if len(wb2_heap) >= wb2_retire_at:
                    retire = (wb2_last if wb2_last > start else start) + wb2_drain
                else:
                    retire = start + wb2_drain
                wb2_last = retire
                heappush(wb2_heap, retire)
                wb2_admitted += 1
            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_wbarr[cid] += 1
            bypassed = False
            victim_addr = -1
            victim_dirty = False
            if way >= 0:
                llc_oh[cid] += 1
                llc_dirty[s][way] = True
                if hit_mode == _CALL:
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, 0, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                    bypassed = True
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, 0, decision, True, False
                    )
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            if bypassed:
                wb_to_dram(addr, start)
            elif victim_dirty:
                wb_to_dram(victim_addr, start)

        def nondemand_llc(addr, pc, now):
            """The LLC-and-below half of ``fetch_nondemand`` (arbiter on)."""
            nonlocal arb_reqs, arb_throt, bank_accs, bank_confs
            nonlocal mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            t_l2 = now + l1_latency
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base_v = vclock if vclock > start else start
            arb_virtual[cid] = base_v + arb_cost

            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_oh[cid] += 1
                if hit_mode == _CALL:
                    p_on_hit(s, way, cid, False, addr)
            else:
                llc_om[cid] += 1
                if call_on_miss:
                    p_on_miss(s, cid, False)
                decision = p_decide(s, cid, pc, addr, False)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, False
                    )
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dram_row = addr // dram_bpr
            bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
            dstart = dram_busy[bank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[bank] == dram_row:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[bank] = dram_row
            dram_busy[bank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done

        def demand_llc(addr, pc, now):
            """The LLC-and-below half of ``fetch_below`` (arbiter on).

            Returns ``(completion_time, llc_demand_miss)``.
            """
            nonlocal arb_reqs, arb_throt, bank_accs, bank_confs
            nonlocal mshr_merged, mshr_stalls
            nonlocal dram_reads, dram_rowhits, dram_rowconf
            t_l2 = now + l1_latency
            t_in = t_l2 + l2_latency
            arb_reqs += 1
            vclock = arb_virtual[cid]
            start = t_in
            earliest = vclock - arb_window
            if earliest > t_in:
                start = earliest
                arb_throt += 1
            base_v = vclock if vclock > start else start
            arb_virtual[cid] = base_v + arb_cost

            s = addr & llc_mask
            way = llc_get(addr, -1)
            llc_hit = way >= 0
            victim_addr = -1
            victim_dirty = False
            if llc_hit:
                llc_dh[cid] += 1
                llc_reused[s][way] = True
                if hit_mode == _RRIP:
                    rows3[s][way] = 0
                elif hit_mode == _SHIP:
                    rows3[s][way] = 0
                    out3[s][way] = True
                    sg = sig3[s][way]
                    v = shct3[sg]
                    if v < shct_max3:
                        shct3[sg] = v + 1
                elif hit_mode == _ADAPT:
                    rows3[s][way] = 0
                    ai = mon_get(s)
                    if ai is not None:
                        smp3.samples += 1
                        mon_arrays[ai].observe(addr // llc_sets)
                elif hit_mode == _STACK:
                    st = nmru3[s]
                    rows3[s][way] = st
                    nmru3[s] = st + 1
                else:
                    p_on_hit(s, way, cid, True, addr)
            else:
                llc_dm[cid] += 1
                if d_psel is not None:
                    role = d_get(s, -1)
                    if role == 0:
                        v = d_psel.value + 1
                        if v <= d_max:
                            d_psel.value = v
                    elif role == 1:
                        v = d_psel.value - 1
                        if v >= 0:
                            d_psel.value = v
                elif call_on_miss:
                    p_on_miss(s, cid, True)
                decision = p_decide(s, cid, pc, addr, True)
                if decision is BYPASS:
                    llc_by[cid] += 1
                else:
                    victim_addr, victim_dirty = llc_fill(
                        addr, s, pc, decision, False, True
                    )
            bank = (addr & bank_mask) ^ ((addr >> 8) & bank_mask)
            bstart = bank_free[bank]
            if bstart > start:
                bank_confs += 1
            else:
                bstart = start
            bank_free[bank] = bstart + bank_occ
            bank_accs += 1
            t_bank = bstart + bank_lat
            if llc_hit:
                return t_bank, False
            if victim_dirty:
                wb_to_dram(victim_addr, t_bank)

            t_dram = t_bank
            if mshr is not None:
                done = msh_get(addr)
                if done is not None and done > t_bank:
                    mshr_merged += 1
                    return done, True
                while msh_heap and msh_heap[0] <= t_dram:
                    heappop(msh_heap)
                if not msh_heap:
                    msh_by.clear()
                elif len(msh_by) > 2 * len(msh_heap):
                    keep = {blk: tt for blk, tt in msh_by.items() if tt > t_dram}
                    msh_by.clear()
                    msh_by.update(keep)
                if len(msh_heap) >= msh_entries:
                    t_dram = msh_heap[0]
                    mshr_stalls += 1
                    while msh_heap and msh_heap[0] <= t_dram:
                        heappop(msh_heap)
                    if not msh_heap:
                        msh_by.clear()
                    elif len(msh_by) > 2 * len(msh_heap):
                        keep = {
                            blk: tt for blk, tt in msh_by.items() if tt > t_dram
                        }
                        msh_by.clear()
                        msh_by.update(keep)
            dram_reads += 1
            dram_row = addr // dram_bpr
            bank = (dram_row & dram_mask) ^ ((dram_row >> 8) & dram_mask)
            dstart = dram_busy[bank]
            if dstart < t_dram:
                dstart = t_dram
            if dram_open[bank] == dram_row:
                latency = dram_hit
                dram_rowhits += 1
            else:
                latency = dram_conf
                dram_rowconf += 1
                dram_open[bank] = dram_row
            dram_busy[bank] = dstart + dram_occ
            done = dstart + latency
            if mshr is not None:
                heappush(msh_heap, done)
                msh_by[addr] = done
            return done, True

        # -- the clock + event cursor ----------------------------------------

        # idx: next step to walk; t: issue time of access ``idx``; p: next
        # event-stream entry.  The clock walk reproduces the fused kernel's
        # per-access float recurrence op for op.
        idx = 0
        t_clock = 0.0
        p = 0

        def seek_event():
            """Walk the clock to the next event-bearing access.

            Returns its issue time; extends the tape live (one chunk per
            call) when the run has outgrown the captured stream.  A core
            whose extension produced no event yet returns a *provisional*
            wake-up at the issue time of its first ungenerated access —
            a lower bound on any future event, so heap order is preserved
            and a core gone LLC-silent can never stall the other cores'
            run to completion (each wake-up makes one chunk of progress).
            """
            nonlocal idx, t_clock
            if p >= len(ev_step):
                cap.extend_tape(bundle, cid, meta["chunk"])
            e = ev_step[p] if p < len(ev_step) else len(steps)
            i = idx
            t = t_clock
            while i < e:
                if steps[i]:
                    t_l2 = t + l1_latency
                    done = t_l2 + l2_latency
                    latency = done - t
                    stall = latency - l1_latency
                    if stall < 0.0:
                        stall = 0.0
                    t = t + comp_c + stall * imlp_c
                else:
                    t = t + comp_c
                i += 1
            idx = i
            t_clock = t
            return t

        def process(t):
            """Process the pending event group; returns the next event time
            (or ``None`` once the whole run has completed)."""
            nonlocal miss_clock, intervals_completed, interval, remaining
            nonlocal idx, t_clock, p
            if p >= len(ev_step):
                # Provisional wake-up: no event generated yet — extend by
                # another chunk and reschedule.
                return seek_event()
            e = ev_step[p]
            code = steps[e]
            saw_baseline = False
            saw_snapshot = False
            n_ev = len(ev_step)
            p1 = p + 1
            if ev_kind[p] == ev_demand and (p1 == n_ev or ev_step[p1] != e):
                # Overwhelmingly common group shape: one demand fetch.
                done, demand_missed = demand_llc(ev_addr[p], ev_pc[p], t)
                p = p1
            else:
                done = 0.0
                demand_missed = False
                while p < n_ev and ev_step[p] == e:
                    k = ev_kind[p]
                    if k == ev_demand:
                        done, demand_missed = demand_llc(ev_addr[p], ev_pc[p], t)
                    elif k == ev_wb0:
                        wb_to_llc(ev_addr[p], t)
                    elif k == ev_wb1:
                        wb_to_llc(ev_addr[p], t + l1_latency)
                    elif k == ev_nd:
                        nondemand_llc(ev_addr[p], ev_pc[p], t)
                    elif k == ev_baseline:
                        saw_baseline = True
                    else:
                        saw_snapshot = True
                    p += 1

            if code == step_llc:
                latency = done - t
                stall = latency - l1_latency
                if stall < 0.0:
                    stall = 0.0
                next_t = t + comp_c + stall * imlp_c
            elif code == step_l2hit:
                t_l2 = t + l1_latency
                done = t_l2 + l2_latency
                latency = done - t
                stall = latency - l1_latency
                if stall < 0.0:
                    stall = 0.0
                next_t = t + comp_c + stall * imlp_c
            else:
                next_t = t + comp_c

            if demand_missed:
                miss_clock += 1
                if miss_clock >= interval:
                    end_interval()
                    miss_clock = 0
                    intervals_completed += 1
                    interval = full_interval

            if saw_baseline:
                rec = tape.baseline
                base.time = next_t
                base.instructions = rec["instructions"]
                base.accesses = warmup
                base.l1 = rec["l1_demand_misses"]
                base.l2 = rec["l2_demand_misses"]
                base.llc = (llc_dh[cid] + llc_dm[cid], llc_dm[cid])
                base.bypasses = llc_by[cid]

            if saw_snapshot:
                rec = tape.finish
                core.finished = True
                core.snapshot = CoreSnapshot(
                    instructions=rec["instructions"] - base.instructions,
                    cycles=next_t - base.time,
                    accesses=finish_count - base.accesses,
                    l1_misses=rec["l1_demand_misses"] - base.l1,
                    l2_misses=rec["l2_demand_misses"] - base.l2,
                    llc_accesses=(llc_dh[cid] + llc_dm[cid]) - base.llc[0],
                    llc_misses=llc_dm[cid] - base.llc[1],
                    llc_bypasses=llc_by[cid] - base.bypasses,
                )
                remaining -= 1
                if remaining == 0:
                    cut[0] = t
                    cut[1] = cid
                    final_next_t[0] = next_t
                    resume_idx[cid] = e + 1
                    resume_t[cid] = next_t
                    return None

            idx = e + 1
            t_clock = next_t
            resume_idx[cid] = e + 1
            resume_t[cid] = next_t
            return seek_event()

        def cut_walk(t_f, cid_f):
            """How many of this core's accesses the fused kernel would have
            processed before the run-ending access ``(t_f, cid_f)``."""
            i = resume_idx[cid]
            t = resume_t[cid]
            while t < t_f or (t == t_f and cid < cid_f):
                if steps[i]:
                    t_l2 = t + l1_latency
                    done = t_l2 + l2_latency
                    latency = done - t
                    stall = latency - l1_latency
                    if stall < 0.0:
                        stall = 0.0
                    t = t + comp_c + stall * imlp_c
                else:
                    t = t + comp_c
                i += 1
            return i

        return seek_event, process, cut_walk, sync_core

    seekers = [None] * n
    processors = [None] * n
    cut_walks = [None] * n
    core_syncs = [None] * n
    for cid in range(n):
        seekers[cid], processors[cid], cut_walks[cid], core_syncs[cid] = compile_core(cid)

    # -- the replay loop -----------------------------------------------------
    # Like the fused kernel's burst heap: keep processing one core's event
    # groups while its next event is still the earliest.
    try:
        heap: list[tuple[float, int]] = []
        for cid in range(n):
            heappush(heap, (seekers[cid](), cid))
        running = True
        while running:
            t, cid = heappop(heap)
            proc = processors[cid]
            if heap:
                head = heap[0]
                while True:
                    nxt = proc(t)
                    if nxt is None:
                        running = False
                        break
                    head_t = head[0]
                    if nxt < head_t or (nxt == head_t and cid < head[1]):
                        t = nxt
                        continue
                    heappush(heap, (nxt, cid))
                    break
            else:
                while True:
                    nxt = proc(t)
                    if nxt is None:
                        running = False
                        break
                    t = nxt
    finally:
        # Write the loop-local timing/counter state back (same discipline
        # as the fused kernel's ``finally`` block).
        engine._miss_clock = miss_clock
        engine.intervals_completed = intervals_completed
        dram.reads = dram_reads
        dram.writes = dram_writes
        dram.row_hits = dram_rowhits
        dram.row_conflicts = dram_rowconf
        banks.accesses = bank_accs
        banks.conflicts = bank_confs
        arb.requests = arb_reqs
        arb.throttled = arb_throt
        if mshr is not None:
            mshr.merged = mshr_merged
            mshr.stalls = mshr_stalls
        if llc_wb is not None:
            llc_wb.stalls = wb3_stalls
            llc_wb.admitted = wb3_admitted
            llc_wb._last_retire = wb3_last
        for sync in core_syncs:
            sync()

    # -- final private-level reconstruction ----------------------------------
    if finalize:
        t_f, cid_f = cut[0], cut[1]
        prefetches_issued = 0
        for cid in range(n):
            n_i = finish_count if cid == cid_f else cut_walks[cid](t_f, cid_f)
            tape = tapes[cid]
            ck = None
            for candidate in tape.checkpoints:
                if candidate["index"] <= n_i:
                    ck = candidate
                else:
                    break
            source = engine.sources[cid]
            pf = h.l2_prefetchers[cid] if h.l2_prefetchers is not None else None
            sim = cap.PrivateCoreSim(
                h.l1s[cid], h.l2s[cid], pf, h.l1_next_line_prefetch, source
            )
            sim.restore_state(ck)
            cap.advance_source(source, ck["index"])
            sim.run(n_i - ck["index"], record=False)
            core = cores[cid]
            core.accesses = n_i
            core.instructions = sim.instr
            prefetches_issued += sim.pf_issued
        h.prefetches_issued = prefetches_issued

    engine.now = final_next_t[0]
    engine.now = max(engine.now, max(c.snapshot.cycles for c in cores))
    return [c.snapshot for c in cores]
