"""Bit manipulation and cache-geometry helpers.

All addresses in the simulator are *block addresses*: byte addresses already
shifted right by ``log2(block_size)``.  The helpers here split block
addresses into (tag, set index), fold tags down to partial tags (ADAPT's
monitor stores only the top 10 tag bits), and compute XOR-permutation bank
indices in the style of Zhang, Zhu and Zhang (MICRO 2000), which the paper's
baseline DRAM uses ("XOR-mapped").
"""

from __future__ import annotations


def is_pow2(value: int) -> bool:
    """Return ``True`` when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two.

    Raises :class:`ValueError` for non powers of two so that cache geometry
    mistakes fail loudly at construction time instead of silently aliasing
    sets.
    """
    if not is_pow2(value):
        raise ValueError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def block_align(byte_address: int, block_size: int) -> int:
    """Convert a byte address to a block address."""
    return byte_address >> ilog2(block_size)


def split_address(block_address: int, num_sets: int) -> tuple[int, int]:
    """Split a block address into ``(tag, set_index)``.

    The set index is the low ``log2(num_sets)`` bits of the block address,
    the tag is everything above it — the standard set-associative mapping.
    """
    set_bits = ilog2(num_sets)
    return block_address >> set_bits, block_address & (num_sets - 1)


def xor_fold(value: int, width: int) -> int:
    """Fold *value* down to *width* bits by XOR-ing ``width``-bit chunks.

    Used to derive compact signatures (e.g. SHiP's 14-bit PC signature and
    ADAPT's 10-bit partial tags) that still mix high-order bits in, so two
    nearby addresses rarely collide.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def xor_bank_index(block_address: int, num_banks: int, *, entropy_shift: int = 8) -> int:
    """Permutation-based (XOR-mapped) bank index.

    Mixes a higher-order address slice into the naive low-order bank bits,
    following the permutation-based interleaving of Zhang et al. (MICRO
    2000), which the paper's memory model cites ([28]).  This spreads
    strided streams across banks and avoids pathological row-buffer
    conflicts for power-of-two strides.
    """
    bank_bits = ilog2(num_banks)
    low = block_address & (num_banks - 1)
    high = (block_address >> entropy_shift) & (num_banks - 1)
    return (low ^ high) & ((1 << bank_bits) - 1)
