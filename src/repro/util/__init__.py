"""Low-level utilities shared by every subsystem.

This package holds the deterministic building blocks the simulator is made
of: named pseudo-random streams (:mod:`repro.util.rng`), bit-manipulation
and cache-geometry helpers (:mod:`repro.util.bitops`), saturating counters
and deterministic "1 out of N" tickers (:mod:`repro.util.counters`) and
small statistics helpers (:mod:`repro.util.stats`).
"""

from repro.util.bitops import (
    block_align,
    ilog2,
    is_pow2,
    split_address,
    xor_fold,
    xor_bank_index,
)
from repro.util.counters import SaturatingCounter, FractionTicker, PselCounter
from repro.util.rng import RngStreams, derive_seed
from repro.util.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    normalize_series,
)

__all__ = [
    "block_align",
    "ilog2",
    "is_pow2",
    "split_address",
    "xor_fold",
    "xor_bank_index",
    "SaturatingCounter",
    "FractionTicker",
    "PselCounter",
    "RngStreams",
    "derive_seed",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "normalize_series",
]
