"""Saturating counters and deterministic probabilistic tickers.

Hardware proposals in the DIP/RRIP lineage rely on two primitives:

* **saturating counters** — PSEL duelling counters, SHiP's SHCT entries,
  ADAPT's per-set unique-block counters; and
* **"1 out of N" events** — BIP/BRRIP's epsilon insertions, ADAPT's
  1/16th and 1/32nd discrete insertion exceptions.

Real hardware uses free-running counters rather than true randomness, and a
deterministic ticker keeps every simulation exactly reproducible, so we
model both that way.
"""

from __future__ import annotations


class SaturatingCounter:
    """An ``n``-bit saturating counter.

    ``increment``/``decrement`` clamp at the representable range.  The
    counter can be biased at construction (set-duelling PSEL counters start
    at their midpoint).
    """

    __slots__ = ("bits", "value", "max_value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial {initial} out of range for {bits}-bit counter")
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        self.value = min(self.max_value, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        self.value = max(0, self.value - amount)
        return self.value

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError("reset value out of range")
        self.value = value

    @property
    def saturated_high(self) -> bool:
        return self.value == self.max_value

    @property
    def saturated_low(self) -> bool:
        return self.value == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class PselCounter(SaturatingCounter):
    """A set-duelling policy-selection (PSEL) counter.

    DIP and (TA-)DRRIP pick between two competing policies with a counter
    that misses on one group of dedicated sets increment and misses on the
    other group decrement.  The winning policy for follower sets is read
    from the counter's most significant bit: values at or above the midpoint
    select the *second* policy.

    The paper's configuration is a 10-bit counter with threshold 512.
    Initialised one below the threshold (MSB 0), so the *first* policy is
    the default until the duel produces evidence — the DIP convention.
    """

    def __init__(self, bits: int = 10) -> None:
        super().__init__(bits, initial=(1 << bits) // 2 - 1)
        self.threshold = (1 << bits) // 2

    @property
    def selects_second(self) -> bool:
        """True when the counter currently favours the second policy."""
        return self.value >= self.threshold


class FractionTicker:
    """Deterministic "1 out of N" event source.

    ``tick()`` returns ``True`` exactly once every *denominator* calls (on
    the first call of each window by default, matching a free-running
    hardware counter that fires on wrap-around).  Used for BIP/BRRIP's
    1/32 epsilon insertions and ADAPT's 1/16 and 1/32 exceptions, keeping
    runs bit-for-bit reproducible.
    """

    __slots__ = ("denominator", "_count", "_phase")

    def __init__(self, denominator: int, *, phase: int = 0) -> None:
        if denominator < 1:
            raise ValueError("denominator must be >= 1")
        if not 0 <= phase < denominator:
            raise ValueError("phase must be in [0, denominator)")
        self.denominator = denominator
        self._phase = phase
        self._count = 0

    def tick(self) -> bool:
        fired = self._count == self._phase
        self._count += 1
        if self._count == self.denominator:
            self._count = 0
        return fired

    def reset(self) -> None:
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FractionTicker(1/{self.denominator}, count={self._count})"
