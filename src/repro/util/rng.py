"""Named deterministic random-number streams.

Every stochastic component of the reproduction (synthetic address streams,
workload composition, any randomized policy) draws from a stream derived
from a master seed and a component name.  Two properties matter:

* **isolation** — adding a new consumer of randomness never perturbs the
  streams other components see, so experiments stay comparable across code
  changes; and
* **reproducibility** — the full experiment suite is a pure function of the
  master seed.

Streams are `numpy` :class:`~numpy.random.Generator` instances seeded via
:class:`numpy.random.SeedSequence` spawning, which is the supported way to
derive independent child streams.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name.

    Uses CRC32 of the name mixed with the master seed; stable across Python
    processes and versions (unlike ``hash()``, which is salted).
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return (master_seed * 0x9E3779B97F4A7C15 + tag) % (1 << 63)


class RngStreams:
    """A factory of named, independent random generators.

    Example
    -------
    >>> streams = RngStreams(master_seed=42)
    >>> g1 = streams.get("trace/mcf")
    >>> g2 = streams.get("trace/mcf")
    >>> g1 is g2
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for *name*, resetting any prior state.

        Useful when a benchmark stream must restart from its beginning
        (the paper re-executes applications that finish early).
        """
        stream = np.random.default_rng(derive_seed(self.master_seed, name))
        self._streams[name] = stream
        return stream
