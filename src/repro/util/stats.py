"""Small statistics helpers used by the multi-core throughput metrics.

The paper evaluates with weighted speed-up plus the harmonic mean of
normalized IPCs and the arithmetic/geometric/harmonic means of raw IPCs
(Table 7), citing Michaud's "Demystifying multicore throughput metrics".
The mean implementations live here; the metric definitions that combine
them with IPC_alone baselines live in :mod:`repro.metrics.throughput`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def _validate(values: Sequence[float], *, positive: bool) -> None:
    if len(values) == 0:
        raise ValueError("mean of an empty sequence is undefined")
    if positive and any(v <= 0 for v in values):
        raise ValueError("all values must be strictly positive")


def arithmetic_mean(values: Sequence[float]) -> float:
    _validate(values, positive=False)
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    _validate(values, positive=True)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    _validate(values, positive=True)
    return len(values) / sum(1.0 / v for v in values)


def normalize_series(values: Sequence[float], baseline: Sequence[float]) -> list[float]:
    """Element-wise ratio ``values[i] / baseline[i]``.

    Used to normalize per-application IPCs against their solo-execution
    baseline, and per-workload metrics against the TA-DRRIP baseline.
    """
    if len(values) != len(baseline):
        raise ValueError("series lengths differ")
    if any(b <= 0 for b in baseline):
        raise ValueError("baseline values must be strictly positive")
    return [v / b for v, b in zip(values, baseline)]
