"""RRIP state machinery plus the static SRRIP and BRRIP policies.

Re-Reference Interval Prediction (Jaleel et al., ISCA 2010 [1]) attaches an
M-bit re-reference prediction value (RRPV) to every line; the paper (and
all policies here) uses M=2, so RRPVs run 0..3:

* RRPV 0 — predicted near-immediate reuse (hit promotion target),
* RRPV 2 — SRRIP's "long" insertion,
* RRPV 3 — "distant": the eviction candidate.

Victim selection finds a line with RRPV 3, aging the whole set (increment
all RRPVs) until one appears.  **SRRIP** inserts at 2 so new lines must
prove themselves; it handles mixed recency+scan patterns.  **BRRIP**
inserts at 3 with a 1/32 epsilon at 2; it retains a sliver of a thrashing
working set, exactly like BIP does for LRU.
"""

from __future__ import annotations

from repro.policies.base import FastPathOps, ReplacementPolicy
from repro.util.counters import FractionTicker


class RripPolicyBase(ReplacementPolicy):
    """Common RRPV storage, victim selection and hit promotion.

    Subclasses implement :meth:`decide_insertion`, returning the RRPV the
    new line should be installed with (or :data:`~repro.policies.base.BYPASS`).
    Exposes ``max_rrpv`` so the bypass wrapper can recognise
    distant-priority insertions generically.
    """

    def __init__(self, rrpv_bits: int = 2) -> None:
        super().__init__()
        if rrpv_bits < 1:
            raise ValueError("need at least 1 RRPV bit")
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self.rrpv: list[list[int]] = [
            [self.max_rrpv] * ways for _ in range(num_sets)
        ]

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        # Hit promotion: demand reuse predicts near-immediate re-reference.
        if is_demand:
            self.rrpv[set_idx][way] = 0

    def victim(self, set_idx: int, core_id: int) -> int:
        # Equivalent to "increment all RRPVs until one reaches max": jump
        # straight by the gap between the set's max RRPV and the ceiling.
        row = self.rrpv[set_idx]
        current_max = max(row)
        if current_max < self.max_rrpv:
            delta = self.max_rrpv - current_max
            for w in range(self.ways):
                row[w] += delta
        return row.index(self.max_rrpv)

    def on_fill(
        self,
        set_idx: int,
        way: int,
        insertion: int,
        core_id: int,
        pc: int,
        block_addr: int,
        is_demand: bool,
    ) -> None:
        self.rrpv[set_idx][way] = insertion

    # -- default insertions ------------------------------------------------

    def writeback_insertion(self) -> int:
        """Non-demand (write-back) fills install at distant priority."""
        return self.max_rrpv

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """Expose the RRPV arrays; inline only the hooks left at defaults.

        A subclass that overrides a hook (SHiP's ``on_hit`` training,
        ADAPT's monitor tap) keeps that hook as a call automatically.
        """
        cls = type(self)
        return FastPathOps(
            "rrip",
            self.rrpv,
            max_code=self.max_rrpv,
            hit_inline=cls.on_hit is RripPolicyBase.on_hit,
            victim_inline=cls.victim is RripPolicyBase.victim,
            fill_inline=cls.on_fill is RripPolicyBase.on_fill,
        )


class SrripPolicy(RripPolicyBase):
    """Static RRIP: insert every line at RRPV max-1 ("long")."""

    name = "srrip"

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        return self.max_rrpv - 1


class BrripPolicy(RripPolicyBase):
    """Bimodal RRIP: insert distant, with a 1/32 epsilon at "long"."""

    name = "brrip"

    def __init__(self, rrpv_bits: int = 2, epsilon_denominator: int = 32) -> None:
        super().__init__(rrpv_bits)
        self._ticker = FractionTicker(epsilon_denominator)

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        if self._ticker.tick():
            return self.max_rrpv - 1
        return self.max_rrpv
