"""Bypass wrapper: turn distant-priority insertions into bypasses (Fig. 6).

Section 5.3 of the paper studies applying ADAPT's bypassing idea to the
other replacement policies: whenever a policy would insert a demand line at
distant priority (RRPV == max), the line is instead *not allocated* — it is
returned straight to the private L2 — except for 1 out of 32, which is
still installed at distant priority so the policy keeps a toehold of the
stream to learn from (the same epsilon BRRIP uses).

The wrapper composes with any RRIP-state policy (anything exposing
``max_rrpv``).  LRU has no distant insertions, so, as the paper notes,
there is no opportunity to bypass it.
"""

from __future__ import annotations

from repro.policies.base import BYPASS, ReplacementPolicy
from repro.policies.rrip import RripPolicyBase
from repro.util.counters import FractionTicker


class BypassWrapper(ReplacementPolicy):
    """Delegating wrapper that converts distant insertions to bypasses."""

    def __init__(self, inner: RripPolicyBase, insert_denominator: int = 32) -> None:
        if not hasattr(inner, "max_rrpv"):
            raise TypeError(
                "BypassWrapper requires an RRIP-state policy (no distant "
                f"insertions to bypass in {inner.describe()!r})"
            )
        super().__init__()
        self.inner = inner
        self.name = f"{inner.name}+bp"
        self._ticker = FractionTicker(insert_denominator)
        self.bypassed_distant = 0
        self.kept_distant = 0

    # -- delegation ----------------------------------------------------------

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self.inner.bind(num_sets, ways, num_cores)

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        decision = self.inner.decide_insertion(
            set_idx, core_id, pc, block_addr, is_demand
        )
        if decision is BYPASS:
            return BYPASS
        if is_demand and decision == self.inner.max_rrpv:
            if self._ticker.tick():
                self.kept_distant += 1
                return decision
            self.bypassed_distant += 1
            return BYPASS
        return decision

    def victim(self, set_idx: int, core_id: int) -> int:
        return self.inner.victim(set_idx, core_id)

    def on_fill(self, set_idx, way, insertion, core_id, pc, block_addr, is_demand):
        self.inner.on_fill(set_idx, way, insertion, core_id, pc, block_addr, is_demand)

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        self.inner.on_hit(set_idx, way, core_id, is_demand, block_addr)

    def on_evict(self, set_idx, way, core_id, block_addr, was_reused) -> None:
        self.inner.on_evict(set_idx, way, core_id, block_addr, was_reused)

    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        self.inner.on_miss(set_idx, core_id, is_demand)

    def end_interval(self) -> None:
        self.inner.end_interval()

    def describe(self) -> str:
        return f"{self.inner.describe()}+bypass"
