"""Recency-stack policies: LRU, LIP, BIP and DIP.

These are the DIP lineage (Qureshi et al., ISCA 2007 [4]) the paper builds
its motivation on:

* **LRU** inserts at MRU, evicts the least-recently-used line.
* **LIP** (LRU Insertion Policy) inserts at LRU, so a line must be reused
  once before it can pollute the stack.
* **BIP** (Bimodal) is LIP with a 1/32 epsilon of MRU insertions, retaining
  a trickle of a thrashing working set.
* **DIP** set-duels LRU against BIP with a single PSEL counter.

The stack is implemented with monotonic timestamps: promotion stamps the
line with an increasing counter, LRU-insertions stamp it below every valid
line, and the victim is the minimum stamp.  Only demand accesses update
recency (paper footnote 4).
"""

from __future__ import annotations

from repro.policies.base import FastPathOps, ReplacementPolicy
from repro.policies.dueling import DuelMap
from repro.util.counters import FractionTicker, PselCounter

#: Insertion codes understood by :meth:`RecencyStackPolicy.on_fill`.
MRU_INSERT = 1
LRU_INSERT = 0


class RecencyStackPolicy(ReplacementPolicy):
    """Shared machinery for the timestamp-based recency stack."""

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self._stamp: list[list[int]] = [[0] * ways for _ in range(num_sets)]
        # Per-set clocks: _next_mru counts up, _next_lru counts down, so an
        # LRU-insert always lands below every line currently in the set.
        self._next_mru = [1] * num_sets
        self._next_lru = [-1] * num_sets

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        if is_demand:
            stamp = self._next_mru[set_idx]
            self._stamp[set_idx][way] = stamp
            self._next_mru[set_idx] = stamp + 1

    def victim(self, set_idx: int, core_id: int) -> int:
        row = self._stamp[set_idx]
        return row.index(min(row))

    def on_fill(
        self,
        set_idx: int,
        way: int,
        insertion: int,
        core_id: int,
        pc: int,
        block_addr: int,
        is_demand: bool,
    ) -> None:
        if insertion == MRU_INSERT:
            stamp = self._next_mru[set_idx]
            self._stamp[set_idx][way] = stamp
            self._next_mru[set_idx] = stamp + 1
        else:
            stamp = self._next_lru[set_idx]
            self._stamp[set_idx][way] = stamp
            self._next_lru[set_idx] = stamp - 1

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """Expose the stamp arrays; inline only the hooks left at defaults."""
        cls = type(self)
        return FastPathOps(
            "stack",
            self._stamp,
            next_mru=self._next_mru,
            next_lru=self._next_lru,
            hit_inline=cls.on_hit is RecencyStackPolicy.on_hit,
            victim_inline=cls.victim is RecencyStackPolicy.victim,
            fill_inline=cls.on_fill is RecencyStackPolicy.on_fill,
        )

    # -- analysis helper -------------------------------------------------------

    def recency_order(self, set_idx: int) -> list[int]:
        """Way indices from MRU to LRU (testing/analysis)."""
        row = self._stamp[set_idx]
        return sorted(range(self.ways), key=lambda w: -row[w])


class LruPolicy(RecencyStackPolicy):
    """Classic LRU: always insert at MRU."""

    name = "lru"

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        return MRU_INSERT


class LipPolicy(RecencyStackPolicy):
    """LRU Insertion Policy: always insert at LRU."""

    name = "lip"

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        return LRU_INSERT


class BipPolicy(RecencyStackPolicy):
    """Bimodal Insertion Policy: LRU insert, 1/epsilon MRU inserts."""

    name = "bip"

    def __init__(self, epsilon_denominator: int = 32) -> None:
        super().__init__()
        self._ticker = FractionTicker(epsilon_denominator)

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if is_demand and self._ticker.tick():
            return MRU_INSERT
        return LRU_INSERT


class DipPolicy(RecencyStackPolicy):
    """Dynamic Insertion Policy: set-duel LRU vs BIP.

    Misses on LRU-leader sets increment the PSEL, misses on BIP-leader sets
    decrement it; follower sets use BIP while the PSEL reads high (LRU is
    losing).  The paper's duelling parameters: 32 leader sets per policy and
    a 10-bit PSEL with a 512 threshold.
    """

    name = "dip"

    def __init__(
        self,
        leader_sets: int = 32,
        psel_bits: int = 10,
        epsilon_denominator: int = 32,
    ) -> None:
        super().__init__()
        self._leader_sets = leader_sets
        self._psel = PselCounter(psel_bits)
        self._ticker = FractionTicker(epsilon_denominator)

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self._duel = DuelMap(num_sets, self._leader_sets)

    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        if not is_demand:
            return
        owner = self._duel.owner(set_idx, 0)
        if owner == DuelMap.POLICY_A:  # LRU leader missed
            self._psel.increment()
        elif owner == DuelMap.POLICY_B:  # BIP leader missed
            self._psel.decrement()

    def _bip_insertion(self, is_demand: bool) -> int:
        if is_demand and self._ticker.tick():
            return MRU_INSERT
        return LRU_INSERT

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        owner = self._duel.owner(set_idx, 0)
        if owner == DuelMap.POLICY_A:
            return MRU_INSERT
        if owner == DuelMap.POLICY_B:
            return self._bip_insertion(is_demand)
        if self._psel.selects_second:  # LRU is losing -> BIP
            return self._bip_insertion(is_demand)
        return MRU_INSERT

    def fast_ops(self) -> FastPathOps:
        """Family stack ops plus inline global duel-miss accounting."""
        ops = super().fast_ops()
        if type(self).on_miss is DipPolicy.on_miss:
            ops.miss_inline = True
            ops.duel_roles = [self._duel.roles_for(0)] * self.num_cores
            ops.duel_psels = [self._psel] * self.num_cores
        return ops

    def describe(self) -> str:
        winner = "bip" if self._psel.selects_second else "lru"
        return f"dip(winner={winner})"
