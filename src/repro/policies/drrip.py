"""DRRIP: set-duelling between SRRIP and BRRIP (Jaleel et al. [1]).

DRRIP is the thread-oblivious version: one PSEL counter, one pool of SRRIP
leader sets, one pool of BRRIP leader sets, everyone follows the global
winner.  It is the paper's private-L2 policy (Table 3) and the base for
TA-DRRIP (:mod:`repro.policies.tadrrip`).
"""

from __future__ import annotations

from repro.policies.base import FastPathOps
from repro.policies.dueling import DuelMap
from repro.policies.rrip import RripPolicyBase
from repro.util.counters import FractionTicker, PselCounter


class DrripPolicy(RripPolicyBase):
    """Set-duelled SRRIP vs BRRIP with a single PSEL."""

    name = "drrip"

    def __init__(
        self,
        leader_sets: int = 32,
        psel_bits: int = 10,
        rrpv_bits: int = 2,
        epsilon_denominator: int = 32,
    ) -> None:
        super().__init__(rrpv_bits)
        self._leader_sets = leader_sets
        self._psel = PselCounter(psel_bits)
        self._ticker = FractionTicker(epsilon_denominator)

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self._duel = DuelMap(num_sets, self._leader_sets)

    # Misses on SRRIP leaders push the PSEL up (SRRIP losing), misses on
    # BRRIP leaders push it down; followers read the sign.
    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        if not is_demand:
            return
        owner = self._duel.owner(set_idx, 0)
        if owner == DuelMap.POLICY_A:
            self._psel.increment()
        elif owner == DuelMap.POLICY_B:
            self._psel.decrement()

    def _brrip_insertion(self) -> int:
        if self._ticker.tick():
            return self.max_rrpv - 1
        return self.max_rrpv

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        owner = self._duel.owner(set_idx, 0)
        if owner == DuelMap.POLICY_A:
            return self.max_rrpv - 1  # SRRIP leader
        if owner == DuelMap.POLICY_B:
            return self._brrip_insertion()
        if self._psel.selects_second:  # SRRIP losing -> BRRIP
            return self._brrip_insertion()
        return self.max_rrpv - 1

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """Family RRIP ops plus inline global duel-miss accounting.

        Thread-oblivious duelling: every core shares thread 0's leader
        roles and the single PSEL.
        """
        ops = super().fast_ops()
        if type(self).on_miss is DrripPolicy.on_miss:
            ops.miss_inline = True
            ops.duel_roles = [self._duel.roles_for(0)] * self.num_cores
            ops.duel_psels = [self._psel] * self.num_cores
        return ops

    @property
    def current_winner(self) -> str:
        return "brrip" if self._psel.selects_second else "srrip"

    def describe(self) -> str:
        return f"drrip(winner={self.current_winner})"
