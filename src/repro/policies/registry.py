"""Name-based policy factory.

Experiments refer to LLC policies by the names the paper uses
(``"tadrrip"``, ``"ship"``, ``"eaf"``, ``"adapt_bp32"``, ...).  A ``+bp``
suffix wraps any RRIP-state policy in the Figure 6 bypass wrapper, e.g.
``"tadrrip+bp"`` or ``"eaf+bp"``.

``make_policy`` returns a *fresh* policy instance each call — policies are
stateful and must never be shared between caches.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.policies.base import ReplacementPolicy
from repro.policies.bypass import BypassWrapper
from repro.policies.drrip import DrripPolicy
from repro.policies.eaf import EafPolicy
from repro.policies.lru import BipPolicy, DipPolicy, LipPolicy, LruPolicy
from repro.policies.random_ import RandomPolicy
from repro.policies.rrip import BrripPolicy, SrripPolicy
from repro.policies.ship import ShipPolicy
from repro.policies.tadrrip import TaDrripPolicy

# AdaptPolicy lives in repro.core, which itself builds on repro.policies;
# importing it lazily breaks the package-level cycle.
def _adapt(bypass_least: bool, **kw) -> ReplacementPolicy:
    from repro.core.adapt import AdaptPolicy

    return AdaptPolicy(bypass_least=bypass_least, **kw)


_FACTORIES: dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": LruPolicy,
    "lip": LipPolicy,
    "bip": BipPolicy,
    "dip": DipPolicy,
    "random": RandomPolicy,
    "srrip": SrripPolicy,
    "brrip": BrripPolicy,
    "drrip": DrripPolicy,
    "tadrrip": TaDrripPolicy,
    "ship": ShipPolicy,
    "eaf": EafPolicy,
    "adapt": lambda **kw: _adapt(True, **kw),
    "adapt_bp32": lambda **kw: _adapt(True, **kw),
    "adapt_ins": lambda **kw: _adapt(False, **kw),
}

#: Policies the paper evaluates head to head in Figures 3 and 8.
PAPER_POLICIES = ("tadrrip", "lru", "ship", "eaf", "adapt_ins", "adapt_bp32")

#: Alternate registry spellings that build the same policy as another
#: entry (``adapt`` is the paper's shorthand for the bp32 configuration).
POLICY_ALIASES = {"adapt": "adapt_bp32"}


def available_policies() -> list[str]:
    """All registered base policy names (without ``+bp`` forms)."""
    return sorted(_FACTORIES)


def tournament_policies() -> tuple[str, ...]:
    """Every *distinct* registered policy, alias spellings collapsed.

    This is the "all policies" roster the tournament driver sweeps: one
    entry per distinct default-configured policy, so the standing
    all-policies x all-workloads comparison never simulates the same
    configuration twice under two names.
    """
    return tuple(name for name in available_policies() if name not in POLICY_ALIASES)


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate the policy called *name*.

    ``name`` may carry a ``+bp`` suffix to apply the bypass wrapper, and
    keyword arguments are forwarded to the underlying constructor.
    """
    base_name, _, suffix = name.partition("+")
    if suffix not in ("", "bp"):
        raise ValueError(f"unknown policy modifier {suffix!r} in {name!r}")
    factory = _FACTORIES.get(base_name)
    if factory is None:
        raise ValueError(
            f"unknown policy {base_name!r}; available: {', '.join(available_policies())}"
        )
    policy = factory(**kwargs)
    if suffix == "bp":
        policy = BypassWrapper(policy)
    return policy
