"""Serialisable policy descriptions.

A :class:`PolicySpec` is a policy *description* — registry name plus
constructor arguments — rather than a live
:class:`~repro.policies.base.ReplacementPolicy` instance.  Specs are
hashable, JSON-serialisable and rebuildable in a worker process, which is
what lets parameterised policies (Figure 1's duelling-set variants, the
ablation sweeps) travel through the :mod:`repro.runner` process pool and
land in the persistent result store under stable cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass


def _canonical(value):
    """Canonicalise a policy kwarg for hashing/serialisation.

    Collection-valued kwargs (e.g. ``forced_brrip_cores``) are treated as
    unordered sets: sorted into tuples so that every spelling of the same
    logical value hashes to the same cache key.
    """
    if isinstance(value, (frozenset, set, list, tuple)):
        return tuple(sorted(value))
    return value


def _as_jsonable(value):
    return list(value) if isinstance(value, tuple) else value


@dataclass(frozen=True)
class PolicySpec:
    """A policy description: registry name + constructor arguments."""

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def of(name: str, **kwargs) -> "PolicySpec":
        items = tuple(sorted((k, _canonical(v)) for k, v in kwargs.items()))
        return PolicySpec(name=name, kwargs=items)

    def build(self, config):
        """Instantiate the policy, wiring ADAPT monitor knobs from *config*."""
        from repro.policies.registry import make_policy

        kwargs = dict(self.kwargs)
        if self.name.partition("+")[0].startswith("adapt"):
            kwargs.setdefault("num_monitor_sets", config.monitor_sets)
            kwargs.setdefault("monitor_entries", config.monitor_entries)
            kwargs.setdefault("partial_tag_bits", config.partial_tag_bits)
        return make_policy(self.name, **kwargs)

    def key(self) -> str:
        """A compact, human-readable identity used in memo keys and labels."""
        if not self.kwargs:
            return self.name
        args = ",".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.name}{{{args}}}"

    def to_dict(self) -> dict:
        return {"name": self.name, "kwargs": {k: _as_jsonable(v) for k, v in self.kwargs}}

    @classmethod
    def from_dict(cls, data: dict) -> "PolicySpec":
        return PolicySpec.of(data["name"], **data.get("kwargs", {}))


def policy_key(policy: str | PolicySpec) -> str:
    """The memo/label identity of a policy designation."""
    return policy if isinstance(policy, str) else policy.key()
