"""Replacement-policy zoo: every baseline the paper compares against.

The DIP lineage (:mod:`repro.policies.lru`), the RRIP family
(:mod:`repro.policies.rrip`, :mod:`repro.policies.drrip`,
:mod:`repro.policies.tadrrip`), the smarter insertion predictors
(:mod:`repro.policies.ship`, :mod:`repro.policies.eaf`), the Figure 6
bypass wrapper (:mod:`repro.policies.bypass`) and the name-based factory
(:mod:`repro.policies.registry`).  ADAPT itself lives in
:mod:`repro.core` but registers here.
"""

from repro.policies.base import BYPASS, ReplacementPolicy
from repro.policies.bypass import BypassWrapper
from repro.policies.drrip import DrripPolicy
from repro.policies.dueling import DuelMap
from repro.policies.eaf import BloomFilter, EafPolicy
from repro.policies.lru import BipPolicy, DipPolicy, LipPolicy, LruPolicy
from repro.policies.random_ import RandomPolicy
from repro.policies.registry import PAPER_POLICIES, available_policies, make_policy
from repro.policies.rrip import BrripPolicy, RripPolicyBase, SrripPolicy
from repro.policies.ship import ShipPolicy
from repro.policies.spec import PolicySpec, policy_key
from repro.policies.tadrrip import TaDrripPolicy

__all__ = [
    "BYPASS",
    "ReplacementPolicy",
    "BypassWrapper",
    "DuelMap",
    "DrripPolicy",
    "BloomFilter",
    "EafPolicy",
    "LruPolicy",
    "LipPolicy",
    "BipPolicy",
    "DipPolicy",
    "RandomPolicy",
    "RripPolicyBase",
    "SrripPolicy",
    "BrripPolicy",
    "ShipPolicy",
    "TaDrripPolicy",
    "PAPER_POLICIES",
    "available_policies",
    "make_policy",
    "PolicySpec",
    "policy_key",
]
