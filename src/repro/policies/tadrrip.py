"""TA-DRRIP: thread-aware DRRIP, the paper's baseline policy.

TA-DRRIP (Jaleel et al. [1]) duels SRRIP against BRRIP *per thread*: each
thread owns its own SRRIP and BRRIP leader-set pools and its own PSEL
counter, so each thread independently learns which insertion policy suits
it.  The paper's motivation (Section 2) is that with 16+ diverse co-runners
this learning goes wrong: thrashing applications see similar hit/miss
behaviour under both SDM pools and settle on SRRIP, polluting the cache.

``forced_brrip_cores`` reproduces the Figure 1 experiment
("TA-DRRIP(forced)"): the listed cores are pinned to BRRIP regardless of
what their duel would have chosen, which the paper shows is worth ~2.8x
on normalized weighted speed-up.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.policies.base import FastPathOps
from repro.policies.dueling import DuelMap
from repro.policies.rrip import RripPolicyBase
from repro.util.counters import FractionTicker, PselCounter


class TaDrripPolicy(RripPolicyBase):
    """Per-thread set-duelled SRRIP vs BRRIP."""

    name = "tadrrip"

    def __init__(
        self,
        leader_sets: int = 32,
        psel_bits: int = 10,
        rrpv_bits: int = 2,
        epsilon_denominator: int = 32,
        forced_brrip_cores: Iterable[int] = (),
    ) -> None:
        super().__init__(rrpv_bits)
        self._leader_sets = leader_sets
        self._psel_bits = psel_bits
        self._epsilon = epsilon_denominator
        self.forced_brrip_cores = frozenset(forced_brrip_cores)
        self._psel: list[PselCounter] = []
        self._tickers: list[FractionTicker] = []

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self._duel = DuelMap(num_sets, self._leader_sets)
        self._psel = [PselCounter(self._psel_bits) for _ in range(num_cores)]
        # Per-thread epsilon tickers so one thread's insertion rate does not
        # perturb another's bimodal phase.
        self._tickers = [FractionTicker(self._epsilon) for _ in range(num_cores)]

    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        if not is_demand:
            return
        owner = self._duel.owner(set_idx, core_id)
        if owner == DuelMap.POLICY_A:
            self._psel[core_id].increment()
        elif owner == DuelMap.POLICY_B:
            self._psel[core_id].decrement()

    def _brrip_insertion(self, core_id: int) -> int:
        if self._tickers[core_id].tick():
            return self.max_rrpv - 1
        return self.max_rrpv

    def uses_brrip(self, core_id: int) -> bool:
        """Whether *core_id*'s follower sets currently insert bimodally."""
        if core_id in self.forced_brrip_cores:
            return True
        return self._psel[core_id].selects_second

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        if core_id in self.forced_brrip_cores:
            return self._brrip_insertion(core_id)
        owner = self._duel.owner(set_idx, core_id)
        if owner == DuelMap.POLICY_A:
            return self.max_rrpv - 1
        if owner == DuelMap.POLICY_B:
            return self._brrip_insertion(core_id)
        if self._psel[core_id].selects_second:
            return self._brrip_insertion(core_id)
        return self.max_rrpv - 1

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """Family RRIP ops plus inline per-thread duel-miss accounting.

        ``forced_brrip_cores`` only affects ``decide_insertion`` (still a
        call), so the PSEL movement stays inline-eligible for the forced
        variant too.
        """
        ops = super().fast_ops()
        if type(self).on_miss is TaDrripPolicy.on_miss:
            ops.miss_inline = True
            ops.duel_roles = [
                self._duel.roles_for(c) for c in range(self.num_cores)
            ]
            ops.duel_psels = list(self._psel)
        return ops

    def describe(self) -> str:
        if not self._psel:
            return self.name
        winners = "".join("B" if self.uses_brrip(c) else "S" for c in range(self.num_cores))
        suffix = " forced" if self.forced_brrip_cores else ""
        return f"tadrrip[{winners}]{suffix}"
