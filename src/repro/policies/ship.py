"""SHiP-PC: Signature-based Hit Predictor (Wu et al., MICRO 2011 [5]).

SHiP associates each fill with a *signature* — here the PC of the missing
load, folded to 14 bits and salted with the core id so co-runners do not
alias — and learns per-signature whether lines brought in by that signature
get re-referenced:

* A Signature History Counter Table (SHCT) of saturating counters.
* Each line carries its signature and an *outcome* bit (reused yet?).
* First demand re-reference: outcome set, ``SHCT[sig]++``.
* Eviction without reuse: ``SHCT[sig]--``.
* Insertion: ``SHCT[sig] == 0`` predicts distant re-reference → RRPV 3;
  otherwise SRRIP's RRPV 2.  SHiP never inserts at 0.

The paper (Section 5.1) observes that, at 16 cores, SHiP predicts distant
reuse for only ~3% of misses — it inherits TA-DRRIP's inability to identify
thrashing applications because it, too, learns from hits and misses at the
shared cache.
"""

from __future__ import annotations

from repro.policies.base import FastPathOps
from repro.policies.rrip import RripPolicyBase
from repro.util.bitops import xor_fold


class ShipPolicy(RripPolicyBase):
    """SHiP-PC over RRIP state."""

    name = "ship"

    def __init__(
        self,
        shct_entries: int = 16 * 1024,
        shct_bits: int = 3,
        signature_bits: int = 14,
        rrpv_bits: int = 2,
        thread_aware_signatures: bool = False,
    ) -> None:
        super().__init__(rrpv_bits)
        if shct_entries < 2:
            raise ValueError("SHCT needs at least 2 entries")
        self.shct_entries = shct_entries
        self.shct_max = (1 << shct_bits) - 1
        self.signature_bits = signature_bits
        # The paper's SHiP budget (Table 2) is a single shared SHCT indexed
        # by PC signature: co-running applications executing the same code
        # (shared libraries, common runtime loops) train the same entries.
        # Thread-aware salting is available for ablation.
        self.thread_aware_signatures = thread_aware_signatures
        self.shct: list[int] = []
        # Diagnostics for the paper's Section 5.1/5.3 discussion.
        self.distant_predictions = 0
        self.intermediate_predictions = 0

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        # Weak-reuse initial state: counters start at 1 so unseen signatures
        # are *not* predicted distant until proven dead.
        self.shct = [1] * self.shct_entries
        self._line_sig: list[list[int]] = [[0] * ways for _ in range(num_sets)]
        self._outcome: list[list[bool]] = [[True] * ways for _ in range(num_sets)]

    def signature(self, core_id: int, pc: int) -> int:
        value = pc
        if self.thread_aware_signatures:
            value ^= core_id << (self.signature_bits - 3)
        return xor_fold(value, self.signature_bits) % self.shct_entries

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        if self.shct[self.signature(core_id, pc)] == 0:
            self.distant_predictions += 1
            return self.max_rrpv
        self.intermediate_predictions += 1
        return self.max_rrpv - 1

    def on_fill(
        self, set_idx, way, insertion, core_id, pc, block_addr, is_demand
    ) -> None:
        super().on_fill(set_idx, way, insertion, core_id, pc, block_addr, is_demand)
        self._line_sig[set_idx][way] = self.signature(core_id, pc)
        # Write-back fills carry no learnable signature: mark them already
        # "reused" so their eviction does not punish signature 0.
        self._outcome[set_idx][way] = not is_demand

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        super().on_hit(set_idx, way, core_id, is_demand, block_addr)
        if is_demand:
            # SHiP trains on every re-reference (the outcome bit only gates
            # the eviction-time decrement), so heavily reused signatures
            # build strong positive bias.
            self._outcome[set_idx][way] = True
            sig = self._line_sig[set_idx][way]
            if self.shct[sig] < self.shct_max:
                self.shct[sig] += 1

    def on_evict(
        self, set_idx: int, way: int, core_id: int, block_addr: int, was_reused: bool
    ) -> None:
        if not self._outcome[set_idx][way]:
            sig = self._line_sig[set_idx][way]
            if self.shct[sig] > 0:
                self.shct[sig] -= 1

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """``"ship"`` kind: RRPV rows plus signature/outcome/SHCT arrays.

        Each hook is inlined only when it is exactly SHiP's implementation;
        a subclass that re-overrides one (or the signature fold) drops that
        hook back to a method call while keeping the rest inline.
        """
        cls = type(self)
        same_sig = cls.signature is ShipPolicy.signature
        return FastPathOps(
            "ship",
            self.rrpv,
            max_code=self.max_rrpv,
            hit_inline=cls.on_hit is ShipPolicy.on_hit,
            victim_inline=cls.victim is RripPolicyBase.victim,
            fill_inline=cls.on_fill is ShipPolicy.on_fill and same_sig,
            evict_inline=cls.on_evict is ShipPolicy.on_evict,
            ship_sigs=self._line_sig,
            ship_outcomes=self._outcome,
            shct=self.shct,
            shct_max=self.shct_max,
            shct_entries=self.shct_entries,
            sig_bits=self.signature_bits,
            sig_salt_shift=(
                self.signature_bits - 3 if self.thread_aware_signatures else None
            ),
        )

    def distant_fraction(self) -> float:
        total = self.distant_predictions + self.intermediate_predictions
        return self.distant_predictions / total if total else 0.0

    def describe(self) -> str:
        return f"ship(distant={self.distant_fraction():.1%})"
