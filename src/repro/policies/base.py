"""Replacement-policy interface shared by every LLC policy.

The cache owns the *architectural* state of each line (block address, valid,
dirty, owner core); the policy owns whatever *replacement* state it needs
(recency stacks, RRPV arrays, signatures, duelling counters).  The cache
drives the policy through five hooks:

``decide_insertion``
    Called on a miss *before* any allocation.  Returns a policy-specific
    insertion code (for RRIP policies, the RRPV to insert with; for
    recency-stack policies, a stack position code) or :data:`BYPASS` to skip
    allocation entirely.  Bypass is the mechanism behind the paper's
    ADAPT_bp32 variant and the Figure 6 study.

``victim``
    Called when an allocation needs a way and the set is full.  Returns the
    way index to evict.  RRIP policies may age the set as a side effect
    (incrementing all RRPVs until one reaches 3), which is why victim
    selection is a policy method rather than a pure function.

``on_fill``
    Called after the line is installed, with the insertion code previously
    returned by ``decide_insertion``.

``on_hit``
    Called on every lookup hit.  ``is_demand`` distinguishes demand accesses
    from prefetches and writebacks — the paper (footnote 4) updates recency
    state on demand accesses only.  The block address is passed through so
    monitoring policies (ADAPT's Footprint-number sampler observes *all*
    demand accesses, hits included) can sample it.

``on_evict``
    Called when a valid line is replaced (or invalidated), with whether the
    line was reused since insertion — the learning signal for SHiP and the
    address capture point for EAF.

Policies that observe misses for set-duelling additionally implement
``on_miss``, called for every demand miss with the set index.
"""

from __future__ import annotations

from typing import Any

#: Sentinel returned by :meth:`ReplacementPolicy.decide_insertion` to skip
#: allocation.  ``None`` is deliberately not used so a buggy hook that falls
#: through without returning fails loudly in the cache.
BYPASS: Any = object()


class FastPathOps:
    """Narrow fast-path protocol: preallocated per-set replacement metadata.

    The fused simulation kernel (:mod:`repro.cpu.fastpath`) asks each policy
    for its :class:`FastPathOps` via :meth:`ReplacementPolicy.fast_ops`.  A
    policy that opts in exposes the *same* per-set integer arrays its object
    API mutates, plus flags saying which of the hot hooks (demand-hit
    promotion, victim selection, fill, eviction training, duel-miss
    accounting) are known implementations the kernel may execute inline
    instead of through a method call.  A policy that overrides a hook
    beyond what its kind describes keeps that hook as a call and still gets
    the others inlined — behaviour is identical either way, only the
    dispatch differs.

    ``kind`` selects the inline interpretation:

    * ``"rrip"`` — ``rows`` holds per-set RRPV arrays; promotion writes 0,
      the victim is found by aging the set to ``max_code``, a fill writes
      the insertion code verbatim.
    * ``"stack"`` — ``rows`` holds per-set recency stamps with the per-set
      ``next_mru``/``next_lru`` clocks; promotion and MRU fills stamp from
      ``next_mru``, LRU fills stamp from ``next_lru``, the victim is the
      minimum stamp.
    * ``"ship"`` — RRIP rows plus SHiP's per-line signature/outcome arrays
      (``ship_sigs``/``ship_outcomes``) and the shared SHCT: demand-hit
      promotion also trains the line's signature, fills record the folded
      PC signature, evictions of never-reused lines decrement the SHCT.
    * ``"eaf"`` — plain RRIP rows; evictions insert the victim address into
      ``eaf_filter`` (clearing it when full).
    * ``"adapt"`` — plain RRIP rows; demand hits additionally tap the
      per-application Footprint ``samplers`` (monitored sets only).

    Orthogonally, ``miss_inline`` promotes a set-duelling ``on_miss``
    (DIP/DRRIP/TA-DRRIP PSEL movement) to inline execution: ``duel_roles``
    holds one ``{set: role}`` dict per core and ``duel_psels`` the
    corresponding :class:`~repro.util.counters.PselCounter` objects (the
    kernel writes their ``value`` through, so ``decide_insertion`` calls
    observe every update).
    """

    __slots__ = (
        "kind",
        "rows",
        "max_code",
        "next_mru",
        "next_lru",
        "hit_inline",
        "victim_inline",
        "fill_inline",
        "evict_inline",
        "miss_inline",
        "ship_sigs",
        "ship_outcomes",
        "shct",
        "shct_max",
        "shct_entries",
        "sig_bits",
        "sig_salt_shift",
        "eaf_filter",
        "samplers",
        "duel_roles",
        "duel_psels",
    )

    def __init__(
        self,
        kind: str,
        rows: list,
        *,
        max_code: int = 0,
        next_mru: list | None = None,
        next_lru: list | None = None,
        hit_inline: bool = False,
        victim_inline: bool = False,
        fill_inline: bool = False,
        evict_inline: bool = False,
        miss_inline: bool = False,
        ship_sigs: list | None = None,
        ship_outcomes: list | None = None,
        shct: list | None = None,
        shct_max: int = 0,
        shct_entries: int = 0,
        sig_bits: int = 0,
        sig_salt_shift: int | None = None,
        eaf_filter: Any = None,
        samplers: list | None = None,
        duel_roles: list | None = None,
        duel_psels: list | None = None,
    ) -> None:
        self.kind = kind
        self.rows = rows
        self.max_code = max_code
        self.next_mru = next_mru
        self.next_lru = next_lru
        self.hit_inline = hit_inline
        self.victim_inline = victim_inline
        self.fill_inline = fill_inline
        self.evict_inline = evict_inline
        self.miss_inline = miss_inline
        self.ship_sigs = ship_sigs
        self.ship_outcomes = ship_outcomes
        self.shct = shct
        self.shct_max = shct_max
        self.shct_entries = shct_entries
        self.sig_bits = sig_bits
        self.sig_salt_shift = sig_salt_shift
        self.eaf_filter = eaf_filter
        self.samplers = samplers
        self.duel_roles = duel_roles
        self.duel_psels = duel_psels


class ReplacementPolicy:
    """Base class with the no-op default behaviour.

    Subclasses must implement :meth:`decide_insertion`, :meth:`victim`,
    :meth:`on_fill` and :meth:`on_hit`; the remaining hooks default to
    no-ops.  ``bind`` is called exactly once by the owning cache before any
    traffic and tells the policy the cache geometry.
    """

    #: Human-readable registry name, overridden by subclasses.
    name = "base"

    def __init__(self) -> None:
        self.num_sets = 0
        self.ways = 0
        self.num_cores = 1

    # -- lifecycle ---------------------------------------------------------

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        """Allocate per-line replacement state for the given geometry."""
        self.num_sets = num_sets
        self.ways = ways
        self.num_cores = num_cores

    # -- decision hooks ----------------------------------------------------

    def decide_insertion(
        self, set_idx: int, core_id: int, pc: int, block_addr: int, is_demand: bool
    ) -> Any:
        raise NotImplementedError

    def victim(self, set_idx: int, core_id: int) -> int:
        raise NotImplementedError

    # -- notification hooks ------------------------------------------------

    def on_fill(
        self,
        set_idx: int,
        way: int,
        insertion: Any,
        core_id: int,
        pc: int,
        block_addr: int,
        is_demand: bool,
    ) -> None:
        raise NotImplementedError

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        raise NotImplementedError

    def on_evict(
        self, set_idx: int, way: int, core_id: int, block_addr: int, was_reused: bool
    ) -> None:
        """Victim notification; default no-op."""

    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        """Demand-miss notification for set-duelling learners; default no-op."""

    def end_interval(self) -> None:
        """Periodic hook driven by the engine's miss-interval clock.

        ADAPT recomputes Footprint-numbers here; other policies ignore it.
        """

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps | None:
        """Metadata arrays for the fused kernel, or ``None`` to opt out.

        Only valid after :meth:`bind`.  The default is to opt out, which
        makes the kernel drive this policy through the five hooks above —
        wrappers (bypass, monitoring) and any custom policy work unchanged.
        """
        return None

    # -- introspection -----------------------------------------------------

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
