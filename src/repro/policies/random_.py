"""Deterministic pseudo-random replacement — a sanity-floor baseline.

Not evaluated in the paper, but useful for the test suite and as a
reference point: any learning policy should beat it on recency-friendly
workloads.  Victim selection uses a per-policy linear congruential sequence
so runs stay reproducible.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict a pseudo-random way; insertion state-free."""

    name = "random"

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _MASK64 = (1 << 64) - 1

    def __init__(self, seed: int = 1) -> None:
        super().__init__()
        self._state = seed & self._MASK64 or 1

    def _next(self) -> int:
        self._state = (self._state * self._LCG_A + self._LCG_C) & self._MASK64
        return self._state >> 33

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        return 0

    def victim(self, set_idx: int, core_id: int) -> int:
        return self._next() % self.ways

    def on_fill(
        self, set_idx, way, insertion, core_id, pc, block_addr, is_demand
    ) -> None:
        pass

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        pass
