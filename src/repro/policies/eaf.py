"""EAF-RRIP: the Evicted-Address Filter (Seshadri et al., PACT 2012 [2]).

EAF tracks the addresses of recently evicted lines in a Bloom filter sized
to hold as many addresses as the cache holds blocks (so the filter plus the
cache "see" a working set of twice the cache).  On a miss:

* address **present** in the filter → the line was evicted prematurely
  ("pollution victim") → insert with near-immediate reuse, RRPV 2;
* address **absent** → insert distant, RRPV 3.

When the filter has absorbed one cache-worth of evictions it is cleared.
The paper's analysis (Section 5.1) notes that with thrashing co-runners the
filter fills quickly, so it only partially tracks each application — our
implementation exposes ``resets`` and prediction counters so that analysis
can be reproduced.

Hardware cost (Table 2): 8 bits per tracked address, i.e. 256KB of filter
for a 16MB cache.
"""

from __future__ import annotations

from repro.policies.base import FastPathOps
from repro.policies.rrip import RripPolicyBase


class BloomFilter:
    """Plain (non-counting) Bloom filter over block addresses.

    ``num_hashes`` independent multiplicative hashes over a bit array of
    ``bits_per_element * capacity`` bits.  Deterministic, no randomness.
    """

    #: Odd 64-bit multipliers (Knuth/SplitMix-style) for the hash family.
    _MULTIPLIERS = (
        0x9E3779B97F4A7C15,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
        0x85EBCA6B27D4EB4F,
        0xFF51AFD7ED558CCD,
    )
    _MASK64 = (1 << 64) - 1

    def __init__(self, capacity: int, bits_per_element: int = 8, num_hashes: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 1 <= num_hashes <= len(self._MULTIPLIERS):
            raise ValueError(f"num_hashes must be in [1, {len(self._MULTIPLIERS)}]")
        self.capacity = capacity
        self.size = capacity * bits_per_element
        self.num_hashes = num_hashes
        self._bits = bytearray(self.size)  # one byte per bit: fast, simple
        self.inserted = 0
        self.resets = 0

    def _indices(self, value: int) -> list[int]:
        # Multiplicative hashing: the *high* bits of the product carry the
        # mixing, so shift them down before reducing modulo the table size.
        size = self.size
        mask = self._MASK64
        mixed = (value ^ (value >> 17)) + 0x9E37
        return [
            (((mixed * mult) & mask) >> 31) % size
            for mult in self._MULTIPLIERS[: self.num_hashes]
        ]

    def insert(self, value: int) -> None:
        bits = self._bits
        for idx in self._indices(value):
            bits[idx] = 1
        self.inserted += 1

    def __contains__(self, value: int) -> bool:
        bits = self._bits
        return all(bits[idx] for idx in self._indices(value))

    def clear(self) -> None:
        self._bits = bytearray(self.size)
        self.inserted = 0
        self.resets += 1

    @property
    def full(self) -> bool:
        return self.inserted >= self.capacity


class EafPolicy(RripPolicyBase):
    """EAF-RRIP over RRIP state."""

    name = "eaf"

    def __init__(
        self,
        rrpv_bits: int = 2,
        bits_per_element: int = 8,
        num_hashes: int = 4,
    ) -> None:
        super().__init__(rrpv_bits)
        self._bits_per_element = bits_per_element
        self._num_hashes = num_hashes
        self.filter: BloomFilter | None = None
        self.present_predictions = 0
        self.distant_predictions = 0

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        # Filter capacity = number of blocks in the cache (the EAF sizing).
        self.filter = BloomFilter(
            num_sets * ways, self._bits_per_element, self._num_hashes
        )

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        if block_addr in self.filter:
            self.present_predictions += 1
            return self.max_rrpv - 1  # near-immediate: premature eviction
        self.distant_predictions += 1
        return self.max_rrpv

    def on_evict(
        self, set_idx: int, way: int, core_id: int, block_addr: int, was_reused: bool
    ) -> None:
        fltr = self.filter
        fltr.insert(block_addr)
        if fltr.full:
            fltr.clear()

    # -- fast-path protocol ------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """``"eaf"`` kind: family RRIP rows plus the live Bloom filter.

        The kernel re-reads ``filter._bits`` on every eviction (``clear``
        rebinds it) and calls :meth:`BloomFilter.clear` itself when the
        filter fills, so ``resets``/``inserted`` accounting is identical.
        """
        cls = type(self)
        return FastPathOps(
            "eaf",
            self.rrpv,
            max_code=self.max_rrpv,
            hit_inline=cls.on_hit is RripPolicyBase.on_hit,
            victim_inline=cls.victim is RripPolicyBase.victim,
            fill_inline=cls.on_fill is RripPolicyBase.on_fill,
            evict_inline=cls.on_evict is EafPolicy.on_evict,
            eaf_filter=self.filter,
        )

    def distant_fraction(self) -> float:
        total = self.present_predictions + self.distant_predictions
        return self.distant_predictions / total if total else 0.0

    def describe(self) -> str:
        return f"eaf(distant={self.distant_fraction():.1%})"
