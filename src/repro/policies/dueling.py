"""Set-duelling leader-set assignment.

Set-duelling (Qureshi et al. [4]) dedicates a small pool of sets to each of
two competing policies and lets follower sets adopt whichever pool misses
less.  The paper notes "choosing as few as 32 sets per policy is
sufficient" and that TA-DRRIP's behaviour is insensitive to 64 vs 128
dedicated sets (Figure 1a) — our Fig. 1 bench sweeps that parameter.

Leader sets are drawn from a per-thread pseudo-random permutation of the
set index space (hardware implementations use bit-reversal or hashed
"rand_sets" constituencies for the same reason): a simple arithmetic
mapping like ``set % period`` resonates with strided reference streams,
funnelling one application's misses entirely into one constituency and
corrupting the duel.

For thread-aware duelling (TADIP/TA-DRRIP), each thread owns its own
leader pools: in a thread's leader sets *only that thread* commits to the
duelled policy, while other threads follow their own winners.
"""

from __future__ import annotations


class DuelMap:
    """Maps (set index, thread) to leader/follower roles."""

    POLICY_A = 0
    POLICY_B = 1
    FOLLOWER = -1

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _MASK64 = (1 << 64) - 1

    def __init__(self, num_sets: int, leader_sets_per_policy: int = 32) -> None:
        if num_sets < 4:
            raise ValueError("need at least 4 sets to duel")
        # Clamp so tiny test caches still get at least one leader of each
        # kind while at least half the sets remain followers.
        self.num_sets = num_sets
        self.leader_sets_per_policy = max(1, min(leader_sets_per_policy, num_sets // 4))
        self._roles: dict[int, dict[int, int]] = {}

    def _permutation(self, thread_id: int) -> list[int]:
        """Deterministic Fisher-Yates shuffle of the set indices."""
        state = (thread_id * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & self._MASK64
        order = list(range(self.num_sets))
        for i in range(self.num_sets - 1, 0, -1):
            state = (state * self._LCG_A + self._LCG_C) & self._MASK64
            j = (state >> 33) % (i + 1)
            order[i], order[j] = order[j], order[i]
        return order

    def _roles_for(self, thread_id: int) -> dict[int, int]:
        roles = self._roles.get(thread_id)
        if roles is None:
            order = self._permutation(thread_id)
            n = self.leader_sets_per_policy
            roles = {s: self.POLICY_A for s in order[:n]}
            roles.update({s: self.POLICY_B for s in order[n : 2 * n]})
            self._roles[thread_id] = roles
        return roles

    def owner(self, set_idx: int, thread_id: int) -> int:
        """Role of *set_idx* for *thread_id*."""
        return self._roles_for(thread_id).get(set_idx, self.FOLLOWER)

    def roles_for(self, thread_id: int) -> dict[int, int]:
        """The live ``{set_idx: role}`` mapping for *thread_id*.

        Created on first use and never mutated afterwards, so fast-path
        consumers may bind ``.get`` once per run (missing keys are
        followers).
        """
        return self._roles_for(thread_id)

    def leader_sets(self, thread_id: int, policy: int) -> list[int]:
        """All leader sets of *policy* for *thread_id* (testing/analysis)."""
        roles = self._roles_for(thread_id)
        return sorted(s for s, role in roles.items() if role == policy)
