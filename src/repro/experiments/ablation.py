"""Design-choice ablations called out in DESIGN.md.

Three studies the paper either performed (priority-range sweep, Section
3.2; interval sizing, Section 3.1) or implies (monitor set count, Section
3.1 cites set-sampling with "as few as 32 sets"):

* :func:`run_priority_range_ablation` — vary the HIGH and MEDIUM bucket
  boundaries (the paper swept 36 combinations before fixing [0,3] / (3,12]).
* :func:`run_interval_ablation` — vary the monitoring interval as a
  multiple of LLC blocks (the paper swept 0.25M..4M misses).
* :func:`run_monitor_sets_ablation` — vary the number of sampled sets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.common import Runner, geometric_mean_gain
from repro.runner import PolicySpec


@dataclass
class AblationResult:
    name: str
    #: setting label -> mean WS gain % over TA-DRRIP.
    gains: dict[str, float]

    def render(self) -> str:
        lines = [f"== ablation: {self.name} =="]
        for label, gain in self.gains.items():
            lines.append(f"{label:<26} {gain:+6.2f}%")
        return "\n".join(lines)


def _adapt_spec(runner: Runner, **overrides) -> PolicySpec:
    """ADAPT with the runner's monitor geometry plus study overrides.

    A serialisable spec rather than a live policy, so ablation points run
    through the process pool and land in the persistent result store.
    """
    config = runner.config
    kwargs = dict(
        num_monitor_sets=config.monitor_sets,
        monitor_entries=config.monitor_entries,
        partial_tag_bits=config.partial_tag_bits,
    )
    kwargs.update(overrides)
    return PolicySpec.of("adapt_bp32", **kwargs)


def _mean_gain(
    runner: Runner,
    cores: int,
    policy: PolicySpec,
    config=None,
    max_workloads: int = 3,
) -> float:
    config = config or runner.config.with_cores(cores)
    suite = runner.settings.suite(cores)[:max_workloads]
    runner.prefetch(suite, ("tadrrip", policy), config)
    ratios = []
    for workload in suite:
        base = runner.weighted_speedup(workload, "tadrrip", config)
        ratios.append(runner.weighted_speedup(workload, policy, config) / base)
    return geometric_mean_gain(ratios)


def run_priority_range_ablation(
    runner: Runner,
    cores: int = 16,
    high_values: tuple[float, ...] = (2.0, 3.0, 5.0, 8.0),
    medium_values: tuple[float, ...] = (10.0, 12.0, 14.0),
) -> AblationResult:
    """The Section 3.2 sweep: HIGH in [0,h], MEDIUM in (h,m]."""
    gains = {}
    for high in high_values:
        for medium in medium_values:
            if medium <= high:
                continue
            label = f"HP<={high:g}, MP<={medium:g}"
            gains[label] = _mean_gain(
                runner, cores, _adapt_spec(runner, high_max=high, medium_max=medium)
            )
    return AblationResult("priority ranges (Section 3.2 sweep)", gains)


def run_interval_ablation(
    runner: Runner,
    cores: int = 16,
    multipliers: tuple[int, ...] = (4, 8, 16, 32),
) -> AblationResult:
    """The Section 3.1 interval-size study, as multiples of LLC blocks."""
    gains = {}
    for mult in multipliers:
        config = replace(
            runner.config.with_cores(cores),
            interval_blocks_multiplier=mult,
            name=f"{runner.config.with_cores(cores).name}-int{mult}x",
        )
        gains[f"interval = {mult}x LLC blocks"] = _mean_gain(
            runner, cores, _adapt_spec(runner), config
        )
    return AblationResult("monitoring interval (Section 3.1 sweep)", gains)


def run_monitor_sets_ablation(
    runner: Runner,
    cores: int = 16,
    set_counts: tuple[int, ...] = (8, 20, 40, 80),
) -> AblationResult:
    """Sampled-set count: the paper fixes 40 after citing 32 as sufficient."""
    gains = {}
    for count in set_counts:
        gains[f"{count} monitor sets"] = _mean_gain(
            runner, cores, _adapt_spec(runner, num_monitor_sets=count)
        )
    return AblationResult("monitor set count (Section 3.1)", gains)
