"""The standing policy tournament: all policies x workloads x seeds.

The replay engine made the marginal cost of one more LLC policy
approximately LLC-only, so this driver runs *wide* by default: every
distinct registered policy (:func:`repro.policies.registry.tournament_policies`)
over the Table 6 suites of the selected core counts, repeated across N
master seeds (each seed re-samples workload composition *and* the trace
streams).

Execution goes through the ordinary experiment
:class:`~repro.experiments.common.Runner`, which means:

* every (workload, policies) batch is prefetched through
  :class:`~repro.runner.parallel.ParallelRunner` — the runner materialises
  shared trace buffers once, schedules one private-level **capture** per
  swept platform ahead of the batch via the replay manifest, and replays
  every policy at LLC-only cost;
* every result (and every ``IPC_alone`` baseline the report's
  weighted-speed-up metric needs) lands in the persistent result store,
  which is exactly what ``repro-experiments report`` aggregates.

The driver itself renders only a scheduling summary; ranking, confidence
intervals and regression tracking are the report subsystem's job
(:mod:`repro.report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.experiments.common import (
    ExperimentSettings,
    Runner,
    config_for_cores,
)
from repro.policies.registry import make_policy, tournament_policies
from repro.sim.config import SystemConfig

#: Default suites swept: the 4-core study keeps a full-roster tournament
#: CI-friendly; pass ``--cores 4 8 16`` to widen.
DEFAULT_CORES = (4,)


@dataclass
class TournamentRun:
    """What one tournament invocation scheduled and executed."""

    policies: tuple[str, ...]
    cores: tuple[int, ...]
    seeds: tuple[int, ...]
    #: (cores, seed) -> number of workloads swept.
    suites: dict[tuple[int, int], int] = field(default_factory=dict)
    scheduled: int = 0
    executed: int = 0
    store_hits: int = 0
    #: Cells quarantined after exhausting retries (holes in the grid).
    failed: int = 0
    results_dir: str | None = None

    def render(self) -> str:
        lines = [
            f"== tournament: {len(self.policies)} policies x "
            f"{sum(self.suites.values())} workloads x {len(self.seeds)} seeds ==",
            f"policies: {' '.join(self.policies)}",
        ]
        for (cores, seed), count in sorted(self.suites.items()):
            lines.append(f"  {cores}-core suite, seed {seed}: {count} workloads")
        summary = (
            f"{self.scheduled} runs scheduled: {self.executed} simulated, "
            f"{self.store_hits} already in store"
        )
        if self.failed:
            summary += f", {self.failed} FAILED (quarantined)"
        lines.append(summary)
        if self.failed:
            lines.append(
                "re-run with --resume to re-execute only the failed cells"
            )
        if self.results_dir:
            lines.append(
                f"results persisted in {self.results_dir} — "
                "aggregate with: repro-experiments report"
            )
        return "\n".join(lines)


def _validate_policies(policies: tuple[str, ...]) -> None:
    """Fail fast on unknown names before any simulation is scheduled."""
    for name in policies:
        make_policy(name)


def run_tournament(
    base_config: SystemConfig | None = None,
    *,
    policies: tuple[str, ...] | None = None,
    cores: tuple[int, ...] = DEFAULT_CORES,
    seeds: tuple[int, ...] = (0, 1, 2),
    workloads: int | None = None,
    benchmark_set: str | None = None,
    jobs: int | None = None,
    results_dir: str | Path | None = "results",
    use_cache: bool = True,
    settings: ExperimentSettings | None = None,
    retry=None,
) -> TournamentRun:
    """Schedule the full tournament grid through the parallel runner.

    Parameters mirror the CLI: *seeds* are the master seeds swept,
    *workloads* optionally caps each suite (default: the
    ``REPRO_SCALE``-scaled Table 6 counts), *policies* defaults to every
    distinct registered policy, and *benchmark_set* picks the roster
    (``synthetic``/``real``/``all`` — the real set runs the targets
    ingested into the store's ``traces/`` directory).  The baseline
    policy is always included — the report normalises against it.
    """
    from repro.experiments.common import BASELINE_POLICY

    roster = tuple(policies) if policies else tournament_policies()
    if BASELINE_POLICY not in roster:
        roster = (BASELINE_POLICY, *roster)
    _validate_policies(roster)
    base_settings = settings or ExperimentSettings.from_env()
    if benchmark_set is not None:
        base_settings = replace(base_settings, benchmark_set=benchmark_set)
    if base_settings.benchmark_set != "synthetic" and results_dir:
        # tgt: names resolve through the active targets directory; the
        # store that holds the ingested buffers is the natural default.
        from repro.targets import activate

        activate(results_dir)
    run = TournamentRun(
        policies=roster,
        cores=tuple(cores),
        seeds=tuple(seeds),
        results_dir=str(results_dir) if results_dir else None,
    )
    for seed in seeds:
        seed_settings = replace(base_settings, master_seed=seed)
        runner = Runner(
            base_config or SystemConfig.scaled(16),
            seed_settings,
            jobs=jobs,
            results_dir=results_dir,
            use_cache=use_cache,
            retry=retry,
        )
        try:
            for core_count in cores:
                config = config_for_cores(runner.config, core_count)
                suite = seed_settings.suite(core_count)
                if workloads is not None:
                    suite = suite[:workloads]
                run.suites[(core_count, seed)] = len(suite)
                run.scheduled += len(suite) * len(roster)
                # One batch per (seed, suite): every policy sweeps every
                # workload, so the runner captures each platform once and
                # replays the whole roster at LLC speed.
                runner.prefetch(suite, roster, config)
            run.executed += runner.pool.stats["executed"]
            run.store_hits += runner.pool.stats["store_hits"]
            run.failed += runner.pool.stats["failed"]
        finally:
            runner.close()
    return run
