"""Tables 2, 3 and 6: static/analytic tables.

These regenerate from code rather than simulation: Table 2 from the
hardware-cost model, Table 3 from the system configuration, Table 6 from
the workload composer.
"""

from __future__ import annotations

from repro.core.hwcost import table2_reports
from repro.sim.config import SystemConfig
from repro.trace.workloads import TABLE6, design_suite


def render_table2(num_apps: int = 24, llc_blocks: int = 256 * 1024) -> str:
    """Table 2: storage cost on the paper's 16MB, 16-way LLC at N=24."""
    paper_stated = {
        "TA-DRRIP": "48 Bytes (16-bit/app)",
        "EAF-RRIP": "256KB (8-bit/address)",
        "SHiP": "65.875KB (SHCT table & PC)",
        "ADAPT": "24KB appx (865 Bytes/app)",
    }
    lines = [f"== Table 2: hardware cost, {num_apps} applications =="]
    lines.append(f"{'Policy':<12} {'computed':>12}  breakdown  |  paper states")
    for report in table2_reports(num_apps, llc_blocks):
        lines.append(f"{report.render()}  |  {paper_stated[report.policy]}")
    return "\n".join(lines)


def render_table3(config: SystemConfig) -> str:
    """Table 3: the platform, paper values and the active scaled values."""
    paper = SystemConfig.paper(config.num_cores)
    lines = ["== Table 3: system configuration =="]
    lines.append(f"{'parameter':<26}{'paper':>18}{'this run':>18}")

    def row(label: str, paper_value: str, ours: str) -> None:
        lines.append(f"{label:<26}{paper_value:>18}{ours:>18}")

    def cache_str(c) -> str:
        kb = c.capacity_bytes() / 1024
        size = f"{kb / 1024:g}MB" if kb >= 1024 else f"{kb:g}KB"
        return f"{size}/{c.ways}w"

    row("cores", str(paper.num_cores), str(config.num_cores))
    row("L1D", cache_str(paper.l1), cache_str(config.l1))
    row("L2 (private)", cache_str(paper.l2), cache_str(config.l2))
    row("LLC (shared)", cache_str(paper.llc), cache_str(config.llc))
    row("LLC banks", str(paper.llc_banks), str(config.llc_banks))
    row("LLC latency", f"{paper.llc.latency:g} cyc", f"{config.llc.latency:g} cyc")
    row("L2 latency", f"{paper.l2.latency:g} cyc", f"{config.l2.latency:g} cyc")
    row("DRAM row hit", f"{paper.dram_row_hit:g} cyc", f"{config.dram_row_hit:g} cyc")
    row(
        "DRAM row conflict",
        f"{paper.dram_row_conflict:g} cyc",
        f"{config.dram_row_conflict:g} cyc",
    )
    row("DRAM banks", str(paper.dram_banks), str(config.dram_banks))
    row(
        "monitor interval",
        f"{paper.effective_interval:,} misses",
        f"{config.effective_interval:,} misses",
    )
    row("monitor sets", str(paper.monitor_sets), str(config.monitor_sets))
    return "\n".join(lines)


def render_table6(master_seed: int = 0) -> str:
    """Table 6: the workload suites and their composition constraints."""
    lines = ["== Table 6: workload design =="]
    lines.append(
        f"{'Study':<10}{'#Workloads':>12}  {'Composition':<24}{'example mix':<40}"
    )
    for cores, spec in TABLE6.items():
        example = design_suite(cores, 1, master_seed)[0]
        mix = ",".join(example.benchmarks[: min(8, cores)])
        if cores > 8:
            mix += ",..."
        lines.append(
            f"{cores}-core{'':<4}{spec.num_workloads:>10}  {spec.composition:<24}{mix:<40}"
        )
    return "\n".join(lines)
