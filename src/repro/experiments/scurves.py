"""Figures 3 and 8: weighted-speed-up s-curves over TA-DRRIP.

For each workload in a Table 6 suite, run every policy, normalise its
weighted speed-up to TA-DRRIP on the same workload, and sort the ratios —
the s-curves of Figure 3 (16-core) and Figure 8 (4/8/20/24-core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BASELINE_POLICY,
    FIGURE_POLICIES,
    Runner,
    config_for_cores,
    geometric_mean_gain,
)
from repro.sim.config import SystemConfig


@dataclass
class ScurveResult:
    """One suite's policy-vs-baseline ratios."""

    cores: int
    workload_names: list[str]
    #: policy -> per-workload WS ratio over TA-DRRIP (workload order).
    ratios: dict[str, list[float]]

    def s_curve(self, policy: str) -> list[float]:
        return sorted(self.ratios[policy])

    def mean_gain_percent(self, policy: str) -> float:
        return geometric_mean_gain(self.ratios[policy])

    def max_gain_percent(self, policy: str) -> float:
        return (max(self.ratios[policy]) - 1.0) * 100.0

    def render(self) -> str:
        lines = [f"== {self.cores}-core s-curves (WS over {BASELINE_POLICY}, "
                 f"{len(self.workload_names)} workloads) =="]
        for policy in self.ratios:
            curve = " ".join(f"{v:.3f}" for v in self.s_curve(policy))
            lines.append(
                f"{policy:<11} avg {self.mean_gain_percent(policy):+6.2f}%  "
                f"max {self.max_gain_percent(policy):+6.2f}%  | {curve}"
            )
        return "\n".join(lines)


def run_scurve(
    runner: Runner,
    cores: int,
    policies: tuple[str, ...] = FIGURE_POLICIES,
    config: SystemConfig | None = None,
) -> ScurveResult:
    """Run one suite under all policies; see Figures 3 and 8.

    Below 16 cores the LLC shrinks proportionally, per Section 4.3's
    4MB/8MB note (see :func:`~repro.experiments.common.config_for_cores`).
    """
    config = config or config_for_cores(runner.config, cores)
    suite = runner.settings.suite(cores)
    runner.prefetch(suite, (BASELINE_POLICY, *policies), config)
    ratios: dict[str, list[float]] = {p: [] for p in policies}
    for workload in suite:
        base = runner.weighted_speedup(workload, BASELINE_POLICY, config)
        for policy in policies:
            ratios[policy].append(
                runner.weighted_speedup(workload, policy, config) / base
            )
    return ScurveResult(
        cores=cores,
        workload_names=[w.name for w in suite],
        ratios=ratios,
    )
