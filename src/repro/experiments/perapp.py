"""Figures 4 and 5: per-application MPKI reduction and IPC speed-up.

Averaged over the 16-core workloads: for every application, the
percentage reduction in LLC MPKI and the IPC speed-up of each policy
relative to TA-DRRIP on the same workload.  Figure 4 covers the eleven
thrashing applications, Figure 5 the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BASELINE_POLICY, FIGURE_POLICIES, Runner
from repro.metrics.cachestats import average_by_app, ipc_speedup, mpki_reduction_percent
from repro.trace.benchmarks import BENCHMARKS


@dataclass
class PerAppResult:
    """Average per-application effects of each policy (vs TA-DRRIP)."""

    #: policy -> app -> average MPKI reduction (%)
    mpki_reduction: dict[str, dict[str, float]]
    #: policy -> app -> average IPC speed-up ratio
    ipc_speedup: dict[str, dict[str, float]]

    def apps(self, thrashing: bool) -> list[str]:
        # Ingested targets (tgt:) carry no Footprint-number: non-thrashing.
        some_policy = next(iter(self.mpki_reduction.values()))
        return sorted(
            app
            for app in some_policy
            if (app in BENCHMARKS and BENCHMARKS[app].thrashing) == thrashing
        )

    def render(self, thrashing: bool) -> str:
        apps = self.apps(thrashing)
        kind = "thrashing (Fig. 4)" if thrashing else "non-thrashing (Fig. 5)"
        lines = [f"== per-application effects vs {BASELINE_POLICY}: {kind} =="]
        header = f"{'app':<8}" + "".join(f"{p:>22}" for p in self.mpki_reduction)
        lines.append(header + "   (MPKI red. % / IPC x)")
        for app in apps:
            row = f"{app:<8}"
            for policy in self.mpki_reduction:
                red = self.mpki_reduction[policy].get(app, 0.0)
                spd = self.ipc_speedup[policy].get(app, 1.0)
                row += f"  {red:+8.1f}% /{spd:6.3f}x"
            lines.append(row)
        return "\n".join(lines)


def run_perapp(
    runner: Runner,
    cores: int = 16,
    policies: tuple[str, ...] = FIGURE_POLICIES,
) -> PerAppResult:
    """Per-application averages over a suite (Figures 4 and 5)."""
    config = runner.config.with_cores(cores)
    suite = runner.settings.suite(cores)
    runner.prefetch(suite, (BASELINE_POLICY, *policies), config)
    mpki_rows: dict[str, list[dict[str, float]]] = {p: [] for p in policies}
    ipc_rows: dict[str, list[dict[str, float]]] = {p: [] for p in policies}
    for workload in suite:
        base = runner.run(workload, BASELINE_POLICY, config).per_app()
        for policy in policies:
            snaps = runner.run(workload, policy, config).per_app()
            mpki_rows[policy].append(
                {
                    app: mpki_reduction_percent(s.llc_mpki, base[app].llc_mpki)
                    for app, s in snaps.items()
                }
            )
            ipc_rows[policy].append(
                {
                    app: ipc_speedup(s.ipc, base[app].ipc)
                    for app, s in snaps.items()
                    if base[app].ipc > 0
                }
            )
    return PerAppResult(
        mpki_reduction={p: average_by_app(rows) for p, rows in mpki_rows.items()},
        ipc_speedup={p: average_by_app(rows) for p, rows in ipc_rows.items()},
    )
