"""Table 7: ADAPT's gain under the five multi-core metrics.

Weighted speed-up, harmonic mean of normalized IPCs, and the geometric /
harmonic / arithmetic means of raw IPCs, for every core count in the
workload design.  Each cell is ADAPT_bp32's average percentage improvement
over TA-DRRIP on the corresponding suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Runner, config_for_cores, geometric_mean_gain
from repro.metrics.throughput import METRIC_LABELS, METRIC_NAMES


@dataclass
class Table7Result:
    #: metric -> cores -> mean gain %.
    gains: dict[str, dict[int, float]]
    core_counts: tuple[int, ...]

    def render(self) -> str:
        header = f"{'Metric':<14}" + "".join(f"{c:>9}-core" for c in self.core_counts)
        lines = ["== Table 7: ADAPT gain over TA-DRRIP ==", header]
        for metric in METRIC_NAMES:
            row = f"{METRIC_LABELS[metric]:<14}"
            for cores in self.core_counts:
                row += f"{self.gains[metric][cores]:+13.2f}%"
            lines.append(row)
        return "\n".join(lines)


def run_table7(
    runner: Runner,
    core_counts: tuple[int, ...] = (4, 8, 16, 20, 24),
    policy: str = "adapt_bp32",
) -> Table7Result:
    gains: dict[str, dict[int, float]] = {m: {} for m in METRIC_NAMES}
    for cores in core_counts:
        config = config_for_cores(runner.config, cores)
        suite = runner.settings.suite(cores)
        runner.prefetch(suite, ("tadrrip", policy), config)
        ratios: dict[str, list[float]] = {m: [] for m in METRIC_NAMES}
        for workload in suite:
            base = runner.all_metrics(workload, "tadrrip", config)
            ours = runner.all_metrics(workload, policy, config)
            for metric in METRIC_NAMES:
                ratios[metric].append(ours[metric] / base[metric])
        for metric in METRIC_NAMES:
            gains[metric][cores] = geometric_mean_gain(ratios[metric])
    return Table7Result(gains=gains, core_counts=core_counts)
