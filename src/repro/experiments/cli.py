"""Command registry for the ``repro-experiments`` CLI.

Every subcommand registers itself with the :func:`register_command`
decorator (infra-style): a name, a help line, and a ``configure``
callback that adds exactly the flags that command understands.
:func:`build_parser` assembles real argparse subparsers from the
registry, so

* each command owns its flag set — ``--regen`` exists only on
  ``golden``, ``--dry-run`` only on ``traces``, ``--seed`` only on
  simulation-backed commands — and an unsupported flag is an argparse
  *error* instead of being silently ignored;
* the historical spellings keep working unchanged: ``repro-experiments
  fig3``, ``golden --regen``, ``profile fig3``, ``traces gc`` are all
  ordinary subcommand invocations of the same registry;
* new commands (``tournament``, ``report``) are one decorated function
  away.

Shared flag groups (store/runner plumbing, simulation seeds) live here as
``add_*_flags`` helpers so every command spells them identically.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from dataclasses import dataclass

Configure = Callable[[argparse.ArgumentParser], None]
Run = Callable[[argparse.Namespace], int]


@dataclass(frozen=True)
class Command:
    """One registered subcommand."""

    name: str
    help: str
    run: Run
    configure: Configure | None = None


#: Registry, in registration order (which is the ``list``/help order).
COMMANDS: dict[str, Command] = {}


def register_command(
    name: str, *, help: str = "", configure: Configure | None = None
) -> Callable[[Run], Run]:
    """Class-less command registration: decorate the run function.

    ``configure`` receives the command's subparser and adds its flags;
    the decorated function receives the parsed namespace and returns the
    process exit code.
    """

    def decorator(run: Run) -> Run:
        if name in COMMANDS:
            raise ValueError(f"duplicate command {name!r}")
        COMMANDS[name] = Command(name=name, help=help, run=run, configure=configure)
        return run

    return decorator


# -- shared flag groups ------------------------------------------------------------


def add_store_flags(parser: argparse.ArgumentParser, *, jobs: bool = True) -> None:
    """Result-store + worker-pool plumbing shared by executing commands."""
    if jobs:
        parser.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes (default: REPRO_JOBS or CPU count; 1 = inline)",
        )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="persistent result store root ('' disables the store)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result store and simulate everything fresh",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per failed job before quarantine "
        "(default: REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock limit in seconds "
        "(default: REPRO_JOB_TIMEOUT; 0 disables)",
    )


def add_seed_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed for workload sampling and trace generation",
    )


def add_benchmark_set_flag(parser: argparse.ArgumentParser) -> None:
    """Workload-suite selection shared by suite-driven commands."""
    parser.add_argument(
        "--benchmark-set",
        choices=["synthetic", "real", "all"],
        default="synthetic",
        dest="benchmark_set",
        help="workload suite: the synthetic Table 6 roster, the ingested "
        "real-trace targets ('repro-experiments targets ingest'), or both",
    )


def add_sim_flags(parser: argparse.ArgumentParser, *, cores: bool = False) -> None:
    """Flags of every simulation-backed command (optionally ``--cores``)."""
    if cores:
        parser.add_argument(
            "--cores", type=int, default=16, help="platform core count"
        )
    add_seed_flag(parser)
    add_benchmark_set_flag(parser)
    add_store_flags(parser)


# -- parser assembly ---------------------------------------------------------------


def build_parser(prog: str | None = None) -> argparse.ArgumentParser:
    """An argparse parser with one subparser per registered command."""
    parser = argparse.ArgumentParser(
        prog=prog or "repro-experiments",
        description="Regenerate paper tables/figures, run policy tournaments "
        "and aggregate reports from the ADAPT reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    for command in COMMANDS.values():
        sub = subparsers.add_parser(
            command.name, help=command.help, description=command.help
        )
        if command.configure is not None:
            command.configure(sub)
    return parser


def dispatch(argv: list[str] | None = None, prog: str | None = None) -> int:
    """Parse *argv* and run the selected command.

    The handler is looked up in :data:`COMMANDS` at dispatch time (not
    frozen into the parser), so tests can stub a command's ``run``.

    Usage errors for leftover arguments are reported here rather than by
    ``parse_args`` so the message names the offending *subcommand* —
    argparse's own "unrecognized arguments" comes from the main parser
    and gives no hint which command rejected the flag.
    """
    parser = build_parser(prog)
    args, extras = parser.parse_known_args(argv)
    if not args.command:
        if extras:
            parser.error(f"unrecognized arguments: {' '.join(extras)}")
        parser.print_help(sys.stderr)
        return 2
    if extras:
        print(
            f"{parser.prog} {args.command}: unrecognized arguments: "
            f"{' '.join(extras)}\n"
            f"(see: {parser.prog} {args.command} --help)",
            file=sys.stderr,
        )
        return 2
    return COMMANDS[args.command].run(args)
