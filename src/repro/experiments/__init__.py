"""One module per paper table/figure, plus shared run infrastructure.

========================  ============================================
Module                    Regenerates
========================  ============================================
:mod:`~repro.experiments.fig1`      Figure 1 (motivation: forced BRRIP)
:mod:`~repro.experiments.scurves`   Figures 3 and 8 (WS s-curves)
:mod:`~repro.experiments.perapp`    Figures 4 and 5 (per-app MPKI/IPC)
:mod:`~repro.experiments.fig6`      Figure 6 (bypassing each policy)
:mod:`~repro.experiments.fig7`      Figure 7 (larger caches)
:mod:`~repro.experiments.tables`    Tables 2, 3, 6 (analytic)
:mod:`~repro.experiments.table4`    Table 4 (+ Table 5 classification)
:mod:`~repro.experiments.table7`    Table 7 (other multi-core metrics)
:mod:`~repro.experiments.ablation`  design-choice ablations
========================  ============================================
"""

from repro.experiments.ablation import (
    AblationResult,
    run_interval_ablation,
    run_monitor_sets_ablation,
    run_priority_range_ablation,
)
from repro.experiments.common import (
    BASELINE_POLICY,
    FIGURE_POLICIES,
    ExperimentSettings,
    Runner,
    scale_factor,
)
from repro.experiments.fig1 import (
    Fig1Result,
    forced_tadrrip,
    forced_tadrrip_spec,
    run_fig1,
)
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.perapp import PerAppResult, run_perapp
from repro.experiments.scurves import ScurveResult, run_scurve
from repro.experiments.table4 import Table4Result, characterise, run_table4
from repro.experiments.table7 import Table7Result, run_table7
from repro.experiments.tables import render_table2, render_table3, render_table6

__all__ = [
    "AblationResult",
    "run_interval_ablation",
    "run_monitor_sets_ablation",
    "run_priority_range_ablation",
    "BASELINE_POLICY",
    "FIGURE_POLICIES",
    "ExperimentSettings",
    "Runner",
    "scale_factor",
    "Fig1Result",
    "forced_tadrrip",
    "forced_tadrrip_spec",
    "run_fig1",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "PerAppResult",
    "run_perapp",
    "ScurveResult",
    "run_scurve",
    "Table4Result",
    "characterise",
    "run_table4",
    "Table7Result",
    "run_table7",
    "render_table2",
    "render_table3",
    "render_table6",
]
