"""The ``repro-experiments`` subcommands, registered on import.

Three families share the :mod:`repro.experiments.cli` registry:

* **paper artifacts** — one subcommand per figure/table (``fig1`` ...
  ``table7``, ``ablations``), each declaring only the flags it actually
  honours: ``--cores`` exists only where the artifact is core-count
  parameterised, ``--seed`` only on simulation-backed commands (the
  static ``table2``/``table3`` renderings reject it);
* **maintenance** — ``golden`` (fixture verify/regen), ``profile``
  (cProfile any experiment), ``traces gc`` (prune unreferenced shared
  buffers), ``list``;
* **the tournament pipeline** — ``tournament`` (schedule all policies x
  workloads x seeds into the store) and ``report`` (aggregate the store
  into ranked tables, write the ``BENCH_tournament.json`` snapshot, and
  optionally diff a baseline snapshot: exit 1 on significant regression,
  exit 3 when the snapshots are not comparable).  When ``--out`` and
  ``--baseline`` resolve to the same file the committed baseline is kept,
  never overwritten.

Every command builds its budgets from ``REPRO_SCALE`` exactly like the
pytest benches, and every simulation-backed command shares one memoising
runner per invocation (misses sharded over ``--jobs`` workers, results
persisted under ``--results-dir``).
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

from repro.experiments.cli import (
    add_benchmark_set_flag,
    add_seed_flag,
    add_sim_flags,
    add_store_flags,
    register_command,
)
from repro.experiments.common import ExperimentSettings, Runner
from repro.sim.config import SystemConfig

# -- shared construction -----------------------------------------------------------


def _settings_from(args) -> ExperimentSettings:
    """The invocation's budgets: ``REPRO_SCALE`` scaled, ``--seed`` and
    ``--benchmark-set`` applied.

    When a results dir is given, it also becomes the active targets
    directory (unless ``REPRO_TARGETS_DIR`` pins one), so ``tgt:`` names
    resolve in this process and in every pool worker.
    """
    from repro.targets import activate

    settings = ExperimentSettings.from_env()
    seed = getattr(args, "seed", 0)
    if seed:
        settings = replace(settings, master_seed=seed)
    benchmark_set = getattr(args, "benchmark_set", "synthetic")
    if benchmark_set != "synthetic":
        settings = replace(settings, benchmark_set=benchmark_set)
    results_dir = getattr(args, "results_dir", None)
    if results_dir:
        activate(results_dir)
    return settings


def _config_from(args) -> SystemConfig:
    return SystemConfig.scaled(getattr(args, "cores", 16))


def _retry_from(args):
    """Failure-handling policy: env defaults, CLI flags layered on top."""
    from repro.runner import RetryPolicy

    return RetryPolicy.from_env().with_overrides(
        max_retries=getattr(args, "max_retries", None),
        job_timeout=getattr(args, "job_timeout", None),
    )


def _runner_from(args, *, inline: bool = False) -> Runner:
    if inline:
        return Runner(
            _config_from(args), _settings_from(args), jobs=1, results_dir=None, use_cache=False
        )
    return Runner(
        _config_from(args),
        _settings_from(args),
        jobs=args.jobs,
        results_dir=args.results_dir or None,
        use_cache=not args.no_cache,
        retry=_retry_from(args),
    )


def _execute_experiment(name: str, runner: Runner) -> None:
    """Run one named experiment and print its rendering."""
    from repro.experiments.ablation import (
        run_interval_ablation,
        run_monitor_sets_ablation,
        run_priority_range_ablation,
    )
    from repro.experiments.fig1 import run_fig1
    from repro.experiments.fig6 import run_fig6
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.perapp import run_perapp
    from repro.experiments.scurves import run_scurve
    from repro.experiments.table4 import run_table4
    from repro.experiments.table7 import run_table7
    from repro.experiments.tables import render_table2, render_table3, render_table6

    config, settings = runner.config, runner.settings
    if name == "fig1":
        print(run_fig1(runner, config.num_cores).render())
    elif name == "fig3":
        print(run_scurve(runner, 16).render())
    elif name == "fig4":
        result = run_perapp(runner, 16)
        print(result.render(thrashing=True))
        print()
        print(result.render(thrashing=False))
    elif name == "fig6":
        print(run_fig6(runner, config.num_cores).render())
    elif name == "fig7":
        print(run_fig7(runner).render())
    elif name == "fig8":
        for n in (4, 8, 20, 24):
            print(run_scurve(runner, n).render())
            print()
    elif name == "table2":
        print(render_table2())
    elif name == "table3":
        print(render_table3(config))
    elif name == "table4":
        print(run_table4(config, settings, pool=runner.pool).render())
    elif name == "table6":
        print(render_table6(settings.master_seed))
    elif name == "table7":
        print(run_table7(runner).render())
    elif name == "ablations":
        print(run_priority_range_ablation(runner).render())
        print(run_interval_ablation(runner).render())
        print(run_monitor_sets_ablation(runner).render())
    else:  # pragma: no cover - registry and choices guard this
        raise ValueError(f"unknown experiment {name!r}")


# -- paper artifacts ---------------------------------------------------------------

#: name -> (help line, simulation-backed, honours --cores)
EXPERIMENTS: dict[str, tuple[str, bool, bool]] = {
    "fig1": ("Figure 1: duelling-set sensitivity of DIP-style policies", True, True),
    "fig3": ("Figure 3: 16-core weighted-speed-up s-curves", True, False),
    "fig4": ("Figures 4/5: per-application speed-up split", True, False),
    "fig6": ("Figure 6: bypass-wrapper comparison", True, True),
    "fig7": ("Figure 7: large-cache sensitivity", True, False),
    "fig8": ("Figure 8: 4/8/20/24-core scaling s-curves", True, False),
    "table2": ("Table 2: hardware cost comparison (static)", False, False),
    "table3": ("Table 3: evaluated system configuration (static)", False, True),
    "table4": ("Table 4: benchmark characterisation", True, True),
    "table6": ("Table 6: workload-design examples", False, False),
    "table7": ("Table 7: throughput-metric comparison", True, False),
    "ablations": ("Priority-range / interval / monitor-set ablations", True, False),
}


def _register_experiments() -> None:
    for name, (help_line, simulated, cores) in EXPERIMENTS.items():

        def configure(parser, simulated=simulated, cores=cores, name=name):
            if simulated:
                add_sim_flags(parser, cores=cores)
            elif cores:
                parser.add_argument(
                    "--cores", type=int, default=16, help="platform core count"
                )
            elif name == "table6":
                add_seed_flag(parser)

        def run(args, name=name, simulated=simulated):
            runner = _runner_from(args, inline=not simulated)
            try:
                _execute_experiment(name, runner)
                if simulated:
                    print(runner.cache_summary(), file=sys.stderr)
            finally:
                runner.close()
            return 0

        register_command(name, help=help_line, configure=configure)(run)


_register_experiments()


# -- tournament + report -----------------------------------------------------------


def _configure_tournament(parser) -> None:
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="number of master seeds swept (seed, seed+1, ...)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        help="suite core counts to sweep (default: 4)",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="POLICY",
        help="policy roster (default: every distinct registered policy)",
    )
    parser.add_argument(
        "--workloads",
        type=int,
        default=None,
        help="cap the workloads per suite (default: REPRO_SCALE-scaled Table 6 counts)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="re-execute only the failed/missing cells of an interrupted "
        "sweep (requires --results-dir; completed cells come from the store)",
    )
    add_seed_flag(parser)
    add_benchmark_set_flag(parser)
    add_store_flags(parser)


@register_command(
    "tournament",
    help="run all policies x workloads x N seeds into the result store",
    configure=_configure_tournament,
)
def _cmd_tournament(args) -> int:
    from repro.experiments.tournament import DEFAULT_CORES, run_tournament

    if args.seeds < 1:
        print("tournament needs --seeds >= 1", file=sys.stderr)
        return 2
    if args.resume:
        # Resume rides on the content-addressed store: completed cells
        # are hits, failed/missing cells are the only misses executed.
        if not args.results_dir:
            print("tournament --resume needs --results-dir", file=sys.stderr)
            return 2
        if args.no_cache:
            print(
                "tournament --resume contradicts --no-cache "
                "(resume replays the store)",
                file=sys.stderr,
            )
            return 2
        from repro.runner.store import ResultStore

        holes = sum(1 for _ in ResultStore(args.results_dir).failures())
        print(
            f"resuming: {holes} quarantined cells (plus any missing ones) "
            "will be re-executed",
            file=sys.stderr,
        )
    if not args.results_dir:
        print(
            "warning: no --results-dir; results will not be aggregatable "
            "by 'repro-experiments report'",
            file=sys.stderr,
        )
    try:
        run = run_tournament(
            policies=tuple(args.policies) if args.policies else None,
            cores=tuple(args.cores) if args.cores else DEFAULT_CORES,
            seeds=tuple(range(args.seed, args.seed + args.seeds)),
            workloads=args.workloads,
            benchmark_set=args.benchmark_set,
            jobs=args.jobs,
            results_dir=args.results_dir or None,
            use_cache=not args.no_cache,
            retry=_retry_from(args),
        )
    except ValueError as exc:  # unknown policy/core-count, before simulating
        print(f"tournament: {exc}", file=sys.stderr)
        return 2
    print(run.render())
    return 0


def _configure_report(parser) -> None:
    parser.add_argument(
        "--results-dir",
        default="results",
        help="result store to aggregate (the tournament's --results-dir)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_tournament.json",
        help="where to write the trajectory snapshot",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="SNAPSHOT",
        help="diff against this committed snapshot; exit 1 on significant "
        "regression, 3 when the snapshots are not comparable",
    )
    parser.add_argument(
        "--baseline-policy",
        default=None,
        help="policy every cell is normalised against (default: tadrrip)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative rel-WS movement considered significant (default: 0.01)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="bootstrap confidence level for the reported intervals",
    )
    parser.add_argument(
        "--no-kernel",
        action="store_true",
        help="skip the kernel-throughput probe in the snapshot",
    )


@register_command(
    "report",
    help="aggregate the store into ranked tables + BENCH_tournament.json",
    configure=_configure_report,
)
def _cmd_report(args) -> int:
    from repro.report import (
        DEFAULT_BASELINE,
        DEFAULT_THRESHOLD,
        build_snapshot,
        compare,
        load_snapshot,
        measure_kernel_throughput,
        render_report,
        report_from_store,
        write_snapshot,
    )
    from repro.runner.store import ResultStore

    if not args.results_dir:
        print("report needs a persistent store (--results-dir)", file=sys.stderr)
        return 2
    # Read the baseline before anything is written: with the default --out
    # (BENCH_tournament.json) both flags name the committed snapshot, and
    # writing first would clobber it and then diff the run against itself.
    baseline = None
    if args.baseline:
        try:
            baseline = load_snapshot(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"report: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    store = ResultStore(args.results_dir)
    report = report_from_store(
        store,
        baseline=args.baseline_policy or DEFAULT_BASELINE,
        confidence=args.confidence,
    )
    if not report.data.cells:
        print(
            f"no tournament cells in {args.results_dir} — "
            "run 'repro-experiments tournament' first",
            file=sys.stderr,
        )
        return 2
    print(render_report(report))
    kernel = None if args.no_kernel else measure_kernel_throughput()
    snapshot = build_snapshot(report, kernel=kernel)
    if args.out:
        if args.baseline and Path(args.out).resolve() == Path(args.baseline).resolve():
            print(
                f"report: --out and --baseline both name {args.out}; keeping "
                "the committed baseline (pass a different --out to also "
                "write the fresh snapshot)",
                file=sys.stderr,
            )
        else:
            path = write_snapshot(snapshot, args.out)
            print(f"snapshot written to {path}", file=sys.stderr)
    if baseline is not None:
        verdict = compare(
            snapshot,
            baseline,
            threshold=DEFAULT_THRESHOLD if args.threshold is None else args.threshold,
        )
        print()
        print(verdict.render())
        if not verdict.comparable:
            return 3
        if verdict.has_regressions:
            return 1
    return 0


# -- maintenance -------------------------------------------------------------------


def _configure_golden(parser) -> None:
    parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite the golden-master fixtures instead of verifying",
    )
    parser.add_argument(
        "--fixtures-dir",
        default=None,
        help="fixture directory (default: tests/golden/fixtures)",
    )


@register_command(
    "golden",
    help="verify (or --regen) the kernel golden-master fixtures",
    configure=_configure_golden,
)
def _cmd_golden(args) -> int:
    """Fixtures pin the simulation kernel's exact behaviour for every
    registered policy (see :mod:`repro.golden`).  Regenerate only after an
    *intentional* behaviour change, then review the fixture diff."""
    from repro.golden import verify_fixtures, write_fixtures

    if args.regen:
        written = write_fixtures(args.fixtures_dir)
        print(f"regenerated {len(written)} golden fixtures in {written[0].parent}")
        return 0
    failures = verify_fixtures(args.fixtures_dir)
    if not failures:
        print("golden fixtures verified: kernel behaviour is bit-identical")
        return 0
    for name, problems in sorted(failures.items()):
        print(f"FAIL {name}")
        for problem in problems:
            print(f"  {problem}")
    print(
        f"{len(failures)} golden case(s) diverged; if intentional, re-run "
        "with --regen and review the fixture diff"
    )
    return 1


def _configure_profile(parser) -> None:
    parser.add_argument(
        "target",
        choices=sorted(EXPERIMENTS),
        help="the experiment to run under cProfile (e.g. fig3)",
    )
    parser.add_argument("--cores", type=int, default=16, help="platform core count")
    add_seed_flag(parser)
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="number of cumulative-time rows to print",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="also dump raw pstats data to this file "
        "(inspectable with snakeviz / pstats)",
    )


@register_command(
    "profile",
    help="run one experiment under cProfile (inline, store bypassed)",
    configure=_configure_profile,
)
def _cmd_profile(args) -> int:
    """The bench runs inline (one process, store bypassed) so the profile
    captures real simulation work rather than pickling or cache reads —
    exactly the view a perf PR needs to locate hot spots."""
    import cProfile
    import io
    import pstats

    runner = _runner_from(args, inline=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _execute_experiment(args.target, runner)
    finally:
        profiler.disable()
        runner.close()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue())
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"raw profile written to {args.profile_out}", file=sys.stderr)
    print(runner.cache_summary(), file=sys.stderr)
    return 0


def _configure_traces(parser) -> None:
    parser.add_argument(
        "action",
        choices=["gc", "ls"],
        help="'gc' prunes unreferenced buffers, 'ls' lists every artifact "
        "with its provenance",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="persistent result store root",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be pruned without deleting (gc only)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="move corrupt referenced artifacts to traces/quarantine/ "
        "(they are regenerated on the next sweep; gc only)",
    )


@register_command(
    "traces",
    help="shared-buffer maintenance: 'traces gc' prunes, 'traces ls' "
    "lists with provenance",
    configure=_configure_traces,
)
def _cmd_traces(args) -> int:
    """``gc`` walks the persistent result store through its typed query
    API, recomputes the buffer keys every stored result references (plus
    the target buffers ``targets.json`` pins), and deletes the rest of
    ``<results-dir>/traces/``.  ``ls`` only enumerates, rendering each
    artifact's provenance from its meta sidecar."""
    from repro.runner.tracegc import collect_garbage, list_traces

    if not args.results_dir:
        print(
            f"traces {args.action} needs a persistent store (--results-dir)",
            file=sys.stderr,
        )
        return 2
    if args.action == "ls":
        print(list_traces(args.results_dir).render())
        return 0
    report = collect_garbage(args.results_dir, dry_run=args.dry_run, fix=args.fix)
    print(report.render())
    return 0


# -- targets (real-workload trace frontend) ----------------------------------------


def _configure_targets(parser) -> None:
    parser.add_argument(
        "action",
        choices=["list", "ingest", "info"],
        help="'ingest' trace files, 'list' registered targets, "
        "'info' one target's provenance",
    )
    parser.add_argument(
        "items",
        nargs="*",
        metavar="ITEM",
        help="trace files (ingest) or target names (info)",
    )
    parser.add_argument(
        "--format",
        choices=["champsim", "drcachesim", "lackey"],
        default=None,
        dest="fmt",
        help="trace format (default: inferred from the file name)",
    )
    parser.add_argument(
        "--name",
        default=None,
        help="registry name for the ingested target "
        "(single file only; default: derived from the file name)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="down-sampling cap in accesses (default: REPRO_TRACE_BUDGET "
        "x REPRO_SCALE)",
    )
    parser.add_argument(
        "--block-size", type=int, default=64, help="cache block size in bytes"
    )
    parser.add_argument(
        "--mlp",
        type=float,
        default=2.0,
        help="memory-level parallelism assumed by the core model",
    )
    parser.add_argument(
        "--base-cpi",
        type=float,
        default=1.0,
        help="non-memory CPI assumed by the core model",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="store whose traces/ directory receives the ingested buffers",
    )


@register_command(
    "targets",
    help="real-workload traces: ingest ChampSim/drcachesim/lackey files "
    "as tournament benchmarks",
    configure=_configure_targets,
)
def _cmd_targets(args) -> int:
    """Ingestion materialises each trace once, content-addressed, under
    ``<results-dir>/traces/`` (see :mod:`repro.targets`); ingested targets
    then join any suite via ``--benchmark-set real``/``all``."""
    from repro.runner.integrity import read_meta
    from repro.targets import FormatError, ingest_file, load_registry
    from repro.targets.registry import buffer_path, lookup_target

    if not args.results_dir:
        print("targets needs a persistent store (--results-dir)", file=sys.stderr)
        return 2
    directory = Path(args.results_dir) / "traces"

    if args.action == "list":
        registry = load_registry(directory)
        if not registry:
            print(
                f"no targets ingested under {directory} — "
                "run: repro-experiments targets ingest <trace-file>"
            )
            return 0
        for name in sorted(registry):
            spec = registry[name]
            print(
                f"{name:<28} [{spec.fmt}] origin={spec.origin} "
                f"accesses={spec.n_accesses} budget={spec.budget} "
                f"ipa={spec.instructions_per_access:.2f}"
            )
        return 0

    if not args.items:
        print(
            f"targets {args.action}: needs at least one "
            f"{'trace file' if args.action == 'ingest' else 'target name'}",
            file=sys.stderr,
        )
        return 2

    if args.action == "ingest":
        if args.name and len(args.items) > 1:
            print(
                "targets ingest: --name applies to a single file", file=sys.stderr
            )
            return 2
        for item in args.items:
            try:
                spec, reused = ingest_file(
                    item,
                    args.fmt,
                    directory=directory,
                    name=args.name,
                    budget=args.budget,
                    block_size=args.block_size,
                    mlp=args.mlp,
                    base_cpi=args.base_cpi,
                )
            except (FormatError, OSError, ValueError) as exc:
                print(f"targets ingest: {item}: {exc}", file=sys.stderr)
                return 2
            verb = "reused" if reused else "ingested"
            print(
                f"{verb} {spec.name} -> target-{spec.key}.npy "
                f"[{spec.fmt}] {spec.n_accesses} accesses "
                f"({spec.n_chunks} chunks, budget {spec.budget})"
            )
        return 0

    # info: registered targets first, then raw buffer names/keys — the
    # meta sidecars make provenance uniform across both kinds.
    status = 0
    for item in args.items:
        spec = lookup_target(item, directory)
        if spec is not None:
            meta = read_meta(buffer_path(directory, spec.key)) or {}
            print(f"{spec.name}:")
            print(f"  buffer     target-{spec.key}.npy")
            print(f"  format     {spec.fmt}")
            print(f"  origin     {spec.origin}")
            print(f"  source     sha256:{spec.source_sha256}")
            print(f"  budget     {spec.budget}")
            print(
                f"  accesses   {spec.n_accesses} "
                f"({spec.n_chunks} chunks of 4096)"
            )
            print(f"  ipa        {spec.instructions_per_access:.3f}")
            print(f"  core model mlp={spec.mlp} base_cpi={spec.base_cpi}")
            if meta.get("instructions"):
                print(f"  instrs     {meta['instructions']}")
            continue
        # Fall back to any artifact in the traces dir (synthetic buffers
        # included) so `targets info <key>.npy` prints its provenance.
        from repro.runner.tracegc import provenance_line

        candidates = [
            p
            for p in (
                directory / item,
                directory / f"{item}.npy",
                directory / f"target-{item}.npy",
            )
            if p.is_file()
        ]
        if candidates:
            print(f"{candidates[0].name}: {provenance_line(candidates[0])}")
            continue
        print(f"targets info: unknown target {item!r}", file=sys.stderr)
        status = 2
    return status


@register_command("list", help="list every available subcommand")
def _cmd_list(args) -> int:
    from repro.experiments.cli import COMMANDS

    for name, command in COMMANDS.items():
        if name == "list":
            continue
        print(f"{name:<12} {command.help}" if command.help else name)
    return 0
