"""Table 4: per-benchmark characterisation, run alone.

For each of the 36 synthetic benchmarks: the Footprint-number measured by
an all-sets monitor with 32-entry arrays (the paper's Fpn(A) upper-bound
column), the Footprint-number measured by the deployed 40-set/16-entry
sampler (Fpn(S)), and the L2-MPKI — then the Table 5 class derived from
the measurements, compared against the paper's class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classification import ClassifiedBenchmark, classify
from repro.experiments.common import ExperimentSettings
from repro.sim.config import SystemConfig
from repro.sim.single import run_alone
from repro.trace.benchmarks import BENCHMARKS


@dataclass
class Table4Result:
    rows: list[ClassifiedBenchmark]

    @property
    def matches(self) -> int:
        return sum(1 for row in self.rows if row.matches_paper)

    def render(self) -> str:
        lines = ["== Table 4: benchmark characterisation (measured alone) =="]
        lines.extend(row.render() for row in self.rows)
        lines.append(
            f"-- class agreement with paper: {self.matches}/{len(self.rows)} --"
        )
        return "\n".join(lines)


def characterise(
    benchmark: str, config: SystemConfig, settings: ExperimentSettings
) -> ClassifiedBenchmark:
    """One Table 4 row."""
    result = run_alone(
        benchmark,
        config,
        quota=settings.alone_quota,
        warmup=settings.alone_warmup,
        master_seed=settings.master_seed,
        monitor=True,
        monitor_all_sets=True,
    )
    fpn_all = result.footprints.get("all", 0.0)
    fpn_sampled = result.footprints.get("sampled", 0.0)
    mpki = result.l2_mpki
    return ClassifiedBenchmark(
        name=benchmark,
        fpn_all=fpn_all,
        fpn_sampled=fpn_sampled,
        l2_mpki=mpki,
        measured_class=classify(fpn_sampled, mpki),
        paper_class=BENCHMARKS[benchmark].paper_class,
    )


def run_table4(
    config: SystemConfig, settings: ExperimentSettings | None = None
) -> Table4Result:
    settings = settings or ExperimentSettings.from_env()
    rows = [characterise(name, config, settings) for name in BENCHMARKS]
    return Table4Result(rows=rows)
