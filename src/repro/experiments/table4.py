"""Table 4: per-benchmark characterisation, run alone.

For each of the 36 synthetic benchmarks: the Footprint-number measured by
an all-sets monitor with 32-entry arrays (the paper's Fpn(A) upper-bound
column), the Footprint-number measured by the deployed 40-set/16-entry
sampler (Fpn(S)), and the L2-MPKI — then the Table 5 class derived from
the measurements, compared against the paper's class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classification import ClassifiedBenchmark, classify
from repro.experiments.common import ExperimentSettings
from repro.runner import AloneJob, ParallelRunner
from repro.sim.config import SystemConfig
from repro.sim.results import SingleRunResult
from repro.sim.single import run_alone
from repro.trace.benchmarks import BENCHMARKS


@dataclass
class Table4Result:
    rows: list[ClassifiedBenchmark]

    @property
    def matches(self) -> int:
        return sum(1 for row in self.rows if row.matches_paper)

    def render(self) -> str:
        lines = ["== Table 4: benchmark characterisation (measured alone) =="]
        lines.extend(row.render() for row in self.rows)
        lines.append(
            f"-- class agreement with paper: {self.matches}/{len(self.rows)} --"
        )
        return "\n".join(lines)


def _characterisation_job(
    benchmark: str, config: SystemConfig, settings: ExperimentSettings
) -> AloneJob:
    # run_alone simulates a single-core platform; canonicalise the job's
    # config to match so cache keys are shared across suite core counts.
    return AloneJob(
        benchmark=benchmark,
        config=config.with_cores(1),
        policy="tadrrip",
        quota=settings.alone_quota,
        warmup=settings.alone_warmup,
        master_seed=settings.master_seed,
        monitor=True,
        monitor_all_sets=True,
    )


def _row_from_result(benchmark: str, result: SingleRunResult) -> ClassifiedBenchmark:
    fpn_all = result.footprints.get("all", 0.0)
    fpn_sampled = result.footprints.get("sampled", 0.0)
    mpki = result.l2_mpki
    return ClassifiedBenchmark(
        name=benchmark,
        fpn_all=fpn_all,
        fpn_sampled=fpn_sampled,
        l2_mpki=mpki,
        measured_class=classify(fpn_sampled, mpki),
        paper_class=BENCHMARKS[benchmark].paper_class,
    )


def characterise(
    benchmark: str, config: SystemConfig, settings: ExperimentSettings
) -> ClassifiedBenchmark:
    """One Table 4 row (in-process; see :func:`run_table4` for the batch path)."""
    job = _characterisation_job(benchmark, config, settings)
    result = run_alone(
        benchmark,
        config,
        quota=job.quota,
        warmup=job.warmup,
        master_seed=job.master_seed,
        monitor=True,
        monitor_all_sets=True,
    )
    return _row_from_result(benchmark, result)


def run_table4(
    config: SystemConfig,
    settings: ExperimentSettings | None = None,
    pool: ParallelRunner | None = None,
) -> Table4Result:
    """Characterise all 36 benchmarks, fanned out over *pool* when given."""
    settings = settings or ExperimentSettings.from_env()
    pool = pool or ParallelRunner()
    names = list(BENCHMARKS)
    jobs = [_characterisation_job(name, config, settings) for name in names]
    results = pool.run(jobs)
    return Table4Result(
        rows=[_row_from_result(name, r) for name, r in zip(names, results)]
    )
