"""Shared infrastructure for the paper-figure experiments.

All experiments run through a :class:`Runner`, which owns the system
configuration, memoises IPC_alone baselines and caches multi-programmed
runs so that e.g. Figure 3's TA-DRRIP runs are reused by Figure 4/5's
per-application analysis and Table 7's metric table.

Budgets honour the ``REPRO_SCALE`` environment variable: ``REPRO_SCALE=1``
(default) runs a representative subsample of each suite in CI-friendly
time; larger values approach the paper's full workload counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.metrics.throughput import compute_all_metrics, weighted_speedup
from repro.policies.base import ReplacementPolicy
from repro.sim.config import SystemConfig
from repro.sim.multi import run_workload
from repro.sim.results import WorkloadResult
from repro.sim.single import AloneCache
from repro.trace.workloads import TABLE6, Workload, design_suite

#: The policies compared in Figures 3 and 8, paper naming and order.
FIGURE_POLICIES = ("adapt_bp32", "lru", "ship", "eaf", "adapt_ins")
BASELINE_POLICY = "tadrrip"


def scale_factor() -> float:
    """The ``REPRO_SCALE`` knob (>= 0.1)."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        value = 1.0
    return max(0.1, value)


@dataclass(frozen=True)
class ExperimentSettings:
    """Run budgets for one experiment campaign."""

    master_seed: int = 0
    quota: int = 20_000  # measured accesses per core
    warmup: int = 7_000  # warm-up accesses per core
    alone_quota: int = 25_000
    alone_warmup: int = 4_000
    #: Per-suite workload counts (paper counts scaled down by default).
    workloads: dict[int, int] = field(
        default_factory=lambda: {4: 6, 8: 4, 16: 6, 20: 2, 24: 2}
    )

    @staticmethod
    def from_env() -> "ExperimentSettings":
        s = scale_factor()
        base = ExperimentSettings()
        scaled = {
            cores: max(2, min(TABLE6[cores].num_workloads, round(n * s)))
            for cores, n in base.workloads.items()
        }
        return ExperimentSettings(workloads=scaled)

    def suite(self, cores: int) -> list[Workload]:
        return design_suite(cores, self.workloads[cores], self.master_seed)


def config_for_cores(base: SystemConfig, cores: int) -> SystemConfig:
    """The platform for a given suite, following Section 4.3.

    "For 4 and 8-core workloads, we study with 4MB and 8MB shared caches
    while 16, 20 and 24-core workloads are studied with a 16MB cache" —
    i.e. the LLC shrinks proportionally below 16 cores (so per-application
    pressure stays in the studied regime), and stays fixed above, which is
    the #cores >= #ways scenario.  A floor of 64 sets protects miniature
    test configurations.
    """
    config = base.with_cores(cores)
    if cores < 16:
        factor = 16 // cores
        sets = max(64, base.llc.num_sets // factor)
        if sets != base.llc.num_sets:
            config = config.with_llc(num_sets=sets)
    return config


class Runner:
    """Memoising front-end over the simulation drivers."""

    def __init__(self, config: SystemConfig, settings: ExperimentSettings | None = None):
        self.config = config
        self.settings = settings or ExperimentSettings.from_env()
        self._alone_caches: dict[str, AloneCache] = {}
        self._runs: dict[tuple[str, str, str], WorkloadResult] = {}

    # -- baselines ---------------------------------------------------------------

    def _alone_cache(self, config: SystemConfig) -> AloneCache:
        cache = self._alone_caches.get(config.name)
        if cache is None:
            cache = AloneCache(
                config,
                quota=self.settings.alone_quota,
                warmup=self.settings.alone_warmup,
                master_seed=self.settings.master_seed,
            )
            self._alone_caches[config.name] = cache
        return cache

    def alone_ipcs(self, workload: Workload, config: SystemConfig | None = None) -> list[float]:
        config = config or self.config
        return self._alone_cache(config).ipcs(workload.benchmarks)

    # -- multi-programmed runs -----------------------------------------------------

    def run(
        self,
        workload: Workload,
        policy: str | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> WorkloadResult:
        config = config or self.config
        key = (
            workload.name,
            policy if isinstance(policy, str) else f"obj:{policy.name}:{id(policy)}",
            config.name,
        )
        result = self._runs.get(key)
        if result is None:
            result = run_workload(
                workload,
                config,
                policy,
                quota=self.settings.quota,
                warmup=self.settings.warmup,
                master_seed=self.settings.master_seed,
            )
            self._runs[key] = result
        return result

    # -- derived metrics ----------------------------------------------------------------

    def weighted_speedup(
        self,
        workload: Workload,
        policy: str | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> float:
        result = self.run(workload, policy, config)
        return weighted_speedup(result.ipcs, self.alone_ipcs(workload, config))

    def relative_ws(
        self,
        workload: Workload,
        policy: str | ReplacementPolicy,
        config: SystemConfig | None = None,
        baseline: str = BASELINE_POLICY,
    ) -> float:
        """Per-workload speed-up over the TA-DRRIP baseline (figure y-axis)."""
        return self.weighted_speedup(workload, policy, config) / self.weighted_speedup(
            workload, baseline, config
        )

    def all_metrics(
        self,
        workload: Workload,
        policy: str | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> dict[str, float]:
        result = self.run(workload, policy, config)
        return compute_all_metrics(result.ipcs, self.alone_ipcs(workload, config))


def format_series(label: str, values: list[float]) -> str:
    body = " ".join(f"{v:.3f}" for v in values)
    return f"{label:<12} {body}"


def geometric_mean_gain(values: list[float]) -> float:
    """Mean percentage gain of a series of baseline-relative ratios."""
    from repro.util.stats import geometric_mean

    return (geometric_mean(values) - 1.0) * 100.0
