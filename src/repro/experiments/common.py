"""Shared infrastructure for the paper-figure experiments.

All experiments run through a :class:`Runner`, which owns the system
configuration and layers three caches over the simulation drivers:

* **L1** — an in-process memo of :class:`WorkloadResult`s and
  ``IPC_alone`` baselines, so e.g. Figure 3's TA-DRRIP runs are reused by
  Figure 4/5's per-application analysis and Table 7's metric table within
  one invocation;
* **L2** — an optional persistent :class:`~repro.runner.store.ResultStore`
  (``results_dir``), keyed by a stable hash of workload + configuration +
  policy + budgets + master seed, so results are shared *across*
  invocations;
* **execution** — a :class:`~repro.runner.parallel.ParallelRunner` that
  shards cache misses over a process pool (``jobs`` workers, defaulting
  to ``REPRO_JOBS`` / CPU count).

Figure modules call :meth:`Runner.prefetch` up front with every
(workload, policy) pair they are about to consume; the pool simulates the
misses in parallel and the figures' sequential loops then hit the L1 memo.

Budgets honour the ``REPRO_SCALE`` environment variable: ``REPRO_SCALE=1``
(default) runs a representative subsample of each suite in CI-friendly
time; larger values approach the paper's full workload counts.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.metrics.throughput import compute_all_metrics, weighted_speedup
from repro.policies.base import ReplacementPolicy
from repro.runner import (
    ParallelRunner,
    PolicySpec,
    ResultStore,
    RetryPolicy,
    WorkloadJob,
    policy_key,
)
from repro.sim.config import SystemConfig
from repro.sim.multi import run_workload
from repro.sim.results import WorkloadResult
from repro.sim.single import AloneCache
from repro.trace.workloads import TABLE6, Workload, design_suite

#: The policies compared in Figures 3 and 8, paper naming and order.
FIGURE_POLICIES = ("adapt_bp32", "lru", "ship", "eaf", "adapt_ins")
BASELINE_POLICY = "tadrrip"


def scale_factor() -> float:
    """The ``REPRO_SCALE`` knob (>= 0.1)."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        value = 1.0
    return max(0.1, value)


@dataclass(frozen=True)
class ExperimentSettings:
    """Run budgets for one experiment campaign."""

    master_seed: int = 0
    quota: int = 20_000  # measured accesses per core
    warmup: int = 7_000  # warm-up accesses per core
    alone_quota: int = 25_000
    alone_warmup: int = 4_000
    #: Per-suite workload counts (paper counts scaled down by default).
    workloads: dict[int, int] = field(
        default_factory=lambda: {4: 6, 8: 4, 16: 6, 20: 2, 24: 2}
    )
    #: Which workload roster :meth:`suite` composes: the ``synthetic``
    #: Table 6 samples, the ingested ``real`` targets, or ``all`` (both).
    benchmark_set: str = "synthetic"

    @staticmethod
    def from_env() -> "ExperimentSettings":
        s = scale_factor()
        base = ExperimentSettings()
        scaled = {
            cores: max(2, min(TABLE6[cores].num_workloads, round(n * s)))
            for cores, n in base.workloads.items()
        }
        return ExperimentSettings(workloads=scaled)

    def suite(self, cores: int) -> list[Workload]:
        count = self.workloads[cores]
        synthetic = design_suite(cores, count, self.master_seed)
        if self.benchmark_set == "synthetic":
            return synthetic
        from repro.targets.suite import real_suite

        real = real_suite(cores, count, self.master_seed)
        if self.benchmark_set == "real":
            return real
        if self.benchmark_set == "all":
            return synthetic + real
        raise ValueError(
            f"unknown benchmark set {self.benchmark_set!r}; "
            "options: synthetic, real, all"
        )


def config_for_cores(base: SystemConfig, cores: int) -> SystemConfig:
    """The platform for a given suite, following Section 4.3.

    "For 4 and 8-core workloads, we study with 4MB and 8MB shared caches
    while 16, 20 and 24-core workloads are studied with a 16MB cache" —
    i.e. the LLC shrinks proportionally below 16 cores (so per-application
    pressure stays in the studied regime), and stays fixed above, which is
    the #cores >= #ways scenario.  A floor of 64 sets protects miniature
    test configurations.
    """
    config = base.with_cores(cores)
    if cores < 16:
        factor = 16 // cores
        sets = max(64, base.llc.num_sets // factor)
        if sets != base.llc.num_sets:
            config = config.with_llc(num_sets=sets)
    return config


class Runner:
    """Memoising, parallelising front-end over the simulation drivers.

    Parameters
    ----------
    jobs:
        Worker-process count for cache misses (``None`` → ``REPRO_JOBS`` /
        CPU count; ``1`` → everything runs inline in this process).
    results_dir:
        Root of the persistent result store; ``None`` disables the store
        and keeps only the in-process memo.
    use_cache:
        When ``False``, the persistent store is bypassed entirely.
    retry:
        Failure-handling knobs for the supervised pool (``None`` → the
        ``REPRO_MAX_RETRIES``/``REPRO_JOB_TIMEOUT`` environment defaults).
    """

    def __init__(
        self,
        config: SystemConfig,
        settings: ExperimentSettings | None = None,
        *,
        jobs: int | None = None,
        results_dir: str | Path | None = None,
        use_cache: bool = True,
        retry: RetryPolicy | None = None,
    ):
        self.config = config
        self.settings = settings or ExperimentSettings.from_env()
        self.store = ResultStore(results_dir) if results_dir else None
        self.pool = ParallelRunner(
            jobs=jobs, store=self.store, use_cache=use_cache, retry=retry
        )
        self._alone_caches: dict[str, AloneCache] = {}
        self._runs: dict[tuple[str, str, str], WorkloadResult] = {}

    def close(self) -> None:
        """Release pool-lifetime resources (temporary trace directories)."""
        self.pool.close()

    # -- baselines ---------------------------------------------------------------

    def _alone_cache(self, config: SystemConfig) -> AloneCache:
        cache = self._alone_caches.get(config.name)
        if cache is None:
            cache = AloneCache(
                config,
                quota=self.settings.alone_quota,
                warmup=self.settings.alone_warmup,
                master_seed=self.settings.master_seed,
                pool=self.pool,
            )
            self._alone_caches[config.name] = cache
        return cache

    def alone_ipcs(self, workload: Workload, config: SystemConfig | None = None) -> list[float]:
        config = config or self.config
        return self._alone_cache(config).ipcs(workload.benchmarks)

    # -- multi-programmed runs -----------------------------------------------------

    def _memo_key(
        self,
        workload: Workload,
        policy: str | PolicySpec | ReplacementPolicy,
        config: SystemConfig,
    ) -> tuple[str, str, str]:
        if isinstance(policy, ReplacementPolicy):
            label = f"obj:{policy.name}:{id(policy)}"
        else:
            label = policy_key(policy)
        return (workload.name, label, config.name)

    def _job(
        self, workload: Workload, policy: str | PolicySpec, config: SystemConfig
    ) -> WorkloadJob:
        # Canonicalise the config to the workload's core count so every
        # call site derives the same cache key for the same effective run.
        if workload.cores != config.num_cores:
            config = config.with_cores(workload.cores)
        return WorkloadJob.for_workload(
            workload,
            config,
            policy,
            quota=self.settings.quota,
            warmup=self.settings.warmup,
            master_seed=self.settings.master_seed,
        )

    def run(
        self,
        workload: Workload,
        policy: str | PolicySpec | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> WorkloadResult:
        config = config or self.config
        key = self._memo_key(workload, policy, config)
        result = self._runs.get(key)
        if result is None:
            if isinstance(policy, ReplacementPolicy):
                # Live policy objects are not serialisable: run in-process,
                # bypassing the pool and the persistent store.
                result = run_workload(
                    workload,
                    config,
                    policy,
                    quota=self.settings.quota,
                    warmup=self.settings.warmup,
                    master_seed=self.settings.master_seed,
                )
            else:
                result = self.pool.run_one(self._job(workload, policy, config))
                if result is None:
                    failure = (
                        self.pool.last_failures[-1]
                        if self.pool.last_failures
                        else None
                    )
                    detail = f": {failure.error}" if failure else ""
                    raise RuntimeError(
                        f"run quarantined after "
                        f"{failure.attempts if failure else '?'} attempts"
                        f" ({workload.name}, {policy_key(policy)}){detail}"
                    )
            self._runs[key] = result
        return result

    def prefetch(
        self,
        workloads: Iterable[Workload],
        policies: Iterable[str | PolicySpec],
        config: SystemConfig | None = None,
        *,
        alone: bool = True,
    ) -> None:
        """Batch-simulate every missing (workload, policy) pair in parallel.

        Also prefetches the ``IPC_alone`` baselines of every benchmark in
        *workloads* (unless ``alone=False``), since the throughput metrics
        need them immediately after.
        """
        workloads = list(workloads)
        policies = list(policies)
        self.prefetch_pairs(
            ((w, p) for w in workloads for p in policies), config, alone=alone
        )

    def prefetch_pairs(
        self,
        pairs: Iterable[tuple[Workload, str | PolicySpec]],
        config: SystemConfig | None = None,
        *,
        alone: bool = True,
    ) -> None:
        """Like :meth:`prefetch` but over explicit (workload, policy) pairs —
        Figure 1's per-workload forced-BRRIP variants need this shape."""
        config = config or self.config
        pending: list[tuple[tuple[str, str, str], WorkloadJob]] = []
        seen: set[tuple[str, str, str]] = set()
        benchmarks: set[str] = set()
        for workload, policy in pairs:
            benchmarks.update(workload.benchmarks)
            key = self._memo_key(workload, policy, config)
            if key in self._runs or key in seen:
                continue
            seen.add(key)
            pending.append((key, self._job(workload, policy, config)))
        if pending:
            results = self.pool.run([job for _, job in pending])
            for (key, _), result in zip(pending, results):
                # A quarantined job leaves a None hole: keep it out of the
                # memo, so a later run()/re-prefetch retries instead of
                # serving the hole.
                if result is not None:
                    self._runs[key] = result
        if alone and benchmarks:
            self._alone_cache(config).prefetch(sorted(benchmarks))

    # -- derived metrics ----------------------------------------------------------------

    def weighted_speedup(
        self,
        workload: Workload,
        policy: str | PolicySpec | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> float:
        result = self.run(workload, policy, config)
        return weighted_speedup(result.ipcs, self.alone_ipcs(workload, config))

    def relative_ws(
        self,
        workload: Workload,
        policy: str | PolicySpec | ReplacementPolicy,
        config: SystemConfig | None = None,
        baseline: str = BASELINE_POLICY,
    ) -> float:
        """Per-workload speed-up over the TA-DRRIP baseline (figure y-axis)."""
        return self.weighted_speedup(workload, policy, config) / self.weighted_speedup(
            workload, baseline, config
        )

    def all_metrics(
        self,
        workload: Workload,
        policy: str | PolicySpec | ReplacementPolicy,
        config: SystemConfig | None = None,
    ) -> dict[str, float]:
        result = self.run(workload, policy, config)
        return compute_all_metrics(result.ipcs, self.alone_ipcs(workload, config))

    # -- bookkeeping --------------------------------------------------------------------

    def cache_summary(self) -> str:
        """One line describing how much work the caches saved."""
        stats = self.pool.stats
        where = f" in {self.store.root}" if self.store else ""
        failed = (
            f", {stats['failed']} failed (resumable)" if stats["failed"] else ""
        )
        return (
            f"runner: {stats['executed']} simulated, "
            f"{stats['store_hits']} from store{where}, "
            f"{len(self._runs)} workload runs memoised{failed}"
        )


def format_series(label: str, values: list[float]) -> str:
    body = " ".join(f"{v:.3f}" for v in values)
    return f"{label:<12} {body}"


def geometric_mean_gain(values: list[float]) -> float:
    """Mean percentage gain of a series of baseline-relative ratios."""
    from repro.util.stats import geometric_mean

    return (geometric_mean(values) - 1.0) * 100.0
