"""Figure 6: the impact of bypassing on every replacement policy.

For TA-DRRIP, SHiP and EAF, compare the insertion variant against the
bypass variant (distant-priority insertions converted to bypasses, 1/32
kept); for ADAPT, compare ``ADAPT_ins`` against ``ADAPT_bp32``.  The paper
finds bypassing helps TA-DRRIP and EAF, costs SHiP a little (its few
distant predictions are often wrong), and completes ADAPT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Runner, geometric_mean_gain

#: (label, insertion policy, bypass policy)
PAIRS = (
    ("TA-DRRIP", "tadrrip", "tadrrip+bp"),
    ("SHiP", "ship", "ship+bp"),
    ("EAF", "eaf", "eaf+bp"),
    ("ADAPT", "adapt_ins", "adapt_bp32"),
)


@dataclass
class Fig6Result:
    #: label -> (insertion mean WS ratio, bypass mean WS ratio) over TA-DRRIP.
    bars: dict[str, tuple[float, float]]

    def render(self) -> str:
        lines = ["== Fig. 6: Wt. speed-up over TA-DRRIP, insertion vs bypass =="]
        for label, (ins, byp) in self.bars.items():
            delta = (byp - ins) * 100
            lines.append(
                f"{label:<9} insertion {ins:.3f}  bypass {byp:.3f}  (bypass {delta:+.1f} pp)"
            )
        return "\n".join(lines)


def run_fig6(runner: Runner, cores: int = 16) -> Fig6Result:
    config = runner.config.with_cores(cores)
    suite = runner.settings.suite(cores)
    all_policies = {"tadrrip"}
    for _, ins_name, byp_name in PAIRS:
        all_policies.update((ins_name, byp_name))
    runner.prefetch(suite, sorted(all_policies), config)
    bars: dict[str, tuple[float, float]] = {}
    for label, ins_name, byp_name in PAIRS:
        ins_ratios, byp_ratios = [], []
        for workload in suite:
            base = runner.weighted_speedup(workload, "tadrrip", config)
            ins_ratios.append(runner.weighted_speedup(workload, ins_name, config) / base)
            byp_ratios.append(runner.weighted_speedup(workload, byp_name, config) / base)
        bars[label] = (
            1.0 + geometric_mean_gain(ins_ratios) / 100.0,
            1.0 + geometric_mean_gain(byp_ratios) / 100.0,
        )
    return Fig6Result(bars=bars)
