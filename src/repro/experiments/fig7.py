"""Figure 7 / Section 5.5: sensitivity to larger (higher-associativity) caches.

The paper grows the 16MB/16-way LLC to 24MB/24-way and 32MB/32-way
(associativity scaled, set count fixed) and shows ADAPT keeps its edge for
16/20/24-core workloads even though the priority thresholds were designed
for 16 ways.  We scale the same way from the base configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Runner, geometric_mean_gain


@dataclass
class Fig7Result:
    #: (cache label, cores) -> ADAPT mean WS gain % over TA-DRRIP.
    gains: dict[tuple[str, int], float]

    def render(self) -> str:
        lines = ["== Fig. 7: ADAPT WS gain over TA-DRRIP on larger caches =="]
        for (cache, cores), gain in self.gains.items():
            lines.append(f"{cache:<10} {cores:>2}-core  {gain:+6.2f}%")
        return "\n".join(lines)


def run_fig7(
    runner: Runner,
    core_counts: tuple[int, ...] = (16, 20, 24),
    way_factors: tuple[float, ...] = (1.5, 2.0),
    max_workloads: int = 3,
) -> Fig7Result:
    """ADAPT vs TA-DRRIP with associativity grown by the paper's factors."""
    gains: dict[tuple[str, int], float] = {}
    base_ways = runner.config.llc.ways
    for factor in way_factors:
        ways = round(base_ways * factor)
        label = f"{ways}-way"
        for cores in core_counts:
            config = runner.config.with_cores(cores).with_llc(ways=ways)
            suite = runner.settings.suite(cores)[:max_workloads]
            runner.prefetch(suite, ("tadrrip", "adapt_bp32"), config)
            ratios = []
            for workload in suite:
                base = runner.weighted_speedup(workload, "tadrrip", config)
                ratios.append(
                    runner.weighted_speedup(workload, "adapt_bp32", config) / base
                )
            gains[(label, cores)] = geometric_mean_gain(ratios)
    return Fig7Result(gains=gains)
