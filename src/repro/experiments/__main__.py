"""Command-line front-end: paper artifacts, tournaments and reports.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table2
    python -m repro.experiments fig3 [--jobs 8] [--seed 1]
    python -m repro.experiments tournament --seeds 3
    python -m repro.experiments report --baseline BENCH_tournament.json
    python -m repro.experiments golden --regen
    python -m repro.experiments profile fig3 --top 40
    python -m repro.experiments traces gc --dry-run
    REPRO_SCALE=2 python -m repro.experiments fig8 --results-dir results

(also installed as the ``repro-experiments`` console script.)

Every command is an argparse subcommand registered in
:mod:`repro.experiments.cli` and defined in
:mod:`repro.experiments.commands`; each declares exactly the flags it
honours, so a flag a command does not support is a usage error rather
than silently ignored.  Simulation-backed commands honour ``REPRO_SCALE``
exactly like the pytest benches do, share one memoising runner per
invocation, shard cache misses over ``--jobs`` worker processes (default:
``REPRO_JOBS`` or the CPU count) and persist results in the
``--results-dir`` store (default ``results/``) — so a repeated
invocation, or a later figure/report that shares runs with an earlier
one, performs no new simulation.
"""

from __future__ import annotations

import os
import sys

import repro.experiments.commands  # noqa: F401  (registers every subcommand)
from repro.experiments.cli import dispatch


def main(argv: list[str] | None = None) -> int:
    return dispatch(argv, prog="python -m repro.experiments")


def cli() -> int:
    """Console-script entry point: tolerate downstream pipes closing early.

    ``repro-experiments fig3 | head`` must not traceback: flush what we
    can, then exit with the conventional SIGPIPE status.
    """
    try:
        code = dispatch()
        sys.stdout.flush()
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 128 + 13
    return code


if __name__ == "__main__":
    sys.exit(cli())
