"""Command-line front-end: regenerate any paper table/figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table2
    python -m repro.experiments fig3 [--cores 16] [--jobs 8]
    REPRO_SCALE=2 python -m repro.experiments fig8 --results-dir results

(also installed as the ``repro-experiments`` console script.)

Simulation-backed experiments honour ``REPRO_SCALE`` exactly like the
pytest benches do, and share one memoising runner per invocation.  Runs
are sharded over ``--jobs`` worker processes (default: ``REPRO_JOBS`` or
the CPU count) and persisted in the ``--results-dir`` store (default
``results/``), so a repeated invocation — or a later figure that shares
runs with an earlier one — performs no new simulation.  ``--no-cache``
forces fresh simulations; ``--results-dir ''`` disables the store.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.ablation import (
    run_interval_ablation,
    run_monitor_sets_ablation,
    run_priority_range_ablation,
)
from repro.experiments.common import ExperimentSettings, Runner
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.perapp import run_perapp
from repro.experiments.scurves import run_scurve
from repro.experiments.table4 import run_table4
from repro.experiments.table7 import run_table7
from repro.experiments.tables import render_table2, render_table3, render_table6
from repro.sim.config import SystemConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the ADAPT paper.",
    )
    parser.add_argument(
        "experiment",
        help="one of: list, fig1, fig3, fig4, fig6, fig7, fig8, "
        "table2, table3, table4, table6, table7, ablations, golden, "
        "profile <bench>, traces gc",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="profile: the experiment to run under cProfile (e.g. fig3); "
        "traces: the maintenance action (gc)",
    )
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or CPU count; 1 = inline)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="persistent result store root ('' disables the store)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result store and simulate everything fresh",
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="golden only: rewrite the golden-master fixtures instead of verifying",
    )
    parser.add_argument(
        "--fixtures-dir",
        default=None,
        help="golden only: fixture directory (default: tests/golden/fixtures)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="profile only: number of cumulative-time rows to print",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="profile only: also dump raw pstats data to this file "
        "(inspectable with snakeviz / pstats)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="traces gc only: report what would be pruned without deleting",
    )
    args = parser.parse_args(argv)

    names = (
        "fig1 fig3 fig4 fig6 fig7 fig8 table2 table3 table4 table6 table7 "
        "ablations golden"
    ).split()
    if args.experiment == "list":
        print("\n".join(names + ["profile <bench>", "traces gc"]))
        return 0
    if args.experiment == "profile":
        if args.target not in names or args.target == "golden":
            parser.error(
                f"profile needs a bench to run, one of: {' '.join(n for n in names if n != 'golden')}"
            )
    elif args.experiment == "traces":
        if args.target != "gc":
            parser.error("traces supports one action: gc")
    else:
        if args.target is not None:
            parser.error(
                f"unrecognized argument {args.target!r} "
                "(only 'profile' and 'traces' take a target)"
            )
        if args.experiment not in names:
            parser.error(f"unknown experiment {args.experiment!r}; try 'list'")

    if args.experiment == "golden":
        return _golden(args.fixtures_dir, args.regen)

    if args.experiment == "traces":
        return _traces_gc(args)

    if args.experiment == "profile":
        return _profile(args)

    config, settings = _config_and_settings(args)
    runner = Runner(
        config,
        settings,
        jobs=args.jobs,
        results_dir=args.results_dir or None,
        use_cache=not args.no_cache,
    )

    _run_experiment(args.experiment, runner, config, settings, args.cores)
    print(runner.cache_summary(), file=sys.stderr)
    return 0


def _config_and_settings(args) -> tuple[SystemConfig, ExperimentSettings]:
    """The platform + budgets one invocation runs with (seed override applied)."""
    config = SystemConfig.scaled(args.cores)
    settings = ExperimentSettings.from_env()
    if args.seed:
        settings = ExperimentSettings(
            master_seed=args.seed, workloads=settings.workloads
        )
    return config, settings


def _run_experiment(name: str, runner, config, settings, cores: int) -> None:
    """Execute one named experiment and print its rendering."""
    if name == "fig1":
        print(run_fig1(runner, cores).render())
    elif name == "fig3":
        print(run_scurve(runner, 16).render())
    elif name == "fig4":
        result = run_perapp(runner, 16)
        print(result.render(thrashing=True))
        print()
        print(result.render(thrashing=False))
    elif name == "fig6":
        print(run_fig6(runner, cores).render())
    elif name == "fig7":
        print(run_fig7(runner).render())
    elif name == "fig8":
        for n in (4, 8, 20, 24):
            print(run_scurve(runner, n).render())
            print()
    elif name == "table2":
        print(render_table2())
    elif name == "table3":
        print(render_table3(config))
    elif name == "table4":
        print(run_table4(config, settings, pool=runner.pool).render())
    elif name == "table6":
        print(render_table6(settings.master_seed))
    elif name == "table7":
        print(run_table7(runner).render())
    elif name == "ablations":
        print(run_priority_range_ablation(runner).render())
        print(run_interval_ablation(runner).render())
        print(run_monitor_sets_ablation(runner).render())


def _traces_gc(args) -> int:
    """``repro-experiments traces gc``: prune unreferenced shared buffers.

    Walks the persistent result store, recomputes the trace-buffer and
    replay-capture keys every stored result references, and deletes the
    rest of ``<results-dir>/traces/`` — so long-lived stores stop growing
    unboundedly.  ``--dry-run`` reports without deleting.
    """
    from repro.runner.tracegc import collect_garbage

    if not args.results_dir:
        print("traces gc needs a persistent store (--results-dir)", file=sys.stderr)
        return 2
    report = collect_garbage(args.results_dir, dry_run=args.dry_run)
    print(report.render())
    return 0


def _profile(args) -> int:
    """``repro-experiments profile <bench>``: cProfile + top-N cumulative dump.

    The bench runs inline (one process, store bypassed) so the profile
    captures real simulation work rather than pickling or cache reads —
    exactly the view a perf PR needs to locate hot spots.  ``--top``
    bounds the table; ``--profile-out`` keeps the raw stats for tooling.
    """
    import cProfile
    import io
    import pstats

    config, settings = _config_and_settings(args)
    runner = Runner(config, settings, jobs=1, results_dir=None, use_cache=False)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run_experiment(args.target, runner, config, settings, args.cores)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue())
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"raw profile written to {args.profile_out}", file=sys.stderr)
    print(runner.cache_summary(), file=sys.stderr)
    return 0


def _golden(fixtures_dir: str | None, regen: bool) -> int:
    """Verify — or with ``--regen`` rewrite — the golden-master fixtures.

    Fixtures pin the simulation kernel's exact behaviour for every
    registered policy (see :mod:`repro.golden`).  Regenerate only after an
    *intentional* behaviour change, then review the fixture diff.
    """
    from repro.golden import verify_fixtures, write_fixtures

    if regen:
        written = write_fixtures(fixtures_dir)
        print(f"regenerated {len(written)} golden fixtures in {written[0].parent}")
        return 0
    failures = verify_fixtures(fixtures_dir)
    if not failures:
        print("golden fixtures verified: kernel behaviour is bit-identical")
        return 0
    for name, problems in sorted(failures.items()):
        print(f"FAIL {name}")
        for problem in problems:
            print(f"  {problem}")
    print(f"{len(failures)} golden case(s) diverged; if intentional, re-run "
          "with --regen and review the fixture diff")
    return 1


def cli() -> int:
    """Console-script entry point: tolerate downstream pipes closing early.

    ``repro-experiments fig3 | head`` must not traceback: flush what we
    can, then exit with the conventional SIGPIPE status.
    """
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 128 + 13
    return code


if __name__ == "__main__":
    sys.exit(cli())
