"""Figure 1: the motivation experiment.

TA-DRRIP under set-duelling settles on SRRIP for thrashing applications;
forcing BRRIP on them instead (``TA-DRRIP(forced)``) improves the
workload-level weighted speed-up, barely changes the thrashing
applications' own MPKI (Figure 1b, except cactusADM) and slashes the
non-thrashing applications' MPKI (Figure 1c, up to ~72% for art).
The experiment also shows insensitivity to the number of duelling sets
(SD=64 vs SD=128).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Runner, geometric_mean_gain
from repro.metrics.cachestats import average_by_app, mpki_reduction_percent
from repro.policies.tadrrip import TaDrripPolicy
from repro.runner import PolicySpec
from repro.trace.benchmarks import BENCHMARKS
from repro.trace.workloads import Workload


def forced_tadrrip(workload: Workload, leader_sets: int = 32) -> TaDrripPolicy:
    """TA-DRRIP with BRRIP forced on the workload's thrashing cores."""
    return TaDrripPolicy(
        leader_sets=leader_sets, forced_brrip_cores=workload.thrashing_cores()
    )


def forced_tadrrip_spec(workload: Workload, leader_sets: int = 32) -> PolicySpec:
    """Serialisable description of :func:`forced_tadrrip` (pool/store friendly)."""
    return PolicySpec.of(
        "tadrrip",
        leader_sets=leader_sets,
        forced_brrip_cores=workload.thrashing_cores(),
    )


@dataclass
class Fig1Result:
    #: Normalized WS of each variant over default TA-DRRIP (Fig. 1a bars).
    bars: dict[str, float]
    #: app -> avg MPKI reduction % under forced BRRIP (Figs. 1b/1c).
    mpki_reduction: dict[str, float]

    def thrashing_rows(self) -> dict[str, float]:
        # Ingested targets (tgt:) carry no Footprint-number: non-thrashing.
        return {
            a: v
            for a, v in self.mpki_reduction.items()
            if a in BENCHMARKS and BENCHMARKS[a].thrashing
        }

    def other_rows(self) -> dict[str, float]:
        return {
            a: v
            for a, v in self.mpki_reduction.items()
            if not (a in BENCHMARKS and BENCHMARKS[a].thrashing)
        }

    def render(self) -> str:
        lines = ["== Fig. 1a: speed-up over TA-DRRIP =="]
        for label, value in self.bars.items():
            lines.append(f"{label:<22} {value:.3f}")
        lines.append("== Fig. 1b: MPKI reduction %, thrashing apps (forced BRRIP) ==")
        for app, red in sorted(self.thrashing_rows().items()):
            lines.append(f"{app:<8} {red:+7.1f}%")
        lines.append("== Fig. 1c: MPKI reduction %, other apps ==")
        for app, red in sorted(self.other_rows().items()):
            lines.append(f"{app:<8} {red:+7.1f}%")
        return "\n".join(lines)


def run_fig1(runner: Runner, cores: int = 16) -> Fig1Result:
    config = runner.config.with_cores(cores)
    suite = runner.settings.suite(cores)
    ratios: dict[str, list[float]] = {
        "TA-DRRIP(SD=64)": [],
        "TA-DRRIP(SD=128)": [],
        "TA-DRRIP(forced)": [],
    }

    def variants_for(workload: Workload) -> dict[str, PolicySpec]:
        return {
            "TA-DRRIP(SD=64)": PolicySpec.of("tadrrip", leader_sets=64),
            "TA-DRRIP(SD=128)": PolicySpec.of("tadrrip", leader_sets=128),
            "TA-DRRIP(forced)": forced_tadrrip_spec(workload),
        }

    runner.prefetch_pairs(
        ((w, p) for w in suite for p in ["tadrrip", *variants_for(w).values()]),
        config,
    )
    reduction_rows: list[dict[str, float]] = []
    for workload in suite:
        base_ws = runner.weighted_speedup(workload, "tadrrip", config)
        base_apps = runner.run(workload, "tadrrip", config).per_app()
        for label, policy in variants_for(workload).items():
            ws = runner.weighted_speedup(workload, policy, config)
            ratios[label].append(ws / base_ws)
            if label == "TA-DRRIP(forced)":
                snaps = runner.run(workload, policy, config).per_app()
                reduction_rows.append(
                    {
                        app: mpki_reduction_percent(s.llc_mpki, base_apps[app].llc_mpki)
                        for app, s in snaps.items()
                    }
                )
    bars = {
        label: 1.0 + geometric_mean_gain(values) / 100.0
        for label, values in ratios.items()
    }
    return Fig1Result(bars=bars, mpki_reduction=average_by_app(reduction_rows))
