"""Multi-programmed workload runs — the paper's primary experiment shape.

``run_workload`` executes one Table 6 workload on the shared platform
under a given LLC policy and returns the per-application snapshots the
throughput metrics consume.  The forced-BRRIP variant of Figure 1 is
expressed by passing a pre-built policy instance.
"""

from __future__ import annotations

from repro.cpu import replay, replay_vec
from repro.cpu.engine import MulticoreEngine
from repro.policies.spec import policy_key
from repro.sim.build import PolicyLike, build_hierarchy, build_sources
from repro.sim.config import SystemConfig
from repro.sim.results import WorkloadResult
from repro.trace.workloads import Workload


def kernel_selection() -> str:
    """The kernel a replay-eligible swept run resolves to, by precedence.

    The kill-switch family resolves deterministically (machine-checked in
    ``tests/sim/test_kernel_selection.py``):

    1. ``REPRO_NO_FASTPATH`` → ``"generic"`` (reference loop, everywhere);
    2. else ``REPRO_NO_REPLAY`` → ``"fast"`` (fused kernel, no replay);
    3. else ``REPRO_REPLAY_VEC`` set → ``"replay_vec"`` (array-native
       replay; the value picks the backend — see
       :func:`repro.cpu.replay_vec.vec_backend`);
    4. else → ``"replay"`` (scalar replay kernel).

    ``REPRO_NO_SHARED_TRACES`` is orthogonal: it changes how trace
    buffers materialise, never which kernel runs.  Runs without a
    registered capture bundle (or failing replay eligibility) degrade
    along the same order: ``replay_vec`` → ``replay`` → ``fast`` →
    ``generic``.
    """
    from repro.cpu.fastpath import fastpath_enabled

    if not fastpath_enabled():
        return "generic"
    if not replay.replay_enabled():
        return "fast"
    if replay_vec.replay_vec_requested():
        return "replay_vec"
    return "replay"


def capture_kernel() -> str:
    """The kernel a capture pass resolves to, by precedence.

    Captures only exist while the replay mechanism is live, so the
    resolution rides on the same kill-switch family (machine-checked in
    ``tests/sim/test_kernel_selection.py``):

    1. ``REPRO_NO_FASTPATH`` or ``REPRO_NO_REPLAY`` → ``"none"`` (no
       capture pass runs at all — sweeps re-simulate on the fused or
       generic loop);
    2. else ``REPRO_CAPTURE_VEC`` set → ``"capture_vec"`` (array-native
       capture; the value picks the backend — see
       :func:`repro.cpu.capture_vec.vec_backend`, which mirrors the
       replay_vec semantics: ``numpy`` forces the fallback, anything
       else uses numba exactly when importable);
    3. else → ``"capture"`` (scalar capture pass).

    Either capture kernel emits byte-identical artifacts (proven by the
    golden capture differential), so the choice never changes which
    replay kernel a sweep's jobs select, nor any simulation result.
    """
    if not replay.replay_enabled():
        return "none"
    from repro.cpu import capture_vec

    if capture_vec.capture_vec_requested():
        return "capture_vec"
    return "capture"


def run_workload(
    workload: Workload,
    config: SystemConfig,
    policy: PolicyLike,
    *,
    quota: int = 30_000,
    warmup: int = 5_000,
    master_seed: int = 0,
) -> WorkloadResult:
    """Run *workload* under *policy*; every core measured over *quota* accesses.

    When the parallel runner has registered a replay-capture artifact for
    this run's identity (a policy sweep over one platform), the engine is
    driven through the LLC-filtered replay kernel instead of re-simulating
    the private levels — results are bit-identical; only the returned
    snapshots and the LLC-side state are materialised (the discarded
    private-cache end state is not reconstructed).
    """
    if workload.cores != config.num_cores:
        config = config.with_cores(workload.cores)
    hierarchy = build_hierarchy(config, policy)
    sources = build_sources(workload, config, master_seed)
    engine = MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )
    snapshots = None
    if replay.replay_enabled():
        from repro.runner.replaystore import active_replay_bundle

        bundle = active_replay_bundle(
            workload.benchmarks, config, quota, warmup, master_seed
        )
        if bundle is not None:
            if replay_vec.replay_vec_requested():
                snapshots = replay_vec.run_replay_vec(engine, bundle, finalize=False)
            if snapshots is None:
                snapshots = replay.run_replay(engine, bundle, finalize=False)
    if snapshots is None:
        snapshots = engine.run()
    return WorkloadResult(
        workload_name=workload.name,
        benchmarks=workload.benchmarks,
        config_name=config.name,
        policy=policy.name if hasattr(policy, "describe") else policy_key(policy),
        snapshots=snapshots,
        intervals=engine.intervals_completed,
        policy_state=hierarchy.llc.policy.describe(),
    )
