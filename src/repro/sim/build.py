"""Construct a full simulated platform from a :class:`SystemConfig`.

The factory wires the substrate together the way Table 3 describes it:
per-core L1D (LRU, optional next-line prefetch), per-core unified L2
(DRRIP), a shared banked LLC running the policy under study, the VPC
arbiter, MSHRs, write-back buffers and the row-hit/row-conflict DRAM.
"""

from __future__ import annotations

from repro.cache.banks import BankedLatencyModel
from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mshr import Mshr
from repro.cache.prefetch import StridePrefetcher
from repro.cache.writeback import WriteBackBuffer
from repro.mem.arbiter import VpcArbiter
from repro.mem.dram import DramModel
from repro.policies.base import ReplacementPolicy
from repro.policies.drrip import DrripPolicy
from repro.policies.lru import LruPolicy
from repro.policies.registry import make_policy
from repro.policies.spec import PolicySpec
from repro.sim.config import SystemConfig
from repro.trace.benchmarks import Geometry, TraceSource
from repro.trace.workloads import Workload

#: Anything the builders accept as an LLC policy designation.
PolicyLike = str | PolicySpec | ReplacementPolicy


def resolve_policy(policy: PolicyLike, config: SystemConfig) -> ReplacementPolicy:
    """Turn a policy designation into an instance, wiring config-driven knobs.

    Accepts a registry name, a serialisable :class:`PolicySpec` (name +
    constructor arguments), or a pre-built instance.  ADAPT's monitoring
    parameters (sampled sets, array entries, partial tag width) come from
    the system configuration so experiments vary them in one place.
    """
    if isinstance(policy, ReplacementPolicy):
        return policy
    if isinstance(policy, PolicySpec):
        return policy.build(config)
    base = policy.partition("+")[0]
    if base.startswith("adapt"):
        return make_policy(
            policy,
            num_monitor_sets=config.monitor_sets,
            monitor_entries=config.monitor_entries,
            partial_tag_bits=config.partial_tag_bits,
        )
    return make_policy(policy)


def build_hierarchy(config: SystemConfig, llc_policy: PolicyLike) -> CacheHierarchy:
    """Build the Table 3 platform with *llc_policy* at the shared LLC."""
    n = config.num_cores
    l1s = [
        SetAssociativeCache(
            f"l1d-{i}", config.l1.num_sets, config.l1.ways, LruPolicy(), num_cores=1
        )
        for i in range(n)
    ]
    l2s = [
        SetAssociativeCache(
            f"l2-{i}", config.l2.num_sets, config.l2.ways, DrripPolicy(), num_cores=1
        )
        for i in range(n)
    ]
    llc = SetAssociativeCache(
        "llc",
        config.llc.num_sets,
        config.llc.ways,
        resolve_policy(llc_policy, config),
        num_cores=n,
    )
    return CacheHierarchy(
        l1s,
        l2s,
        llc,
        llc_banks=BankedLatencyModel(
            config.llc_banks, config.llc.latency, config.llc_bank_occupancy
        ),
        dram=DramModel(
            num_banks=config.dram_banks,
            row_hit_cycles=config.dram_row_hit,
            row_conflict_cycles=config.dram_row_conflict,
            row_bytes=config.dram_row_bytes,
            block_bytes=config.block_size,
        ),
        arbiter=VpcArbiter(n),
        l1_latency=config.l1.latency,
        l2_latency=config.l2.latency,
        llc_mshr=Mshr(config.llc_mshr_entries),
        l2_wb_buffers=[
            WriteBackBuffer(config.l2_wb_entries, config.l2_wb_retire_at, 4.0)
            for _ in range(n)
        ],
        llc_wb_buffer=WriteBackBuffer(
            config.llc_wb_entries, config.llc_wb_retire_at, 8.0
        ),
        l1_next_line_prefetch=config.l1_next_line_prefetch,
        l2_prefetchers=(
            [
                StridePrefetcher(degree=config.l2_prefetch_degree)
                for _ in range(n)
            ]
            if config.l2_stride_prefetch
            else None
        ),
    )


def geometry_of(config: SystemConfig) -> Geometry:
    """The calibration geometry trace generators need."""
    return Geometry(
        llc_num_sets=config.llc.num_sets,
        l2_blocks=config.l2.num_blocks,
        l1_blocks=config.l1.num_blocks,
    )


def capture_identity(
    benchmarks: tuple[str, ...],
    config: SystemConfig,
    quota: int,
    warmup: int,
    master_seed: int,
) -> tuple:
    """Identity of one replay-capture artifact.

    Everything the captured private-level streams depend on — trace
    identities, private-cache geometry, prefetch configuration and run
    budgets — and nothing they don't: the LLC policy, LLC associativity
    and every latency live on the replay side, so a whole policy sweep
    (and LLC-way studies on the same set count) shares one capture.
    """
    if config.num_cores != len(benchmarks):
        config = config.with_cores(len(benchmarks))
    return (
        tuple(benchmarks),
        config.l1.num_sets,
        config.l1.ways,
        config.l2.num_sets,
        config.l2.ways,
        config.llc.num_sets,
        bool(config.l1_next_line_prefetch),
        bool(config.l2_stride_prefetch),
        int(config.l2_prefetch_degree) if config.l2_stride_prefetch else 0,
        int(quota),
        int(warmup),
        int(master_seed),
        TraceSource.CHUNK,
    )


def build_sources(
    workload: Workload, config: SystemConfig, master_seed: int = 0
) -> list[TraceSource]:
    """One calibrated trace source per core of *workload*.

    Construction goes through :func:`repro.trace.shared.make_source`, so
    traces materialised by the parallel runner are replayed zero-copy from
    their shared buffers instead of being regenerated per process.
    """
    from repro.trace.shared import make_source

    geometry = geometry_of(config)
    return [
        make_source(name, geometry, core_id, master_seed)
        for core_id, name in enumerate(workload.benchmarks)
    ]
