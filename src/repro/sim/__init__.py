"""Simulation drivers: configurations, platform factory, and runners."""

from repro.sim.build import build_hierarchy, build_sources, geometry_of, resolve_policy
from repro.sim.config import CacheLevelConfig, SystemConfig
from repro.sim.multi import run_workload
from repro.sim.results import SingleRunResult, WorkloadResult
from repro.sim.single import AloneCache, run_alone

__all__ = [
    "CacheLevelConfig",
    "SystemConfig",
    "build_hierarchy",
    "build_sources",
    "geometry_of",
    "resolve_policy",
    "run_workload",
    "run_alone",
    "AloneCache",
    "SingleRunResult",
    "WorkloadResult",
]
