"""System configurations (Table 3) — paper-sized and scaled.

Cache sizes in the simulator are expressed in sets x ways of 64-byte
blocks.  ``SystemConfig.paper()`` is the configuration of Table 3 verbatim;
``SystemConfig.scaled()`` is the default experiment configuration: every
capacity divided by 64 with all the *ratios that drive the policies*
preserved —

* LLC associativity stays 16 (the paper's pivotal ``#cores >= #ways``),
* the monitoring interval scales with the LLC block count (the paper's
  1M-4M misses on a 16MB cache are 4x-16x its blocks; we default to 16x —
  see ``interval_blocks_multiplier``),
* 40 sampled monitor sets, 10-bit partial tags, 16-entry monitor arrays,
* benchmark working sets are expressed in units of LLC sets
  (Footprint-number targets), so they scale with the cache.

Pure-Python simulation cannot reach 16MB x 300M-instruction scale in CI
time; the scaling argument is laid out in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and latency of one cache level."""

    num_sets: int
    ways: int
    latency: float

    @property
    def num_blocks(self) -> int:
        return self.num_sets * self.ways

    def capacity_bytes(self, block_size: int = 64) -> int:
        return self.num_blocks * block_size


@dataclass(frozen=True)
class SystemConfig:
    """Full platform description consumed by :mod:`repro.sim.build`."""

    name: str
    num_cores: int
    l1: CacheLevelConfig
    l2: CacheLevelConfig
    llc: CacheLevelConfig
    llc_banks: int = 4
    llc_bank_occupancy: float = 4.0
    dram_banks: int = 8
    dram_row_hit: float = 180.0
    dram_row_conflict: float = 340.0
    dram_row_bytes: int = 4096
    llc_mshr_entries: int = 256
    l2_wb_entries: int = 32
    l2_wb_retire_at: int = 24
    llc_wb_entries: int = 128
    llc_wb_retire_at: int = 96
    l1_next_line_prefetch: bool = False
    #: The paper's future-work configuration (Section 7): a PC-indexed
    #: stride prefetcher at each private L2.
    l2_stride_prefetch: bool = False
    l2_prefetch_degree: int = 2
    #: Monitoring-interval length in LLC misses; ``None`` derives it as
    #: ``interval_blocks_multiplier x LLC blocks``.
    interval_misses: int | None = None
    #: The paper fixes 1M misses (~4x the 16MB cache's blocks) but reports
    #: "no significant difference in performance between 1M and 4M" (~16x).
    #: We default to the top of that insensitive band: with 16+ diverse
    #: applications sharing the miss budget, the shorter interval
    #: undersamples per-application Footprint-numbers (each app gets only a
    #: few accesses per monitored set per interval), while 16x gives the
    #: monitor enough per-set evidence to separate thrashing applications.
    interval_blocks_multiplier: int = 16
    monitor_sets: int = 40
    monitor_entries: int = 16
    partial_tag_bits: int = 10
    block_size: int = 64

    @property
    def effective_interval(self) -> int:
        if self.interval_misses is not None:
            return self.interval_misses
        return self.interval_blocks_multiplier * self.llc.num_blocks

    # -- canonical configurations ------------------------------------------------

    @staticmethod
    def paper(num_cores: int = 16) -> "SystemConfig":
        """Table 3 verbatim: 32KB L1D, 256KB L2, 16MB 16-way LLC."""
        return SystemConfig(
            name=f"paper-{num_cores}core",
            num_cores=num_cores,
            l1=CacheLevelConfig(num_sets=64, ways=8, latency=3.0),
            l2=CacheLevelConfig(num_sets=256, ways=16, latency=14.0),
            llc=CacheLevelConfig(num_sets=16384, ways=16, latency=24.0),
            l1_next_line_prefetch=True,
            interval_misses=1_000_000,
        )

    @staticmethod
    def scaled(num_cores: int = 16, llc_sets: int = 256) -> "SystemConfig":
        """Default experiment configuration: 1/64-capacity Table 3.

        256KB 16-way LLC (256 sets), 16KB L2, 8KB L1D.  The policy-relevant
        ratios are preserved (LLC stays 16-way, monitor interval scales
        with LLC blocks, benchmark working sets scale with LLC sets); see
        the module docstring for the scaling argument.
        """
        return SystemConfig(
            name=f"scaled-{num_cores}core",
            num_cores=num_cores,
            l1=CacheLevelConfig(num_sets=16, ways=8, latency=3.0),
            l2=CacheLevelConfig(num_sets=16, ways=16, latency=14.0),
            llc=CacheLevelConfig(num_sets=llc_sets, ways=16, latency=24.0),
        )

    # -- variants -----------------------------------------------------------------------

    def with_llc(self, num_sets: int | None = None, ways: int | None = None) -> "SystemConfig":
        """A copy with a different LLC geometry (Section 5.5's 24/32-way study)."""
        llc = CacheLevelConfig(
            num_sets=num_sets if num_sets is not None else self.llc.num_sets,
            ways=ways if ways is not None else self.llc.ways,
            latency=self.llc.latency,
        )
        suffix = f"llc{llc.num_sets}x{llc.ways}"
        return replace(self, llc=llc, name=f"{self.name}-{suffix}")

    def with_cores(self, num_cores: int) -> "SystemConfig":
        base = self.name.split("-")[0]
        return replace(self, num_cores=num_cores, name=f"{base}-{num_cores}core")

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict capturing every field (nested levels included).

        This is the configuration half of :mod:`repro.runner`'s cache keys,
        so *all* simulation-relevant knobs must appear here — relying on
        ``name`` alone would alias configs that differ in, say,
        ``interval_blocks_multiplier``.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        kwargs = dict(data)
        for level in ("l1", "l2", "llc"):
            kwargs[level] = CacheLevelConfig(**kwargs[level])
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in kwargs.items() if k in known})

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_cores} cores, "
            f"L1 {self.l1.capacity_bytes() // 1024}KB/{self.l1.ways}w, "
            f"L2 {self.l2.capacity_bytes() // 1024}KB/{self.l2.ways}w, "
            f"LLC {self.llc.capacity_bytes() // 1024}KB/{self.llc.ways}w, "
            f"interval {self.effective_interval} misses"
        )
