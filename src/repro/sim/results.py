"""Result records produced by the simulation drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import CoreSnapshot


@dataclass
class SingleRunResult:
    """One application running alone on the platform."""

    benchmark: str
    config_name: str
    policy: str
    snapshot: CoreSnapshot
    #: Mean Footprint-numbers by monitor label (when monitored).
    footprints: dict[str, float] = field(default_factory=dict)
    intervals: int = 0

    @property
    def ipc(self) -> float:
        return self.snapshot.ipc

    @property
    def l2_mpki(self) -> float:
        return self.snapshot.l2_mpki


@dataclass
class WorkloadResult:
    """One multi-programmed workload under one LLC policy."""

    workload_name: str
    benchmarks: tuple[str, ...]
    config_name: str
    policy: str
    snapshots: list[CoreSnapshot]
    intervals: int = 0
    policy_state: str = ""

    @property
    def ipcs(self) -> list[float]:
        return [s.ipc for s in self.snapshots]

    @property
    def llc_mpkis(self) -> list[float]:
        return [s.llc_mpki for s in self.snapshots]

    def per_app(self) -> dict[str, CoreSnapshot]:
        """Benchmark-name -> snapshot (first instance wins on duplicates)."""
        out: dict[str, CoreSnapshot] = {}
        for name, snap in zip(self.benchmarks, self.snapshots):
            out.setdefault(name, snap)
        return out
