"""Result records produced by the simulation drivers.

Both record types serialise losslessly through ``to_dict``/``from_dict``:
that is what lets :mod:`repro.runner` ship results across process
boundaries and persist them as JSON in the on-disk result store.  Floats
survive the JSON round-trip bit-exactly (Python serialises the shortest
repr that round-trips), so a result re-read from the store compares equal
to the freshly simulated one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import CoreSnapshot


@dataclass
class SingleRunResult:
    """One application running alone on the platform."""

    benchmark: str
    config_name: str
    policy: str
    snapshot: CoreSnapshot
    #: Mean Footprint-numbers by monitor label (when monitored).
    footprints: dict[str, float] = field(default_factory=dict)
    intervals: int = 0

    @property
    def ipc(self) -> float:
        return self.snapshot.ipc

    @property
    def l2_mpki(self) -> float:
        return self.snapshot.l2_mpki

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "policy": self.policy,
            "snapshot": self.snapshot.to_dict(),
            "footprints": dict(self.footprints),
            "intervals": self.intervals,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SingleRunResult":
        return cls(
            benchmark=data["benchmark"],
            config_name=data["config_name"],
            policy=data["policy"],
            snapshot=CoreSnapshot.from_dict(data["snapshot"]),
            footprints=dict(data.get("footprints", {})),
            intervals=data.get("intervals", 0),
        )


@dataclass
class WorkloadResult:
    """One multi-programmed workload under one LLC policy."""

    workload_name: str
    benchmarks: tuple[str, ...]
    config_name: str
    policy: str
    snapshots: list[CoreSnapshot]
    intervals: int = 0
    policy_state: str = ""

    @property
    def ipcs(self) -> list[float]:
        return [s.ipc for s in self.snapshots]

    @property
    def llc_mpkis(self) -> list[float]:
        return [s.llc_mpki for s in self.snapshots]

    def per_app(self) -> dict[str, CoreSnapshot]:
        """Benchmark-name -> snapshot (first instance wins on duplicates)."""
        out: dict[str, CoreSnapshot] = {}
        for name, snap in zip(self.benchmarks, self.snapshots):
            out.setdefault(name, snap)
        return out

    def to_dict(self) -> dict:
        return {
            "workload_name": self.workload_name,
            "benchmarks": list(self.benchmarks),
            "config_name": self.config_name,
            "policy": self.policy,
            "snapshots": [s.to_dict() for s in self.snapshots],
            "intervals": self.intervals,
            "policy_state": self.policy_state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadResult":
        return cls(
            workload_name=data["workload_name"],
            benchmarks=tuple(data["benchmarks"]),
            config_name=data["config_name"],
            policy=data["policy"],
            snapshots=[CoreSnapshot.from_dict(s) for s in data["snapshots"]],
            intervals=data.get("intervals", 0),
            policy_state=data.get("policy_state", ""),
        )
