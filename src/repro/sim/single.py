"""Single-application runs: IPC_alone baselines and Table 4 characterisation.

``run_alone`` executes one benchmark on a single-core instance of the
platform (the whole LLC to itself), which is how the paper obtains the
IPC_alone denominators of the weighted-speed-up metric and the standalone
Footprint-number / L2-MPKI columns of Table 4.

``AloneCache`` memoises those runs per (benchmark, configuration): a 16-core
experiment suite reuses the same 36 baselines across every workload and
policy.
"""

from __future__ import annotations

from repro.core.monitor import MonitoredPolicy
from repro.cpu.engine import MulticoreEngine
from repro.sim.build import build_hierarchy, geometry_of, resolve_policy
from repro.sim.config import SystemConfig
from repro.sim.results import SingleRunResult
from repro.trace.benchmarks import BENCHMARKS
from repro.trace.shared import make_source


def run_alone(
    benchmark: str,
    config: SystemConfig,
    *,
    policy: str = "tadrrip",
    quota: int = 30_000,
    warmup: int = 5_000,
    master_seed: int = 0,
    monitor: bool = False,
    monitor_all_sets: bool = False,
) -> SingleRunResult:
    """Run *benchmark* alone; optionally attach passive footprint monitors."""
    spec = BENCHMARKS.get(benchmark)
    if spec is None and benchmark.startswith("tgt:"):
        # Ingested targets resolve through the active registry (raises
        # with ingest guidance when the target is unknown there).
        from repro.targets.registry import require_target

        spec = require_target(benchmark)
    if spec is None:
        raise ValueError(f"unknown benchmark {benchmark!r}")
    solo_config = config.with_cores(1)
    llc_policy = resolve_policy(policy, solo_config)
    monitored: MonitoredPolicy | None = None
    if monitor:
        configs = {"sampled": (solo_config.monitor_sets, solo_config.monitor_entries)}
        if monitor_all_sets:
            # The Fpn(A) column: every set monitored, 32-entry arrays (the
            # paper uses 32 entries "only to report the upper-bound").
            configs["all"] = (solo_config.llc.num_sets, 32)
        monitored = MonitoredPolicy(
            llc_policy, configs, solo_config.partial_tag_bits
        )
        llc_policy = monitored
    hierarchy = build_hierarchy(solo_config, llc_policy)
    source = make_source(spec, geometry_of(solo_config), 0, master_seed)
    engine = MulticoreEngine(
        hierarchy,
        [source],
        quota_per_core=quota,
        interval_misses=solo_config.effective_interval,
        warmup_accesses=warmup,
    )
    snapshots = engine.run()
    footprints: dict[str, float] = {}
    if monitored is not None:
        footprints = {
            label: monitored.mean_footprint(label, 0) for label in monitored.samplers
        }
    return SingleRunResult(
        benchmark=benchmark,
        config_name=solo_config.name,
        policy=hierarchy.llc.policy.describe(),
        snapshot=snapshots[0],
        footprints=footprints,
        intervals=engine.intervals_completed,
    )


class AloneCache:
    """Memoised IPC_alone lookups shared by an experiment suite.

    When constructed with a :class:`~repro.runner.parallel.ParallelRunner`,
    misses are executed through it — which means they hit the persistent
    result store across invocations and can be batch-prefetched in
    parallel via :meth:`prefetch`.  Without a pool the cache falls back to
    direct in-process :func:`run_alone` calls.
    """

    def __init__(
        self,
        config: SystemConfig,
        *,
        policy: str = "tadrrip",
        quota: int = 30_000,
        warmup: int = 5_000,
        master_seed: int = 0,
        pool=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.quota = quota
        self.warmup = warmup
        self.master_seed = master_seed
        self.pool = pool
        self._results: dict[str, SingleRunResult] = {}

    def job_for(self, benchmark: str):
        """The serialisable job description for one baseline run.

        The config is canonicalised to one core — exactly what
        :func:`run_alone` simulates — so every suite that shares a
        platform (16/20/24-core studies on the same LLC) derives the same
        cache key and shares one set of baselines in the result store.
        """
        from repro.runner.jobs import AloneJob

        return AloneJob(
            benchmark=benchmark,
            config=self.config.with_cores(1),
            policy=self.policy,
            quota=self.quota,
            warmup=self.warmup,
            master_seed=self.master_seed,
        )

    def prefetch(self, benchmarks: tuple[str, ...] | list[str]) -> None:
        """Batch-run the missing benchmarks (in parallel when pooled)."""
        missing = sorted({b for b in benchmarks if b not in self._results})
        if not missing:
            return
        if self.pool is None:
            for benchmark in missing:
                self.result(benchmark)
            return
        for benchmark, result in zip(
            missing, self.pool.run([self.job_for(b) for b in missing])
        ):
            # A quarantined baseline leaves a None hole; keep it out of
            # the memo so a later lookup retries (and can then raise).
            if result is not None:
                self._results[benchmark] = result

    def result(self, benchmark: str) -> SingleRunResult:
        cached = self._results.get(benchmark)
        if cached is None:
            if self.pool is not None:
                cached = self.pool.run_one(self.job_for(benchmark))
                if cached is None:
                    failure = (
                        self.pool.last_failures[-1]
                        if getattr(self.pool, "last_failures", None)
                        else None
                    )
                    detail = f": {failure.error}" if failure else ""
                    raise RuntimeError(
                        f"IPC_alone baseline for {benchmark!r} quarantined"
                        f"{detail}"
                    )
            else:
                cached = run_alone(
                    benchmark,
                    self.config,
                    policy=self.policy,
                    quota=self.quota,
                    warmup=self.warmup,
                    master_seed=self.master_seed,
                )
            self._results[benchmark] = cached
        return cached

    def ipc(self, benchmark: str) -> float:
        return self.result(benchmark).ipc

    def ipcs(self, benchmarks: tuple[str, ...]) -> list[float]:
        return [self.ipc(b) for b in benchmarks]
