"""Row-hit / row-conflict DRAM timing model.

Matches the baseline in Table 3:

* row hit: 180 cycles, row conflict: 340 cycles,
* 8 banks, 4KB rows,
* permutation-based (XOR-mapped) page interleaving (Zhang et al. [28]).

Each bank remembers its open row.  An access to the open row is a row hit;
anything else closes the row (precharge + activate) and pays the conflict
latency.  Banks serialise accesses through a busy-until time; reads stall
the requesting core for the full latency, writes (write-backs) only occupy
the bank.
"""

from __future__ import annotations

from repro.util.bitops import ilog2, xor_bank_index


class DramModel:
    """Bank-aware DRAM with open-row tracking."""

    __slots__ = (
        "num_banks",
        "row_hit_cycles",
        "row_conflict_cycles",
        "blocks_per_row",
        "bank_occupancy",
        "_open_row",
        "_busy_until",
        "row_hits",
        "row_conflicts",
        "reads",
        "writes",
    )

    def __init__(
        self,
        num_banks: int = 8,
        row_hit_cycles: float = 180.0,
        row_conflict_cycles: float = 340.0,
        row_bytes: int = 4096,
        block_bytes: int = 64,
        bank_occupancy: float = 16.0,
    ) -> None:
        ilog2(num_banks)
        if row_bytes % block_bytes:
            raise ValueError("row size must be a multiple of the block size")
        self.num_banks = num_banks
        self.row_hit_cycles = row_hit_cycles
        self.row_conflict_cycles = row_conflict_cycles
        self.blocks_per_row = row_bytes // block_bytes
        self.bank_occupancy = bank_occupancy
        self._open_row = [-1] * num_banks
        self._busy_until = [0.0] * num_banks
        self.row_hits = 0
        self.row_conflicts = 0
        self.reads = 0
        self.writes = 0

    # -- address mapping -----------------------------------------------------

    def bank_of(self, block_addr: int) -> int:
        """Permutation-based bank index: row bits XORed into bank bits."""
        return xor_bank_index(block_addr // self.blocks_per_row, self.num_banks)

    def row_of(self, block_addr: int) -> int:
        return block_addr // self.blocks_per_row

    # -- timing ----------------------------------------------------------------

    def _access(self, block_addr: int, now: float) -> float:
        bank = self.bank_of(block_addr)
        row = self.row_of(block_addr)
        start = self._busy_until[bank]
        if start < now:
            start = now
        if self._open_row[bank] == row:
            latency = self.row_hit_cycles
            self.row_hits += 1
        else:
            latency = self.row_conflict_cycles
            self.row_conflicts += 1
            self._open_row[bank] = row
        done = start + latency
        self._busy_until[bank] = start + self.bank_occupancy
        return done

    def read(self, block_addr: int, now: float) -> float:
        """A demand fill; returns its completion time."""
        self.reads += 1
        return self._access(block_addr, now)

    def write(self, block_addr: int, now: float) -> float:
        """A write-back; occupies the bank, caller does not wait on it."""
        self.writes += 1
        return self._access(block_addr, now)

    # -- reporting ----------------------------------------------------------------

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0
