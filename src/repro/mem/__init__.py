"""Main-memory substrate: row-buffer DRAM model and the L2→LLC arbiter.

The paper's memory model (Table 3, following EAF [2]) models only row hits
and row conflicts: 180 vs 340 cycles, 8 banks, 4KB rows, XOR-mapped
(permutation-based) bank interleaving [28].  :mod:`repro.mem.dram`
implements exactly that.  :mod:`repro.mem.arbiter` provides the VPC-style
(Virtual Private Caches, Nesbit et al. [7]) arbiter used to schedule
requests from the private L2s into the shared LLC.
"""

from repro.mem.arbiter import VpcArbiter
from repro.mem.dram import DramModel

__all__ = ["DramModel", "VpcArbiter"]
