"""VPC-style arbiter for L2→LLC requests.

The paper schedules requests from the private L2s into the shared LLC with
a Virtual Private Caches arbiter (Nesbit et al., ISCA 2007 [7]).  VPC gives
each core a *virtual private clock*: a core that has consumed more than its
fair share of LLC service sees its next request scheduled at its virtual
clock rather than immediately, bounding bandwidth interference.

The model: each serviced request advances the issuing core's virtual clock
by ``service_cycles * num_cores`` (its fair cost under an equal share).  A
new request starts no earlier than ``max(now, virtual_clock - window)``;
the window lets cores burst briefly before fairness throttles them.
"""

from __future__ import annotations


class VpcArbiter:
    """Fair-queueing arbiter with per-core virtual clocks."""

    __slots__ = (
        "num_cores", "service_cycles", "window", "_virtual", "throttled", "requests"
    )

    def __init__(
        self, num_cores: int, service_cycles: float = 4.0, window: float = 256.0
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.service_cycles = service_cycles
        self.window = window
        self._virtual = [0.0] * num_cores
        self.throttled = 0
        self.requests = 0

    def admit(self, core_id: int, now: float) -> float:
        """Admit one request; return its (possibly delayed) start time."""
        self.requests += 1
        vclock = self._virtual[core_id]
        start = now
        earliest = vclock - self.window
        if earliest > now:
            start = earliest
            self.throttled += 1
        # Advance the virtual clock by the fair cost of one service slot;
        # an idle core's clock catches up to real time first.
        base = vclock if vclock > start else start
        self._virtual[core_id] = base + self.service_cycles * self.num_cores
        return start

    def virtual_clock(self, core_id: int) -> float:
        return self._virtual[core_id]
