"""Footprint-number based insertion-priority prediction (Section 3.2).

The predictor statically maps an application's Footprint-number into one of
four discrete priority buckets (Table 1).  The default ranges are the ones
the paper fixed after sweeping 36 combinations (high range [0,3] x low
range (12,16)); both boundaries are constructor parameters so the sweep
itself is reproducible (see ``benchmarks/bench_ablation_priority_ranges.py``).

====================  =====================  ==============================
Bucket                Footprint-number       Insertion behaviour (RRPV)
====================  =====================  ==============================
High (HP)             [0, high_max]          0
Medium (MP)           (high_max, medium_max] 1, but 1/16th at 2 (LP)
Low (LP)              (medium_max, assoc)    2, but 1/16th at 1 (MP)
Least (LstP)          >= assoc               bypass, but 1/32nd inserted at 3
====================  =====================  ==============================

The Least bucket groups applications whose working set occupies at least
the full associativity of a set — both "exactly fits" and "thrashes" look
identical to a 16-entry monitor, and both are candidates for deprioritising.
In the non-bypass variant (``ADAPT_ins``) Least-priority lines are all
inserted at distant priority (RRPV 3) instead of being bypassed.
"""

from __future__ import annotations

from enum import IntEnum

from repro.policies.base import BYPASS
from repro.util.counters import FractionTicker


class PriorityBucket(IntEnum):
    """Discrete application priorities, best (HIGH) to worst (LEAST)."""

    HIGH = 0
    MEDIUM = 1
    LOW = 2
    LEAST = 3

    @property
    def label(self) -> str:
        return {0: "HP", 1: "MP", 2: "LP", 3: "LstP"}[int(self)]


class InsertionPriorityPredictor:
    """Maps Footprint-numbers to buckets and buckets to insertion RRPVs.

    One instance per application: the 1/16 and 1/32 exception tickers are
    per-application state (the paper budgets "three more counters each of
    size one byte" per application sampler).
    """

    def __init__(
        self,
        associativity: int = 16,
        high_max: float = 3.0,
        medium_max: float = 12.0,
        *,
        bypass_least: bool = True,
        medium_exception_denominator: int = 16,
        low_exception_denominator: int = 16,
        least_insert_denominator: int = 32,
    ) -> None:
        if not 0 < high_max < medium_max < associativity:
            raise ValueError(
                "priority ranges must satisfy 0 < high_max < medium_max < associativity"
            )
        self.associativity = associativity
        self.high_max = high_max
        self.medium_max = medium_max
        self.bypass_least = bypass_least
        self._medium_ticker = FractionTicker(medium_exception_denominator)
        self._low_ticker = FractionTicker(low_exception_denominator)
        self._least_ticker = FractionTicker(least_insert_denominator)

    # -- classification -------------------------------------------------------

    def classify(self, footprint_number: float) -> PriorityBucket:
        """Table 1 bucket for a Footprint-number."""
        if footprint_number <= self.high_max:
            return PriorityBucket.HIGH
        if footprint_number <= self.medium_max:
            return PriorityBucket.MEDIUM
        if footprint_number < self.associativity:
            return PriorityBucket.LOW
        return PriorityBucket.LEAST

    # -- insertion ---------------------------------------------------------------

    def insertion_rrpv(self, bucket: PriorityBucket):
        """Insertion RRPV for one fill of an application in *bucket*.

        Returns an int RRPV or :data:`~repro.policies.base.BYPASS`.
        Ticker state advances once per call, so "1 out of 16" is exact.
        """
        if bucket == PriorityBucket.HIGH:
            return 0
        if bucket == PriorityBucket.MEDIUM:
            # Mostly 1; one in sixteen goes to low priority 2 to balance
            # the mixed reuse behaviour the paper observes in this bucket.
            return 2 if self._medium_ticker.tick() else 1
        if bucket == PriorityBucket.LOW:
            # Mostly 2; one in sixteen promoted to medium priority 1.
            return 1 if self._low_ticker.tick() else 2
        # LEAST: bypass 31/32 of fills (ADAPT_bp32) or insert all at
        # distant priority (ADAPT_ins).
        if self.bypass_least:
            return 3 if self._least_ticker.tick() else BYPASS
        return 3
