"""Passive Footprint-number monitoring for any policy.

Table 4 characterises each benchmark by its Footprint-number measured when
run *alone* — a property of the reference stream, not of the replacement
policy.  :class:`MonitoredPolicy` wraps an arbitrary LLC policy with
per-application :class:`~repro.core.footprint.FootprintSampler` instances
that observe demand accesses exactly like ADAPT's monitor does, without
influencing any replacement decision.

Used by the Table 4 experiment (with one sampler over *all* sets for the
Fpn(A) column and one over 40 sampled sets for Fpn(S)) and available for
workload analysis under any baseline policy.
"""

from __future__ import annotations

from repro.core.footprint import FootprintSampler
from repro.policies.base import ReplacementPolicy


class MonitoredPolicy(ReplacementPolicy):
    """Delegating wrapper that taps demand accesses into samplers.

    ``sampler_configs`` maps a label (e.g. ``"all"``, ``"sampled"``) to a
    ``(num_monitor_sets, entries)`` pair; one sampler per label per core is
    created at bind time.  Interval ends snapshot every sampler's
    Footprint-number into ``history[label][core]``.
    """

    def __init__(
        self,
        inner: ReplacementPolicy,
        sampler_configs: dict[str, tuple[int, int]] | None = None,
        partial_tag_bits: int = 10,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"monitored({inner.name})"
        self._configs = sampler_configs or {"sampled": (40, 16)}
        self._partial_tag_bits = partial_tag_bits
        self.samplers: dict[str, list[FootprintSampler]] = {}
        self.history: dict[str, list[list[float]]] = {}

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        self.inner.bind(num_sets, ways, num_cores)
        for label, (monitor_sets, entries) in self._configs.items():
            self.samplers[label] = [
                FootprintSampler(num_sets, monitor_sets, entries, self._partial_tag_bits)
                for _ in range(num_cores)
            ]
            self.history[label] = [[] for _ in range(num_cores)]

    # -- taps --------------------------------------------------------------------

    def _observe(self, set_idx: int, core_id: int, block_addr: int) -> None:
        for samplers in self.samplers.values():
            samplers[core_id].observe(set_idx, block_addr)

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        if is_demand and block_addr >= 0:
            self._observe(set_idx, core_id, block_addr)
        self.inner.on_hit(set_idx, way, core_id, is_demand, block_addr)

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if is_demand:
            self._observe(set_idx, core_id, block_addr)
        return self.inner.decide_insertion(set_idx, core_id, pc, block_addr, is_demand)

    def end_interval(self) -> None:
        for label, samplers in self.samplers.items():
            for core_id, sampler in enumerate(samplers):
                self.history[label][core_id].append(sampler.compute_and_reset())
        self.inner.end_interval()

    # -- pure delegation -------------------------------------------------------------

    def victim(self, set_idx: int, core_id: int) -> int:
        return self.inner.victim(set_idx, core_id)

    def on_fill(self, set_idx, way, insertion, core_id, pc, block_addr, is_demand):
        self.inner.on_fill(set_idx, way, insertion, core_id, pc, block_addr, is_demand)

    def on_evict(self, set_idx, way, core_id, block_addr, was_reused) -> None:
        self.inner.on_evict(set_idx, way, core_id, block_addr, was_reused)

    def on_miss(self, set_idx: int, core_id: int, is_demand: bool) -> None:
        self.inner.on_miss(set_idx, core_id, is_demand)

    # -- results ----------------------------------------------------------------------

    def mean_footprint(self, label: str, core_id: int) -> float:
        """Average Footprint-number across completed intervals."""
        values = self.history[label][core_id]
        if not values:
            # No full interval completed: report the in-flight value.
            return self.samplers[label][core_id].footprint_number()
        return sum(values) / len(values)

    def describe(self) -> str:
        return f"monitored({self.inner.describe()})"
