"""ADAPT: the paper's LLC replacement policy (Section 3).

ADAPT composes the two components of the paper:

* one :class:`~repro.core.footprint.FootprintSampler` per application,
  observing every demand access that targets a monitored set (hits and
  misses alike — the monitor is independent of hit/miss outcomes, which is
  the point of the metric), and
* one :class:`~repro.core.priority.InsertionPriorityPredictor` per
  application, consulted on every demand fill for the insertion RRPV (or a
  bypass decision).

The replacement state itself is plain 2-bit RRIP: demand hits promote to
RRPV 0, the victim is the first line at RRPV 3 after aging.  Unlike the
set-duelling baselines, ADAPT dedicates **no** cache sets to policy
learning — every set is a follower.

Footprint-numbers are recomputed once per *interval*; the simulation engine
calls :meth:`end_interval` every ``interval_misses`` LLC misses (1M-4M in
the paper; derived from the LLC block count by the system configuration).
Until the first interval completes every application sits in the LOW
bucket, whose insertion RRPV (2) is exactly SRRIP's — i.e. before any
evidence arrives ADAPT behaves like the SRRIP baseline, neither polluting
(HIGH would) nor starving anyone (LEAST would).

Two paper variants:

* ``ADAPT_bp32`` (``bypass_least=True``): 31/32 of Least-priority fills are
  bypassed to the private L2 — the best performer and the paper's headline
  configuration.
* ``ADAPT_ins`` (``bypass_least=False``): Least-priority fills are all
  inserted at distant priority.
"""

from __future__ import annotations

from repro.core.footprint import FootprintSampler
from repro.core.priority import InsertionPriorityPredictor, PriorityBucket
from repro.policies.base import FastPathOps
from repro.policies.rrip import RripPolicyBase


class AdaptPolicy(RripPolicyBase):
    """Adaptive Discrete and de-prioritized Application PrioriTization."""

    name = "adapt"

    def __init__(
        self,
        *,
        bypass_least: bool = True,
        num_monitor_sets: int = 40,
        monitor_entries: int = 16,
        partial_tag_bits: int = 10,
        high_max: float = 3.0,
        medium_max: float = 12.0,
        priority_associativity: int | None = None,
        initial_bucket: PriorityBucket = PriorityBucket.LOW,
        rrpv_bits: int = 2,
    ) -> None:
        super().__init__(rrpv_bits)
        self.bypass_least = bypass_least
        self.name = "adapt_bp32" if bypass_least else "adapt_ins"
        self._num_monitor_sets = num_monitor_sets
        self._monitor_entries = monitor_entries
        self._partial_tag_bits = partial_tag_bits
        self._high_max = high_max
        self._medium_max = medium_max
        self._priority_associativity = priority_associativity
        self._initial_bucket = initial_bucket
        self.samplers: list[FootprintSampler] = []
        self.predictors: list[InsertionPriorityPredictor] = []
        self.buckets: list[PriorityBucket] = []
        self.footprints: list[float] = []
        #: Per-interval history of (footprint, bucket) per core, for analysis.
        self.history: list[list[tuple[float, PriorityBucket]]] = []

    def bind(self, num_sets: int, ways: int, num_cores: int) -> None:
        super().bind(num_sets, ways, num_cores)
        # The priority ranges are defined against a 16-way budget in the
        # paper; Section 5.5 shows they carry over to larger associativity
        # unchanged, so the threshold stays at 16 unless overridden.
        assoc = self._priority_associativity or 16
        self.samplers = [
            FootprintSampler(
                num_sets,
                self._num_monitor_sets,
                self._monitor_entries,
                self._partial_tag_bits,
            )
            for _ in range(num_cores)
        ]
        self.predictors = [
            InsertionPriorityPredictor(
                assoc,
                self._high_max,
                self._medium_max,
                bypass_least=self.bypass_least,
            )
            for _ in range(num_cores)
        ]
        self.buckets = [self._initial_bucket] * num_cores
        self.footprints = [0.0] * num_cores
        self.history = [[] for _ in range(num_cores)]

    # -- monitoring taps ---------------------------------------------------------

    def on_hit(
        self, set_idx: int, way: int, core_id: int, is_demand: bool, block_addr: int = -1
    ) -> None:
        if is_demand:
            self.rrpv[set_idx][way] = 0
            if block_addr >= 0:
                self.samplers[core_id].observe(set_idx, block_addr)

    def decide_insertion(self, set_idx, core_id, pc, block_addr, is_demand):
        if not is_demand:
            return self.writeback_insertion()
        # Misses are sampled here (the demand access reached a monitored
        # set whether or not it hits), then the bucket decides the fill.
        self.samplers[core_id].observe(set_idx, block_addr)
        return self.predictors[core_id].insertion_rrpv(self.buckets[core_id])

    # -- fast-path protocol ---------------------------------------------------------

    def fast_ops(self) -> FastPathOps:
        """``"adapt"`` kind: family RRIP rows plus the per-core samplers.

        The demand-hit tap (promotion + Footprint-number sampling on
        monitored sets) is the only hook ADAPT adds on the hit path;
        ``decide_insertion`` (the miss-side sample + bucket lookup) and
        ``end_interval`` stay method calls.
        """
        cls = type(self)
        return FastPathOps(
            "adapt",
            self.rrpv,
            max_code=self.max_rrpv,
            hit_inline=cls.on_hit is AdaptPolicy.on_hit,
            victim_inline=cls.victim is RripPolicyBase.victim,
            fill_inline=cls.on_fill is RripPolicyBase.on_fill,
            samplers=self.samplers,
        )

    # -- interval clock -------------------------------------------------------------

    def end_interval(self) -> None:
        """Recompute every application's Footprint-number and priority."""
        for core_id in range(self.num_cores):
            footprint = self.samplers[core_id].compute_and_reset()
            bucket = self.predictors[core_id].classify(footprint)
            self.footprints[core_id] = footprint
            self.buckets[core_id] = bucket
            self.history[core_id].append((footprint, bucket))

    # -- introspection ---------------------------------------------------------------

    def bucket_of(self, core_id: int) -> PriorityBucket:
        return self.buckets[core_id]

    def storage_bits(self) -> int:
        """Monitor storage across all applications (Table 2 accounting)."""
        return sum(sampler.storage_bits() for sampler in self.samplers)

    def describe(self) -> str:
        if not self.buckets:
            return self.name
        marks = "".join(b.label[0] for b in self.buckets)
        return f"{self.name}[{marks}]"
