"""Hardware storage-cost accounting (Table 2 and Section 3.3).

Reproduces the paper's cost arithmetic for each policy on a given LLC
geometry, so the Table 2 bench can print paper-stated and recomputed
figures side by side.

The paper's per-application ADAPT budget (Section 3.3):

* per monitored set: 16 entries x (10-bit partial tag + 2 bookkeeping bits)
  + 8 bits of head/tail pointers + a unique counter = 204 bits,
* 40 monitored sets -> 8160 bits,
* plus 40 bits of registers (Footprint-number byte, priority byte, three
  one-byte probabilistic-insertion counters),
* total 8200 bits — "1KB (appx) per application".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostReport:
    """Storage cost of one policy configuration."""

    policy: str
    bits: int
    note: str

    @property
    def bytes(self) -> float:
        return self.bits / 8

    @property
    def kilobytes(self) -> float:
        return self.bits / 8 / 1024

    def render(self) -> str:
        if self.kilobytes >= 1:
            size = f"{self.kilobytes:.3f} KB"
        else:
            size = f"{self.bytes:.0f} B"
        return f"{self.policy:<12} {size:>12}  {self.note}"


def tadrrip_cost(num_apps: int, psel_bits: int = 10, extra_bits: int = 6) -> CostReport:
    """TA-DRRIP: one PSEL (plus duel bookkeeping) per application.

    The paper states 16 bits per application (48 bytes at N=24).
    """
    per_app = psel_bits + extra_bits
    return CostReport(
        "TA-DRRIP",
        per_app * num_apps,
        f"{per_app} bits/app x {num_apps} apps",
    )


def eaf_cost(llc_blocks: int, bits_per_address: int = 8) -> CostReport:
    """EAF: a Bloom filter sized at 8 bits per tracked address.

    One address tracked per cache block: 256KB for a 16MB/64B cache.
    """
    return CostReport(
        "EAF-RRIP",
        llc_blocks * bits_per_address,
        f"{bits_per_address} bits x {llc_blocks} addresses",
    )


def ship_cost(
    llc_blocks: int,
    shct_entries: int = 16 * 1024,
    shct_bits: int = 3,
    sampled_line_fraction: float = 1.0,
    signature_bits: int = 14,
    outcome_bits: int = 1,
) -> CostReport:
    """SHiP-PC: the SHCT plus per-line signature and outcome storage.

    The paper quotes 65.875KB ("SHCT table & PC") for the 16MB LLC.  At
    full-line tracking the per-line term would be far larger, so the quoted
    figure corresponds to SHiP's sampled variant: a 16K x 3-bit SHCT
    (48KB -> 6KB) plus 15 bits (14-bit signature + outcome) on 1/8 of the
    lines (2048 sampler sets x 16 ways = 32K lines), which lands at
    ~66KB — matching the paper's figure to within rounding.
    """
    shct = shct_entries * shct_bits
    per_line = signature_bits + outcome_bits
    lines = int(llc_blocks * sampled_line_fraction)
    return CostReport(
        "SHiP",
        shct + per_line * lines,
        f"SHCT {shct_entries}x{shct_bits}b + {per_line}b x {lines} lines",
    )


def adapt_cost(
    num_apps: int,
    num_monitor_sets: int = 40,
    entries: int = 16,
    partial_tag_bits: int = 10,
    bookkeeping_bits: int = 2,
    head_tail_bits: int = 8,
    counter_bits: int = 4,
    register_bits: int = 40,
) -> CostReport:
    """ADAPT: per-application sampler arrays plus registers (Section 3.3)."""
    per_set = entries * (partial_tag_bits + bookkeeping_bits) + head_tail_bits + counter_bits
    per_app = per_set * num_monitor_sets + register_bits
    return CostReport(
        "ADAPT",
        per_app * num_apps,
        f"{per_set} bits/set x {num_monitor_sets} sets + {register_bits}b regs "
        f"= {per_app} bits/app x {num_apps} apps",
    )


def table2_reports(num_apps: int = 24, llc_blocks: int = 256 * 1024) -> list[CostReport]:
    """The four Table 2 rows for the paper's 16MB, 16-way LLC."""
    return [
        tadrrip_cost(num_apps),
        eaf_cost(llc_blocks),
        ship_cost(llc_blocks, sampled_line_fraction=0.125),
        adapt_cost(num_apps),
    ]
