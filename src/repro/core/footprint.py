"""Footprint-number monitoring (Section 3.1 of the paper).

**Definition.**  The Footprint-number of an application is the number of
unique block addresses it generates to a cache set in an interval of time,
where the interval is measured in shared-LLC misses (1M in the paper —
roughly four times the number of blocks in the 16MB cache; we keep the x4
ratio so scaled configurations behave identically).

**Mechanism.**  Tracking every set is impractical, so the monitor samples a
small number of sets (40 in the paper).  Each application owns, per sampled
set, a small tag array operating like a cache set:

* entries store a *partial tag* (10 bits in the paper — enough that two
  distinct lines collide with probability 1/1024),
* a lookup miss means a unique access: the tag is installed (SRRIP-managed
  replacement when the array is full) and the per-set unique counter
  increments,
* a lookup hit just refreshes the entry's recency bits.

At the end of every interval the application's Footprint-number is the
average of the per-set unique counters, and the arrays and counters reset
(the "sliding" Footprint-number).

Everything here is outside the cache's critical path and independent of
hit/miss results on the main cache — the property that makes the metric
robust at high core counts, unlike set-duelling (Section 2).

Implementation note: the paper stores the *most significant* 10 tag bits.
Our synthetic traces place each application in its own address-space slice
via high address bits, which would make all of an application's partial
tags identical; we therefore take the *low* 10 tag bits, which preserves
the 1/1024 collision probability the paper's argument relies on (documented
substitution).
"""

from __future__ import annotations


class SamplerSet:
    """One monitored set's tag array: partial tags + 2-bit recency."""

    __slots__ = ("entries", "partial_mask", "tags", "rrpv", "unique_count", "counter_max")

    #: 2-bit RRPV bookkeeping per entry, as in the paper's cost budget.
    MAX_RRPV = 3

    def __init__(self, entries: int = 16, partial_tag_bits: int = 10, counter_bits: int = 8):
        if entries < 1:
            raise ValueError("sampler set needs at least one entry")
        self.entries = entries
        self.partial_mask = (1 << partial_tag_bits) - 1
        self.tags: list[int] = []
        self.rrpv: list[int] = []
        self.unique_count = 0
        self.counter_max = (1 << counter_bits) - 1

    def observe(self, tag: int) -> bool:
        """Record one demand access; returns True when it was unique.

        Mirrors a cache-set lookup: hit refreshes recency (RRPV 0); miss
        installs the partial tag, evicting via SRRIP aging when full, and
        bumps the saturating unique counter.
        """
        partial = tag & self.partial_mask
        tags = self.tags
        try:
            idx = tags.index(partial)
        except ValueError:
            idx = -1
        if idx >= 0:
            self.rrpv[idx] = 0
            return False

        if self.unique_count < self.counter_max:
            self.unique_count += 1
        if len(tags) < self.entries:
            tags.append(partial)
            # SRRIP-style insertion at "long" re-reference interval.
            self.rrpv.append(self.MAX_RRPV - 1)
        else:
            rrpv = self.rrpv
            current_max = max(rrpv)
            if current_max < self.MAX_RRPV:
                delta = self.MAX_RRPV - current_max
                for i in range(len(rrpv)):
                    rrpv[i] += delta
            victim = rrpv.index(self.MAX_RRPV)
            tags[victim] = partial
            self.rrpv[victim] = self.MAX_RRPV - 1
        return True

    def reset(self) -> None:
        self.tags.clear()
        self.rrpv.clear()
        self.unique_count = 0


class FootprintSampler:
    """Per-application Footprint-number monitor over sampled LLC sets.

    One instance exists per application (the paper: "there are as many
    instances of this component as the number of applications").  The set
    of monitored LLC sets is chosen evenly across the index space and is
    identical for every application, so results are comparable.
    """

    def __init__(
        self,
        llc_num_sets: int,
        num_monitor_sets: int = 40,
        entries: int = 16,
        partial_tag_bits: int = 10,
    ) -> None:
        if llc_num_sets < 1:
            raise ValueError("LLC must have at least one set")
        num_monitor_sets = min(num_monitor_sets, llc_num_sets)
        self.llc_num_sets = llc_num_sets
        self.entries = entries
        # Evenly spaced monitored sets; a dict gives O(1) membership checks
        # on the hot path (the paper's "test logic").
        stride = llc_num_sets / num_monitor_sets
        chosen: list[int] = []
        for i in range(num_monitor_sets):
            idx = int(i * stride)
            if not chosen or idx != chosen[-1]:
                chosen.append(idx)
        self.monitored_sets = chosen
        self._index_of = {s: i for i, s in enumerate(chosen)}
        self._arrays = [
            SamplerSet(entries, partial_tag_bits) for _ in chosen
        ]
        self.samples = 0
        self.intervals_completed = 0
        self.last_footprint = 0.0

    @property
    def num_monitor_sets(self) -> int:
        return len(self.monitored_sets)

    def is_monitored(self, set_idx: int) -> bool:
        return set_idx in self._index_of

    def observe(self, set_idx: int, block_addr: int) -> None:
        """Sample one demand access if it targets a monitored set."""
        arr_idx = self._index_of.get(set_idx)
        if arr_idx is None:
            return
        self.samples += 1
        # The tag is everything above the set-index bits.
        tag = block_addr // self.llc_num_sets
        self._arrays[arr_idx].observe(tag)

    def footprint_number(self) -> float:
        """Current (mid-interval) average unique count across sampled sets."""
        total = sum(arr.unique_count for arr in self._arrays)
        return total / len(self._arrays)

    def compute_and_reset(self) -> float:
        """End-of-interval: return the Footprint-number and restart.

        This is the "sliding" behaviour: every interval gets a fresh view,
        so dynamic changes in application behaviour are captured.
        """
        footprint = self.footprint_number()
        for arr in self._arrays:
            arr.reset()
        self.intervals_completed += 1
        self.last_footprint = footprint
        return footprint

    # -- hardware cost ------------------------------------------------------

    def storage_bits(self) -> int:
        """Storage in bits, following the Section 3.3 accounting."""
        per_set = self.entries * 12 + 8 + 4  # 10b tag + 2b recency, head/tail, counter
        per_app_sets = per_set * self.num_monitor_sets
        registers = 40  # footprint byte, priority byte, three 1-byte tickers
        return per_app_sets + registers
