"""ADAPT — the paper's primary contribution.

* :mod:`repro.core.footprint` — the Footprint-number monitoring mechanism
  (sampled-set partial-tag arrays, interval-based "sliding" computation).
* :mod:`repro.core.priority` — the insertion-priority-prediction algorithm
  (Table 1's four discrete buckets with 1/16 and 1/32 exceptions).
* :mod:`repro.core.adapt` — the composed LLC replacement policy, in its
  ``ADAPT_bp32`` (bypassing) and ``ADAPT_ins`` (inserting) variants.
* :mod:`repro.core.hwcost` — the Table 2 / Section 3.3 storage accounting.
"""

from repro.core.adapt import AdaptPolicy
from repro.core.footprint import FootprintSampler, SamplerSet
from repro.core.hwcost import (
    CostReport,
    adapt_cost,
    eaf_cost,
    ship_cost,
    table2_reports,
    tadrrip_cost,
)
from repro.core.priority import InsertionPriorityPredictor, PriorityBucket

__all__ = [
    "AdaptPolicy",
    "FootprintSampler",
    "SamplerSet",
    "InsertionPriorityPredictor",
    "PriorityBucket",
    "CostReport",
    "adapt_cost",
    "eaf_cost",
    "ship_cost",
    "tadrrip_cost",
    "table2_reports",
]
