"""The ingested-target registry and its memmapped trace source.

Ingestion (:mod:`repro.targets.ingest`) materialises every external trace
once as a content-addressed buffer (``target-<key>.npy``) under a store's
``traces/`` directory and records it in a ``targets.json`` registry next
to the buffers.  This module is the *consumption* side:

* :class:`TargetSpec` — the registry entry; it carries exactly the
  core-model attributes the simulator reads off a benchmark spec
  (``name``/``base_cpi``/``mlp``), so everything downstream of
  :func:`repro.trace.shared.make_source` treats ingested and synthetic
  workloads identically;
* :class:`IngestedTraceSource` — a drop-in for
  :class:`~repro.trace.benchmarks.TraceSource` that memory-maps the
  ingested buffer read-only and serves it chunk-by-chunk (cycling at the
  end, matching the paper's "re-execute finished applications" rule),
  with the standard per-core address offset applied at serve time so any
  core placement replays the same bytes;
* the **active-directory** protocol — worker processes cannot see a
  parent's registry object, so the active targets directory travels in
  the ``REPRO_TARGETS_DIR`` environment variable (set by
  :func:`activate` before the pool forks, inherited by every worker).

Target names are namespaced with the ``tgt:`` prefix so they can never
collide with the synthetic roster, and every lookup that touches the
roster (workload validation, suite composition, job execution) branches
on :func:`is_target` alone.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

#: Namespace prefix separating ingested targets from synthetic benchmarks.
TARGET_PREFIX = "tgt:"
#: The active targets directory, inherited by pool workers via the
#: environment (set it before the pool is created — see :func:`activate`).
ENV_TARGETS_DIR = "REPRO_TARGETS_DIR"
#: Registry file name, next to the buffers it describes.
REGISTRY_NAME = "targets.json"
#: Bump when the registry schema changes.
REGISTRY_VERSION = 1


def is_target(name: object) -> bool:
    """Whether a benchmark name denotes an ingested target."""
    return isinstance(name, str) and name.startswith(TARGET_PREFIX)


@dataclass(frozen=True)
class TargetSpec:
    """One ingested trace, as registered in ``targets.json``.

    ``mlp``/``base_cpi`` fill the same role as on
    :class:`~repro.trace.benchmarks.BenchmarkSpec` (the core timing model
    reads them); external formats carry no such microarchitectural
    metadata, so they are ingest-time parameters with neutral defaults.
    """

    name: str  # tgt:-prefixed registry name
    key: str  # ingest content address (see ingest.ingest_key)
    fmt: str  # source format (champsim/drcachesim/lackey)
    origin: str  # original file name, for provenance display
    source_sha256: str  # digest of the raw input file
    budget: int  # down-sampling cap applied at ingest
    n_accesses: int  # accesses decoded before tiling
    n_chunks: int  # buffer length in CHUNK units
    instructions_per_access: float
    block_size: int = 64
    mlp: float = 2.0
    base_cpi: float = 1.0

    #: Duck-type marker :func:`repro.trace.shared.make_source` dispatches on.
    kind = "target"

    @property
    def thrashing(self) -> bool:
        """Real traces carry no Footprint-number; never constraint-picked."""
        return False

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "TargetSpec":
        return TargetSpec(**data)


# -- the active directory ------------------------------------------------------


def activate(results_dir: str | Path) -> Path:
    """Make ``<results_dir>/traces`` the active targets directory.

    Idempotent, and an explicit pre-set ``REPRO_TARGETS_DIR`` wins — a
    user pointing the variable at a shared ingest cache keeps it across
    every command.  Must run before the worker pool is created so the
    variable is inherited.
    """
    directory = Path(results_dir) / "traces"
    os.environ.setdefault(ENV_TARGETS_DIR, str(directory))
    return Path(os.environ[ENV_TARGETS_DIR])


def active_dir(directory: str | Path | None = None) -> Path | None:
    """The targets directory to resolve against (explicit beats env)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_TARGETS_DIR)
    return Path(env) if env else None


def registry_path(directory: str | Path) -> Path:
    return Path(directory) / REGISTRY_NAME


def buffer_path(directory: str | Path, key: str) -> Path:
    return Path(directory) / f"target-{key}.npy"


#: ``(path, mtime_ns, size)`` -> parsed registry; workers resolve every
#: core's target through here, so repeated loads must not re-read disk.
_REGISTRY_CACHE: dict[tuple, dict[str, TargetSpec]] = {}


def load_registry(directory: str | Path | None = None) -> dict[str, TargetSpec]:
    """Every registered target in the (given or active) directory."""
    directory = active_dir(directory)
    if directory is None:
        return {}
    path = registry_path(directory)
    try:
        stat = path.stat()
    except OSError:
        return {}
    cache_key = (str(path), stat.st_mtime_ns, stat.st_size)
    cached = _REGISTRY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
        targets = {
            name: TargetSpec.from_dict(entry)
            for name, entry in raw.get("targets", {}).items()
        }
    except (OSError, ValueError, TypeError):
        return {}
    _REGISTRY_CACHE.clear()
    _REGISTRY_CACHE[cache_key] = targets
    return targets


def save_registry(
    directory: str | Path, targets: dict[str, TargetSpec]
) -> Path:
    """Atomically (re)write ``targets.json`` — deterministic bytes."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = registry_path(directory)
    blob = json.dumps(
        {
            "version": REGISTRY_VERSION,
            "targets": {
                name: targets[name].to_dict() for name in sorted(targets)
            },
        },
        indent=2,
        sort_keys=True,
    )
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(blob + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def lookup_target(
    name: str, directory: str | Path | None = None
) -> TargetSpec | None:
    """The spec registered under *name* (``tgt:`` optional), or ``None``."""
    if not name.startswith(TARGET_PREFIX):
        name = TARGET_PREFIX + name
    return load_registry(directory).get(name)


def require_target(name: str, directory: str | Path | None = None) -> TargetSpec:
    spec = lookup_target(name, directory)
    if spec is None:
        where = active_dir(directory)
        hint = (
            f"no registry in {where}"
            if where is not None
            else f"no targets directory active (set {ENV_TARGETS_DIR} or pass "
            "--results-dir to a command that ingested it)"
        )
        raise ValueError(
            f"target {name!r} is not ingested ({hint}); "
            "run: repro-experiments targets ingest <trace-file>"
        )
    return spec


def registered_buffer_names(directory: str | Path) -> set[str]:
    """Buffer file names ``targets.json`` pins (the gc keep-set)."""
    return {
        f"target-{spec.key}.npy" for spec in load_registry(directory).values()
    }


# -- the trace source ----------------------------------------------------------

#: Path -> mapped buffer; every source over the same target in a process
#: shares one read-only mapping (and all processes share page cache).
_MAPS: dict[str, np.ndarray] = {}


def _map_buffer(path: Path) -> np.ndarray:
    from repro.runner.integrity import quarantine, verify_artifact
    from repro.trace.shared import TRACE_DTYPE

    arr = _MAPS.get(str(path))
    if arr is not None:
        return arr
    if verify_artifact(path) is False:
        quarantine(path, reason="target trace checksum mismatch")
        raise ValueError(
            f"ingested trace {path.name} failed its checksum and was "
            "quarantined; re-run: repro-experiments targets ingest"
        )
    try:
        arr = np.load(path, mmap_mode="r")
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot map ingested trace {path}: {exc}") from exc
    if arr.dtype != TRACE_DTYPE or arr.ndim != 1 or len(arr) == 0:
        raise ValueError(f"ingested trace {path.name} has an unexpected layout")
    _MAPS[str(path)] = arr
    return arr


class IngestedTraceSource:
    """Chunked replay of an ingested buffer; drop-in for ``TraceSource``.

    Implements the full source contract the kernels consume —
    ``next_access``/``next_chunk``/``commit``/``restart`` plus the
    ``instructions_per_access`` and ``spec.base_cpi``/``spec.mlp`` core
    parameters — against a read-only memory map, so the generic, fused,
    capture and replay kernels all run unchanged with zero re-parsing.
    The stream cycles when a run consumes more than the buffer holds
    (deterministically, and at the same chunk boundaries on every path,
    which keeps the kernels bit-identical to each other).
    """

    CHUNK = 4096  # must equal TraceSource.CHUNK (asserted in tests)

    __slots__ = (
        "spec",
        "geometry",
        "core_id",
        "master_seed",
        "address_offset",
        "instructions_per_access",
        "chunks_generated",
        "_buffer",
        "_n_chunks",
        "_cursor",
        "_addrs",
        "_pcs",
        "_writes",
        "_pos",
    )

    def __init__(
        self,
        spec: TargetSpec,
        geometry,
        core_id: int,
        master_seed: int = 0,
        directory: str | Path | None = None,
    ) -> None:
        where = active_dir(directory)
        if where is None:
            raise ValueError(
                f"cannot resolve target {spec.name!r}: no targets directory "
                f"active (set {ENV_TARGETS_DIR})"
            )
        self.spec = spec
        self.geometry = geometry
        self.core_id = core_id
        self.master_seed = master_seed
        self.address_offset = (core_id + 1) << 36
        self.instructions_per_access = spec.instructions_per_access
        self._buffer = _map_buffer(buffer_path(where, spec.key))
        self._n_chunks = len(self._buffer) // self.CHUNK
        if self._n_chunks == 0:
            raise ValueError(
                f"ingested trace for {spec.name!r} is shorter than one chunk"
            )
        self._cursor = 0
        self._addrs = np.empty(0, dtype=np.int64)
        self._pcs = np.empty(0, dtype=np.int64)
        self._writes = np.empty(0, dtype=bool)
        self._pos = 0
        self.chunks_generated = 0

    def _refill(self) -> None:
        start = (self._cursor % self._n_chunks) * self.CHUNK
        block = self._buffer[start : start + self.CHUNK]
        # The per-core offset is the only transformation; one vectorised
        # add per 4096 accesses, the map itself stays untouched.
        self._addrs = block["addr"] + self.address_offset
        self._pcs = np.asarray(block["pc"])
        self._writes = np.asarray(block["write"])
        self._pos = 0
        self._cursor += 1
        self.chunks_generated += 1

    def next_access(self) -> tuple[int, int, bool]:
        if self._pos >= len(self._addrs):
            self._refill()
        pos = self._pos
        self._pos = pos + 1
        return int(self._addrs[pos]), int(self._pcs[pos]), bool(self._writes[pos])

    def next_chunk(self) -> tuple:
        if self._pos >= len(self._addrs):
            self._refill()
        return self._addrs, self._pcs, self._writes, self._pos

    def commit(self, pos: int) -> None:
        self._pos = pos

    def restart(self) -> None:
        """Back to the trace's beginning (finished apps re-execute)."""
        self._cursor = 0
        self._addrs = np.empty(0, dtype=np.int64)
        self._pos = 0


def make_target_source(
    spec: TargetSpec | str,
    geometry,
    core_id: int,
    master_seed: int = 0,
    directory: str | Path | None = None,
) -> IngestedTraceSource:
    """Construct the source for one target (name or resolved spec)."""
    if isinstance(spec, str):
        spec = require_target(spec, directory)
    return IngestedTraceSource(spec, geometry, core_id, master_seed, directory)
