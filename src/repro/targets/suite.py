"""Multi-programmed workloads over ingested targets (``--benchmark-set``).

The synthetic suites are sampled under Table 6's class constraints;
ingested targets carry no Footprint-number classes, so the real suite
composes by *rotation*: workload *i* assigns the registered targets
(sorted, so composition is independent of ingestion order) starting at
offset *i*, then applies a seed-derived core permutation — every target
appears on every core position across the suite, and different master
seeds exercise different placements, mirroring how the synthetic suites
re-sample per seed.  With fewer targets than cores a mix repeats targets
across cores; the per-core address offset keeps their streams disjoint.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.targets.registry import active_dir, load_registry
from repro.trace.workloads import Workload
from repro.util.rng import derive_seed


def real_suite(
    cores: int,
    num_workloads: int,
    master_seed: int = 0,
    directory: str | Path | None = None,
) -> list[Workload]:
    """The ingested-target suite for *cores* (at most one per rotation)."""
    names = sorted(load_registry(directory))
    if not names:
        where = active_dir(directory)
        raise ValueError(
            "benchmark set 'real' needs ingested targets, but "
            + (f"{where} has none" if where else "no targets directory is active")
            + "; run: repro-experiments targets ingest <trace-file>"
        )
    count = max(1, min(num_workloads, len(names)))
    rng = np.random.default_rng(derive_seed(master_seed, f"targets/{cores}core"))
    suite = []
    for i in range(count):
        mix = [names[(i + j) % len(names)] for j in range(cores)]
        order = rng.permutation(cores)
        suite.append(
            Workload(
                f"{cores}core-real-{i:03d}", tuple(mix[k] for k in order)
            )
        )
    return suite
