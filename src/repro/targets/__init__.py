"""Real-workload trace frontend: ingest external traces as first-class
benchmarks.

The subsystem has four layers (see the README's targets section):

* :mod:`repro.targets.formats` — streaming decoders/encoders for
  ChampSim binary, DynamoRIO drcachesim text and valgrind lackey traces;
* :mod:`repro.targets.target` — ``Target``/``TraceSet`` acquisition
  (local file, directory, tarball) with checksum verification;
* :mod:`repro.targets.ingest` — one-time content-addressed
  materialisation into the shared-trace store under a down-sampling
  budget (``REPRO_TRACE_BUDGET`` x ``REPRO_SCALE``);
* :mod:`repro.targets.registry` — the ``targets.json`` registry, the
  ``tgt:`` name namespace and the memmapped
  :class:`~repro.targets.registry.IngestedTraceSource` every kernel
  consumes unchanged.
"""

from repro.targets.formats import (
    FORMATS,
    FormatError,
    SyntheticInstr,
    detect_format,
    iter_chunks,
)
from repro.targets.ingest import (
    DEFAULT_BUDGET,
    ingest_file,
    ingest_key,
    ingest_target,
    trace_budget,
)
from repro.targets.registry import (
    ENV_TARGETS_DIR,
    TARGET_PREFIX,
    IngestedTraceSource,
    TargetSpec,
    activate,
    is_target,
    load_registry,
    lookup_target,
    make_target_source,
    require_target,
)
from repro.targets.suite import real_suite
from repro.targets.target import (
    AcquisitionError,
    LocalDirectory,
    LocalFile,
    Tarball,
    Target,
    TraceFile,
    TraceSet,
)

__all__ = [
    "FORMATS",
    "FormatError",
    "SyntheticInstr",
    "detect_format",
    "iter_chunks",
    "DEFAULT_BUDGET",
    "ingest_file",
    "ingest_key",
    "ingest_target",
    "trace_budget",
    "ENV_TARGETS_DIR",
    "TARGET_PREFIX",
    "IngestedTraceSource",
    "TargetSpec",
    "activate",
    "is_target",
    "load_registry",
    "lookup_target",
    "make_target_source",
    "require_target",
    "real_suite",
    "AcquisitionError",
    "LocalDirectory",
    "LocalFile",
    "Tarball",
    "Target",
    "TraceFile",
    "TraceSet",
]
