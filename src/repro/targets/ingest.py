"""Ingestion: materialise an external trace once, content-addressed.

The pipeline parses a trace file through its streaming decoder
(:mod:`repro.targets.formats`) and writes the decoded accesses as one
flat ``TRACE_DTYPE`` buffer — ``target-<key>.npy`` — under a store's
``traces/`` directory, next to the synthetic shared-trace buffers.  The
buffer is *raw* (no per-core address offset): the offset depends on core
placement and is applied at serve time by
:class:`~repro.targets.registry.IngestedTraceSource`, so one ingest
serves every workload mix that includes the target.

**Content address.**  ``key = sha256({version, source sha256, block
size, budget, chunk})`` — everything that changes the produced bytes and
nothing that doesn't.  Re-ingesting the same file under the same budget
finds the existing buffer and writes nothing; the committed golden tests
assert byte-identity across re-ingestions.

**Down-sampling.**  Decoding stops after *budget* accesses (the leading
prefix — the standard "first N" truncation, deterministic and
single-pass over compressed streams).  The budget resolves as
``REPRO_TRACE_BUDGET`` (default 1,048,576) scaled by ``REPRO_SCALE``,
floored at one chunk; an explicit ``--budget`` bypasses scaling.  Traces
shorter than a whole number of chunks are tiled cyclically up to the
chunk boundary, so the buffer always serves full chunks.

Each buffer gets the standard ``.sha256`` integrity sidecar (same
quarantine machinery as every other artifact) plus a ``.meta.json``
provenance sidecar (format, origin, source digest, budget) that
``targets info`` and ``traces ls`` render.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path

import numpy as np

from repro.targets.formats import FormatError, detect_format, iter_chunks, open_stream
from repro.targets.registry import (
    TARGET_PREFIX,
    TargetSpec,
    buffer_path,
    load_registry,
    save_registry,
)

#: Default down-sampling cap, in accesses (before ``REPRO_SCALE``).
DEFAULT_BUDGET = 1_048_576
ENV_BUDGET = "REPRO_TRACE_BUDGET"
#: Bump when the ingest encoding changes; part of every content address.
INGEST_VERSION = 1

#: Fallback instructions-per-access when a format carries no instruction
#: records; clamp bounds keep the core timing model sane either way.
DEFAULT_IPA = 3.0
IPA_BOUNDS = (1.0, 1000.0)

_CHUNK = 4096  # == TraceSource.CHUNK (asserted in tests)


def trace_budget(budget: int | None = None) -> int:
    """The effective down-sampling cap for this ingestion.

    Explicit *budget* wins verbatim; otherwise ``REPRO_TRACE_BUDGET``
    (default 1,048,576 accesses) scaled by ``REPRO_SCALE``.  Always at
    least one chunk.
    """
    if budget is None:
        try:
            budget = int(os.environ.get(ENV_BUDGET, str(DEFAULT_BUDGET)))
        except ValueError:
            budget = DEFAULT_BUDGET
        try:
            scale = float(os.environ.get("REPRO_SCALE", "1.0"))
        except ValueError:
            scale = 1.0
        budget = round(budget * max(0.1, scale))
    return max(_CHUNK, int(budget))


def ingest_key(source_sha256: str, block_size: int, budget: int) -> str:
    """Content address of one ingested buffer."""
    blob = json.dumps(
        {
            "v": INGEST_VERSION,
            "source": source_sha256,
            "block_size": block_size,
            "budget": budget,
            "chunk": _CHUNK,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


def default_name(path: str | Path) -> str:
    """``tgt:``-prefixed registry name derived from the file name."""
    stem = Path(path).name.lower()
    for suffix in (".gz", ".xz", ".trace", ".txt", ".out", ".log", ".dr"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    slug = re.sub(r"[^a-z0-9_.-]+", "-", stem).strip("-.") or "trace"
    return TARGET_PREFIX + slug


def _decode(path: Path, fmt: str, block_size: int, budget: int):
    """Decode the leading *budget* accesses; single pass, bounded memory."""
    addr_parts: list[np.ndarray] = []
    pc_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    total = 0
    instructions = 0
    with open_stream(path) as stream:
        for batch in iter_chunks(stream, fmt, block_size):
            take = min(len(batch.addrs), budget - total)
            if take:
                addr_parts.append(batch.addrs[:take])
                pc_parts.append(batch.pcs[:take])
                write_parts.append(batch.writes[:take])
                total += take
            # The instruction count covers the consumed prefix (the final
            # partially-taken batch rounds up — a bounded approximation).
            instructions += batch.instructions
            if total >= budget:
                break
    if total == 0:
        raise FormatError(f"no memory accesses decoded from {path.name}")
    return (
        np.concatenate(addr_parts),
        np.concatenate(pc_parts),
        np.concatenate(write_parts),
        instructions,
    )


def _tile(arr: np.ndarray, length: int) -> np.ndarray:
    """Cyclically extend *arr* to exactly *length* elements."""
    if len(arr) == length:
        return arr
    reps = -(-length // len(arr))
    return np.tile(arr, reps)[:length]


def ingest_file(
    path: str | Path,
    fmt: str | None = None,
    *,
    directory: str | Path,
    name: str | None = None,
    budget: int | None = None,
    block_size: int = 64,
    mlp: float = 2.0,
    base_cpi: float = 1.0,
) -> tuple[TargetSpec, bool]:
    """Ingest one trace file into *directory*; returns ``(spec, reused)``.

    Idempotent: an existing (checksum-clean) buffer for the same content
    address is reused without re-parsing, and the registry entry is
    refreshed either way.
    """
    from repro.runner.integrity import (
        file_digest,
        quarantine,
        read_meta,
        verify_artifact,
        write_checksum,
        write_meta,
    )

    path = Path(path)
    directory = Path(directory)
    fmt = fmt or detect_format(path)
    source_sha = file_digest(path)
    budget = trace_budget(budget)
    key = ingest_key(source_sha, block_size, budget)
    out_path = buffer_path(directory, key)
    name = name or default_name(path)
    if not name.startswith(TARGET_PREFIX):
        name = TARGET_PREFIX + name

    if out_path.is_file() and verify_artifact(out_path) is False:
        quarantine(out_path, reason="target trace checksum mismatch")
    meta = read_meta(out_path) if out_path.is_file() else None
    reused = meta is not None
    if not reused:
        addrs, pcs, writes, instructions = _decode(path, fmt, block_size, budget)
        n_accesses = len(addrs)
        n_chunks = -(-n_accesses // _CHUNK)
        length = n_chunks * _CHUNK
        from repro.trace.shared import TRACE_DTYPE

        out = np.empty(length, dtype=TRACE_DTYPE)
        out["addr"] = _tile(addrs, length)
        out["pc"] = _tile(pcs, length)
        out["write"] = _tile(writes, length)
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, out)
            os.replace(tmp, out_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        write_checksum(out_path)
        ipa = instructions / n_accesses if instructions else DEFAULT_IPA
        ipa = min(max(ipa, IPA_BOUNDS[0]), IPA_BOUNDS[1])
        meta = {
            "kind": "target",
            "format": fmt,
            "origin": path.name,
            "source_sha256": source_sha,
            "budget": budget,
            "accesses": n_accesses,
            "instructions": instructions,
            "instructions_per_access": ipa,
            "block_size": block_size,
            "n_chunks": n_chunks,
            "version": INGEST_VERSION,
        }
        write_meta(out_path, meta)

    spec = TargetSpec(
        name=name,
        key=key,
        fmt=fmt,
        origin=path.name,
        source_sha256=source_sha,
        budget=budget,
        n_accesses=int(meta["accesses"]),
        n_chunks=int(meta["n_chunks"]),
        instructions_per_access=float(meta["instructions_per_access"]),
        block_size=block_size,
        mlp=mlp,
        base_cpi=base_cpi,
    )
    targets = dict(load_registry(directory))
    targets[name] = spec
    save_registry(directory, targets)
    return spec, reused


def ingest_target(target, staging_dir: str | Path, *, directory: str | Path):
    """Fetch + ingest every trace file of a :class:`~repro.targets.target.Target`.

    Names multi-file targets ``<target.name>-<file-slug>``; a single-file
    target keeps the plain target name.
    """
    trace_set = target.trace_set(staging_dir)
    specs = []
    for tf in trace_set:
        name = target.name
        if len(trace_set) > 1:
            name = f"{target.name}-{default_name(tf.path)[len(TARGET_PREFIX):]}"
        spec, _ = ingest_file(
            tf.path,
            tf.fmt,
            directory=directory,
            name=name,
            block_size=target.block_size,
            mlp=target.mlp,
            base_cpi=target.base_cpi,
        )
        specs.append(spec)
    return specs
