"""Streaming decoders for external memory-trace formats.

Three formats cover the common simulator ecosystems:

* **ChampSim** (``.trace``, usually ``.gz``/``.xz`` compressed) — the
  64-byte binary ``input_instr`` records ChampSim's tracer emits: one
  record per instruction with up to four source (load) and two
  destination (store) memory operands, a zero operand meaning "unused";
* **DynamoRIO drcachesim** text — the ``drcachesim``/``view`` record
  listing (``T<tid> read 8 byte(s) @ 0x...``); ``ifetch``/``instr``
  records advance the instruction count and the current PC, ``read``/
  ``write`` records are the memory accesses;
* **valgrind lackey** — ``--tool=lackey --trace-mem=yes`` output
  (``I``/``L``/``S``/``M`` lines with ``addr,size`` operands); ``M``
  (modify) is decoded as a single write access, the shape it reaches a
  write-allocate cache in.

Every decoder is a *generator of chunk batches*: it reads a bounded slice
of the input (a fixed number of binary records or text lines), decodes it
into NumPy arrays — block addresses (byte address over the block size),
issuing PCs and write flags, plus the number of instructions the slice
covered — and yields, so arbitrarily large traces stream through in
bounded memory.  Block addresses are masked to :data:`ADDR_BITS` bits and
PCs to :data:`PC_BITS`, which (a) keeps every value inside the shared
trace store's ``int64`` schema and (b) leaves the per-core address-offset
bits (:class:`~repro.trace.benchmarks.TraceSource` separates co-running
cores at bit 36) alias-free — a trace would need to span 4 TB of virtual
address space before masking could fold two distinct blocks together.

The ``encode_*`` helpers write the same formats from a neutral
:class:`SyntheticInstr` description.  They exist for the committed test
fixtures and the property suites (encode → parse → chunks must
round-trip); production ingestion only ever reads.
"""

from __future__ import annotations

import gzip
import io
import lzma
import struct
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

import numpy as np

#: The supported external formats, in documentation order.
FORMATS = ("champsim", "drcachesim", "lackey")

#: Block addresses keep this many low bits — one 4 TB window per core,
#: disjoint from the ``(core_id + 1) << 36`` co-runner offsets.
ADDR_BITS = 36
#: PCs keep this many low bits (signature predictors fold them anyway;
#: the mask only guards the store's signed 64-bit schema).
PC_BITS = 48

_ADDR_MASK = (1 << ADDR_BITS) - 1
_PC_MASK = (1 << PC_BITS) - 1

#: ChampSim's ``input_instr``: ip, two branch flags, 2+4 register ids,
#: 2 destination + 4 source memory operands — 64 bytes, no padding.
CHAMPSIM_DTYPE = np.dtype(
    [
        ("ip", "<u8"),
        ("is_branch", "u1"),
        ("branch_taken", "u1"),
        ("dst_reg", "u1", (2,)),
        ("src_reg", "u1", (4,)),
        ("dst_mem", "<u8", (2,)),
        ("src_mem", "<u8", (4,)),
    ]
)

#: Binary records / text lines decoded per yielded batch.
BATCH_RECORDS = 8192
BATCH_LINES = 65536


class ChunkBatch(NamedTuple):
    """One decoded slice of a trace stream."""

    addrs: np.ndarray  # int64 block addresses (ADDR_BITS-masked)
    pcs: np.ndarray  # int64 issuing PCs (PC_BITS-masked)
    writes: np.ndarray  # bool, True for stores
    instructions: int  # instructions the slice covered


class FormatError(ValueError):
    """The input does not decode as the claimed trace format."""


def _block_shift(block_size: int) -> int:
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError(f"block size must be a power of two, got {block_size}")
    return block_size.bit_length() - 1


def detect_format(path: str | Path) -> str:
    """Guess the trace format from a file name; raise when ambiguous."""
    name = Path(path).name.lower()
    for suffix in (".gz", ".xz"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    if "lackey" in name:
        return "lackey"
    if "drcachesim" in name or name.endswith(".dr"):
        return "drcachesim"
    if "champsim" in name or name.endswith(".trace"):
        return "champsim"
    raise FormatError(
        f"cannot infer a trace format from {Path(path).name!r}; "
        f"pass --format {{{','.join(FORMATS)}}}"
    )


def open_stream(path: str | Path) -> io.BufferedIOBase:
    """Open a (possibly ``.gz``/``.xz`` compressed) trace file for reading."""
    name = str(path).lower()
    if name.endswith(".gz"):
        return gzip.open(path, "rb")
    if name.endswith(".xz"):
        return lzma.open(path, "rb")
    return open(path, "rb")


def iter_chunks(
    stream: io.BufferedIOBase, fmt: str, block_size: int = 64
) -> Iterator[ChunkBatch]:
    """Decode *stream* as *fmt*, yielding bounded :class:`ChunkBatch` slices."""
    if fmt == "champsim":
        return _iter_champsim(stream, block_size)
    if fmt == "drcachesim":
        return _iter_drcachesim(stream, block_size)
    if fmt == "lackey":
        return _iter_lackey(stream, block_size)
    raise FormatError(f"unknown trace format {fmt!r}; options: {FORMATS}")


# -- ChampSim (binary) -------------------------------------------------------------


def _iter_champsim(stream, block_size: int) -> Iterator[ChunkBatch]:
    shift = _block_shift(block_size)
    record = CHAMPSIM_DTYPE.itemsize
    while True:
        raw = stream.read(BATCH_RECORDS * record)
        if not raw:
            return
        if len(raw) % record:
            raise FormatError(
                f"truncated ChampSim stream: {len(raw) % record} trailing bytes "
                f"(records are {record} bytes)"
            )
        recs = np.frombuffer(raw, dtype=CHAMPSIM_DTYPE)
        # Operand matrix in per-instruction issue order: the four source
        # (load) slots, then the two destination (store) slots.  Row-major
        # nonzero scan preserves that order across the whole batch.
        ops = np.concatenate([recs["src_mem"], recs["dst_mem"]], axis=1)
        rows, cols = np.nonzero(ops)
        addrs = ((ops[rows, cols] >> shift) & _ADDR_MASK).astype(np.int64)
        pcs = (recs["ip"][rows] & _PC_MASK).astype(np.int64)
        writes = cols >= 4
        yield ChunkBatch(addrs, pcs, writes, instructions=len(recs))


# -- text formats ------------------------------------------------------------------


def _batched_lines(stream) -> Iterator[list[bytes]]:
    text = io.BufferedReader(stream) if not isinstance(stream, io.BufferedReader) else stream
    while True:
        lines = text.readlines(BATCH_LINES * 32)
        if not lines:
            return
        yield lines


def _batch_arrays(
    addrs: list[int], pcs: list[int], writes: list[bool], instructions: int
) -> ChunkBatch:
    return ChunkBatch(
        np.array(addrs, dtype=np.int64),
        np.array(pcs, dtype=np.int64),
        np.array(writes, dtype=bool),
        instructions,
    )


def _iter_drcachesim(stream, block_size: int) -> Iterator[ChunkBatch]:
    """The ``drcachesim``/``view`` record listing.

    Decoded per line: a type keyword (``ifetch``/``instr`` advance the
    instruction count and current PC; ``read``/``write`` emit an access at
    that PC) and the ``@ 0x...`` address.  Unrecognised lines — headers,
    markers, thread-exit records — are skipped.
    """
    shift = _block_shift(block_size)
    pc = 0
    for lines in _batched_lines(stream):
        addrs: list[int] = []
        pcs: list[int] = []
        writes: list[bool] = []
        instructions = 0
        for raw in lines:
            at = raw.find(b"@")
            if at < 0:
                continue
            head = raw[:at]
            write = b" write " in head
            if not write and b" read " not in head:
                if b"ifetch" in head or b" instr " in head:
                    try:
                        pc = int(raw[at + 1 :].split(None, 1)[0], 16)
                    except (ValueError, IndexError) as exc:
                        raise FormatError(f"bad drcachesim line: {raw!r}") from exc
                    instructions += 1
                continue
            try:
                addr = int(raw[at + 1 :].split(None, 1)[0], 16)
            except (ValueError, IndexError) as exc:
                raise FormatError(f"bad drcachesim line: {raw!r}") from exc
            addrs.append((addr >> shift) & _ADDR_MASK)
            pcs.append(pc & _PC_MASK)
            writes.append(write)
        yield _batch_arrays(addrs, pcs, writes, instructions)


def _iter_lackey(stream, block_size: int) -> Iterator[ChunkBatch]:
    """``valgrind --tool=lackey --trace-mem=yes`` output.

    ``I`` lines advance the instruction count and current PC; ``L``
    (load), ``S`` (store) and ``M`` (modify, decoded as a write) lines
    emit accesses.  Anything else — the ``==pid==`` banner, blank lines —
    is skipped.
    """
    shift = _block_shift(block_size)
    pc = 0
    for lines in _batched_lines(stream):
        addrs: list[int] = []
        pcs: list[int] = []
        writes: list[bool] = []
        instructions = 0
        for raw in lines:
            s = raw.strip()
            if not s:
                continue
            kind = s[:1]
            if kind not in b"ILSM":
                continue
            body = s[1:].strip()
            try:
                addr = int(body.split(b",", 1)[0], 16)
            except (ValueError, IndexError) as exc:
                raise FormatError(f"bad lackey line: {raw!r}") from exc
            if kind == b"I":
                pc = addr
                instructions += 1
                continue
            addrs.append((addr >> shift) & _ADDR_MASK)
            pcs.append(pc & _PC_MASK)
            writes.append(kind != b"L")
        yield _batch_arrays(addrs, pcs, writes, instructions)


# -- encoders (fixtures + property tests) ------------------------------------------


@dataclass(frozen=True)
class SyntheticInstr:
    """One instruction for the fixture/property encoders.

    *reads*/*writes* are byte addresses; ChampSim's record shape caps them
    at four loads and two stores per instruction.
    """

    pc: int
    reads: tuple[int, ...] = field(default_factory=tuple)
    writes: tuple[int, ...] = field(default_factory=tuple)


def expected_accesses(
    instrs: list[SyntheticInstr], block_size: int = 64
) -> ChunkBatch:
    """The canonical decode of *instrs*: what every parser must produce."""
    shift = _block_shift(block_size)
    addrs: list[int] = []
    pcs: list[int] = []
    writes: list[bool] = []
    for instr in instrs:
        for addr in instr.reads:
            addrs.append((addr >> shift) & _ADDR_MASK)
            pcs.append(instr.pc & _PC_MASK)
            writes.append(False)
        for addr in instr.writes:
            addrs.append((addr >> shift) & _ADDR_MASK)
            pcs.append(instr.pc & _PC_MASK)
            writes.append(True)
    return _batch_arrays(addrs, pcs, writes, len(instrs))


def encode_champsim(instrs: list[SyntheticInstr]) -> bytes:
    """Binary ``input_instr`` records (≤4 reads / ≤2 writes per instruction)."""
    out = bytearray()
    for instr in instrs:
        if len(instr.reads) > 4 or len(instr.writes) > 2:
            raise ValueError("ChampSim records hold at most 4 loads / 2 stores")
        src = list(instr.reads) + [0] * (4 - len(instr.reads))
        dst = list(instr.writes) + [0] * (2 - len(instr.writes))
        out += struct.pack(
            "<QBB2B4s2Q4Q", instr.pc, 0, 0, 0, 0, b"\0\0\0\0", *dst, *src
        )
    return bytes(out)


def encode_drcachesim(instrs: list[SyntheticInstr], tid: int = 1) -> str:
    """The ``view`` listing shape (record ordinal, thread, type, address)."""
    lines = []
    ordinal = 1
    for instr in instrs:
        lines.append(
            f"{ordinal:>8}: T{tid} ifetch      4 byte(s) @ 0x{instr.pc:016x} non-branch"
        )
        ordinal += 1
        for addr in instr.reads:
            lines.append(f"{ordinal:>8}: T{tid} read        8 byte(s) @ 0x{addr:016x}")
            ordinal += 1
        for addr in instr.writes:
            lines.append(f"{ordinal:>8}: T{tid} write       8 byte(s) @ 0x{addr:016x}")
            ordinal += 1
    return "\n".join(lines) + "\n"


def encode_lackey(instrs: list[SyntheticInstr]) -> str:
    """``--trace-mem=yes`` line shape (I/L/S records, ``addr,size``)."""
    lines = []
    for instr in instrs:
        lines.append(f"I  {instr.pc:08X},4")
        for addr in instr.reads:
            lines.append(f" L {addr:08X},8")
        for addr in instr.writes:
            lines.append(f" S {addr:08X},8")
    return "\n".join(lines) + "\n"
