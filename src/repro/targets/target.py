"""Targets: named trace bundles with pluggable acquisition sources.

Modeled on instrumentation-infra's SPEC target classes: a
:class:`Target` names a workload bundle and delegates *where the trace
files come from* to an :class:`AcquisitionSource` —

* :class:`LocalFile` — a single trace file already on disk, optionally
  pinned to an expected SHA-256 (a mismatch aborts the fetch);
* :class:`LocalDirectory` — every file matching a glob under a
  directory (a mounted benchmark share, an extracted dump);
* :class:`Tarball` — members matching a pattern inside a ``.tar``
  archive (``.tar.gz``/``.tar.xz`` included), extracted into a private
  staging directory.

``fetch`` returns concrete :class:`TraceFile` paths ready for the
ingestion pipeline (:mod:`repro.targets.ingest`); verification reuses
the ``.sha256`` sidecar convention of :mod:`repro.runner.integrity`, so
a sidecar sitting next to a local trace file is honoured automatically.
"""

from __future__ import annotations

import tarfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.runner.integrity import file_digest, verify_artifact
from repro.targets.formats import detect_format


class AcquisitionError(RuntimeError):
    """A source could not produce (verified) trace files."""


@dataclass(frozen=True)
class TraceFile:
    """One concrete trace file a source produced."""

    path: Path
    fmt: str
    sha256: str

    @property
    def name(self) -> str:
        return self.path.name


def _verified(path: Path, expected: str | None, fmt: str | None) -> TraceFile:
    """Digest + verify one file and resolve its format."""
    path = Path(path)
    if not path.is_file():
        raise AcquisitionError(f"trace file not found: {path}")
    digest = file_digest(path)
    if expected and digest != expected:
        raise AcquisitionError(
            f"checksum mismatch for {path.name}: expected {expected[:12]}..., "
            f"got {digest[:12]}..."
        )
    # An adjacent .sha256 sidecar (integrity-module convention) is a
    # second, implicit pin; only an outright mismatch aborts.
    if expected is None and verify_artifact(path) is False:
        raise AcquisitionError(f"sidecar checksum mismatch for {path.name}")
    return TraceFile(path=path, fmt=fmt or detect_format(path), sha256=digest)


class AcquisitionSource:
    """Base: produce verified trace files into/under *staging_dir*."""

    def fetch(self, staging_dir: Path) -> list[TraceFile]:
        raise NotImplementedError


@dataclass(frozen=True)
class LocalFile(AcquisitionSource):
    """A single on-disk trace file, optionally checksum-pinned."""

    path: str | Path
    fmt: str | None = None
    sha256: str | None = None

    def fetch(self, staging_dir: Path) -> list[TraceFile]:
        return [_verified(Path(self.path), self.sha256, self.fmt)]


@dataclass(frozen=True)
class LocalDirectory(AcquisitionSource):
    """Every file matching *pattern* under *root* (sorted, stable order)."""

    root: str | Path
    pattern: str = "*"
    fmt: str | None = None
    #: Optional name -> expected sha256 pins.
    checksums: dict[str, str] = field(default_factory=dict)

    def fetch(self, staging_dir: Path) -> list[TraceFile]:
        root = Path(self.root)
        if not root.is_dir():
            raise AcquisitionError(f"trace directory not found: {root}")
        paths = sorted(p for p in root.glob(self.pattern) if p.is_file())
        if not paths:
            raise AcquisitionError(
                f"no files match {self.pattern!r} under {root}"
            )
        return [
            _verified(p, self.checksums.get(p.name), self.fmt) for p in paths
        ]


@dataclass(frozen=True)
class Tarball(AcquisitionSource):
    """Members matching *pattern* inside a (compressed) tar archive."""

    archive: str | Path
    pattern: str = "*"
    fmt: str | None = None
    sha256: str | None = None  # pin of the archive itself
    checksums: dict[str, str] = field(default_factory=dict)

    def fetch(self, staging_dir: Path) -> list[TraceFile]:
        archive = Path(self.archive)
        if not archive.is_file():
            raise AcquisitionError(f"archive not found: {archive}")
        if self.sha256:
            digest = file_digest(archive)
            if digest != self.sha256:
                raise AcquisitionError(
                    f"archive checksum mismatch for {archive.name}: "
                    f"expected {self.sha256[:12]}..., got {digest[:12]}..."
                )
        staging_dir.mkdir(parents=True, exist_ok=True)
        extracted: list[Path] = []
        try:
            with tarfile.open(archive) as tar:
                for member in tar.getmembers():
                    name = Path(member.name).name
                    if not member.isfile() or not Path(name).match(self.pattern):
                        continue
                    # Flatten: extract by basename into the private staging
                    # area, never honouring archive-supplied paths.
                    src = tar.extractfile(member)
                    if src is None:
                        continue
                    dest = staging_dir / name
                    with open(dest, "wb") as out:
                        while True:
                            block = src.read(1 << 20)
                            if not block:
                                break
                            out.write(block)
                    extracted.append(dest)
        except tarfile.TarError as exc:
            raise AcquisitionError(f"cannot read {archive.name}: {exc}") from exc
        if not extracted:
            raise AcquisitionError(
                f"no members match {self.pattern!r} in {archive.name}"
            )
        return [
            _verified(p, self.checksums.get(p.name), self.fmt)
            for p in sorted(extracted)
        ]


@dataclass(frozen=True)
class Target:
    """A named trace bundle: where it comes from + how to decode it."""

    name: str
    source: AcquisitionSource
    block_size: int = 64
    mlp: float = 2.0
    base_cpi: float = 1.0

    def trace_set(self, staging_dir: str | Path) -> "TraceSet":
        return TraceSet(
            target=self, files=self.source.fetch(Path(staging_dir))
        )


@dataclass(frozen=True)
class TraceSet:
    """The fetched, verified trace files of one target."""

    target: Target
    files: list[TraceFile]

    def __iter__(self):
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)
