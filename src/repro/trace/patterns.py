"""Address-stream pattern primitives.

Each pattern is a stateful generator of *block-address* chunks (NumPy
vectorised, per the HPC guides: bulk generation is the vectorisable part of
a cache simulator).  Patterns express the canonical access behaviours the
replacement-policy literature distinguishes:

* :class:`CyclicPattern` — a sequential walk over a working set; reuse
  distance equals the working-set size, the classic LRU-thrashing shape.
* :class:`ShuffledCyclicPattern` — the same reuse distance but in a
  data-dependent (pointer-chase-like) order, defeating stride prefetchers.
* :class:`RandomPattern` — uniform references within a working set;
  smooth, distance-free locality.
* :class:`MixedPattern` — TA-DRRIP's ``{a1..ah}^k {s1..sd}`` shape: a small
  recency-friendly hot set interleaved with scan bursts; the paper
  attributes this to its Low-priority applications.
* :class:`StridedPattern` — a strided sweep, concentrating pressure on a
  subset of sets.

All patterns are deterministic functions of their constructor arguments
plus the supplied :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np


class AccessPattern:
    """Interface: produce the next *n* block addresses (within [0, span))."""

    #: Number of distinct blocks the pattern can touch.
    span: int

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Restart from the initial position (used on re-execution)."""


class CyclicPattern(AccessPattern):
    """Sequential cyclic walk: 0, s, 2s, ... (mod span)."""

    def __init__(self, span: int, stride: int = 1) -> None:
        if span < 1 or stride < 1:
            raise ValueError("span and stride must be positive")
        self.span = span
        self.stride = stride
        self._pos = 0

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = (self._pos + np.arange(n, dtype=np.int64) * self.stride) % self.span
        self._pos = int((self._pos + n * self.stride) % self.span)
        return idx

    def reset(self) -> None:
        self._pos = 0


class ShuffledCyclicPattern(AccessPattern):
    """Cyclic walk through a fixed random permutation (pointer chase)."""

    def __init__(self, span: int, seed: int = 1) -> None:
        if span < 1:
            raise ValueError("span must be positive")
        self.span = span
        perm_rng = np.random.default_rng(seed)
        self._perm = perm_rng.permutation(span).astype(np.int64)
        self._pos = 0

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = (self._pos + np.arange(n, dtype=np.int64)) % self.span
        self._pos = int((self._pos + n) % self.span)
        return self._perm[idx]

    def reset(self) -> None:
        self._pos = 0


class RandomPattern(AccessPattern):
    """Uniform random references within the working set."""

    def __init__(self, span: int) -> None:
        if span < 1:
            raise ValueError("span must be positive")
        self.span = span

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.span, size=n, dtype=np.int64)


class MixedPattern(AccessPattern):
    """TA-DRRIP's mixed shape: k hot references, then a d-long scan burst.

    ``{a1..ah}^k {s1..sd}``: ``k`` references drawn from a hot set of ``h``
    blocks, then ``d`` consecutive scan addresses from a large scan region,
    repeating.  With ``k`` slightly greater than ``d`` (as the paper
    describes for Low-priority applications) the hot set stays live while
    the scan provides a steady stream of single-use lines.
    """

    def __init__(self, hot_blocks: int, k: int, scan_blocks: int, d: int) -> None:
        if min(hot_blocks, k, scan_blocks, d) < 1:
            raise ValueError("all MixedPattern parameters must be positive")
        self.hot_blocks = hot_blocks
        self.k = k
        self.scan_blocks = scan_blocks
        self.d = d
        self.span = hot_blocks + scan_blocks
        self._scan_pos = 0
        self._phase = 0  # position within the k+d period

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        period = self.k + self.d
        phase = (self._phase + np.arange(n, dtype=np.int64)) % period
        is_hot = phase < self.k
        out = np.empty(n, dtype=np.int64)
        n_hot = int(is_hot.sum())
        out[is_hot] = rng.integers(0, self.hot_blocks, size=n_hot, dtype=np.int64)
        n_scan = n - n_hot
        scan_idx = (self._scan_pos + np.arange(n_scan, dtype=np.int64)) % self.scan_blocks
        out[~is_hot] = self.hot_blocks + scan_idx
        self._scan_pos = int((self._scan_pos + n_scan) % self.scan_blocks)
        self._phase = int((self._phase + n) % period)
        return out

    def reset(self) -> None:
        self._scan_pos = 0
        self._phase = 0


class StridedPattern(AccessPattern):
    """Strided sweep over a region: touches every ``stride``-th block.

    Exercises non-uniform set pressure (the reason Footprint-number must be
    computed per set and averaged, and the XOR bank mapping exists).
    """

    def __init__(self, span: int, stride: int) -> None:
        if span < 1 or stride < 1:
            raise ValueError("span and stride must be positive")
        self.span = span
        self.stride = stride
        self._count = span // stride or 1
        self._pos = 0

    def chunk(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = (self._pos + np.arange(n, dtype=np.int64)) % self._count
        self._pos = int((self._pos + n) % self._count)
        return idx * self.stride

    def reset(self) -> None:
        self._pos = 0


PATTERN_KINDS = ("cyclic", "shuffled", "random", "mixed", "strided")


def make_pattern(kind: str, span: int, *, seed: int = 1, **kwargs) -> AccessPattern:
    """Factory over :data:`PATTERN_KINDS` used by the benchmark specs."""
    if kind == "cyclic":
        return CyclicPattern(span, **kwargs)
    if kind == "shuffled":
        return ShuffledCyclicPattern(span, seed=seed)
    if kind == "random":
        return RandomPattern(span)
    if kind == "mixed":
        hot = max(2, span // 16)
        return MixedPattern(
            hot_blocks=kwargs.get("hot_blocks", hot),
            k=kwargs.get("k", 12),
            scan_blocks=kwargs.get("scan_blocks", max(1, span - hot)),
            d=kwargs.get("d", 8),
        )
    if kind == "strided":
        return StridedPattern(span, kwargs.get("stride", 4))
    raise ValueError(f"unknown pattern kind {kind!r}; options: {PATTERN_KINDS}")
