"""The 38 named synthetic benchmarks standing in for SPEC/PARSEC (Table 4).

The paper characterises each benchmark by two observables: its
**Footprint-number** (unique LLC-set accesses per interval, measured alone
on the 16MB/16-way cache) and its **L2-MPKI** (misses per kilo-instruction
arriving at the LLC).  Table 5 then classifies memory intensity from those
two numbers.  Since ADAPT and all baselines consume *only* the reference
stream, a synthetic generator calibrated to the same (Footprint-number,
L2-MPKI) pair exercises the same policy behaviour — this is the documented
substitution for the unavailable SPEC traces.

Each :class:`BenchmarkSpec` carries the paper's measured values
(``fpn``, ``l2_mpki`` from Table 4, Fpn(A) column), the access-pattern
shape, and core-model parameters.  Working-set sizes are expressed in
units of LLC sets, so the same spec scales to any cache geometry:
``working_set_blocks = fpn_target x llc_num_sets`` puts exactly
``fpn_target`` unique blocks in each set per full sweep.

The generator emits two interleaved streams:

* a **hot stream** (fits in L1) that soaks up the benchmark's low-MPKI
  instruction budget, and
* the **footprint stream** over the working set, whose rate is calibrated
  so the L2 miss traffic lands near the Table 4 MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.patterns import AccessPattern, make_pattern
from repro.util.rng import derive_seed

#: Memory-intensity classes of Table 5.
CLASSES = ("VL", "L", "M", "H", "VH")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one synthetic benchmark."""

    name: str
    paper_class: str  # Table 4 "Type" column
    fpn: float  # Table 4 Fpn(A): target Footprint-number
    l2_mpki: float  # Table 4 L2-MPKI target
    pattern: str  # one of repro.trace.patterns.PATTERN_KINDS
    mlp: float = 2.0  # memory-level parallelism (latency overlap factor)
    write_fraction: float = 0.3
    base_cpi: float = 1.0  # non-memory CPI of the 4-way OoO core
    #: Fraction of footprint accesses issued from *shared* library PCs
    #: (memcpy/memset-style loops common to all applications).  These PCs
    #: alias in any shared PC-signature table, which is the realistic
    #: mechanism behind SHiP's difficulty separating applications at high
    #: core counts (Section 5.1).  Streaming codes are dominated by such
    #: loops; pointer-heavy codes less so.
    library_pc_fraction: float = 0.6
    #: Fraction of footprint accesses that *echo* a recently touched block
    #: (short-distance reuse that misses the private levels but usually
    #: hits a just-inserted LLC line).  Real thrashing applications are not
    #: single-use streams — astar touches 32 blocks/set yet has only 4.4
    #: MPKI, and the paper notes cactusADM's lines are "reused immediately
    #: after insertion" (why bypassing hurts it, Section 5.2).  Echo reuse
    #: keeps PC-signature outcome counters mixed, reproducing SHiP's
    #: inability to mark thrashing applications distant (Section 5.1).
    echo_fraction: float = 0.0
    #: Echo reuse distance bounds, in own footprint accesses.  Must
    #: exceed the private L1+L2 reach (else the echo never arrives at
    #: the LLC) while staying within typical LLC residence.
    echo_distance: tuple[int, int] = (500, 1500)
    pattern_kwargs: dict = field(default_factory=dict)

    @property
    def thrashing(self) -> bool:
        """Footprint-number >= 16: the paper's Least-priority candidates."""
        return self.fpn >= 16

    def working_set_blocks(self, llc_num_sets: int) -> int:
        return max(4, round(self.fpn * llc_num_sets))


def _spec(name, klass, fpn, mpki, pattern, **kw) -> BenchmarkSpec:
    return BenchmarkSpec(name, klass, fpn, mpki, pattern, **kw)


#: Table 4, in paper order.  Pattern choices follow the paper's own
#: characterisation: Low-priority applications get the mixed
#: ``{a}^k{s}^d`` shape TA-DRRIP attributes to them; memory-intensive
#: small-footprint applications (art, bzip, mcf, ...) are random-in-WS;
#: thrashing applications are streaming sweeps; pointer-heavy codes are
#: shuffled cycles.
BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # -- Very Low intensity ------------------------------------------------
        _spec("black", "VL", 7.0, 0.67, "random", mlp=2.0, echo_fraction=0.15),
        _spec("calc", "VL", 1.33, 0.05, "random", mlp=1.5),
        _spec("craf", "VL", 2.2, 0.61, "random", mlp=1.5, echo_fraction=0.1),
        _spec("deal", "VL", 2.48, 0.5, "random", mlp=1.5, echo_fraction=0.1),
        _spec("eon", "VL", 1.2, 0.02, "cyclic", mlp=1.5),
        _spec("fmine", "VL", 6.18, 0.34, "random", mlp=2.0),
        _spec("h26", "VL", 2.35, 0.13, "random", mlp=2.0),
        _spec("nam", "VL", 2.02, 0.09, "shuffled", mlp=1.5),
        _spec("sphnx", "VL", 5.2, 0.35, "random", mlp=2.0),
        _spec("tont", "VL", 1.6, 0.75, "random", mlp=1.5, echo_fraction=0.1),
        _spec("swapt", "VL", 1.0, 0.06, "cyclic", mlp=1.5),
        # -- Low intensity --------------------------------------------------------
        _spec("gcc", "L", 3.4, 1.34, "random", mlp=2.0, echo_fraction=0.15),
        _spec("mesa", "L", 8.61, 1.2, "random", mlp=2.0, echo_fraction=0.15),
        _spec("pben", "L", 11.2, 2.34, "mixed", mlp=2.0, echo_fraction=0.1),
        _spec("vort", "L", 8.4, 1.45, "random", mlp=2.0, echo_fraction=0.15),
        _spec("vpr", "L", 13.7, 1.53, "mixed", mlp=1.5, echo_fraction=0.1),
        _spec("fsim", "L", 10.2, 1.5, "mixed", mlp=2.0, echo_fraction=0.1),
        _spec("sclust", "L", 8.7, 1.75, "random", mlp=2.0, echo_fraction=0.1),
        # -- Medium intensity --------------------------------------------------------
        _spec("art", "M", 3.39, 26.67, "random", mlp=2.5, echo_fraction=0.1),
        _spec("bzip", "M", 4.15, 25.25, "random", mlp=2.0, echo_fraction=0.1),
        _spec("gap", "M", 23.12, 1.28, "cyclic", mlp=2.0, library_pc_fraction=0.8, echo_fraction=0.2),
        _spec("gob", "M", 16.8, 1.28, "cyclic", mlp=2.0, library_pc_fraction=0.8, echo_fraction=0.2),
        _spec("hmm", "M", 7.15, 2.75, "random", mlp=2.0, echo_fraction=0.1),
        _spec("lesl", "M", 6.7, 20.92, "random", mlp=2.5, echo_fraction=0.1),
        _spec("mcf", "M", 11.9, 24.9, "mixed", mlp=1.2, echo_fraction=0.1, pattern_kwargs={"k": 14, "d": 10}),
        _spec("omn", "M", 4.8, 6.46, "random", mlp=1.5, echo_fraction=0.1),
        _spec("sopl", "M", 10.6, 6.17, "mixed", mlp=2.0, echo_fraction=0.1),
        _spec("twolf", "M", 1.7, 16.5, "random", mlp=1.2),
        _spec("wup", "M", 24.2, 1.34, "cyclic", mlp=2.0, library_pc_fraction=0.8, echo_fraction=0.2),
        # -- High intensity (thrashing) --------------------------------------------------
        _spec("apsi", "H", 32.0, 10.58, "cyclic", mlp=3.0, library_pc_fraction=0.85, echo_fraction=0.15),
        _spec("astar", "H", 32.0, 4.44, "shuffled", mlp=1.5, library_pc_fraction=0.5, echo_fraction=0.3, echo_distance=(400, 1200)),
        _spec("gzip", "H", 32.0, 8.18, "cyclic", mlp=2.5, library_pc_fraction=0.8, echo_fraction=0.18),
        _spec("libq", "H", 29.7, 15.11, "cyclic", mlp=4.0, library_pc_fraction=0.9, echo_fraction=0.06),
        _spec("milc", "H", 31.42, 22.31, "shuffled", mlp=2.5, library_pc_fraction=0.8, echo_fraction=0.12),
        _spec("wrf", "H", 32.0, 6.6, "cyclic", mlp=2.5, library_pc_fraction=0.85, echo_fraction=0.2),
        # -- Very High intensity (thrashing) -------------------------------------------------
        _spec("cact", "VH", 32.0, 42.11, "mixed", mlp=2.0, echo_fraction=0.35,
              echo_distance=(300, 900), pattern_kwargs={"k": 6, "d": 26}),
        _spec("lbm", "VH", 32.0, 48.46, "cyclic", mlp=4.0, write_fraction=0.45, library_pc_fraction=0.9, echo_fraction=0.04),
        _spec("STRM", "VH", 32.0, 26.18, "cyclic", mlp=4.0, write_fraction=0.5, library_pc_fraction=0.95, echo_fraction=0.02),
    ]
}

#: The eleven applications Figure 1b treats as thrashing.
THRASHING_BENCHMARKS = tuple(
    name for name, spec in BENCHMARKS.items() if spec.thrashing
)


def benchmarks_by_class(klass: str) -> list[str]:
    """Benchmark names in one Table 5 class, in table order."""
    if klass not in CLASSES:
        raise ValueError(f"unknown class {klass!r}; options: {CLASSES}")
    return [name for name, spec in BENCHMARKS.items() if spec.paper_class == klass]


@dataclass(frozen=True)
class Geometry:
    """The cache sizes a generator calibrates against (in blocks)."""

    llc_num_sets: int
    l2_blocks: int
    l1_blocks: int


class TraceSource:
    """A running instance of one benchmark on one core.

    Produces ``(block_addr, pc, is_write)`` triples through chunked NumPy
    generation.  Each core owns a disjoint address-space slice (multi-
    programmed workloads share no data), applied via a high-bit offset.
    """

    CHUNK = 4096
    #: Hot-region size in blocks (fits comfortably in any L1 we model).
    HOT_SPAN = 48
    #: The shared "library text" PCs every application executes.
    LIBRARY_PC_BASE = 0x40_0000

    __slots__ = (
        "spec",
        "geometry",
        "core_id",
        "master_seed",
        "address_offset",
        "_rng",
        "working_set_blocks",
        "pattern",
        "footprint_apki",
        "hot_apki",
        "apki",
        "_private_pc_base",
        "_echo_window",
        "_echo_tail",
        "instructions_per_access",
        "_hot_fraction",
        "_hot_base",
        "_addrs",
        "_pcs",
        "_writes",
        "_pos",
        "chunks_generated",
    )

    def __init__(
        self,
        spec: BenchmarkSpec,
        geometry: Geometry,
        core_id: int,
        master_seed: int = 0,
    ) -> None:
        self.spec = spec
        self.geometry = geometry
        self.core_id = core_id
        self.master_seed = master_seed
        self.address_offset = (core_id + 1) << 36
        seed = derive_seed(master_seed, f"trace/{spec.name}/core{core_id}")
        self._rng = np.random.default_rng(seed)
        ws = spec.working_set_blocks(geometry.llc_num_sets)
        self.working_set_blocks = ws
        self.pattern: AccessPattern = make_pattern(
            spec.pattern, ws, seed=seed ^ 0xA5A5, **spec.pattern_kwargs
        )
        self.footprint_apki, self.hot_apki = self._calibrate(ws)
        self.apki = self.footprint_apki + self.hot_apki
        # Private text segment: distinct per (benchmark, core).
        self._private_pc_base = 0x50_0000 + (
            derive_seed(master_seed, f"pc/{spec.name}/{core_id}") % 0x1000
        ) * 0x40
        self._echo_window = max(spec.echo_distance[1], 1)
        self._echo_tail = np.empty(0, dtype=np.int64)
        self.instructions_per_access = 1000.0 / self.apki
        self._hot_fraction = self.hot_apki / self.apki
        # Hot region sits just above the working set in the address space.
        self._hot_base = ws
        self._addrs: list[int] = []
        self._pcs: list[int] = []
        self._writes: list[bool] = []
        self._pos = 0
        #: Number of CHUNK-sized batches generated so far — together with
        #: the generator state this pins the source's RNG consumption, which
        #: the golden-master harness records to detect any change in *when*
        #: randomness is drawn, not just in what it produced.
        self.chunks_generated = 0

    # -- calibration ------------------------------------------------------------

    def _calibrate(self, ws: int) -> tuple[float, float]:
        """Choose stream rates so L2-MPKI lands near the Table 4 target.

        A footprint access misses the L2 with probability ``p_miss``
        (estimated from the working set vs. L2 capacity), so the footprint
        rate is ``l2_mpki / p_miss`` accesses per kilo-instruction.  The
        hot stream contributes a fixed L1-resident rate so every benchmark
        keeps a realistic share of cache-hitting traffic.
        """
        l2 = self.geometry.l2_blocks
        if ws > 2 * l2:
            p_miss = 0.95
        elif ws > l2:
            p_miss = 0.6
        elif ws > l2 // 2:
            p_miss = 0.25
        else:
            p_miss = 0.05
        footprint_apki = self.spec.l2_mpki / p_miss
        # Bound the total rate: the simulator's cost scales with accesses,
        # and an APKI beyond ~120 adds nothing but runtime.
        footprint_apki = min(max(footprint_apki, 1.0), 110.0)
        hot_apki = max(6.0, 0.25 * footprint_apki)
        return footprint_apki, hot_apki

    # -- chunked generation ---------------------------------------------------------

    def _generate_chunk(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce the next CHUNK of ``(addrs, pcs, writes)`` arrays.

        Advances the generator/pattern/echo state exactly one chunk; the
        shared-trace machinery (:mod:`repro.trace.shared`) calls this both
        to materialise buffers and to fast-forward state past a replayed
        prefix, so every RNG draw must happen here and none in
        :meth:`_refill`.
        """
        n = self.CHUNK
        rng = self._rng
        hot_mask = rng.random(n) < self._hot_fraction
        n_hot = int(hot_mask.sum())
        addrs = np.empty(n, dtype=np.int64)
        addrs[hot_mask] = self._hot_base + rng.integers(
            0, self.HOT_SPAN, size=n_hot, dtype=np.int64
        )
        footprint = self.pattern.chunk(n - n_hot, rng)
        footprint = self._apply_echo(footprint, rng)
        addrs[~hot_mask] = footprint
        # PCs.  Two realism properties matter for PC-signature predictors
        # (SHiP): (i) a fraction of every application's accesses issue from
        # *shared library* PCs (memcpy/memset-style loops are identical
        # across applications), and (ii) within an application, PCs are
        # *uncorrelated* with the reuse fate of the line — a loop body's
        # loads touch streaming and resident data alike, so a signature
        # observes the application's aggregate reuse mix rather than a pure
        # stream.  Both are what limits per-line PC prediction at high core
        # counts (the paper measures SHiP predicting distant reuse for only
        # ~3% of misses, Section 5.1).
        pcs = self._private_pc_base + (
            rng.integers(0, 8, size=n, dtype=np.int64) * 4
        )
        lib_mask = rng.random(n) < self.spec.library_pc_fraction
        pcs[lib_mask] = self.LIBRARY_PC_BASE + (
            rng.integers(0, 4, size=int(lib_mask.sum()), dtype=np.int64) * 4
        )
        writes = rng.random(n) < self.spec.write_fraction
        addrs += self.address_offset
        self.chunks_generated += 1
        return addrs, pcs, writes

    def _refill(self) -> None:
        # Buffers stay NumPy end-to-end: chunked consumers (the fused and
        # replay kernels) pre-decode them with vectorised operations, and
        # the one-at-a-time path converts to native scalars per access.
        self._addrs, self._pcs, self._writes = self._generate_chunk()
        self._pos = 0

    def _apply_echo(self, footprint: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Replace a fraction of footprint accesses with short-range reuse.

        An echoed access re-touches the block the stream emitted ``d``
        accesses earlier (``d`` drawn from the spec's echo-distance range),
        looking back across chunk boundaries through a small history ring.
        """
        spec = self.spec
        if spec.echo_fraction <= 0.0 or len(footprint) == 0:
            self._echo_tail = footprint[-self._echo_window:]
            return footprint
        n = len(footprint)
        combined = np.concatenate([self._echo_tail, footprint])
        offset = len(self._echo_tail)
        mask = rng.random(n) < spec.echo_fraction
        idx = np.nonzero(mask)[0]
        if len(idx):
            lo, hi = spec.echo_distance
            dist = rng.integers(lo, hi + 1, size=len(idx))
            src = np.maximum(idx + offset - dist, 0)
            footprint = footprint.copy()
            footprint[idx] = combined[src]
        self._echo_tail = combined[-self._echo_window:]
        return footprint

    def next_access(self) -> tuple[int, int, bool]:
        """The next ``(block_addr, pc, is_write)`` triple (native scalars)."""
        if self._pos >= len(self._addrs):
            self._refill()
        pos = self._pos
        self._pos = pos + 1
        # Native conversions keep the generic engine loop free of NumPy
        # scalar types (dict keys, signature folding and EAF hashing must
        # use arbitrary-precision Python ints).
        return int(self._addrs[pos]), int(self._pcs[pos]), bool(self._writes[pos])

    # -- batched consumption (fast-path engine) -------------------------------

    def next_chunk(self) -> tuple:
        """Current ``(addrs, pcs, writes, position)`` NumPy buffers.

        The fused engine loop (:mod:`repro.cpu.fastpath`) pre-decodes these
        arrays once per chunk (vectorised set-index masks, native-type
        conversion) — one Python call per ``CHUNK`` accesses instead of
        one :meth:`next_access` call per access.  Consumers own the read
        position until they hand it back via :meth:`commit`; generation
        order (and therefore RNG draw order) is identical to the
        one-at-a-time path because refills happen at the same boundaries.
        """
        if self._pos >= len(self._addrs):
            self._refill()
        return self._addrs, self._pcs, self._writes, self._pos

    def commit(self, pos: int) -> None:
        """Record that the caller consumed the buffers up to *pos*."""
        self._pos = pos

    def restart(self) -> None:
        """Back to the beginning (the paper re-executes finished apps)."""
        self.pattern.reset()
        self._addrs = []
        self._pos = 0
