"""Multi-programmed workload composition (Table 6).

The paper builds its workload suites by random sampling under composition
constraints:

=========  ==========  ========================
Study      #Workloads  Composition
=========  ==========  ========================
4-core     120         min 1 thrashing
8-core     80          min 1 from each class
16-core    60          min 2 from each class
20-core    40          min 3 from each class
24-core    40          min 3 from each class
=========  ==========  ========================

``design_suite`` reproduces those rules with seeded sampling (without
replacement within a workload — 36 benchmarks cover up to 24 cores), and
``TABLE6`` records the paper's suite definitions so benches can subsample
deterministically under a reduced budget (``REPRO_SCALE``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.benchmarks import (
    BENCHMARKS,
    CLASSES,
    THRASHING_BENCHMARKS,
    benchmarks_by_class,
)
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class SuiteSpec:
    """One row of Table 6."""

    cores: int
    num_workloads: int
    composition: str  # human-readable constraint
    min_per_class: int  # 0 means "min 1 thrashing" instead


TABLE6: dict[int, SuiteSpec] = {
    4: SuiteSpec(4, 120, "Min 1 thrashing", 0),
    8: SuiteSpec(8, 80, "Min 1 from each class", 1),
    16: SuiteSpec(16, 60, "Min 2 from each class", 2),
    20: SuiteSpec(20, 40, "Min 3 from each class", 3),
    24: SuiteSpec(24, 40, "Min 3 from each class", 3),
}


class Workload:
    """An ordered assignment of benchmarks to cores."""

    def __init__(self, name: str, benchmarks: tuple[str, ...]) -> None:
        # ``tgt:``-prefixed names are ingested targets: resolved against
        # the active registry at run time, not against the synthetic
        # roster (the registry may live in another process's store).
        unknown = [
            b
            for b in benchmarks
            if b not in BENCHMARKS and not b.startswith("tgt:")
        ]
        if unknown:
            raise ValueError(f"unknown benchmarks: {unknown}")
        self.name = name
        self.benchmarks = benchmarks

    @property
    def cores(self) -> int:
        return len(self.benchmarks)

    def thrashing_cores(self) -> list[int]:
        """Core indices running thrashing (Footprint-number >= 16) apps.

        Ingested targets carry no Footprint-number and never count.
        """
        return [
            i
            for i, b in enumerate(self.benchmarks)
            if b in BENCHMARKS and BENCHMARKS[b].thrashing
        ]

    def class_counts(self) -> dict[str, int]:
        """Per-class tallies; ingested targets fall outside Table 5."""
        counts = {klass: 0 for klass in CLASSES}
        for b in self.benchmarks:
            spec = BENCHMARKS.get(b)
            if spec is not None:
                counts[spec.paper_class] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload({self.name}: {','.join(self.benchmarks)})"


def _compose_one(
    rng: np.random.Generator, cores: int, min_per_class: int
) -> tuple[str, ...]:
    """Draw one workload satisfying the Table 6 constraint."""
    chosen: list[str] = []
    if min_per_class == 0:
        # 4-core rule: at least one thrashing application.
        pick = rng.choice(len(THRASHING_BENCHMARKS))
        chosen.append(THRASHING_BENCHMARKS[pick])
    else:
        for klass in CLASSES:
            pool = benchmarks_by_class(klass)
            picks = rng.choice(len(pool), size=min_per_class, replace=False)
            chosen.extend(pool[i] for i in picks)
    if len(chosen) > cores:
        raise ValueError(
            f"constraint needs {len(chosen)} slots but workload has {cores} cores"
        )
    remaining = [b for b in BENCHMARKS if b not in chosen]
    fill = rng.choice(len(remaining), size=cores - len(chosen), replace=False)
    chosen.extend(remaining[i] for i in fill)
    # Shuffle so constrained picks are not always on the low core ids.
    order = rng.permutation(len(chosen))
    return tuple(chosen[i] for i in order)


def design_suite(
    cores: int,
    num_workloads: int | None = None,
    master_seed: int = 0,
) -> list[Workload]:
    """Generate the Table 6 suite for *cores* (optionally subsampled).

    Deterministic in ``master_seed``; asking for fewer workloads than the
    paper's count yields a prefix of the full suite, so scaled-down runs
    are strict subsets of full runs.
    """
    spec = TABLE6.get(cores)
    if spec is None:
        raise ValueError(f"no Table 6 suite for {cores} cores; options: {sorted(TABLE6)}")
    count = spec.num_workloads if num_workloads is None else num_workloads
    if count > spec.num_workloads:
        raise ValueError(
            f"paper suite has {spec.num_workloads} workloads; {count} requested"
        )
    rng = np.random.default_rng(derive_seed(master_seed, f"workloads/{cores}core"))
    suite = []
    for i in range(spec.num_workloads):
        mix = _compose_one(rng, cores, spec.min_per_class)
        suite.append(Workload(f"{cores}core-{i:03d}", mix))
    return suite[:count]


def validate_workload(workload: Workload) -> None:
    """Assert the Table 6 constraint its suite promises (test helper)."""
    spec = TABLE6.get(workload.cores)
    if spec is None:
        return
    if spec.min_per_class == 0:
        if not workload.thrashing_cores():
            raise AssertionError(f"{workload.name} lacks a thrashing app")
        return
    counts = workload.class_counts()
    for klass in CLASSES:
        if counts[klass] < spec.min_per_class:
            raise AssertionError(
                f"{workload.name} has {counts[klass]} {klass} apps, "
                f"needs >= {spec.min_per_class}"
            )
