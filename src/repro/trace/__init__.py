"""Synthetic benchmark suite and workload composition.

:mod:`repro.trace.patterns` — address-stream shapes (cyclic, shuffled,
random, mixed ``{a}^k{s}^d``, strided).
:mod:`repro.trace.benchmarks` — the 38 named Table 4 stand-ins and the
per-core :class:`~repro.trace.benchmarks.TraceSource` generator.
:mod:`repro.trace.workloads` — the Table 6 multi-programmed suites.
"""

from repro.trace.benchmarks import (
    BENCHMARKS,
    CLASSES,
    THRASHING_BENCHMARKS,
    BenchmarkSpec,
    Geometry,
    TraceSource,
    benchmarks_by_class,
)
from repro.trace.patterns import (
    PATTERN_KINDS,
    AccessPattern,
    CyclicPattern,
    MixedPattern,
    RandomPattern,
    ShuffledCyclicPattern,
    StridedPattern,
    make_pattern,
)
from repro.trace.workloads import (
    TABLE6,
    SuiteSpec,
    Workload,
    design_suite,
    validate_workload,
)

__all__ = [
    "BENCHMARKS",
    "CLASSES",
    "THRASHING_BENCHMARKS",
    "BenchmarkSpec",
    "Geometry",
    "TraceSource",
    "benchmarks_by_class",
    "PATTERN_KINDS",
    "AccessPattern",
    "CyclicPattern",
    "MixedPattern",
    "RandomPattern",
    "ShuffledCyclicPattern",
    "StridedPattern",
    "make_pattern",
    "TABLE6",
    "SuiteSpec",
    "Workload",
    "design_suite",
    "validate_workload",
]
