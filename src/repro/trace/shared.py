"""Zero-copy shared trace buffers for multi-job runs.

A synthetic trace is fully determined by ``(benchmark, calibration
geometry, core id, master seed)`` plus the fixed chunk schedule — every
job that shares a (workload, seed) pair consumes the *same* access
stream, yet historically each worker process regenerated it from scratch.
This module materialises each distinct trace **once** as a flat
structured-NumPy file under the result store (``traces/<key>.npy``, where
``key`` is a content address over the generation parameters) and lets
every consumer — pool workers and the parent alike — map it read-only via
``np.load(..., mmap_mode="r")``.  The mapping is zero-copy: all processes
share the same page-cache pages, nothing crosses the process pipe, and a
warm store serves later invocations without generating anything at all.

Equivalence contract: a :class:`SharedTraceSource` yields a stream
bit-identical to a plain :class:`~repro.trace.benchmarks.TraceSource`
with the same parameters.  The buffer holds exactly the chunks the
generator would produce; while replaying, the RNG is never touched, and
the first generation past the materialised prefix (or a ``restart``)
fast-forwards the generator/pattern/echo state by re-running the replayed
chunks state-only, so live continuation chunks match too.

The lifecycle is driven by :class:`~repro.runner.parallel.ParallelRunner`:

1. the parent scans a miss batch for trace identities needed by two or
   more jobs and calls :meth:`SharedTraceStore.materialise` for each;
2. the resulting manifest rides along with every worker payload;
   :func:`install_manifest` maps the files in the executing process;
3. :func:`make_source` (used by the simulation builders) transparently
   returns a :class:`SharedTraceSource` for registered identities and a
   plain generator otherwise;
4. the parent clears its registry after the batch; files persist in the
   store and are reused content-addressed by later invocations.

``REPRO_NO_SHARED_TRACES`` disables the whole mechanism (every source
generates privately, the pre-sharing behaviour).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.trace.benchmarks import BENCHMARKS, BenchmarkSpec, Geometry, TraceSource

#: One record per access; ``np.load(mmap_mode="r")`` maps it zero-copy.
TRACE_DTYPE = np.dtype([("addr", "<i8"), ("pc", "<i8"), ("write", "?")])

#: Bump when the buffer layout or the generator's chunk schedule changes;
#: part of every content address, so stale files are simply never mapped.
FORMAT_VERSION = 1


def shared_traces_enabled() -> bool:
    """Sharing is on unless ``REPRO_NO_SHARED_TRACES`` is set."""
    return not os.environ.get("REPRO_NO_SHARED_TRACES")


def trace_key(
    spec_name: str, geometry: Geometry, core_id: int, master_seed: int, n_chunks: int
) -> str:
    """Content address of one materialised trace buffer."""
    blob = json.dumps(
        {
            "v": FORMAT_VERSION,
            "benchmark": spec_name,
            "llc_num_sets": geometry.llc_num_sets,
            "l2_blocks": geometry.l2_blocks,
            "l1_blocks": geometry.l1_blocks,
            "core_id": core_id,
            "master_seed": master_seed,
            "chunk": TraceSource.CHUNK,
            "n_chunks": n_chunks,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


def chunks_for(quota: int, warmup: int, slack: float = 2.0) -> int:
    """Buffer length (in chunks) covering one run's expected consumption.

    A core consumes roughly ``warmup + quota`` accesses; cores that finish
    early keep running until the slowest core completes, so *slack* covers
    typical skew.  Under-coverage is never a correctness issue — a source
    that outruns its buffer falls back to live generation.
    """
    accesses = max(1, round((quota + warmup) * slack))
    return -(-accesses // TraceSource.CHUNK)


def _identity(
    spec_name: str, geometry: Geometry, core_id: int, master_seed: int
) -> tuple:
    return (
        spec_name,
        geometry.llc_num_sets,
        geometry.l2_blocks,
        geometry.l1_blocks,
        core_id,
        master_seed,
    )


class SharedTraceStore:
    """Content-addressed trace buffers under ``<root>/``.

    ``stats`` counts real generation work (``materialised``) separately
    from warm-store reuse (``reused``) — the "each trace generated exactly
    once" property is asserted against the former.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = {"materialised": 0, "reused": 0}

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npy"

    def materialise(
        self,
        spec: BenchmarkSpec,
        geometry: Geometry,
        core_id: int,
        master_seed: int,
        n_chunks: int,
    ) -> dict:
        """Generate (or find) one trace buffer; returns its manifest entry."""
        # Lazy import: repro.runner.parallel imports this module, so the
        # integrity/fault helpers can't be top-level without a cycle.
        from repro.runner import faults
        from repro.runner.integrity import (
            quarantine,
            verify_artifact,
            write_checksum,
            write_meta,
        )

        key = trace_key(spec.name, geometry, core_id, master_seed, n_chunks)
        path = self.path_for(key)
        if path.is_file() and verify_artifact(path) is False:
            # Damage found before reuse: preserve the evidence out of the
            # live namespace and fall through to regeneration.
            quarantine(path, reason="trace checksum mismatch")
        if path.is_file():
            self.stats["reused"] += 1
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            source = TraceSource(spec, geometry, core_id, master_seed)
            chunk = TraceSource.CHUNK
            out = np.empty(n_chunks * chunk, dtype=TRACE_DTYPE)
            for i in range(n_chunks):
                addrs, pcs, writes = source._generate_chunk()
                block = out[i * chunk : (i + 1) * chunk]
                block["addr"] = addrs
                block["pc"] = pcs
                block["write"] = writes
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.save(fh, out)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            write_checksum(path)
            # Generator provenance rides in a meta sidecar, so the gc/ls
            # inventory and ``targets info`` render synthetic buffers
            # uniformly with ingested ones.
            write_meta(
                path,
                {
                    "kind": "synthetic",
                    "generator": spec.name,
                    "pattern": spec.pattern,
                    "paper_class": spec.paper_class,
                    "core_id": core_id,
                    "master_seed": master_seed,
                    "n_chunks": n_chunks,
                    "format_version": FORMAT_VERSION,
                },
            )
            faults.corrupt_artifact("trace", path, path.name)
            self.stats["materialised"] += 1
        return {
            "benchmark": spec.name,
            "geometry": [
                geometry.llc_num_sets,
                geometry.l2_blocks,
                geometry.l1_blocks,
            ],
            "core_id": core_id,
            "master_seed": master_seed,
            "n_chunks": n_chunks,
            "path": str(path),
        }


# -- per-process registry ------------------------------------------------------

#: Identity tuple -> mapped buffer, installed from a manifest.
_ACTIVE: dict[tuple, np.ndarray] = {}
#: Path -> mapped array, so repeated manifest installs reuse one mapping.
_MAPS: dict[str, np.ndarray] = {}


def install_manifest(entries: list[dict]) -> None:
    """Map every manifest buffer and register it for :func:`make_source`.

    Unreadable, mis-shaped or checksum-mismatched files are skipped — the
    affected sources fall back to private generation, which is always
    equivalent.  A mismatched file is quarantined: a bit-flipped buffer
    would still map and feed silently wrong accesses into a simulation,
    so it must leave the live namespace before anyone trusts it.
    """
    from repro.runner.integrity import quarantine, verify_artifact

    active: dict[tuple, np.ndarray] = {}
    for entry in entries:
        path = entry["path"]
        arr = _MAPS.get(path)
        if arr is None:
            if verify_artifact(path) is False:
                quarantine(path, reason="trace checksum mismatch")
                continue
            try:
                arr = np.load(path, mmap_mode="r")
            except (OSError, ValueError):
                continue
            if arr.dtype != TRACE_DTYPE or arr.ndim != 1:
                continue
            _MAPS[path] = arr
        sets, l2b, l1b = entry["geometry"]
        geometry = Geometry(sets, l2b, l1b)
        ident = _identity(
            entry["benchmark"], geometry, entry["core_id"], entry["master_seed"]
        )
        active[ident] = arr
    _ACTIVE.clear()
    _ACTIVE.update(active)


def clear_manifest() -> None:
    """Drop the registry (mappings stay cached for a later install)."""
    _ACTIVE.clear()


def lookup(
    spec_name: str, geometry: Geometry, core_id: int, master_seed: int
) -> np.ndarray | None:
    """The registered buffer for one trace identity, or ``None``."""
    return _ACTIVE.get(_identity(spec_name, geometry, core_id, master_seed))


def make_source(
    spec: BenchmarkSpec | str,
    geometry: Geometry,
    core_id: int,
    master_seed: int = 0,
) -> TraceSource:
    """A trace source for one core: shared-buffer replay when registered.

    The single construction point the simulation builders go through, so
    every run — pooled, inline or direct — transparently benefits from an
    installed manifest.  ``tgt:``-prefixed names (and resolved
    :class:`~repro.targets.registry.TargetSpec` objects) dispatch to the
    ingested-trace frontend, which memory-maps its own buffers.
    """
    if isinstance(spec, str):
        if spec.startswith("tgt:"):
            from repro.targets.registry import make_target_source

            return make_target_source(spec, geometry, core_id, master_seed)
        spec = BENCHMARKS[spec]
    elif getattr(spec, "kind", None) == "target":
        from repro.targets.registry import make_target_source

        return make_target_source(spec, geometry, core_id, master_seed)
    buffer = lookup(spec.name, geometry, core_id, master_seed)
    if buffer is not None:
        return SharedTraceSource(spec, geometry, core_id, master_seed, buffer)
    return TraceSource(spec, geometry, core_id, master_seed)


class SharedTraceSource(TraceSource):
    """A :class:`TraceSource` replaying a materialised prefix zero-copy.

    While the prefix lasts, ``_refill`` slices the mapped buffer and the
    RNG is never drawn; the moment the run outlives the prefix (or
    ``restart`` needs generator state), the replayed chunks are re-run
    state-only so live generation continues bit-identically.
    """

    __slots__ = ("_shared",)

    def __init__(
        self,
        spec: BenchmarkSpec,
        geometry: Geometry,
        core_id: int,
        master_seed: int,
        shared: np.ndarray,
    ) -> None:
        super().__init__(spec, geometry, core_id, master_seed)
        self._shared = shared

    def _refill(self) -> None:
        shared = self._shared
        if shared is not None:
            start = self.chunks_generated * self.CHUNK
            end = start + self.CHUNK
            if end <= len(shared):
                # Zero-copy field views into the mapped buffer; consumers
                # pre-decode/convert per chunk exactly like generated chunks.
                block = shared[start:end]
                self._addrs = block["addr"]
                self._pcs = block["pc"]
                self._writes = block["write"]
                self._pos = 0
                self.chunks_generated += 1
                return
            self._fast_forward()
        super()._refill()

    def _fast_forward(self) -> None:
        """Advance generator state past the replayed prefix, then detach."""
        self._shared = None
        replayed = self.chunks_generated
        self.chunks_generated = 0
        for _ in range(replayed):
            self._generate_chunk()

    def restart(self) -> None:
        if self._shared is not None:
            # ``restart`` resets the pattern but keeps the RNG stream, so
            # the generator state must first catch up with the replay.
            self._fast_forward()
        super().restart()
