"""Evaluation metrics: multi-core throughput (Table 7) and MPKI effects."""

from repro.metrics.cachestats import (
    average_by_app,
    ipc_speedup,
    mpki_reduction_percent,
    s_curve,
)
from repro.metrics.throughput import (
    METRIC_LABELS,
    METRIC_NAMES,
    compute_all_metrics,
    harmonic_mean_of_normalized_ipcs,
    mean_gain_percent,
    relative_gain,
    weighted_speedup,
)

__all__ = [
    "average_by_app",
    "ipc_speedup",
    "mpki_reduction_percent",
    "s_curve",
    "METRIC_LABELS",
    "METRIC_NAMES",
    "compute_all_metrics",
    "harmonic_mean_of_normalized_ipcs",
    "mean_gain_percent",
    "relative_gain",
    "weighted_speedup",
]
