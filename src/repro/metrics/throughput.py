"""Multi-core throughput and fairness metrics (Section 5.6, Table 7).

Given per-application shared-mode IPCs and solo-execution baselines:

* **Weighted speed-up**: ``sum_i IPC_shared_i / IPC_alone_i`` — the paper's
  headline metric.
* **Harmonic mean of normalized IPCs**: ``N / sum_i (IPC_alone_i /
  IPC_shared_i)`` — balances fairness and throughput (Luo et al. [41]).
* **GM / HM / AM of raw IPCs** — Michaud's consistent throughput metrics
  [27].

Experiment-level comparisons normalize a policy's metric against the
TA-DRRIP baseline on the same workload, matching every figure's y-axis
("speed-up over TA-DRRIP").
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.stats import arithmetic_mean, geometric_mean, harmonic_mean

#: Table 7 metric identifiers, in the paper's row order.
METRIC_NAMES = ("ws", "hm_norm", "gm_ipc", "hm_ipc", "am_ipc")

METRIC_LABELS = {
    "ws": "Wt.Speed-up",
    "hm_norm": "Norm. HM",
    "gm_ipc": "GM of IPCs",
    "hm_ipc": "HM of IPCs",
    "am_ipc": "AM of IPCs",
}


def _check(shared: Sequence[float], alone: Sequence[float]) -> None:
    if len(shared) != len(alone):
        raise ValueError("shared and alone IPC vectors differ in length")
    if len(shared) == 0:
        raise ValueError("empty IPC vectors")
    if any(v <= 0 for v in shared) or any(v <= 0 for v in alone):
        raise ValueError("IPCs must be strictly positive")


def weighted_speedup(shared: Sequence[float], alone: Sequence[float]) -> float:
    _check(shared, alone)
    return sum(s / a for s, a in zip(shared, alone))


def harmonic_mean_of_normalized_ipcs(
    shared: Sequence[float], alone: Sequence[float]
) -> float:
    _check(shared, alone)
    return len(shared) / sum(a / s for s, a in zip(shared, alone))


def compute_all_metrics(
    shared: Sequence[float], alone: Sequence[float]
) -> dict[str, float]:
    """All five Table 7 metrics for one workload run."""
    _check(shared, alone)
    return {
        "ws": weighted_speedup(shared, alone),
        "hm_norm": harmonic_mean_of_normalized_ipcs(shared, alone),
        "gm_ipc": geometric_mean(shared),
        "hm_ipc": harmonic_mean(shared),
        "am_ipc": arithmetic_mean(shared),
    }


def relative_gain(value: float, baseline: float) -> float:
    """Normalized improvement over the baseline policy (e.g. 1.047 -> 4.7%)."""
    if baseline <= 0:
        raise ValueError("baseline must be strictly positive")
    return value / baseline


def mean_gain_percent(ratios: Sequence[float]) -> float:
    """Average percentage improvement of a series of per-workload ratios.

    The paper reports geometric-mean-style averages of per-workload
    speed-ups; we use the geometric mean (robust to one outlier workload)
    and express it as a percentage.
    """
    return (geometric_mean(ratios) - 1.0) * 100.0
