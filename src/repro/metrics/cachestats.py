"""Per-application cache-behaviour metrics: MPKI deltas and s-curves.

Figures 1b/1c, 4 and 5 report the percentage *reduction* in MPKI relative
to the TA-DRRIP baseline per application, and the per-workload s-curves
(Figures 3 and 8) plot sorted speed-up ratios.  The helpers here transform
raw snapshots into those series.
"""

from __future__ import annotations

from collections.abc import Sequence


def mpki_reduction_percent(policy_mpki: float, baseline_mpki: float) -> float:
    """Percentage reduction in MPKI vs. the baseline (positive = better).

    A baseline MPKI of zero (an application that never misses) yields 0 —
    nothing to reduce.
    """
    if baseline_mpki <= 0:
        return 0.0
    return (baseline_mpki - policy_mpki) / baseline_mpki * 100.0


def ipc_speedup(policy_ipc: float, baseline_ipc: float) -> float:
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be strictly positive")
    return policy_ipc / baseline_ipc


def s_curve(ratios: Sequence[float]) -> list[float]:
    """Sorted per-workload ratios, ascending — the figures' x-ordering."""
    return sorted(ratios)


def average_by_app(
    per_workload_values: Sequence[dict[str, float]]
) -> dict[str, float]:
    """Average per-application values across workloads.

    Figures 4 and 5 average each application's MPKI/IPC effect over all the
    (sixty 16-core) workloads that contain it.
    """
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for values in per_workload_values:
        for app, value in values.items():
            sums[app] = sums.get(app, 0.0) + value
            counts[app] = counts.get(app, 0) + 1
    return {app: sums[app] / counts[app] for app in sums}
