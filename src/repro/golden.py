"""Golden-master harness: pin the simulation kernel's exact behaviour.

The fused fast-path kernel (:mod:`repro.cpu.fastpath`) re-implements the
per-access hot path for speed; its contract is that simulated behaviour is
**bit-for-bit identical** to the generic reference loop.  This module
machine-checks that contract two ways:

* **Committed fixtures** — :func:`run_case` executes one small,
  deterministic run for every registered policy on representative
  workloads and captures an exhaustive observation record: per-core
  snapshots (IPC/MPKI inputs as exact floats), every cache's full stats
  block, cache-content digests, timing-model counters (DRAM row state,
  bank conflicts, arbiter throttling, MSHR merges, write-back buffers),
  interval counts, the policy's self-description, and each trace source's
  RNG state digest plus chunk count (so a change in *when* randomness is
  drawn is caught, not just in what it produced).  ``tests/golden``
  asserts today's kernel reproduces the committed records exactly.
* **Differential runs** — the same case executed on both kernels
  (``force_generic=True`` vs the fast path) must produce equal records.

Regenerate fixtures after an *intentional* behaviour change with::

    repro-experiments golden --regen

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path

from repro.cpu import fastpath
from repro.cpu.engine import MulticoreEngine
from repro.policies.registry import available_policies
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.config import CacheLevelConfig, SystemConfig
from repro.trace.workloads import Workload

#: Bumped when the fixture record format itself changes (not when simulated
#: behaviour changes — that is exactly what regeneration must make visible).
FIXTURE_FORMAT = 2

#: Every registered base policy, plus the bypass-wrapper composition the
#: Figure 6 study uses, so the wrapper's delegation is pinned too.
GOLDEN_POLICIES: tuple[str, ...] = tuple(available_policies()) + (
    "tadrrip+bp",
    "ship+bp",
)

#: Two-core mixes chosen to exercise complementary paths: a thrashing app
#: against a medium one (evictions, bypasses, dirty write-backs) and a
#: cache-friendly pair (hits, promotions, little DRAM traffic).
GOLDEN_WORKLOADS: dict[str, tuple[str, ...]] = {
    "thrash-mix": ("mcf", "libq"),
    "friendly-mix": ("gcc", "calc"),
}

#: Platform variants: the plain Table 3 shape, and the prefetch-everything
#: shape (L1 next-line plus per-core L2 stride prefetchers) that pins the
#: kernel's non-demand fetch path.
GOLDEN_PLATFORMS: dict[str, dict] = {
    "base": {},
    "prefetch": {"l1_next_line_prefetch": True, "l2_stride_prefetch": True},
}

#: Policies pinned on the prefetch platform: one per inline family (stack,
#: duelled RRIP, SHiP training, EAF filter, ADAPT monitor + bypass) — the
#: non-demand path is policy-independent beyond the hook dispatch, so this
#: subset covers every dispatch mode without doubling the whole suite.
PREFETCH_POLICIES: tuple[str, ...] = (
    "lru",
    "tadrrip",
    "ship",
    "eaf",
    "adapt_bp32",
)

#: Small budgets keep the full suite (16 policies x 2 workloads) in seconds.
QUOTA = 1_200
WARMUP = 300
MASTER_SEED = 0


def golden_config() -> SystemConfig:
    """The miniature two-core platform every golden case runs on."""
    return SystemConfig(
        name="golden-2core",
        num_cores=2,
        l1=CacheLevelConfig(num_sets=8, ways=4, latency=3.0),
        l2=CacheLevelConfig(num_sets=8, ways=8, latency=14.0),
        llc=CacheLevelConfig(num_sets=64, ways=16, latency=24.0),
        monitor_sets=16,
        interval_misses=1_500,
    )


def _digest(payload) -> str:
    blob = json.dumps(payload, sort_keys=True, default=int)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def case_name(policy: str, workload: str, platform: str = "base") -> str:
    suffix = "" if platform == "base" else "__pf"
    return f"{policy.replace('+', '_')}__{workload}{suffix}"


def iter_cases():
    """All ``(policy, workload_name, benchmarks, platform)`` golden cases."""
    for policy in GOLDEN_POLICIES:
        for workload, benchmarks in GOLDEN_WORKLOADS.items():
            yield policy, workload, benchmarks, "base"
    for policy in PREFETCH_POLICIES:
        for workload, benchmarks in GOLDEN_WORKLOADS.items():
            yield policy, workload, benchmarks, "prefetch"


def run_case(
    policy: str,
    benchmarks: tuple[str, ...],
    *,
    platform: str = "base",
    force_generic: bool = False,
    kernel: str | None = None,
    config: SystemConfig | None = None,
) -> dict:
    """Execute one golden case and return its exhaustive observation record.

    ``kernel`` selects the engine under test: ``"fast"`` (default, the
    fused loop), ``"generic"`` (the reference loop; ``force_generic`` is
    the legacy spelling), ``"replay"`` (capture the private-level
    streams, then run the LLC-filtered replay kernel) or ``"replay_vec"``
    (same capture, driven through the array-native replay kernel).  Every
    value is JSON-safe and round-trips exactly (floats serialise via
    ``repr`` and compare bit-for-bit after a load).
    """
    if kernel is None:
        kernel = "generic" if force_generic else "fast"
    if config is None:
        config = golden_config()
    # The platform overrides compose with an explicitly-passed config, so
    # run_case(..., platform="prefetch", config=...) cannot silently pin
    # the wrong platform.
    config = replace(config, **GOLDEN_PLATFORMS[platform])
    hierarchy = build_hierarchy(config, policy)
    sources = build_sources(Workload("golden", benchmarks), config, MASTER_SEED)
    engine = MulticoreEngine(
        hierarchy,
        sources,
        quota_per_core=QUOTA,
        interval_misses=config.effective_interval,
        warmup_accesses=WARMUP,
    )
    if kernel == "generic":
        snapshots = engine._run_generic()
    elif kernel == "replay":
        # Capture the private-level streams with an independent source set,
        # then drive the engine through the LLC-filtered replay kernel.
        from repro.cpu.capture import capture_workload
        from repro.cpu.replay import run_replay

        bundle = capture_workload(
            tuple(benchmarks), config, QUOTA, WARMUP, MASTER_SEED
        )
        snapshots = run_replay(engine, bundle)
        if snapshots is None:
            raise RuntimeError("golden platform must be replay eligible")
    elif kernel == "replay_vec":
        from repro.cpu.capture import capture_workload
        from repro.cpu.replay_vec import run_replay_vec

        bundle = capture_workload(
            tuple(benchmarks), config, QUOTA, WARMUP, MASTER_SEED
        )
        snapshots = run_replay_vec(engine, bundle)
        if snapshots is None:
            raise RuntimeError("golden platform must be replay-vec eligible")
    else:
        # Drive the fused kernel directly — bypassing the REPRO_NO_FASTPATH
        # kill switch — so the "fast" record always exercises the fast path
        # (otherwise the differential would compare generic to generic).
        snapshots = fastpath.run_fast(engine)
        if snapshots is None:
            raise RuntimeError("golden platform must be fast-path eligible")

    llc = hierarchy.llc
    dram = hierarchy.dram
    banks = hierarchy.llc_banks
    mshr = hierarchy.llc_mshr
    record = {
        "format": FIXTURE_FORMAT,
        "policy": policy,
        "platform": platform,
        "benchmarks": list(benchmarks),
        "config": config.name,
        "prefetches_issued": hierarchy.prefetches_issued,
        "l2_prefetchers": (
            [[p.trained, p.issued] for p in hierarchy.l2_prefetchers]
            if hierarchy.l2_prefetchers is not None
            else None
        ),
        "quota": QUOTA,
        "warmup": WARMUP,
        "master_seed": MASTER_SEED,
        "snapshots": [s.to_dict() for s in snapshots],
        "ipc": [s.ipc for s in snapshots],
        "llc_mpki": [s.llc_mpki for s in snapshots],
        "llc_stats": llc.stats.snapshot(),
        "l2_stats": [c.stats.snapshot() for c in hierarchy.l2s],
        "l1_stats": [c.stats.snapshot() for c in hierarchy.l1s],
        "llc_occupancy": list(llc.occupancy),
        "llc_content_digest": _digest(
            [llc.addrs, llc.dirty, llc.owner, llc.reused]
        ),
        "l2_content_digest": _digest(
            [[c.addrs, c.dirty] for c in hierarchy.l2s]
        ),
        "l1_content_digest": _digest(
            [[c.addrs, c.dirty] for c in hierarchy.l1s]
        ),
        "intervals_completed": engine.intervals_completed,
        "engine_now": engine.now,
        "policy_describe": llc.policy.describe(),
        "dram": {
            "reads": dram.reads,
            "writes": dram.writes,
            "row_hits": dram.row_hits,
            "row_conflicts": dram.row_conflicts,
        },
        "banks": {"accesses": banks.accesses, "conflicts": banks.conflicts},
        "arbiter": {
            "requests": hierarchy.arbiter.requests,
            "throttled": hierarchy.arbiter.throttled,
        },
        "mshr": {"merged": mshr.merged, "stalls": mshr.stalls},
        "wb_buffers": {
            "llc": [
                hierarchy.llc_wb_buffer.stalls,
                hierarchy.llc_wb_buffer.admitted,
            ],
            "l2": [[b.stalls, b.admitted] for b in hierarchy.l2_wb_buffers],
        },
        # RNG accounting: the generator state digests pin *what* was drawn
        # AND how much; chunk counts pin when the draws happened.
        "rng_state_digests": [
            _digest(src._rng.bit_generator.state) for src in sources
        ],
        "chunks_generated": [src.chunks_generated for src in sources],
        "trace_positions": [src._pos for src in sources],
    }
    return record


# -- fixture management --------------------------------------------------------


def default_fixture_dir() -> Path:
    """``tests/golden/fixtures`` relative to the repository root (cwd-based
    when the package is installed without the repo checkout)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "golden" / "fixtures"
        if candidate.is_dir():
            return candidate
    return Path("tests/golden/fixtures")


def fixture_path(
    directory: Path, policy: str, workload: str, platform: str = "base"
) -> Path:
    return Path(directory) / f"{case_name(policy, workload, platform)}.json"


def write_fixtures(directory: Path | str | None = None) -> list[Path]:
    """Run every golden case on the fast kernel and write its fixture."""
    directory = Path(directory) if directory else default_fixture_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for policy, workload, benchmarks, platform in iter_cases():
        record = run_case(policy, benchmarks, platform=platform)
        path = fixture_path(directory, policy, workload, platform)
        with path.open("w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=1, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


def compare_records(expected: dict, actual: dict) -> list[str]:
    """Human-readable list of mismatching keys (empty when bit-identical)."""
    problems = []
    for key in sorted(set(expected) | set(actual)):
        if expected.get(key) != actual.get(key):
            problems.append(
                f"{key}: expected {expected.get(key)!r}, got {actual.get(key)!r}"
            )
    return problems


def verify_fixtures(directory: Path | str | None = None) -> dict[str, list[str]]:
    """Re-run every case and diff against its committed fixture.

    Returns ``{case_name: [mismatch, ...]}`` — empty dict means everything
    is bit-identical.  Missing fixtures are reported as a mismatch.
    """
    directory = Path(directory) if directory else default_fixture_dir()
    failures: dict[str, list[str]] = {}
    for policy, workload, benchmarks, platform in iter_cases():
        name = case_name(policy, workload, platform)
        path = fixture_path(directory, policy, workload, platform)
        if not path.is_file():
            failures[name] = [f"missing fixture {path}"]
            continue
        with path.open(encoding="utf-8") as fh:
            expected = json.load(fh)
        actual = run_case(policy, benchmarks, platform=platform)
        problems = compare_records(expected, actual)
        if problems:
            failures[name] = problems
    return failures
