"""Supervised future-per-job scheduling with explicit failure semantics.

:class:`Supervisor` replaces the one-shot ``pool.map`` execution model:
every job is submitted individually and collected in completion order,
so one failure costs one job, never the batch.  Failure handling is
explicit and bounded:

* **retry with backoff** — a failed attempt is requeued after an
  exponential backoff with deterministic jitter, up to
  :attr:`RetryPolicy.max_retries` retries;
* **wall-clock timeouts** — a job observed running past
  :attr:`RetryPolicy.job_timeout` is treated as failed; the pool is
  abandoned (a hung worker cannot be reclaimed), every other in-flight
  job is requeued *without* charging it an attempt, and a fresh pool
  takes over;
* **poison quarantine** — a job that exhausts its attempts yields a
  structured :class:`FailureRecord` instead of raising, so the batch
  returns partial results plus an explicit failure report;
* **pool crash recovery** — ``BrokenProcessPool`` (a worker died:
  SIGKILL, OOM, ``os._exit``) requeues all in-flight jobs and rebuilds
  the pool; after :attr:`RetryPolicy.max_pool_rebuilds` rebuilds the
  supervisor degrades to inline execution in the parent, which cannot
  lose the batch.

Two scheduling refinements serve the pipelined capture→replay flow:

* **dependency edges** — :meth:`Supervisor.run_jobs` accepts a
  ``dependencies`` map (job key → key of another job in the batch); a
  dependent job is withheld until its dependency's outcome has been
  *yielded*, success or quarantine alike (edges order work, they never
  veto it), so the caller can fold the dependency's product into the
  dependent's payload before it is built;
* **sticky affinity routing** — with an ``affinity`` map (job key →
  token) and two or more workers, the supervisor runs one single-worker
  pool per slot and prefers the slot that last ran a token unless it is
  overloaded, so process-local caches keyed by that token (decoded
  replay planes, loaded bundles) stay hot across a sweep.

Workers need no special re-initialisation after a rebuild: the shared
trace and replay manifests ride along inside every task payload, so a
fresh worker re-installs them on its first task.

Inline execution (``workers <= 1``, single-job batches, or a degraded
pool) goes through the same retry/quarantine path; only timeouts are
unenforceable inline (nothing can preempt the parent).
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.runner import faults

#: Poll interval while waiting for queued futures to start running (their
#: wall-clock deadline starts at first observed execution, not at submit).
_DEADLINE_POLL = 0.05
#: Longest idle sleep while only backoff timers are pending.
_IDLE_SLEEP = 0.25


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs of one supervised batch."""

    #: Retries after the first attempt (so ``max_retries + 1`` attempts).
    max_retries: int = 2
    #: Per-job wall-clock limit in seconds; ``None`` disables timeouts.
    job_timeout: float | None = None
    #: First backoff step; doubles per attempt, plus deterministic jitter.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Pool rebuilds tolerated before degrading to inline execution.
    max_pool_rebuilds: int = 2

    @staticmethod
    def from_env() -> "RetryPolicy":
        """``REPRO_MAX_RETRIES`` / ``REPRO_JOB_TIMEOUT`` / ``REPRO_RETRY_BACKOFF``."""
        timeout = _env_float("REPRO_JOB_TIMEOUT", 0.0)
        return RetryPolicy(
            max_retries=max(0, _env_int("REPRO_MAX_RETRIES", 2)),
            job_timeout=timeout if timeout > 0 else None,
            backoff_base=max(0.0, _env_float("REPRO_RETRY_BACKOFF", 0.05)),
        )

    def with_overrides(
        self, *, max_retries: int | None = None, job_timeout: float | None = None
    ) -> "RetryPolicy":
        """CLI-flag layering: only explicitly given values override."""
        policy = self
        if max_retries is not None:
            policy = replace(policy, max_retries=max(0, max_retries))
        if job_timeout is not None:
            policy = replace(policy, job_timeout=job_timeout if job_timeout > 0 else None)
        return policy

    def backoff(self, key: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter for one retry."""
        jitter = 1.0 + faults.unit_draw("backoff", key, attempt)
        return min(self.backoff_cap, self.backoff_base * (2.0**attempt) * jitter)


@dataclass(frozen=True)
class FailureRecord:
    """One job that exhausted its attempts — the structured quarantine entry."""

    key: str
    #: ``crash`` (worker exception), ``timeout`` (wall clock), ``pool``
    #: (worker process died).
    kind: str
    attempts: int
    error: str

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            key=data["key"],
            kind=data["kind"],
            attempts=data["attempts"],
            error=data.get("error", ""),
        )


class _Retry:
    """Internal outcome: requeue after *delay* seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay


class Supervisor:
    """One batch's pool owner and failure-handling scheduler.

    Parameters
    ----------
    workers:
        Worker-process budget; ``<= 1`` means pure inline execution.
    policy:
        The batch's :class:`RetryPolicy`.
    """

    def __init__(self, workers: int, policy: RetryPolicy | None = None) -> None:
        self.workers = max(0, workers)
        self.policy = policy or RetryPolicy.from_env()
        self._pool: ProcessPoolExecutor | None = None
        #: Sticky mode: one single-worker pool per slot index.
        self._pools: dict[int, ProcessPoolExecutor] = {}
        #: Affinity token -> the slot that last ran it.
        self._affinity_home: dict[object, int] = {}
        self._degraded = self.workers <= 1
        self.stats = {
            "retried": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "sticky_hits": 0,
            "sticky_misses": 0,
        }

    # -- pool lifecycle ----------------------------------------------------------

    @property
    def pool(self) -> ProcessPoolExecutor | None:
        """The live executor — created lazily, ``None`` once degraded."""
        if self._degraded:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def shutdown(self, *, cancel: bool = False) -> None:
        """Release every pool; *cancel* drops queued work instead of
        draining it (the error path must not block behind a failing batch)."""
        pools = [self._pool] if self._pool is not None else []
        pools.extend(self._pools.values())
        self._pool = None
        self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=not cancel, cancel_futures=cancel)

    def _pool_at(self, idx: int) -> ProcessPoolExecutor:
        """The executor for slot *idx* (``-1`` = the shared pool), lazily."""
        if idx < 0:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool
        pool = self._pools.get(idx)
        if pool is None:
            pool = self._pools[idx] = ProcessPoolExecutor(max_workers=1)
        return pool

    def _discard_pool(self) -> None:
        """Abandon the shared pool (broken, or holding a hung worker)."""
        self._discard_at(-1)

    def _discard_at(self, idx: int) -> None:
        """Abandon one pool slot; too many rebuilds degrade to inline."""
        if idx < 0:
            pool, self._pool = self._pool, None
        else:
            pool = self._pools.pop(idx, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self.stats["pool_rebuilds"] += 1
        if self.stats["pool_rebuilds"] > self.policy.max_pool_rebuilds:
            self._degraded = True

    # -- capture-phase fan-out ---------------------------------------------------

    def map_resilient(self, fn: Callable, tasks: list) -> list:
        """Run *fn* over *tasks* through the pool; degrade, never raise.

        Used for the capture phase: an exception costs one ``None`` entry
        and a pool crash reroutes the remainder inline.  *fn* must be
        safe to call in the parent process.
        """
        pool = self.pool
        if pool is None or len(tasks) < 2:
            return [fn(task) for task in tasks]
        try:
            futures = [pool.submit(fn, task) for task in tasks]
        except BrokenProcessPool:
            self._discard_pool()
            return [fn(task) for task in tasks]
        results: list = []
        broken = False
        for future, task in zip(futures, tasks):
            if broken:
                results.append(fn(task))
                continue
            try:
                results.append(future.result())
            except BrokenProcessPool:
                broken = True
                self._discard_pool()
                results.append(fn(task))
            except Exception:
                results.append(None)
        return results

    # -- supervised job execution ------------------------------------------------

    def run_jobs(
        self,
        misses: list[tuple[str, object]],
        *,
        worker_fn: Callable,
        task_for: Callable[[str, object, int], object],
        inline_fn: Callable[[str, object], object],
        decode: Callable[[object, object], object],
        dependencies: dict[str, str] | None = None,
        affinity: dict[str, object] | None = None,
    ) -> Iterator[tuple[str, object, object]]:
        """Execute every ``(key, job)``; yield ``(key, job, outcome)`` in
        completion order, where *outcome* is a decoded result or a
        :class:`FailureRecord`.

        *worker_fn* is the picklable pool entry point, *task_for* builds
        its payload per attempt, *inline_fn* executes one job in the
        parent, *decode* turns a worker's wire dict into a result object.

        *dependencies* maps a job key to the key of another job in the
        same batch: the dependent is withheld until the dependency's
        outcome has been yielded — success or quarantine alike (edges
        order work, they never veto it), so *task_for* runs after the
        caller has seen the dependency's product.  Edges pointing outside
        the batch (or at the job itself) are ignored.

        *affinity* maps job keys to routing tokens.  With two or more
        workers the supervisor then runs one single-worker pool per slot
        and prefers the slot that last ran a token unless that slot holds
        more than one job over the lightest (``sticky_hits`` /
        ``sticky_misses`` in :attr:`stats` count the routing outcomes),
        keeping per-process caches keyed by the token warm across a sweep.
        """
        keys = {key for key, _ in misses}
        deps = {
            key: dep
            for key, dep in (dependencies or {}).items()
            if key in keys and dep in keys and dep != key
        }
        blocked: dict[str, list[tuple[str, object, int]]] = {}
        queue: deque[tuple[str, object, int]] = deque()
        for key, job in misses:
            dep = deps.get(key)
            if dep is None:
                queue.append((key, job, 0))
            else:
                blocked.setdefault(dep, []).append((key, job, 0))

        def release(done_key: str) -> None:
            for entry in blocked.pop(done_key, ()):
                queue.append(entry)

        sticky = bool(affinity) and self.workers >= 2
        waiting: list[tuple[float, str, object, int]] = []
        # future -> [key, job, attempt, deadline, pool slot]
        active: dict[Future, list] = {}
        while queue or waiting or active or blocked:
            if blocked and not (queue or waiting or active):
                # Fail-open: a dangling edge (dependency yielded before
                # its dependents were registered, or a logic error in the
                # caller's map) must never deadlock the batch.
                for entries in list(blocked.values()):
                    queue.extend(entries)
                blocked.clear()
                continue
            now = time.monotonic()
            if waiting:
                due = [entry for entry in waiting if entry[0] <= now]
                if due:
                    waiting = [entry for entry in waiting if entry[0] > now]
                    for _, key, job, attempt in due:
                        queue.append((key, job, attempt))
            if self._degraded or self.workers <= 1:
                # Inline (or degraded) mode: one due job at a time, same
                # retry/quarantine path, no preemption so no timeouts.
                if queue:
                    key, job, attempt = queue.popleft()
                    outcome = self._inline_attempt(inline_fn, key, job, attempt)
                    if isinstance(outcome, _Retry):
                        waiting.append(
                            (time.monotonic() + outcome.delay, key, job, attempt + 1)
                        )
                    else:
                        yield key, job, outcome
                        release(key)
                elif waiting:
                    self._sleep_until(min(entry[0] for entry in waiting))
                continue
            loads: dict[int, int] = {}
            for flight in active.values():
                loads[flight[4]] = loads.get(flight[4], 0) + 1
            broken_slot: int | None = None
            while queue:
                key, job, attempt = queue.popleft()
                slot = self._route(key, affinity, loads) if sticky else -1
                try:
                    future = self._pool_at(slot).submit(
                        worker_fn, task_for(key, job, attempt)
                    )
                except BrokenProcessPool:
                    queue.appendleft((key, job, attempt))
                    broken_slot = slot
                    break
                active[future] = [key, job, attempt, None, slot]
                loads[slot] = loads.get(slot, 0) + 1
            if broken_slot is not None:
                self._requeue_in_flight(
                    active, queue, charge_attempt=True, slot=broken_slot
                )
                continue
            if not active:
                if waiting:
                    self._sleep_until(min(entry[0] for entry in waiting))
                continue
            timeout = self._wait_timeout(active, waiting)
            done, _ = wait(set(active), timeout=timeout, return_when=FIRST_COMPLETED)
            broken_slots: set[int] = set()
            for future in done:
                key, job, attempt, _, slot = active.pop(future)
                exc = future.exception()
                if exc is None:
                    yield key, job, decode(job, future.result())
                    release(key)
                    continue
                if isinstance(exc, BrokenProcessPool):
                    broken_slots.add(slot)
                    queue.append((key, job, attempt + 1))
                    continue
                outcome = self._after_failure(key, attempt, "crash", repr(exc))
                if isinstance(outcome, _Retry):
                    waiting.append(
                        (time.monotonic() + outcome.delay, key, job, attempt + 1)
                    )
                else:
                    yield key, job, outcome
                    release(key)
            if broken_slots:
                for slot in broken_slots:
                    self._requeue_in_flight(
                        active, queue, charge_attempt=True, slot=slot
                    )
                continue
            if self.policy.job_timeout is None or not active:
                continue
            now = time.monotonic()
            expired = [
                future
                for future, flight in active.items()
                if flight[3] is not None and now >= flight[3]
            ]
            if not expired:
                continue
            self.stats["timeouts"] += len(expired)
            hung_slots: set[int] = set()
            for future in expired:
                key, job, attempt, _, slot = active.pop(future)
                hung_slots.add(slot)
                future.cancel()
                outcome = self._after_failure(
                    key,
                    attempt,
                    "timeout",
                    f"exceeded {self.policy.job_timeout:g}s wall clock",
                )
                if isinstance(outcome, _Retry):
                    waiting.append(
                        (time.monotonic() + outcome.delay, key, job, attempt + 1)
                    )
                else:
                    yield key, job, outcome
                    release(key)
            # A hung worker cannot be reclaimed: abandon its pool, requeue
            # every other in-flight job there without charging an attempt.
            for slot in hung_slots:
                self._requeue_in_flight(
                    active, queue, charge_attempt=False, slot=slot
                )

    # -- internals ---------------------------------------------------------------

    def _wait_timeout(self, active: dict, waiting: list) -> float | None:
        """How long ``wait`` may block before a deadline or retry is due."""
        timeout: float | None = None
        now = time.monotonic()
        if self.policy.job_timeout is not None:
            deadline_pending = False
            deadlines = []
            for future, flight in active.items():
                if flight[3] is None:
                    if future.running():
                        flight[3] = now + self.policy.job_timeout
                        deadlines.append(flight[3])
                    else:
                        deadline_pending = True
                else:
                    deadlines.append(flight[3])
            if deadlines:
                timeout = max(0.0, min(deadlines) - now)
            if deadline_pending:
                timeout = (
                    _DEADLINE_POLL if timeout is None else min(timeout, _DEADLINE_POLL)
                )
        if waiting:
            soonest = max(0.0, min(entry[0] for entry in waiting) - now)
            timeout = soonest if timeout is None else min(timeout, soonest)
        return timeout

    def _route(
        self, key: str, affinity: dict[str, object], loads: dict[int, int]
    ) -> int:
        """Pick a single-worker pool slot for *key* under sticky routing.

        The token's home slot wins while it holds at most one job more
        than the lightest slot; past that the job migrates (and the token
        re-homes), trading cache warmth for load balance.  A job without
        a token always takes the lightest slot.
        """
        token = affinity.get(key)
        slots = range(self.workers)
        least = min(slots, key=lambda i: loads.get(i, 0))
        if token is None:
            return least
        home = self._affinity_home.get(token)
        if home is not None and loads.get(home, 0) <= loads.get(least, 0) + 1:
            self.stats["sticky_hits"] += 1
            return home
        self._affinity_home[token] = least
        self.stats["sticky_misses"] += 1
        return least

    def _requeue_in_flight(
        self, active: dict, queue: deque, *, charge_attempt: bool, slot: int = -1
    ) -> None:
        """Drain one pool's in-flight jobs back into the queue and rebuild it.

        After ``BrokenProcessPool`` the guilty job cannot be told apart
        from its innocent pool-mates (every in-flight future raises), so
        all are charged an attempt — the guilty job's counter is the one
        that matters for quarantine, and an innocent job's extra attempt
        only changes its backoff.  After a timeout nothing in flight is
        guilty, so nothing is charged.  Only *slot*'s flights are touched:
        in sticky mode the other single-worker pools are healthy.
        """
        for future, (key, job, attempt, _, flight_slot) in list(active.items()):
            if flight_slot != slot:
                continue
            future.cancel()
            queue.append((key, job, attempt + 1 if charge_attempt else attempt))
            del active[future]
        self._discard_at(slot)

    def _inline_attempt(
        self, inline_fn: Callable, key: str, job: object, attempt: int
    ) -> object:
        try:
            faults.maybe_fail(key, attempt, allow_exit=False)
            return inline_fn(key, job)
        except Exception as exc:
            return self._after_failure(key, attempt, "crash", repr(exc))

    def _after_failure(
        self, key: str, attempt: int, kind: str, error: str
    ) -> _Retry | FailureRecord:
        if attempt < self.policy.max_retries:
            self.stats["retried"] += 1
            return _Retry(self.policy.backoff(key, attempt))
        return FailureRecord(key=key, kind=kind, attempts=attempt + 1, error=error)

    @staticmethod
    def _sleep_until(deadline: float) -> None:
        delay = deadline - time.monotonic()
        if delay > 0:
            time.sleep(min(delay, _IDLE_SLEEP))
