"""Parallel experiment execution with a persistent result store.

The subsystem has three pieces:

* :mod:`repro.runner.jobs` — serialisable job descriptions
  (:class:`WorkloadJob`, :class:`AloneJob`, :class:`PolicySpec`) with
  stable content-addressed cache keys;
* :mod:`repro.runner.store` — :class:`ResultStore`, one JSON file per
  completed job under a ``results/`` directory, shared across invocations;
* :mod:`repro.runner.parallel` — :class:`ParallelRunner`, which fans job
  batches out over a process pool (``REPRO_JOBS`` workers, default
  ``os.cpu_count()``) and reads/writes the store around each run.

The experiments layer (:class:`repro.experiments.common.Runner`) sits on
top, keeping its in-process memo as the L1 cache above the store.
"""

from repro.policies.spec import PolicySpec, policy_key
from repro.runner.jobs import (
    SCHEMA_VERSION,
    AloneJob,
    Job,
    WorkloadJob,
    job_from_dict,
)
from repro.runner.parallel import ParallelRunner, default_jobs
from repro.runner.store import ResultStore

__all__ = [
    "SCHEMA_VERSION",
    "AloneJob",
    "Job",
    "ParallelRunner",
    "PolicySpec",
    "ResultStore",
    "WorkloadJob",
    "default_jobs",
    "job_from_dict",
    "policy_key",
]
