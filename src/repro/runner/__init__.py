"""Parallel experiment execution with a persistent result store.

The subsystem has three pieces:

* :mod:`repro.runner.jobs` — serialisable job descriptions
  (:class:`WorkloadJob`, :class:`AloneJob`, :class:`PolicySpec`) with
  stable content-addressed cache keys;
* :mod:`repro.runner.store` — :class:`ResultStore`, one JSON file per
  completed job under a ``results/`` directory, shared across invocations,
  with a typed query API (:class:`StoredResult`, ``records``/``query``)
  that aggregating consumers (:mod:`repro.report`, ``traces gc``) use
  instead of touching the JSON layout;
* :mod:`repro.runner.parallel` — :class:`ParallelRunner`, which fans job
  batches out over a process pool (``REPRO_JOBS`` workers, default
  ``os.cpu_count()``) and reads/writes the store around each run;
* :mod:`repro.runner.replaystore` — :class:`ReplayStore`, the
  content-addressed replay-capture artifacts a policy sweep shares (one
  private-level capture per platform, replayed by every swept job), plus
  the per-process manifest registry;
* :mod:`repro.runner.tracegc` — ``repro-experiments traces gc``, pruning
  shared buffers no stored result references any more and quarantining
  corrupt artifacts;
* :mod:`repro.runner.supervisor` — :class:`Supervisor`, the
  future-per-job scheduler behind :class:`ParallelRunner` (retry with
  backoff via :class:`RetryPolicy`, wall-clock timeouts, pool-rebuild
  recovery, :class:`FailureRecord` quarantine);
* :mod:`repro.runner.faults` / :mod:`repro.runner.integrity` — the
  deterministic ``REPRO_FAULT`` injection harness and the checksum /
  quarantine plumbing that proves the failure semantics.

The experiments layer (:class:`repro.experiments.common.Runner`) sits on
top, keeping its in-process memo as the L1 cache above the store.
"""

from repro.policies.spec import PolicySpec, policy_key
from repro.runner.jobs import (
    SCHEMA_VERSION,
    AloneJob,
    Job,
    WorkloadJob,
    job_from_dict,
)
from repro.runner.parallel import ParallelRunner, default_jobs
from repro.runner.replaystore import ReplayStore
from repro.runner.store import ResultStore, StoredResult
from repro.runner.supervisor import FailureRecord, RetryPolicy

__all__ = [
    "SCHEMA_VERSION",
    "AloneJob",
    "FailureRecord",
    "Job",
    "ParallelRunner",
    "PolicySpec",
    "ReplayStore",
    "ResultStore",
    "RetryPolicy",
    "StoredResult",
    "WorkloadJob",
    "default_jobs",
    "job_from_dict",
    "policy_key",
]
