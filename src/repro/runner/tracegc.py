"""Garbage collection for the shared-buffer directory of a result store.

Long-lived stores accumulate zero-copy trace buffers
(:mod:`repro.trace.shared`) and replay-capture artifacts
(:mod:`repro.runner.replaystore`) under ``<store>/traces/``.  Both are
pure caches — deleting one only costs a regeneration — but nothing ever
pruned them, so heavily-used stores grew without bound.

``collect_garbage`` walks every stored result (via the store's typed
:meth:`~repro.runner.store.ResultStore.records` API — this module knows
nothing about the on-disk JSON layout), recomputes the content-addressed
buffer keys its job would use today (same trace-chunk budget, same capture
slack), and removes every buffer file no stored result references.

The pass also *audits* the buffers it keeps: a referenced artifact whose
checksum sidecar no longer matches — or whose npz structure no longer
loads — is reported as corrupt, and moved to ``traces/quarantine/``
under ``--fix`` (the next sweep regenerates it from a plain miss).
Orphaned ``.sha256`` sidecars are swept with their artifacts.  Exposed
as ``repro-experiments traces gc``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runner.integrity import (
    CHECKSUM_SUFFIX,
    META_SUFFIX,
    quarantine,
    quarantined_artifacts,
    read_meta,
    verify_artifact,
)
from repro.runner.store import ResultStore

#: Orphaned ``.tmp`` files (crashed atomic writes) younger than this are
#: left alone — they may belong to a writer that is still running.
_TMP_GRACE_SECONDS = 3600.0


@dataclass
class GcReport:
    """What a collection pass found and did."""

    results_scanned: int
    referenced: int
    kept: list[str]
    removed: list[str]
    freed_bytes: int
    dry_run: bool
    #: Referenced artifacts whose checksum/structure check failed.
    corrupt: list[str] = field(default_factory=list)
    #: Whether corrupt artifacts were moved to quarantine this pass.
    fix: bool = False
    #: Artifacts already held in ``traces/quarantine/``.
    quarantined: list[str] = field(default_factory=list)
    #: Kept ingested-target buffers: file name -> provenance line.
    targets: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        action = "would remove" if self.dry_run else "removed"
        lines = [
            f"traces gc: {self.results_scanned} stored results scanned, "
            f"{self.referenced} buffers referenced",
            f"{len(self.kept)} kept, {len(self.removed)} {action} "
            f"({self.freed_bytes / 1024:.0f} KiB)",
        ]
        lines.extend(f"  - {name}" for name in self.removed)
        if self.targets:
            lines.append(
                f"{len(self.targets)} ingested target buffers pinned by "
                "targets.json:"
            )
            lines.extend(
                f"  + {name}  {provenance}"
                for name, provenance in sorted(self.targets.items())
            )
        if self.corrupt:
            verdict = (
                "quarantined" if self.fix and not self.dry_run
                else "found (rerun with --fix to quarantine)"
            )
            lines.append(f"{len(self.corrupt)} corrupt artifacts {verdict}")
            lines.extend(f"  ! {name}" for name in self.corrupt)
        if self.quarantined:
            lines.append(
                f"{len(self.quarantined)} artifacts held in quarantine/"
            )
        return "\n".join(lines)


def _referenced(store: ResultStore) -> tuple[int, set[str], set[tuple]]:
    """What the currently-stored results reference.

    Returns ``(results scanned, trace-buffer file names, replay-capture
    identities)``.  Replay artifacts are matched by the *identity*
    embedded in each file — not by recomputing the content address —
    because the slack factor is part of the address and may differ
    between the sweeps that wrote an artifact and the gc environment.
    """
    from repro.runner.parallel import _job_trace_identities
    from repro.sim.build import capture_identity
    from repro.trace.shared import trace_key

    scanned = 0
    names: set[str] = set()
    identities: set[tuple] = set()
    for record in store.records():
        job = record.job
        scanned += 1
        for name, geometry, core_id, seed, n_chunks in _job_trace_identities(job):
            names.add(f"{trace_key(name, geometry, core_id, seed, n_chunks)}.npy")
        if job.kind == "workload":
            identities.add(
                capture_identity(
                    job.benchmarks, job.config, job.quota, job.warmup, job.master_seed
                )
            )
    return scanned, names, identities


def _is_corrupt(path: Path, structurally_dead: bool = False) -> bool:
    """Whether a kept artifact fails its integrity checks."""
    return structurally_dead or verify_artifact(path) is False


def _registry_names(traces_dir: Path) -> tuple[set[str], dict[str, str]]:
    """Target buffers pinned by ``targets.json``: (file names, provenance).

    Ingested traces are referenced by the registry rather than by stored
    results — a freshly ingested target must survive gc before its first
    sweep ever runs.
    """
    from repro.targets.registry import load_registry

    names: set[str] = set()
    provenance: dict[str, str] = {}
    for spec in load_registry(traces_dir).values():
        file_name = f"target-{spec.key}.npy"
        names.add(file_name)
        entry = (
            f"{spec.name} [{spec.fmt}] origin={spec.origin} "
            f"src={spec.source_sha256[:12]} budget={spec.budget}"
        )
        # Two registry names over one buffer (same content ingested twice
        # under different names) render on one line.
        if file_name in provenance:
            entry = f"{provenance[file_name]} + {spec.name}"
        provenance[file_name] = entry
    return names, provenance


def provenance_line(path: Path) -> str:
    """One human line describing an artifact's origin (from sidecars)."""
    meta = read_meta(path)
    if meta is None:
        if path.name.startswith("replay-") and path.suffix == ".npz":
            from repro.runner.replaystore import load_meta

            inner = load_meta(path)
            if inner is not None:
                benchmarks = ",".join(inner.get("benchmarks", []))
                return (
                    f"replay capture [{benchmarks}] "
                    f"seed={inner.get('master_seed', '?')}"
                )
        return "(no provenance recorded)"
    if meta.get("kind") == "target":
        return (
            f"ingested [{meta.get('format', '?')}] "
            f"origin={meta.get('origin', '?')} "
            f"src={str(meta.get('source_sha256', ''))[:12]} "
            f"budget={meta.get('budget', '?')} "
            f"accesses={meta.get('accesses', '?')}"
        )
    if meta.get("kind") == "synthetic":
        return (
            f"synthetic generator={meta.get('generator', '?')} "
            f"pattern={meta.get('pattern', '?')} "
            f"core={meta.get('core_id', '?')} "
            f"seed={meta.get('master_seed', '?')} "
            f"chunks={meta.get('n_chunks', '?')}"
        )
    return f"(unrecognised meta kind {meta.get('kind')!r})"


def collect_garbage(
    results_dir: str | Path, dry_run: bool = False, fix: bool = False
) -> GcReport:
    """Prune unreferenced trace/replay buffers under ``<results_dir>/traces``.

    With *fix*, referenced-but-corrupt artifacts (checksum mismatch, or a
    replay npz whose structure no longer loads) are moved to
    ``traces/quarantine/`` so the next sweep regenerates them; without it
    they are only reported.
    """
    from repro.runner.replaystore import identity_from_meta, load_meta

    store = ResultStore(results_dir)
    scanned, trace_names, replay_identities = _referenced(store)
    traces_dir = store.root / "traces"
    target_names, target_provenance = _registry_names(traces_dir)
    kept: list[str] = []
    removed: list[str] = []
    corrupt: list[str] = []
    kept_targets: dict[str, str] = {}
    freed = 0
    if traces_dir.is_dir():
        now = time.time()
        candidates = sorted(
            p
            for pattern in ("*.npy", "replay-*.npz", "*.tmp")
            for p in traces_dir.glob(pattern)
        )
        for path in candidates:
            if path.suffix == ".npy" and (
                path.name in trace_names or path.name in target_names
            ):
                if _is_corrupt(path):
                    corrupt.append(path.name)
                    if fix and not dry_run:
                        quarantine(path, reason="trace integrity check failed")
                        continue
                kept.append(path.name)
                if path.name in target_names:
                    kept_targets[path.name] = target_provenance[path.name]
                continue
            if path.suffix == ".npz":
                meta = load_meta(path)
                if meta is not None and identity_from_meta(meta) in replay_identities:
                    if _is_corrupt(path):
                        corrupt.append(path.name)
                        if fix and not dry_run:
                            quarantine(path, reason="replay integrity check failed")
                            continue
                    kept.append(path.name)
                    continue
                if meta is None and verify_artifact(path) is not None:
                    # A checksummed artifact that no longer loads is
                    # damage, not garbage: a referenced identity may be
                    # hiding inside, so preserve the evidence.
                    corrupt.append(path.name)
                    if fix and not dry_run:
                        quarantine(path, reason="replay unreadable")
                    else:
                        kept.append(path.name)
                    continue
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.suffix == ".tmp" and now - stat.st_mtime < _TMP_GRACE_SECONDS:
                # A crashed atomic write leaves one behind — but a young
                # one may still belong to a live writer.
                kept.append(path.name)
                continue
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    kept.append(path.name)
                    continue
            removed.append(path.name)
            freed += stat.st_size
        # Sweep sidecars (checksum + provenance meta) whose artifact is
        # gone (just removed, moved to quarantine, or deleted out-of-band).
        removed_names = set(removed)
        for suffix in (CHECKSUM_SUFFIX, META_SUFFIX):
            for sidecar in sorted(traces_dir.glob(f"*{suffix}")):
                base = sidecar.with_name(sidecar.name[: -len(suffix)])
                if base.exists() and base.name not in removed_names:
                    continue
                try:
                    size = sidecar.stat().st_size
                    if not dry_run:
                        sidecar.unlink()
                except OSError:
                    continue
                removed.append(sidecar.name)
                freed += size
    return GcReport(
        results_scanned=scanned,
        referenced=len(trace_names) + len(replay_identities),
        kept=kept,
        removed=removed,
        freed_bytes=freed,
        dry_run=dry_run,
        corrupt=corrupt,
        fix=fix,
        quarantined=[p.name for p in quarantined_artifacts(traces_dir)],
        targets=kept_targets,
    )


# -- inventory (``traces ls``) -------------------------------------------------


@dataclass
class TraceInventory:
    """Every artifact under ``<store>/traces``, with provenance."""

    root: Path
    #: ``(file name, size bytes, provenance line)`` in name order.
    entries: list[tuple[str, int, str]] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def render(self) -> str:
        if not self.entries and not self.quarantined:
            return f"traces ls: no artifacts under {self.root}"
        total = sum(size for _, size, _ in self.entries)
        lines = [
            f"traces ls: {len(self.entries)} artifacts "
            f"({total / 1024:.0f} KiB) under {self.root}"
        ]
        lines.extend(
            f"  {name:<52} {size / 1024:>8.0f} KiB  {provenance}"
            for name, size, provenance in self.entries
        )
        if self.quarantined:
            lines.append(
                f"{len(self.quarantined)} artifacts held in quarantine/"
            )
            lines.extend(f"  ! {name}" for name in self.quarantined)
        return "\n".join(lines)


def list_traces(results_dir: str | Path) -> TraceInventory:
    """Enumerate the trace/replay artifacts of a store with provenance.

    Ingested target buffers render their source provenance (format,
    origin checksum, budget) from the meta sidecar; synthetic buffers
    their generator identity; replay captures the identity embedded in
    the archive.  Exposed as ``repro-experiments traces ls``.
    """
    traces_dir = ResultStore(results_dir).root / "traces"
    inventory = TraceInventory(root=traces_dir)
    if not traces_dir.is_dir():
        return inventory
    for path in sorted(
        p
        for pattern in ("*.npy", "replay-*.npz")
        for p in traces_dir.glob(pattern)
    ):
        try:
            size = path.stat().st_size
        except OSError:
            continue
        inventory.entries.append((path.name, size, provenance_line(path)))
    inventory.quarantined = [
        p.name for p in quarantined_artifacts(traces_dir)
    ]
    return inventory
