"""Deterministic fault injection for the supervised runner.

The ``REPRO_FAULT`` environment variable turns controlled failures on in
every process that executes jobs — the parent, pool workers, capture
jobs — so the retry/timeout/quarantine machinery of
:mod:`repro.runner.supervisor` can be exercised end to end, in tests and
in the nightly chaos CI job.  Injection happens only at the *job
boundary* (before a job's simulation starts) and at *artifact write
time* (after a shared buffer is persisted), never inside the simulation
kernels, so a retried job reproduces its result bit for bit and a run
that survives injected noise is bit-identical to a fault-free run.

Grammar — a comma-separated list of directives::

    REPRO_FAULT = directive[,directive ...]
    directive   = "crash:" trigger                  # raise before executing
                | "kill:" trigger                   # os._exit in a pool worker
                                                    #   (-> BrokenProcessPool);
                                                    #   degrades to a crash inline
                | "hang:" trigger [":" seconds]     # sleep (default 30 s) before
                                                    #   executing -> wall-clock
                                                    #   timeouts fire
                | "poison:" substring               # always crash jobs whose
                                                    #   cache key contains substring
                | "corrupt-artifact:" kind [":" trigger]
                                                    # damage a freshly written
                                                    #   artifact; kind is
                                                    #   "trace" or "replay"
    trigger     = probability                      # float in [0, 1], drawn
                                                    #   deterministically per
                                                    #   (directive, key, attempt)
                | "@" N                             # always on attempts <= N,
                                                    #   never after ("@0" =
                                                    #   transient: first attempt
                                                    #   fails, the retry succeeds)

Examples: ``REPRO_FAULT=crash:0.1`` fails ~10% of attempts;
``REPRO_FAULT=crash:@0`` fails every first attempt (and only those);
``REPRO_FAULT=hang:@0:2.0,corrupt-artifact:replay`` hangs first attempts
for two seconds and corrupts every replay capture on disk.

Every decision is a pure function of ``(directive, key, attempt)`` via
SHA-256, so runs are reproducible across processes, worker counts and
invocations — no RNG state is involved.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

ENV_VAR = "REPRO_FAULT"

#: Directive kinds, in the order they are applied at the job boundary.
KINDS = ("hang", "crash", "kill", "poison", "corrupt-artifact")

_DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """Base of every injected failure (so handlers can special-case it)."""


class InjectedCrash(InjectedFault):
    """The exception ``crash``/``poison`` (and inline ``kill``) raise."""


def unit_draw(tag: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision point."""
    blob = f"{tag}|{key}|{attempt}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64


@dataclass(frozen=True)
class Directive:
    """One parsed ``REPRO_FAULT`` clause."""

    kind: str
    prob: float | None = None
    max_attempt: int | None = None
    match: str | None = None
    #: ``hang`` seconds or ``corrupt-artifact`` artifact kind.
    arg: str | None = None

    def fires(self, key: str, attempt: int) -> bool:
        if self.match is not None:
            return self.match in key
        if self.max_attempt is not None:
            return attempt <= self.max_attempt
        if self.prob is None:
            return False
        return unit_draw(self.kind, key, attempt) < self.prob


def _parse_trigger(token: str, directive: str) -> tuple[float | None, int | None]:
    if token.startswith("@"):
        try:
            return None, int(token[1:])
        except ValueError:
            raise ValueError(f"bad attempt limit in {ENV_VAR} directive {directive!r}")
    try:
        prob = float(token)
    except ValueError:
        raise ValueError(f"bad probability in {ENV_VAR} directive {directive!r}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"probability out of [0, 1] in {ENV_VAR} directive {directive!r}")
    return prob, None


def parse_plan(raw: str) -> tuple[Directive, ...]:
    """Parse one ``REPRO_FAULT`` value; raises ``ValueError`` on typos.

    A malformed harness spec must fail loudly — silently injecting no
    faults would make a chaos run vacuously green.
    """
    directives: list[Directive] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        kind = fields[0]
        if kind not in KINDS:
            raise ValueError(f"unknown {ENV_VAR} directive kind {kind!r} in {part!r}")
        if kind == "poison":
            if len(fields) != 2 or not fields[1]:
                raise ValueError(f"poison needs a key substring: {part!r}")
            directives.append(Directive(kind, match=fields[1]))
        elif kind == "corrupt-artifact":
            if len(fields) not in (2, 3) or fields[1] not in ("trace", "replay"):
                raise ValueError(
                    f"corrupt-artifact needs a kind (trace|replay): {part!r}"
                )
            prob, max_attempt = _parse_trigger(
                fields[2] if len(fields) == 3 else "1.0", part
            )
            directives.append(
                Directive(kind, prob=prob, max_attempt=max_attempt, arg=fields[1])
            )
        elif kind == "hang":
            if len(fields) not in (2, 3):
                raise ValueError(f"hang needs a trigger: {part!r}")
            prob, max_attempt = _parse_trigger(fields[1], part)
            seconds = fields[2] if len(fields) == 3 else str(_DEFAULT_HANG_SECONDS)
            try:
                float(seconds)
            except ValueError:
                raise ValueError(f"bad hang duration in {part!r}")
            directives.append(
                Directive(kind, prob=prob, max_attempt=max_attempt, arg=seconds)
            )
        else:  # crash | kill
            if len(fields) != 2:
                raise ValueError(f"{kind} needs a trigger: {part!r}")
            prob, max_attempt = _parse_trigger(fields[1], part)
            directives.append(Directive(kind, prob=prob, max_attempt=max_attempt))
    return tuple(directives)


#: (raw env string, parsed plan) — re-parsed whenever the variable changes,
#: so monkeypatched tests and long-lived workers both see the live value.
_CACHE: tuple[str, tuple[Directive, ...]] | None = None


def plan() -> tuple[Directive, ...]:
    global _CACHE
    raw = os.environ.get(ENV_VAR, "")
    if _CACHE is None or _CACHE[0] != raw:
        _CACHE = (raw, parse_plan(raw))
    return _CACHE[1]


def active() -> bool:
    """Whether any fault directive is currently installed."""
    return bool(plan())


def maybe_fail(key: str, attempt: int, *, allow_exit: bool = False) -> None:
    """Apply every firing job-boundary directive for ``(key, attempt)``.

    ``hang`` sleeps (the job still runs afterwards — a hang is *slow*,
    not wrong; the supervisor's wall-clock timeout is what turns it into
    a failure).  ``kill`` hard-exits the process only when *allow_exit*
    is set (pool workers, where it surfaces as ``BrokenProcessPool``);
    inline it degrades to an ordinary injected crash — killing the
    parent would take the whole campaign down, which is exactly what the
    supervisor exists to prevent.
    """
    for directive in plan():
        if directive.kind == "corrupt-artifact":
            continue
        if not directive.fires(key, attempt):
            continue
        if directive.kind == "hang":
            time.sleep(float(directive.arg or _DEFAULT_HANG_SECONDS))
        elif directive.kind == "kill" and allow_exit:
            os._exit(42)
        else:
            raise InjectedCrash(
                f"injected {directive.kind} (key={key[:12]}, attempt={attempt})"
            )


def corrupt_artifact(kind: str, path: object, key: str) -> bool:
    """Damage a freshly written artifact if a directive says so.

    *key* should be the artifact's stable content address (its file
    name), so the same artifact is corrupted — or spared —
    deterministically on every run.  Returns whether damage was done.
    """
    fired = any(
        d.kind == "corrupt-artifact" and d.arg == kind and d.fires(key, 0)
        for d in plan()
    )
    if fired:
        corrupt_file(path)
    return fired


def corrupt_file(path: object) -> None:
    """Overwrite a few bytes mid-file — the disk-corruption model.

    Mid-file damage is the nasty case: a ``.npy`` still *loads* (with
    silently wrong data), which only the checksum sidecar catches.
    """
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(max(0, size // 2))
        fh.write(b"\xde\xad\xbe\xef\xfa\xce\xd0\x0d")
